// Centralized graph algorithms.
//
// These are *oracles*: the distributed algorithms in src/algos are validated
// against them, and experiment harnesses use them to compute ground-truth
// distances, diameters, and MSTs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace dasched {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` to every node (kUnreachable if disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS distances capped at `max_hops` (nodes farther away get kUnreachable).
std::vector<std::uint32_t> bfs_distances_capped(const Graph& g, NodeId source,
                                                std::uint32_t max_hops);

/// Eccentricity of `source` (max finite BFS distance); graph must be connected.
std::uint32_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter via n BFS runs. O(n * m) -- fine for simulator-scale graphs.
std::uint32_t exact_diameter(const Graph& g);

/// 2-approximate diameter via one double-sweep BFS (lower bound that is often
/// tight in practice; always >= radius).
std::uint32_t double_sweep_diameter_lb(const Graph& g);

/// Connected component label per node (labels are representative node ids).
std::vector<NodeId> connected_components(const Graph& g);

/// Kruskal MST for edge weights w (w.size() == g.num_edges()); returns the
/// set of chosen edge ids sorted ascending. Graph must be connected and
/// weights must be distinct for a unique MST (checked).
std::vector<EdgeId> kruskal_mst(const Graph& g, const std::vector<std::uint64_t>& weights);

/// Total weight of an edge set.
std::uint64_t total_weight(const std::vector<EdgeId>& edges,
                           const std::vector<std::uint64_t>& weights);

}  // namespace dasched
