#include "graph/algorithms.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

namespace dasched {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_distances_capped(g, source, kUnreachable);
}

std::vector<std::uint32_t> bfs_distances_capped(const Graph& g, NodeId source,
                                                std::uint32_t max_hops) {
  DASCHED_CHECK(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    if (dist[v] >= max_hops) continue;
    for (const auto& h : g.neighbors(v)) {
      if (dist[h.neighbor] == kUnreachable) {
        dist[h.neighbor] = dist[v] + 1;
        queue.push(h.neighbor);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    DASCHED_CHECK_MSG(d != kUnreachable, "eccentricity on disconnected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  std::uint32_t diameter = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diameter = std::max(diameter, eccentricity(g, v));
  }
  return diameter;
}

std::uint32_t double_sweep_diameter_lb(const Graph& g) {
  DASCHED_CHECK(g.num_nodes() >= 1);
  auto dist = bfs_distances(g, 0);
  NodeId farthest = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DASCHED_CHECK_MSG(dist[v] != kUnreachable, "double sweep on disconnected graph");
    if (dist[v] > dist[farthest]) farthest = v;
  }
  return eccentricity(g, farthest);
}

std::vector<NodeId> connected_components(const Graph& g) {
  std::vector<NodeId> label(g.num_nodes(), kInvalidNode);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[start] != kInvalidNode) continue;
    std::queue<NodeId> queue;
    queue.push(start);
    label[start] = start;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (const auto& h : g.neighbors(v)) {
        if (label[h.neighbor] == kInvalidNode) {
          label[h.neighbor] = start;
          queue.push(h.neighbor);
        }
      }
    }
  }
  return label;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

std::vector<EdgeId> kruskal_mst(const Graph& g, const std::vector<std::uint64_t>& weights) {
  DASCHED_CHECK(weights.size() == g.num_edges());
  {
    std::unordered_set<std::uint64_t> distinct(weights.begin(), weights.end());
    DASCHED_CHECK_MSG(distinct.size() == weights.size(),
                      "MST weights must be distinct for uniqueness");
  }
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return weights[a] < weights[b]; });

  UnionFind uf(g.num_nodes());
  std::vector<EdgeId> chosen;
  chosen.reserve(g.num_nodes() - 1);
  for (const EdgeId e : order) {
    const auto [u, v] = g.endpoints(e);
    if (uf.unite(u, v)) chosen.push_back(e);
  }
  DASCHED_CHECK_MSG(chosen.size() + 1 == g.num_nodes(), "kruskal on disconnected graph");
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::uint64_t total_weight(const std::vector<EdgeId>& edges,
                           const std::vector<std::uint64_t>& weights) {
  std::uint64_t sum = 0;
  for (const EdgeId e : edges) {
    DASCHED_CHECK(e < weights.size());
    sum += weights[e];
  }
  return sum;
}

}  // namespace dasched
