// Graph generators for experiments and tests.
//
// All generators are deterministic given the Rng passed in, and always return
// connected graphs (random families are retried / patched until connected so
// that dilation is well-defined for whole-graph algorithms).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

Graph make_path(NodeId n);
Graph make_cycle(NodeId n);
Graph make_complete(NodeId n);
Graph make_star(NodeId n);

/// rows x cols grid; torus wraps both dimensions.
Graph make_grid(NodeId rows, NodeId cols, bool torus = false);

/// Complete binary tree with n nodes (heap indexing).
Graph make_binary_tree(NodeId n);

/// Erdős–Rényi G(n, p), patched to connectivity by linking components along a
/// random spanning chain of component representatives.
Graph make_gnp_connected(NodeId n, double p, Rng& rng);

/// Uniform random connected graph with exactly m edges (m >= n - 1): a random
/// spanning tree (random Prüfer-free attachment) plus m - n + 1 random extra
/// edges.
Graph make_random_connected(NodeId n, EdgeId m, Rng& rng);

/// Random d-regular-ish graph via the configuration model with retries;
/// resulting degrees are d except where collisions forced a patch. Connected.
Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng);

/// Lollipop: clique of size k attached to a path of length n - k. A classic
/// high-congestion/low-expansion stress topology.
Graph make_lollipop(NodeId n, NodeId clique_size);

/// The layered lower-bound topology of Section 3 / Figure 2: spine nodes
/// v_0..v_L plus L groups U_1..U_L of `width` nodes; each u in U_i is
/// connected to v_{i-1} and v_i. Spine node v_i has id i; group U_i occupies
/// ids L + 1 + (i-1)*width .. L + (i)*width.
Graph make_layered(NodeId num_layers, NodeId width);

/// Spine node id in a layered graph: v_i for i in [0, L].
inline NodeId layered_spine(NodeId i) { return i; }

/// Id of the j-th node of group U_i (i in [1, L], j in [0, width)).
inline NodeId layered_group_node(NodeId num_layers, NodeId width, NodeId i, NodeId j) {
  DASCHED_DCHECK(i >= 1 && j < width);
  (void)width;
  return num_layers + 1 + (i - 1) * width + j;
}

}  // namespace dasched
