#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/fingerprint.hpp"

namespace dasched {

Graph::Graph(NodeId n, std::span<const std::pair<NodeId, NodeId>> edges) : n_(n) {
  edges_.reserve(edges.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    DASCHED_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    DASCHED_CHECK_MSG(u != v, "self-loop");
    const NodeId a = std::min(u, v);
    const NodeId b = std::max(u, v);
    const std::uint64_t key = (std::uint64_t{a} << 32) | b;
    DASCHED_CHECK_MSG(seen.insert(key).second, "duplicate edge");
    edges_.emplace_back(a, b);
  }

  std::vector<std::uint32_t> deg(n_, 0);
  for (auto [a, b] : edges_) {
    ++deg[a];
    ++deg[b];
  }
  offsets_.assign(n_ + 1, 0);
  for (NodeId v = 0; v < n_; ++v) offsets_[v + 1] = offsets_[v] + deg[v];
  adjacency_.resize(offsets_[n_]);

  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const auto [a, b] = edges_[e];
    adjacency_[cursor[a]++] = HalfEdge{b, e};
    adjacency_[cursor[b]++] = HalfEdge{a, e};
  }
  for (NodeId v = 0; v < n_; ++v) {
    auto span = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(span, end,
              [](const HalfEdge& x, const HalfEdge& y) { return x.neighbor < y.neighbor; });
    max_degree_ = std::max(max_degree_, deg[v]);
  }

  directed_adjacency_.resize(adjacency_.size());
  for (NodeId v = 0; v < n_; ++v) {
    for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      directed_adjacency_[i] = directed_id(adjacency_[i].edge, v);
    }
  }
}

std::uint32_t Graph::neighbor_slot(NodeId v, NodeId u) const {
  DASCHED_DCHECK(v < n_ && u < n_);
  const auto nbrs = neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u,
                             [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
  if (it != nbrs.end() && it->neighbor == u) {
    return static_cast<std::uint32_t>(it - nbrs.begin());
  }
  return kInvalidEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  DASCHED_DCHECK(u < n_ && v < n_);
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  // Adjacency is sorted by neighbor id.
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                             [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<bool> visited(n_, false);
  std::queue<NodeId> queue;
  queue.push(0);
  visited[0] = true;
  NodeId reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const auto& h : neighbors(v)) {
      if (!visited[h.neighbor]) {
        visited[h.neighbor] = true;
        ++reached;
        queue.push(h.neighbor);
      }
    }
  }
  return reached == n_;
}

std::uint64_t graph_fingerprint(const Graph& g) {
  Fingerprint fp;
  fp.mix(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [lo, hi] = g.endpoints(e);
    fp.mix(lo);
    fp.mix(hi);
  }
  return fp.digest();
}

}  // namespace dasched
