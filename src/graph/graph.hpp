// Compact undirected graph used as the CONGEST communication network.
//
// Nodes are dense ids [0, n). Each undirected edge has a dense edge id
// [0, m); a *directed* edge id in [0, 2m) identifies (edge, direction) and is
// what the simulator and schedulers use for per-direction bandwidth
// accounting (the CONGEST model allows one message per direction per round).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace dasched {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

struct HalfEdge {
  NodeId neighbor;
  EdgeId edge;  // undirected edge id
};

class Graph {
 public:
  /// Builds a graph from an edge list. Rejects self-loops and duplicate edges.
  Graph(NodeId n, std::span<const std::pair<NodeId, NodeId>> edges);
  Graph() = default;

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  std::span<const HalfEdge> neighbors(NodeId v) const {
    DASCHED_DCHECK(v < n_);
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::uint32_t degree(NodeId v) const {
    DASCHED_DCHECK(v < n_);
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// Endpoints of undirected edge e, with endpoint_a < endpoint_b.
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const {
    DASCHED_DCHECK(e < edges_.size());
    return edges_[e];
  }

  /// Directed edge id for sending over undirected edge `e` *from* node `from`.
  /// Direction 0 means from the smaller endpoint, 1 from the larger.
  std::uint32_t directed_id(EdgeId e, NodeId from) const {
    DASCHED_DCHECK(e < edges_.size());
    DASCHED_DCHECK(from == edges_[e].first || from == edges_[e].second);
    return 2 * e + (from == edges_[e].first ? 0 : 1);
  }

  std::uint32_t num_directed_edges() const { return 2 * num_edges(); }

  /// Directed edge ids for every half-edge of `v`, parallel to neighbors(v):
  /// directed_ids(v)[slot] == directed_id(neighbors(v)[slot].edge, v). Cached
  /// at construction so per-message send paths need no find_edge/directed_id
  /// recomputation.
  std::span<const std::uint32_t> directed_ids(NodeId v) const {
    DASCHED_DCHECK(v < n_);
    return {directed_adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Adjacency slot of `v`'s half-edge towards `u` (index into neighbors(v)),
  /// or kInvalidEdge if u is not adjacent to v. O(log degree(v)).
  std::uint32_t neighbor_slot(NodeId v, NodeId u) const;

  /// The other endpoint of e relative to v.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const auto [a, b] = endpoints(e);
    DASCHED_DCHECK(v == a || v == b);
    return v == a ? b : a;
  }

  /// Edge id between u and v, or kInvalidEdge. O(min degree).
  EdgeId find_edge(NodeId u, NodeId v) const;

  /// True if every pair of nodes is connected (BFS from node 0).
  bool is_connected() const;

 private:
  NodeId n_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // (min, max) endpoints
  std::vector<std::size_t> offsets_;              // size n_ + 1
  std::vector<HalfEdge> adjacency_;               // grouped by node
  std::vector<std::uint32_t> directed_adjacency_; // parallel to adjacency_
};

/// Canonical topology fingerprint (util/fingerprint.hpp): FNV-1a over n
/// followed by every undirected edge's (min, max) endpoints in edge-id
/// order. Edge ids are construction order, so two graphs fingerprint equal
/// iff they are the same graph built the same way -- exactly the equivalence
/// the executor's determinism contract is stated in. Cache keys (the service
/// profile cache) and bench identity columns use this as the graph half of
/// their (program, graph) key.
std::uint64_t graph_fingerprint(const Graph& g);

}  // namespace dasched
