#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace dasched {

namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

std::uint64_t edge_key(NodeId u, NodeId v) {
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);
  return (std::uint64_t{a} << 32) | b;
}

/// Union-find for connectivity patching.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

Graph make_path(NodeId n) {
  DASCHED_CHECK(n >= 1);
  EdgeList edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return {n, edges};
}

Graph make_cycle(NodeId n) {
  DASCHED_CHECK(n >= 3);
  EdgeList edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(n - 1, 0);
  return {n, edges};
}

Graph make_complete(NodeId n) {
  DASCHED_CHECK(n >= 1);
  EdgeList edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return {n, edges};
}

Graph make_star(NodeId n) {
  DASCHED_CHECK(n >= 2);
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return {n, edges};
}

Graph make_grid(NodeId rows, NodeId cols, bool torus) {
  DASCHED_CHECK(rows >= 1 && cols >= 1);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  EdgeList edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  if (torus) {
    if (cols > 2) {
      for (NodeId r = 0; r < rows; ++r) edges.emplace_back(id(r, cols - 1), id(r, 0));
    }
    if (rows > 2) {
      for (NodeId c = 0; c < cols; ++c) edges.emplace_back(id(rows - 1, c), id(0, c));
    }
  }
  return {rows * cols, edges};
}

Graph make_binary_tree(NodeId n) {
  DASCHED_CHECK(n >= 1);
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back((v - 1) / 2, v);
  return {n, edges};
}

Graph make_gnp_connected(NodeId n, double p, Rng& rng) {
  DASCHED_CHECK(n >= 1);
  EdgeList edges;
  std::unordered_set<std::uint64_t> seen;
  if (p >= 1.0) {
    // Degenerate case: every pair is an edge; no randomness to consume.
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        edges.emplace_back(u, v);
        seen.insert(edge_key(u, v));
      }
    }
  } else if (p > 0.0) {
    // Geometric skip-sampling (Batagelj-Brandes): instead of one Bernoulli
    // draw per pair -- O(n^2), which made n = 10^6 graphs unreachable -- draw
    // the gap to the next present edge directly from the geometric
    // distribution, walking the upper triangle row by row in O(n + m) total.
    // The graph is still a pure function of (n, p, rng state): exactly m + 1
    // next_double() calls, in edge order. (The resulting graph differs from
    // the per-pair sampler's output for the same seed; the pinned golden
    // fingerprints in tests/test_fault.cpp and tests/test_profiler.cpp were
    // regenerated once for this sampler.)
    const double log_q = std::log1p(-p);  // log(1 - p) < 0
    std::uint64_t v = 1;                  // higher endpoint: row v has pairs (0..v-1, v)
    std::uint64_t w = 0;                  // next candidate lower endpoint
    bool first = true;
    while (v < n) {
      const double r = rng.next_double();  // in [0, 1)
      const double gap = std::floor(std::log1p(-r) / log_q);
      // Advance by the gap (plus one past the previously emitted edge).
      if (gap >= static_cast<double>(std::uint64_t{n} * n)) break;  // skipped past every pair
      w += static_cast<std::uint64_t>(gap) + (first ? 0 : 1);
      first = false;
      while (v < n && w >= v) {
        w -= v;
        ++v;
      }
      if (v < n) {
        edges.emplace_back(static_cast<NodeId>(w), static_cast<NodeId>(v));
        seen.insert(edge_key(static_cast<NodeId>(w), static_cast<NodeId>(v)));
      }
    }
  }
  // Patch connectivity: link component representatives in a chain.
  UnionFind uf(n);
  for (auto [u, v] : edges) uf.unite(u, v);
  NodeId prev_rep = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    if (uf.find(v) == v) {
      if (prev_rep != kInvalidNode) {
        uf.unite(prev_rep, v);
        if (!seen.contains(edge_key(prev_rep, v))) {
          edges.emplace_back(prev_rep, v);
          seen.insert(edge_key(prev_rep, v));
        }
      }
      prev_rep = v;
    }
  }
  return {n, edges};
}

Graph make_random_connected(NodeId n, EdgeId m, Rng& rng) {
  DASCHED_CHECK(n >= 1);
  DASCHED_CHECK(m + 1 >= n);
  const std::uint64_t max_edges = std::uint64_t{n} * (n - 1) / 2;
  DASCHED_CHECK(m <= max_edges);
  EdgeList edges;
  std::unordered_set<std::uint64_t> seen;
  // Random attachment spanning tree: node v attaches to a uniform earlier node.
  for (NodeId v = 1; v < n; ++v) {
    const NodeId u = static_cast<NodeId>(rng.next_below(v));
    edges.emplace_back(u, v);
    seen.insert(edge_key(u, v));
  }
  while (edges.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return {n, edges};
}

Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  DASCHED_CHECK(n >= d + 1);
  DASCHED_CHECK((std::uint64_t{n} * d) % 2 == 0);
  // Configuration model with retry on collisions; bounded retries then patch.
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(std::size_t{n} * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    // Fisher-Yates shuffle.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    }
    EdgeList edges;
    std::unordered_set<std::uint64_t> seen;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v || !seen.insert(edge_key(u, v)).second) {
        ok = false;
        break;
      }
      edges.emplace_back(u, v);
    }
    if (!ok) continue;
    Graph g{n, edges};
    if (g.is_connected()) return g;
  }
  // Fall back to a random connected graph with the same edge count.
  return make_random_connected(n, static_cast<EdgeId>(std::uint64_t{n} * d / 2), rng);
}

Graph make_lollipop(NodeId n, NodeId clique_size) {
  DASCHED_CHECK(clique_size >= 2 && clique_size <= n);
  EdgeList edges;
  for (NodeId u = 0; u < clique_size; ++u) {
    for (NodeId v = u + 1; v < clique_size; ++v) edges.emplace_back(u, v);
  }
  for (NodeId v = clique_size; v < n; ++v) edges.emplace_back(v - 1, v);
  return {n, edges};
}

Graph make_layered(NodeId num_layers, NodeId width) {
  DASCHED_CHECK(num_layers >= 1 && width >= 1);
  const NodeId n = num_layers + 1 + num_layers * width;
  EdgeList edges;
  for (NodeId i = 1; i <= num_layers; ++i) {
    for (NodeId j = 0; j < width; ++j) {
      const NodeId u = layered_group_node(num_layers, width, i, j);
      edges.emplace_back(layered_spine(i - 1), u);
      edges.emplace_back(u, layered_spine(i));
    }
  }
  return {n, edges};
}

}  // namespace dasched
