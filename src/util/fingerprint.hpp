// Canonical FNV-1a fingerprinting, shared by every layer that keys or pins
// results on a hash: the executor's golden-fingerprint tests, the service
// profile cache's (program, graph) keys, and the bench identity columns.
//
// The mixing discipline is fixed forever: 64-bit FNV-1a applied byte-wise,
// little-end first, to each 64-bit word. The golden constants recorded in
// tests (e.g. tests/test_fault.cpp's kGoldenOutputHash) were produced with
// exactly this function, so changing the offset, the prime, or the byte
// order invalidates every pinned value in the repo at once -- that blast
// radius is deliberate, it is what makes the fingerprints comparable across
// subsystems.
#pragma once

#include <cstdint>
#include <string_view>

namespace dasched {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// One FNV-1a step: folds the eight bytes of `x` (little-end first) into `h`.
constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Streaming accumulator over 64-bit words and byte strings. Order-sensitive:
/// mix the same fields in the same order to get the same digest.
class Fingerprint {
 public:
  constexpr Fingerprint& mix(std::uint64_t x) {
    h_ = fnv1a_mix(h_, x);
    return *this;
  }

  /// Bytes are widened to one word each so a string mix can never collide
  /// with a word mix of the same raw bytes at a different alignment.
  constexpr Fingerprint& mix_bytes(std::string_view s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<unsigned char>(c));
    return *this;
  }

  constexpr std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffsetBasis;
};

}  // namespace dasched
