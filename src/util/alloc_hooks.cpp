// Global operator new/delete overrides that feed util/alloc_counter.hpp.
//
// NOT part of dasched_util: add this file to the *sources of a binary* to opt
// that binary into allocation counting (see bench/CMakeLists.txt for
// bench_e13_message_hotpath and tests/CMakeLists.txt for test_hotpath).
// Binaries that do not list it keep the toolchain's allocator untouched and
// read 0 from every counter.
//
// The overrides forward to std::malloc/std::free, so sanitizer builds keep
// working: ASan intercepts the malloc underneath and still provides redzones
// and leak checking.
#include <cstdlib>
#include <new>

#include "util/alloc_counter.hpp"

namespace dasched {
bool alloc_counting_linked() { return true; }
}  // namespace dasched

namespace {

void* counted_alloc(std::size_t size) {
  auto& c = dasched::alloc_counters();
  c.allocations.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(size, std::memory_order_relaxed);
  // Heap allocations of size 0 must return a unique pointer.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  auto& c = dasched::alloc_counters();
  c.allocations.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  dasched::alloc_counters().deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
