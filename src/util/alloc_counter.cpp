#include "util/alloc_counter.hpp"

namespace dasched {

// Weak default: overridden by the strong definition in alloc_hooks.cpp when a
// binary opts into allocation counting. Object files added directly to a
// target beat weak symbols pulled from the dasched_util archive, so the
// override is purely additive.
__attribute__((weak)) bool alloc_counting_linked() { return false; }

}  // namespace dasched
