// Deterministic, fast pseudo-random number generation with explicit seed
// derivation.
//
// Every node in the simulator owns a private Rng derived from
// (experiment seed, node id, algorithm id, purpose tag) so that runs are
// reproducible and no global RNG state leaks between components -- the paper's
// "private randomness" model is only meaningful if randomness ownership is
// explicit in the code.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace dasched {

/// SplitMix64: used for seed derivation / hashing 64-bit values.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-independent-free combination of seed material (order matters).
constexpr std::uint64_t seed_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2) + splitmix64(b)));
}

constexpr std::uint64_t seed_combine(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return seed_combine(seed_combine(a, b), c);
}

constexpr std::uint64_t seed_combine(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                     std::uint64_t d) {
  return seed_combine(seed_combine(a, b, c), d);
}

/// xoshiro256** 1.0 -- small, fast, high-quality generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) {
    // Expand the 64-bit seed into 256 bits of state via SplitMix64 (the
    // initialization recommended by the xoshiro authors).
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
    // All-zero state is a fixed point; splitmix64 output of any seed is never
    // all zeros across four draws, but keep the check for safety.
    DASCHED_CHECK(state_[0] | state_[1] | state_[2] | state_[3]);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    DASCHED_CHECK(bound > 0);
    // Lemire-style rejection-free-ish: use 128-bit multiply, with rejection to
    // remove modulo bias exactly.
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    DASCHED_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dasched
