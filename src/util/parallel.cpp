#include "util/parallel.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

ThreadPool::ThreadPool(unsigned num_workers)
    : num_workers_(std::max(1u, num_workers)) {
  threads_.reserve(num_workers_ - 1);
  for (unsigned i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::hardware_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::claim_and_run(std::unique_lock<std::mutex>& lock) {
  if (next_shard_ >= num_shards_) return false;
  const std::uint32_t shard = next_shard_++;
  const auto* task = task_;
  lock.unlock();
  (*task)(shard);
  lock.lock();
  if (++completed_ == num_shards_) done_cv_.notify_all();
  return true;
}

void ThreadPool::run(std::uint32_t num_shards,
                     const std::function<void(std::uint32_t)>& task) {
  if (num_shards == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  DASCHED_CHECK_MSG(task_ == nullptr, "ThreadPool::run is not reentrant");
  task_ = &task;
  num_shards_ = num_shards;
  next_shard_ = 0;
  completed_ = 0;
  static_assign_ = false;
  ++generation_;
  work_cv_.notify_all();
  while (claim_and_run(lock)) {
  }
  done_cv_.wait(lock, [this] { return completed_ == num_shards_; });
  task_ = nullptr;
}

void ThreadPool::run_static(std::uint32_t num_shards,
                            const std::function<void(std::uint32_t)>& task) {
  if (num_shards == 0) return;
  DASCHED_CHECK_LE(num_shards, num_workers_);
  std::unique_lock<std::mutex> lock(mu_);
  DASCHED_CHECK_MSG(task_ == nullptr, "ThreadPool::run is not reentrant");
  task_ = &task;
  num_shards_ = num_shards;
  next_shard_ = 0;  // unused under static assignment
  completed_ = 0;
  static_assign_ = true;
  ++generation_;
  work_cv_.notify_all();
  {
    // The caller is worker 0 and always owns shard 0.
    lock.unlock();
    task(0);
    lock.lock();
    ++completed_;
  }
  done_cv_.wait(lock, [this] { return completed_ == num_shards_; });
  task_ = nullptr;
  static_assign_ = false;
}

void ThreadPool::worker_loop(unsigned index) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ ||
             (task_ != nullptr && generation_ != seen_generation &&
              (static_assign_ ? index < num_shards_ : next_shard_ < num_shards_));
    });
    if (stop_) return;
    seen_generation = generation_;
    if (static_assign_) {
      // This worker's shard is its own index; no claiming, no stealing --
      // the binding is what gives tile owners stable cache affinity.
      const auto* task = task_;
      lock.unlock();
      (*task)(index);
      lock.lock();
      if (++completed_ == num_shards_) done_cv_.notify_all();
    } else {
      while (claim_and_run(lock)) {
      }
    }
  }
}

}  // namespace dasched
