// Heap-allocation counters with link-time opt-in instrumentation.
//
// The executor's zero-allocation contract (docs/PERFORMANCE.md, "Memory
// layout & allocation budget") is *measured*, not assumed: binaries that add
// `src/util/alloc_hooks.cpp` to their sources (bench_e13_message_hotpath and
// test_hotpath) get global operator new/delete overrides that bump the
// counters below on every heap round-trip. Everywhere else the counters exist
// but stay zero, so instrumentation sites -- the executor snapshots
// `alloc_count()` around its big-round loop -- cost two relaxed loads per run
// and nothing per allocation.
//
// The counters are relaxed atomics: they are throughput/regression meters,
// not a synchronization mechanism, and the thread-pool workers may allocate
// concurrently during warm-up rounds.
#pragma once

#include <atomic>
#include <cstdint>

namespace dasched {

struct AllocCounters {
  std::atomic<std::uint64_t> allocations{0};    // operator new calls
  std::atomic<std::uint64_t> deallocations{0};  // operator delete calls
  std::atomic<std::uint64_t> bytes{0};          // total bytes requested
};

inline AllocCounters& alloc_counters() {
  static AllocCounters counters;
  return counters;
}

/// Allocations observed so far (0 in binaries without alloc_hooks.cpp).
inline std::uint64_t alloc_count() {
  return alloc_counters().allocations.load(std::memory_order_relaxed);
}

inline std::uint64_t alloc_bytes() {
  return alloc_counters().bytes.load(std::memory_order_relaxed);
}

/// True only in binaries that linked the operator new/delete overrides; lets
/// tests skip zero-allocation assertions where the hooks are absent.
bool alloc_counting_linked();

}  // namespace dasched
