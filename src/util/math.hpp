// Integer math helpers: 64-bit modular arithmetic, deterministic primality,
// prime search (Bertrand's postulate guarantees success), logarithms.
//
// The k-wise independent generator (Lemma 4.3 of the paper) evaluates
// polynomials over GF(p) for a prime p chosen near the desired value range;
// next_prime() provides that prime.
#pragma once

#include <cstdint>

namespace dasched {

/// (a * b) mod m without overflow, for any 64-bit operands.
std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (base ^ exp) mod m.
std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// Deterministic Miller–Rabin for 64-bit integers (fixed witness set that is
/// provably sufficient below 2^64).
bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n >= 2). By Bertrand's postulate this is < 2n.
std::uint64_t next_prime(std::uint64_t n);

/// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x);

/// ceil(log2(x)) for x >= 1.
int ceil_log2(std::uint64_t x);

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Natural log of n as used in "O(log n)" parameter choices: max(1, ceil(ln n)).
int log_ceil_ln(std::uint64_t n);

}  // namespace dasched
