// Small statistics helpers for experiment harnesses: streaming accumulator
// (mean / stddev / min / max) and exact quantiles over stored samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dasched {

/// Streaming accumulator (Welford) -- O(1) memory.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Used where distributions
/// (not just moments) matter, e.g. per-big-round edge loads.
///
/// NOT thread-safe, including the const accessors: `min()`, `max()`,
/// `quantile()`, and `sorted()` lazily sort the stored samples through
/// `mutable` members, so two concurrent readers race on the sort. Confine
/// each SampleSet to one thread or guard it externally.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; q = 0.5 is the median. Uses nearest-rank on sorted data.
  double quantile(double q) const;

  /// The samples in ascending order (sorts on first use, like quantile()).
  /// The reference stays valid until the next `add`. This is the accessor
  /// exports should use: it makes the lazy mutation explicit at the call
  /// site and lets callers assert on ordering.
  const std::vector<double>& sorted() const {
    ensure_sorted();
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace dasched
