// Small statistics helpers for experiment harnesses: streaming accumulator
// (mean / stddev / min / max) and exact quantiles over stored samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dasched {

/// Streaming accumulator (Welford) -- O(1) memory.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Used where distributions
/// (not just moments) matter, e.g. per-big-round edge loads.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; q = 0.5 is the median. Uses nearest-rank on sorted data.
  double quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace dasched
