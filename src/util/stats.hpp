// Small statistics helpers for experiment harnesses: streaming accumulator
// (mean / stddev / min / max), exact quantiles over stored samples, a
// fixed-size log-bucketed (HDR-style) histogram, and a capped histogram that
// combines all three for O(1)-memory distributions over long runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dasched {

/// Streaming accumulator (Welford) -- O(1) memory.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Used where distributions
/// (not just moments) matter, e.g. per-big-round edge loads.
///
/// NOT thread-safe, including the const accessors: `min()`, `max()`,
/// `quantile()`, and `sorted()` lazily sort the stored samples through
/// `mutable` members, so two concurrent readers race on the sort. Confine
/// each SampleSet to one thread or guard it externally.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() <= 1;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; q = 0.5 is the median. Uses nearest-rank on sorted data.
  double quantile(double q) const;

  /// The samples in ascending order (sorts on first use, like quantile()).
  /// The reference stays valid until the next `add`. This is the accessor
  /// exports should use: it makes the lazy mutation explicit at the call
  /// site and lets callers assert on ordering.
  const std::vector<double>& sorted() const {
    ensure_sorted();
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-size base-2 log-bucketed histogram (HDR-style, coarse): bucket 0
/// holds every x < 1 (including non-positive values), bucket i in [1, 62]
/// holds [2^(i-1), 2^i), bucket 63 holds the rest. add() is two array ops and
/// never allocates, so it is safe on the executor's message hot path; the
/// trade-off is ~2x value resolution, which is plenty for load-shape
/// questions ("are edge loads 4-ish or 400-ish per big-round?"). Exact
/// quantiles stay SampleSet's job.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_index(double x);
  /// Inclusive lower bound of bucket `i` (0 for bucket 0).
  static double bucket_floor(std::size_t i);

  void add(double x) {
    ++buckets_[bucket_index(x)];
    ++count_;
  }
  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Nearest-rank quantile resolved to bucket granularity: returns the
  /// geometric midpoint of the bucket holding rank q. Within a factor of 2 of
  /// the exact quantile by construction.
  double quantile(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

/// Distribution accumulator with bounded memory: exact streaming moments
/// (min/max/mean), a LogHistogram for shape, and the first `sample_cap`
/// samples retained verbatim. While the sample list is complete (count <=
/// cap) quantiles are exact; past the cap they fall back to the log-bucket
/// approximation. This is what MetricsRegistry stores per histogram name, so
/// a profiled million-message run costs O(cap) memory per metric instead of
/// O(messages) -- pass sample_cap = kUnlimited to retain everything (the old
/// behavior, behind an explicit choice).
class Histogram {
 public:
  static constexpr std::size_t kDefaultSampleCap = 4096;
  static constexpr std::size_t kUnlimited = ~std::size_t{0};

  explicit Histogram(std::size_t sample_cap = kDefaultSampleCap)
      : sample_cap_(sample_cap) {}

  void add(double x);

  std::size_t count() const { return moments_.count(); }
  bool empty() const { return moments_.count() == 0; }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double mean() const { return moments_.mean(); }
  double sum() const { return moments_.sum(); }

  /// True while every added sample is retained (count() <= cap).
  bool complete() const { return retained_.count() == count(); }
  std::size_t retained() const { return retained_.count(); }
  std::size_t sample_cap() const { return sample_cap_; }

  /// Exact (nearest-rank over retained samples) while complete(); bucket
  /// midpoint clamped to [min, max] afterwards.
  double quantile(double q) const;

  /// Retained samples in ascending order (all samples while complete()).
  const std::vector<double>& sorted() const { return retained_.sorted(); }

  const LogHistogram& buckets() const { return buckets_; }

 private:
  std::size_t sample_cap_;
  StatAccumulator moments_;
  LogHistogram buckets_;
  SampleSet retained_;
};

}  // namespace dasched
