// A small fixed-size worker pool for deterministic fork-join parallelism.
//
// The pool exists for one pattern, used by the big-round execution engine and
// reusable by schedulers and benches: a caller repeatedly has a batch of
// independent shards (statically partitioned work, e.g. contiguous slices of
// one big-round's event bucket) and wants them executed across a fixed set of
// threads with a full barrier at the end of every batch. Threads are spawned
// once and parked between batches, so dispatching a batch costs two
// condition-variable sweeps rather than thread creation -- cheap enough to
// call once per big-round.
//
// Determinism contract: the pool guarantees every shard runs exactly once and
// that all shard effects happen-before run() returns. *Which* thread runs a
// shard is unspecified (idle workers claim the next unclaimed shard), so
// callers that need bit-reproducible results must make shard outputs
// independent of the executing thread -- write into per-shard buffers and
// merge them in shard order after run() returns. That is exactly how the
// executor keeps parallel execution bit-identical to serial (see
// docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace dasched {

class ThreadPool {
 public:
  /// A pool with `num_workers` total workers (>= 1). The calling thread
  /// participates in run(), so num_workers - 1 threads are spawned.
  explicit ThreadPool(unsigned num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (spawned threads + the caller).
  unsigned num_workers() const { return num_workers_; }

  /// Invokes task(shard) once for every shard in [0, num_shards) and blocks
  /// until all have completed. The caller's thread participates. Shards must
  /// be free of data races against each other; `task` is borrowed for the
  /// duration of the call. Not reentrant: run() must not be called from
  /// inside a task, and only one run() may be active at a time.
  void run(std::uint32_t num_shards, const std::function<void(std::uint32_t)>& task);

  /// Like run(), but dispatches an arbitrary callable through one reference
  /// capture so the internal std::function stays within its small-object
  /// buffer -- no heap allocation per batch, however large `body`'s own
  /// capture list is. This is what keeps the executor's per-big-round
  /// dispatch off the allocator (docs/PERFORMANCE.md).
  template <typename F>
  void run_ctx(std::uint32_t num_shards, F& body) {
    run(num_shards, [&body](std::uint32_t shard) { body(shard); });
  }

  /// Statically-bound variant: shard `i` runs on worker `i` (worker 0 is the
  /// calling thread), so a caller that partitions state per worker -- e.g.
  /// the executor's tile-owning delivery barrier -- gets the same thread
  /// touching the same tiles batch after batch (temporal cache locality
  /// across the big-round barrier). Requires num_shards <= num_workers().
  /// Same barrier/happens-before guarantees as run().
  void run_static(std::uint32_t num_shards,
                  const std::function<void(std::uint32_t)>& task);

  /// run_ctx's small-buffer dispatch for run_static.
  template <typename F>
  void run_static_ctx(std::uint32_t num_shards, F& body) {
    run_static(num_shards, [&body](std::uint32_t shard) { body(shard); });
  }

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static unsigned hardware_workers();

 private:
  void worker_loop(unsigned index);
  /// Claims and runs one shard; returns false when none remain. `lock` must
  /// hold mu_ on entry and holds it again on return.
  bool claim_and_run(std::unique_lock<std::mutex>& lock);

  const unsigned num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // run() waits for batch completion
  const std::function<void(std::uint32_t)>* task_ = nullptr;  // null between batches
  std::uint32_t num_shards_ = 0;
  std::uint32_t next_shard_ = 0;
  std::uint32_t completed_ = 0;
  std::uint64_t generation_ = 0;  // bumped per batch so workers never re-enter an old one
  bool static_assign_ = false;  // run_static batch: shard i is pinned to worker i
  bool stop_ = false;
};

}  // namespace dasched
