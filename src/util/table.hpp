// Aligned ASCII table printer for experiment output.
//
// Every bench binary prints one table per reproduced result, in the spirit of
// the rows a paper's evaluation section would report. Cells are strings;
// numeric helpers format with sensible precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dasched {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append a row; size must match the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment to the given stream.
  void print(std::ostream& os) const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  // Formatting helpers.
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dasched
