// Validated numeric flag parsing, shared by the CLI drivers and the bench
// harness (bench/bench_common.hpp).
//
// Every numeric command-line flag in the repo goes through these helpers so
// the strtoul endptr/errno discipline lives in exactly one place: reject
// empty strings, leading signs on unsigned flags, trailing garbage
// ("10abc"), out-of-range values, and (for probabilities) values outside
// [0, 1]. Parsers return false instead of exiting so callers choose the
// failure behavior (benches return 2, CLIs print usage).
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace dasched {

/// Parses a non-negative decimal integer into *out. Returns false on empty
/// input, a sign, leading whitespace, trailing characters, or overflow.
inline bool parse_flag_u64(const char* s, std::uint64_t* out) {
  // Require a leading digit: strtoull itself skips whitespace and accepts a
  // sign (wrapping negatives into huge values), so " -3" would otherwise
  // parse successfully.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// parse_flag_u64 restricted to the uint32 range.
inline bool parse_flag_u32(const char* s, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!parse_flag_u64(s, &v) || v > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

/// Parses a finite decimal floating-point value into *out. Leading
/// whitespace is rejected (strtod would silently skip it).
inline bool parse_flag_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// parse_flag_double restricted to probabilities in [0, 1].
inline bool parse_flag_prob(const char* s, double* out) {
  double v = 0.0;
  if (!parse_flag_double(s, &v) || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace dasched
