#include "util/math.hpp"

#include <bit>
#include <initializer_list>
#include <cmath>

#include "util/check.hpp"

namespace dasched {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  DASCHED_DCHECK(m > 0);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  DASCHED_CHECK(m > 0);
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a, std::uint64_t d, int r) {
  std::uint64_t x = pow_mod(a % n, d, n);
  if (x == 0 || x == 1 || x == n - 1) return false;  // not a witness
  for (int i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // composite witnessed
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair et al.).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  DASCHED_CHECK(n >= 2);
  std::uint64_t candidate = n;
  while (!is_prime(candidate)) ++candidate;
  return candidate;
}

int floor_log2(std::uint64_t x) {
  DASCHED_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) {
  DASCHED_CHECK(x >= 1);
  const int f = floor_log2(x);
  return (x == (std::uint64_t{1} << f)) ? f : f + 1;
}

int log_ceil_ln(std::uint64_t n) {
  if (n < 3) return 1;
  return static_cast<int>(std::ceil(std::log(static_cast<double>(n))));
}

}  // namespace dasched
