#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace dasched {

void Table::set_header(std::vector<std::string> header) {
  DASCHED_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  DASCHED_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dasched
