// Lightweight contract-checking macros.
//
// DASCHED_CHECK is always on (simulator correctness matters more than the last
// few percent of speed); DASCHED_DCHECK compiles out in NDEBUG builds and is
// meant for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dasched::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace dasched::detail

#define DASCHED_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) ::dasched::detail::check_failed(#cond, __FILE__, __LINE__); \
  } while (false)

#define DASCHED_CHECK_MSG(cond, msg)                                   \
  do {                                                                 \
    if (!(cond)) ::dasched::detail::check_failed(msg " [" #cond "]", __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define DASCHED_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define DASCHED_DCHECK(cond) DASCHED_CHECK(cond)
#endif
