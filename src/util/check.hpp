// Lightweight contract-checking macros.
//
// DASCHED_CHECK is always on (simulator correctness matters more than the last
// few percent of speed); DASCHED_DCHECK compiles out in NDEBUG builds and is
// meant for hot loops.
//
// The comparison forms DASCHED_CHECK_EQ/NE/LT/LE/GT/GE print *both operand
// values* on failure (the plain form only prints the stringified condition),
// which is what you want when a schedule-dimension or round-count contract
// trips deep inside a run. Each accepts an optional trailing message:
//   DASCHED_CHECK_EQ(schedule.rounds(a), alg->rounds(), "schedule/algorithm mismatch");
// Operands are evaluated exactly once.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dasched::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

/// Streams any value the codebase compares (integers, enums via +, pointers);
/// kept out of line of the macros so the cold path is one function call.
template <typename A, typename B>
[[noreturn]] void check_op_failed(const char* expr, const A& a, const B& b,
                                  const char* file, int line,
                                  const char* msg = nullptr) {
  std::ostringstream os;
  os << expr << " (" << a << " vs. " << b << ")";
  if (msg != nullptr) os << " -- " << msg;
  check_failed(os.str().c_str(), file, line);
}

}  // namespace dasched::detail

#define DASCHED_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) ::dasched::detail::check_failed(#cond, __FILE__, __LINE__); \
  } while (false)

#define DASCHED_CHECK_MSG(cond, msg)                                   \
  do {                                                                 \
    if (!(cond)) ::dasched::detail::check_failed(msg " [" #cond "]", __FILE__, __LINE__); \
  } while (false)

/// Shared implementation: evaluates each operand once, prints both values on
/// failure. The optional variadic argument is a trailing const char* message.
#define DASCHED_CHECK_OP(op, a, b, ...)                                      \
  do {                                                                       \
    const auto& dasched_check_a_ = (a);                                      \
    const auto& dasched_check_b_ = (b);                                      \
    if (!(dasched_check_a_ op dasched_check_b_)) {                           \
      ::dasched::detail::check_op_failed(#a " " #op " " #b, dasched_check_a_, \
                                         dasched_check_b_, __FILE__,         \
                                         __LINE__ __VA_OPT__(, __VA_ARGS__)); \
    }                                                                        \
  } while (false)

#define DASCHED_CHECK_EQ(a, b, ...) DASCHED_CHECK_OP(==, a, b, __VA_ARGS__)
#define DASCHED_CHECK_NE(a, b, ...) DASCHED_CHECK_OP(!=, a, b, __VA_ARGS__)
#define DASCHED_CHECK_LT(a, b, ...) DASCHED_CHECK_OP(<, a, b, __VA_ARGS__)
#define DASCHED_CHECK_LE(a, b, ...) DASCHED_CHECK_OP(<=, a, b, __VA_ARGS__)
#define DASCHED_CHECK_GT(a, b, ...) DASCHED_CHECK_OP(>, a, b, __VA_ARGS__)
#define DASCHED_CHECK_GE(a, b, ...) DASCHED_CHECK_OP(>=, a, b, __VA_ARGS__)

#ifdef NDEBUG
#define DASCHED_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define DASCHED_DCHECK(cond) DASCHED_CHECK(cond)
#endif
