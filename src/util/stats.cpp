#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dasched {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  DASCHED_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  DASCHED_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  DASCHED_CHECK(!samples_.empty());
  DASCHED_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto n = samples_.size();
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return samples_[std::min(rank, n - 1)];
}

}  // namespace dasched
