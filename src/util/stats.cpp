#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dasched {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  DASCHED_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  DASCHED_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  DASCHED_CHECK(!samples_.empty());
  DASCHED_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto n = samples_.size();
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return samples_[std::min(rank, n - 1)];
}

std::size_t LogHistogram::bucket_index(double x) {
  if (!(x >= 1.0)) return 0;  // also catches NaN
  int exp = 0;
  std::frexp(x, &exp);  // x = m * 2^exp with m in [0.5, 1), so exp >= 1 here
  return std::min<std::size_t>(static_cast<std::size_t>(exp), kBuckets - 1);
}

double LogHistogram::bucket_floor(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

void LogHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
}

double LogHistogram::quantile(double q) const {
  DASCHED_CHECK(count_ > 0);
  DASCHED_CHECK(q >= 0.0 && q <= 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Geometric midpoint of [2^(i-1), 2^i); bucket 0 reports its floor.
      if (i == 0) return 0.0;
      return bucket_floor(i) * 1.5;
    }
  }
  return bucket_floor(kBuckets - 1);
}

void Histogram::add(double x) {
  moments_.add(x);
  buckets_.add(x);
  if (sample_cap_ == kUnlimited || retained_.count() < sample_cap_) {
    retained_.add(x);
  }
}

double Histogram::quantile(double q) const {
  DASCHED_CHECK(count() > 0);
  if (complete()) return retained_.quantile(q);
  return std::clamp(buckets_.quantile(q), min(), max());
}

}  // namespace dasched
