// k-wise independent random value family via polynomial evaluation over GF(p)
// (the classical Reed-Solomon / Joffe construction the paper's Lemma 4.3
// invokes: "the classical k-wise independent pseudo-randomness construction
// via Reed-Solomon codes").
//
// A seed of k field elements a_0..a_{k-1} defines the degree-(k-1) polynomial
// f(x) = sum a_j x^j over GF(p). The family {f(0), f(1), ..., f(p-1)} is
// exactly k-wise independent and uniform over GF(p). The paper shares
// Theta(log^2 n) seed bits per cluster (k = Theta(log n) coefficients of
// Theta(log n) bits each) and expands them into poly(n) many Theta(log n)-bit
// values used as per-algorithm random delays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dasched {

class KWiseFamily {
 public:
  /// Family over GF(`prime`) with independence parameter `k` (seed size k).
  /// `prime` must be prime (checked) and fit the value range you need:
  /// values are uniform over [0, prime).
  KWiseFamily(std::uint64_t prime, std::uint32_t k, std::span<const std::uint64_t> seed);

  /// Convenience: draw the seed from `rng`.
  KWiseFamily(std::uint64_t prime, std::uint32_t k, Rng& rng);

  /// Evaluate f(x). Values for distinct x are k-wise independent, each
  /// uniform over [0, prime).
  std::uint64_t value(std::uint64_t x) const;

  /// Maps value(x) into [0, 1): k-wise independent uniform reals (up to the
  /// 1/prime discretization).
  double unit_value(std::uint64_t x) const;

  std::uint64_t prime() const { return prime_; }
  std::uint32_t independence() const { return static_cast<std::uint32_t>(coeffs_.size()); }
  std::span<const std::uint64_t> seed() const { return coeffs_; }

  /// Number of seed *bits* this family consumes -- the quantity Lemma 4.3
  /// budgets as Theta(log^2 n).
  std::uint64_t seed_bits() const;

 private:
  std::uint64_t prime_;
  std::vector<std::uint64_t> coeffs_;  // a_0..a_{k-1}, each in [0, prime)
};

/// Packs/unpacks a seed into Theta(log n)-bit message words for dissemination
/// (Lemma 4.3 sends the seed as O(log n) messages of O(log n) bits each).
std::vector<std::uint64_t> seed_to_words(const KWiseFamily& family);
KWiseFamily family_from_words(std::uint64_t prime, std::span<const std::uint64_t> words);

}  // namespace dasched
