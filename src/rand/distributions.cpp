#include "rand/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dasched {

UniformDelay::UniformDelay(std::uint32_t range) : range_(range) {
  DASCHED_CHECK(range >= 1);
}

std::uint32_t UniformDelay::delay_from_unit(double u) const {
  DASCHED_DCHECK(u >= 0.0 && u < 1.0);
  return std::min(range_ - 1, static_cast<std::uint32_t>(u * range_));
}

BlockDelayDistribution::BlockDelayDistribution(std::uint32_t first_block_size,
                                               std::uint32_t num_blocks, double alpha) {
  DASCHED_CHECK(first_block_size >= 1);
  DASCHED_CHECK(num_blocks >= 1);
  DASCHED_CHECK(alpha > 0.0 && alpha < 1.0);
  block_size_.reserve(num_blocks);
  block_offset_.reserve(num_blocks);
  double size = first_block_size;
  for (std::uint32_t i = 0; i < num_blocks; ++i) {
    const auto points = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(size)));
    block_offset_.push_back(support_size_);
    block_size_.push_back(points);
    support_size_ += points;
    size *= alpha;
  }
}

std::uint32_t BlockDelayDistribution::delay_from_unit(double u) const {
  DASCHED_DCHECK(u >= 0.0 && u < 1.0);
  const auto beta = num_blocks();
  const auto block = std::min(beta - 1, static_cast<std::uint32_t>(u * beta));
  const double within = u * beta - block;  // uniform in [0,1) given the block
  const auto index =
      std::min(block_size_[block] - 1,
               static_cast<std::uint32_t>(within * block_size_[block]));
  return block_offset_[block] + index;
}

std::uint32_t BlockDelayDistribution::block_of(std::uint32_t delay) const {
  DASCHED_CHECK(delay < support_size_);
  // block_offset_ is sorted ascending; find last offset <= delay.
  auto it = std::upper_bound(block_offset_.begin(), block_offset_.end(), delay);
  return static_cast<std::uint32_t>(it - block_offset_.begin()) - 1;
}

double BlockDelayDistribution::pmf(std::uint32_t delay) const {
  const auto block = block_of(delay);
  return 1.0 / (static_cast<double>(num_blocks()) * block_size_[block]);
}

TruncatedExponentialRadius::TruncatedExponentialRadius(double scale,
                                                       double truncation_logs)
    : scale_(scale) {
  DASCHED_CHECK(scale > 0.0);
  DASCHED_CHECK(truncation_logs > 0.0);
  max_radius_ = static_cast<std::uint32_t>(std::ceil(scale * truncation_logs));
}

std::uint32_t TruncatedExponentialRadius::radius_from_unit(double u) const {
  DASCHED_DCHECK(u >= 0.0 && u < 1.0);
  // Exponential inverse CDF; 1-u avoids log(0) since u < 1.
  const double r = -scale_ * std::log(1.0 - u);
  const auto radius = static_cast<std::uint32_t>(std::floor(r));
  return std::min(radius, max_radius_);
}

}  // namespace dasched
