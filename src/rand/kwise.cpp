#include "rand/kwise.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace dasched {

KWiseFamily::KWiseFamily(std::uint64_t prime, std::uint32_t k,
                         std::span<const std::uint64_t> seed)
    : prime_(prime), coeffs_(seed.begin(), seed.end()) {
  DASCHED_CHECK_MSG(is_prime(prime), "KWiseFamily modulus must be prime");
  DASCHED_CHECK(k >= 1);
  DASCHED_CHECK(seed.size() == k);
  for (auto& c : coeffs_) c %= prime_;
}

KWiseFamily::KWiseFamily(std::uint64_t prime, std::uint32_t k, Rng& rng)
    : prime_(prime) {
  DASCHED_CHECK_MSG(is_prime(prime), "KWiseFamily modulus must be prime");
  DASCHED_CHECK(k >= 1);
  coeffs_.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) coeffs_.push_back(rng.next_below(prime_));
}

std::uint64_t KWiseFamily::value(std::uint64_t x) const {
  x %= prime_;
  // Horner evaluation.
  std::uint64_t acc = 0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = (mul_mod(acc, x, prime_) + *it) % prime_;
  }
  return acc;
}

double KWiseFamily::unit_value(std::uint64_t x) const {
  return static_cast<double>(value(x)) / static_cast<double>(prime_);
}

std::uint64_t KWiseFamily::seed_bits() const {
  return static_cast<std::uint64_t>(coeffs_.size()) *
         static_cast<std::uint64_t>(ceil_log2(prime_));
}

std::vector<std::uint64_t> seed_to_words(const KWiseFamily& family) {
  return {family.seed().begin(), family.seed().end()};
}

KWiseFamily family_from_words(std::uint64_t prime, std::span<const std::uint64_t> words) {
  return {prime, static_cast<std::uint32_t>(words.size()), words};
}

}  // namespace dasched
