// The paper's two special-purpose distributions.
//
// 1. TruncatedExponentialRadius (Lemma 4.2, following Bartal): cluster-center
//    radii r(u) with Pr[r = z] proportional to e^{-z/R} for R = Theta(dilation),
//    truncated at R * Theta(log n) so that radii are bounded w.h.p.-style.
//    The memoryless tail is what gives every dilation-ball a constant
//    probability of being *fully* inside one cluster per layer.
//
// 2. BlockDelayDistribution (Lemma 4.4): the nonuniform start-delay
//    distribution. Support is beta = Theta(log n) blocks; block i holds
//    ceil(L * alpha^{i-1}) integer delays and carries total mass 1/beta,
//    uniform within the block. With Theta(log n) independent cluster copies
//    of each algorithm and first-copy-wins de-duplication, this makes the
//    probability that a *new* (non-duplicate) message crosses an edge in a
//    given big-round O(log n / congestion) -- the key to the
//    O(congestion + dilation log n) schedule.
//
// Both expose delay/radius as a deterministic function of a uniform [0,1)
// value so they can be driven by the k-wise independent family (shared
// randomness) or by a private Rng interchangeably.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace dasched {

/// Abstract integer distribution driven by a uniform unit value, so schedulers
/// can swap the uniform baseline and the paper's block distribution (E6).
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;
  /// Largest value + 1 this distribution can return.
  virtual std::uint32_t support_size() const = 0;
  /// Maps u in [0,1) to a delay; measure-preserving (pushforward of Lebesgue).
  virtual std::uint32_t delay_from_unit(double u) const = 0;

  std::uint32_t sample(Rng& rng) const { return delay_from_unit(rng.next_double()); }
};

/// Uniform delays over [0, range) -- Theorem 1.1's distribution.
class UniformDelay final : public DelayDistribution {
 public:
  explicit UniformDelay(std::uint32_t range);
  std::uint32_t support_size() const override { return range_; }
  std::uint32_t delay_from_unit(double u) const override;

 private:
  std::uint32_t range_;
};

/// The Lemma 4.4 block distribution.
class BlockDelayDistribution final : public DelayDistribution {
 public:
  /// `first_block_size` is the paper's L = Theta(congestion / log n);
  /// `num_blocks` is beta = Theta(log n); `alpha` in (0, 1) is the geometric
  /// decay (the paper picks alpha = (1 - 1/beta)^{Theta(log n)}, a constant).
  BlockDelayDistribution(std::uint32_t first_block_size, std::uint32_t num_blocks,
                         double alpha);

  std::uint32_t support_size() const override { return support_size_; }
  std::uint32_t delay_from_unit(double u) const override;

  std::uint32_t num_blocks() const { return static_cast<std::uint32_t>(block_size_.size()); }
  std::uint32_t block_size(std::uint32_t block) const { return block_size_[block]; }
  std::uint32_t block_offset(std::uint32_t block) const { return block_offset_[block]; }

  /// Exact probability of a single delay value (for distribution tests).
  double pmf(std::uint32_t delay) const;

  /// Block index containing `delay`.
  std::uint32_t block_of(std::uint32_t delay) const;

 private:
  std::vector<std::uint32_t> block_size_;
  std::vector<std::uint32_t> block_offset_;  // prefix sums; offset of block i
  std::uint32_t support_size_ = 0;
};

/// Truncated exponential radius for ball carving (Lemma 4.2).
class TruncatedExponentialRadius {
 public:
  /// Mean parameter `scale` = Theta(dilation); truncation at
  /// `scale * truncation_logs` (Theta(log n) in the paper, so that the tail
  /// above the cap has probability <= n^{-Theta(1)}).
  TruncatedExponentialRadius(double scale, double truncation_logs);

  /// Maps u in [0,1) to a radius via the exponential inverse CDF, capped.
  std::uint32_t radius_from_unit(double u) const;
  std::uint32_t sample(Rng& rng) const { return radius_from_unit(rng.next_double()); }

  std::uint32_t max_radius() const { return max_radius_; }
  double scale() const { return scale_; }

 private:
  double scale_;
  std::uint32_t max_radius_;
};

}  // namespace dasched
