// Static pattern analysis: derive an algorithm's communication pattern --
// and from it its congestion/dilation certificate -- without executing it.
//
// analyze() interprets the algorithm's declarative StaticFootprint
// (congest/footprint.hpp) over the time-expanded graph G x [T]:
//
//   kFlood                BFS layering from the source; a node at distance q
//                         sends to all neighbors in round q+1 (iff q+1 <= T).
//   kThreePhaseAggregate  capped BFS layering plus the timed convergecast and
//                         the result flood, exactly as aggregate.cpp times
//                         them (depth q reports up in round 2h+1-q, floods
//                         the result in round 2h+2+q).
//   kGossipPush           central replay of the pushes: each informed node's
//                         per-round uniform pick is re-drawn from the same
//                         Rng(seed_combine(base_seed, v)) stream the executor
//                         hands the node, so the random pattern is exact.
//   kFixedPath            round r carries exactly path[r-1] -> path[r].
//   kEnvelope             sound per-cell / per-edge caps, no surface.
//   kOpaque               the CONGEST worst case: every directed edge, every
//                         round (the conservative whole-bandwidth fallback).
//
// For the exact shapes the certificate also carries the per-node outputs
// (the same derivations the central oracles in graph/algorithms.hpp enable),
// which is what lets the service admit cache-miss jobs without a solo run.
// The cross-check against executed patterns lives in
// verify/certificate_check.hpp; tests assert cell-for-cell equality for
// every exact shape across the graph suite.
#pragma once

#include "analysis/certificate.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"

namespace dasched::analysis {

/// Derives `algorithm`'s certificate on `g` from its declared footprint.
/// Never constructs node programs and never executes anything.
PatternCertificate analyze(const Graph& g, const DistributedAlgorithm& algorithm);

}  // namespace dasched::analysis
