// Congestion/dilation certificates produced by the static pattern analyzer.
//
// A certificate states, without any execution, what is known about one
// algorithm's communication pattern over the time-expanded graph G x [T]:
//
//   kExact       the full per-(round, directed-edge) load surface and the
//                per-node outputs, cell-for-cell equal to a solo run.
//   kUpperBound  a sound envelope from the algorithm's declared caps: at most
//                per_cell_bound messages per (round, edge) cell and at most
//                per_edge_bound per directed edge in total. Every solo run is
//                dominated by the envelope.
//   kFallback    the conservative CONGEST worst case for pattern-oblivious
//                programs: one message per directed edge per round, T rounds.
//
// `congestion` is this algorithm's contribution max_e c(e) -- exact for
// kExact, a sound bound otherwise -- and `dilation` is its declared round
// budget, so scheduler budgets (Theorem 1.1's congestion + dilation * log n)
// can be derived before anything runs. docs/ANALYSIS.md has the semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/pattern.hpp"
#include "congest/simulator.hpp"
#include "util/check.hpp"

namespace dasched::analysis {

enum class CertificateKind : std::uint8_t { kExact = 0, kUpperBound, kFallback };

const char* to_string(CertificateKind kind);

struct PatternCertificate {
  CertificateKind kind = CertificateKind::kFallback;
  std::string algorithm;  // DistributedAlgorithm::name()

  std::uint32_t rounds = 0;    // declared T: the dilation contribution
  std::uint32_t dilation = 0;  // == rounds (kept explicit for reports)

  /// max_e c(e): exact for kExact, else a sound upper bound.
  std::uint32_t congestion = 0;
  /// Per-(round, directed-edge) cell bound (1 in the CONGEST model).
  std::uint32_t per_cell_bound = 1;
  /// Per-directed-edge total bound over all rounds.
  std::uint32_t per_edge_bound = 0;
  /// Message total: exact for kExact, else an upper bound.
  std::uint64_t total_messages = 0;
  /// Last sending round: exact for kExact, else an upper bound (<= rounds).
  std::uint32_t last_message_round = 0;

  /// The derived load surface; populated iff kind == kExact.
  CommunicationPattern pattern;
  /// Per-node outputs; populated iff has_outputs (kExact shapes only).
  bool has_outputs = false;
  std::vector<std::vector<std::uint64_t>> outputs;  // perf-ok: filled once per analysis

  bool exact() const { return kind == CertificateKind::kExact; }

  /// Repackages an exact certificate with outputs as the solo ground truth
  /// the scheduling stack consumes (ScheduleProblem::adopt_solo, the service
  /// profile cache) -- the "admission without execution" path. The caller
  /// still routes the result through the verifier gate, same as any adopted
  /// profile.
  SoloRunResult to_solo() const {
    DASCHED_CHECK_MSG(exact() && has_outputs,
                      "to_solo needs an exact certificate with outputs");
    SoloRunResult solo;
    solo.outputs = outputs;
    solo.pattern = pattern;
    solo.total_messages = total_messages;
    solo.last_message_round = last_message_round;
    return solo;
  }
};

}  // namespace dasched::analysis
