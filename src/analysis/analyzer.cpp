#include "analysis/analyzer.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace dasched::analysis {

namespace {

constexpr std::uint64_t kNoOutput = ~std::uint64_t{0};

/// Finalizes an exact certificate from a fully recorded surface.
void seal_exact(PatternCertificate& cert, CommunicationPattern pattern) {
  cert.kind = CertificateKind::kExact;
  cert.congestion = pattern.max_edge_load();
  cert.per_cell_bound = 1;
  cert.per_edge_bound = cert.congestion;
  cert.total_messages = pattern.total_messages();
  cert.last_message_round = pattern.last_message_round();
  cert.pattern = std::move(pattern);
}

/// kFlood: a node at BFS distance q from the source forwards to every
/// neighbor in round q+1 (iff q+1 <= T); it is reached iff q <= T.
void analyze_flood(const Graph& g, const StaticFootprint& fp, std::uint32_t T,
                   std::uint64_t base_seed, PatternCertificate& cert) {
  (void)base_seed;
  DASCHED_CHECK(fp.source < g.num_nodes());
  const auto dist = bfs_distances(g, fp.source);

  CommunicationPattern pattern(g.num_directed_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kUnreachable || dist[v] + 1 > T) continue;
    for (const std::uint32_t d : g.directed_ids(v)) pattern.record(dist[v] + 1, d);
  }
  seal_exact(cert, std::move(pattern));

  cert.has_outputs = true;
  cert.outputs.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool reached = dist[v] != kUnreachable && dist[v] <= T;
    if (fp.outputs == StaticFootprint::Outputs::kBroadcast) {
      cert.outputs[v] = reached ? std::vector<std::uint64_t>{1, fp.payload, dist[v]}
                                : std::vector<std::uint64_t>{0, 0, kNoOutput};
      continue;
    }
    // kBfs: parent is the min-id neighbor one layer closer (self at the root).
    if (!reached) {
      cert.outputs[v] = {0, kNoOutput, kNoOutput};
      continue;
    }
    NodeId parent = v;
    if (dist[v] > 0) {
      parent = kInvalidNode;
      for (const auto& h : g.neighbors(v)) {
        if (dist[h.neighbor] + 1 == dist[v]) {
          parent = h.neighbor;
          break;  // neighbors sorted by id
        }
      }
      DASCHED_CHECK(parent != kInvalidNode);
    }
    cert.outputs[v] = {1, dist[v], parent};
  }
}

/// kThreePhaseAggregate over the h-ball of the root (T = 3h+1):
///   depth q <= h-1 floods the token in round q+1,
///   depth 1 <= q <= h reports to its min-id parent in round 2h+1-q,
///   depth q <= h-1 floods the result in round 2h+2+q.
void analyze_aggregate(const Graph& g, const StaticFootprint& fp, std::uint64_t base_seed,
                       PatternCertificate& cert) {
  DASCHED_CHECK(fp.source < g.num_nodes());
  const std::uint32_t h = fp.radius;
  DASCHED_CHECK(h >= 1);
  const auto dist = bfs_distances_capped(g, fp.source, h);

  CommunicationPattern pattern(g.num_directed_edges());
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t q = dist[v];
    if (q == kUnreachable) continue;
    if (q + 1 <= h) {
      for (const std::uint32_t d : g.directed_ids(v)) pattern.record(q + 1, d);
      for (const std::uint32_t d : g.directed_ids(v)) pattern.record(2 * h + 2 + q, d);
    }
    if (q >= 1) {
      for (const auto& nb : g.neighbors(v)) {
        if (dist[nb.neighbor] + 1 == q) {
          parent[v] = nb.neighbor;
          break;  // neighbors sorted by id
        }
      }
      DASCHED_CHECK(parent[v] != kInvalidNode);
      pattern.record(2 * h + 1 - q, g.directed_id(g.find_edge(v, parent[v]), v));
    }
  }
  seal_exact(cert, std::move(pattern));

  // Subtree sums: fold depths h..1 into their parents, then the root's sum is
  // the global aggregate the result flood distributes.
  const auto local = [base_seed](NodeId v) { return splitmix64(base_seed ^ v) & 0xffff; };
  std::vector<std::uint64_t> subtree(g.num_nodes(), 0);
  std::vector<std::vector<NodeId>> by_depth(h + 1);  // perf-ok: one analysis pass
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) continue;
    subtree[v] = local(v);
    by_depth[dist[v]].push_back(v);
  }
  for (std::uint32_t q = h; q >= 1; --q) {
    for (const NodeId v : by_depth[q]) subtree[parent[v]] += subtree[v];
  }
  const std::uint64_t global = subtree[fp.source];

  cert.has_outputs = true;
  cert.outputs.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kUnreachable) {
      cert.outputs[v] = {0, kNoOutput, local(v), 0};
    } else {
      cert.outputs[v] = {1, dist[v], subtree[v], global};
    }
  }
}

/// kGossipPush: central replay. Node v's picks come from the very Rng stream
/// the executor derives for it -- Rng(seed_combine(base_seed, v)), one
/// next_below(degree) draw per round from the round after v is informed.
void analyze_gossip(const Graph& g, const StaticFootprint& fp, std::uint32_t T,
                    std::uint64_t base_seed, PatternCertificate& cert) {
  DASCHED_CHECK(fp.source < g.num_nodes());
  const std::uint32_t uninformed = kUnreachable;
  std::vector<std::uint32_t> informed_round(g.num_nodes(), uninformed);
  informed_round[fp.source] = 0;

  std::vector<Rng> rng;
  rng.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) rng.emplace_back(seed_combine(base_seed, v));

  CommunicationPattern pattern(g.num_directed_edges());
  std::vector<NodeId> newly_informed;
  for (std::uint32_t r = 1; r <= T; ++r) {
    newly_informed.clear();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (informed_round[v] >= r || g.degree(v) == 0) continue;
      const auto pick = rng[v].next_below(g.degree(v));
      pattern.record(r, g.directed_ids(v)[pick]);
      const NodeId to = g.neighbors(v)[pick].neighbor;
      if (informed_round[to] == uninformed) newly_informed.push_back(to);
    }
    // Recipients of round-r messages absorb them in round r+1 (or on_finish).
    for (const NodeId v : newly_informed) informed_round[v] = r;
  }
  seal_exact(cert, std::move(pattern));

  cert.has_outputs = true;
  cert.outputs.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cert.outputs[v] = informed_round[v] != uninformed
                          ? std::vector<std::uint64_t>{1, fp.payload, informed_round[v]}
                          : std::vector<std::uint64_t>{0, 0, kNoOutput};
  }
}

/// kFixedPath: round r carries exactly path[r-1] -> path[r].
void analyze_path(const Graph& g, const StaticFootprint& fp, PatternCertificate& cert) {
  DASCHED_CHECK_MSG(fp.path.size() >= 2, "fixed-path footprint needs >= 1 edge");
  CommunicationPattern pattern(g.num_directed_edges());
  for (std::size_t i = 0; i + 1 < fp.path.size(); ++i) {
    const EdgeId e = g.find_edge(fp.path[i], fp.path[i + 1]);
    DASCHED_CHECK_MSG(e != kInvalidEdge, "fixed-path footprint hops a non-edge");
    pattern.record(static_cast<std::uint32_t>(i + 1), g.directed_id(e, fp.path[i]));
  }
  seal_exact(cert, std::move(pattern));

  cert.has_outputs = true;
  cert.outputs.resize(g.num_nodes());
  cert.outputs[fp.path.back()] = {1, fp.payload};
}

}  // namespace

const char* to_string(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kExact:
      return "exact";
    case CertificateKind::kUpperBound:
      return "upper-bound";
    case CertificateKind::kFallback:
      return "fallback";
  }
  return "unknown";
}

PatternCertificate analyze(const Graph& g, const DistributedAlgorithm& algorithm) {
  const StaticFootprint fp = algorithm.static_footprint();
  const std::uint32_t T = algorithm.rounds();

  PatternCertificate cert;
  cert.algorithm = algorithm.name();
  cert.rounds = T;
  cert.dilation = T;

  switch (fp.shape) {
    case StaticFootprint::Shape::kFlood:
      analyze_flood(g, fp, T, algorithm.base_seed(), cert);
      return cert;
    case StaticFootprint::Shape::kThreePhaseAggregate:
      DASCHED_CHECK_MSG(T == 3 * fp.radius + 1,
                        "aggregate footprint radius disagrees with declared rounds");
      analyze_aggregate(g, fp, algorithm.base_seed(), cert);
      return cert;
    case StaticFootprint::Shape::kGossipPush:
      analyze_gossip(g, fp, T, algorithm.base_seed(), cert);
      return cert;
    case StaticFootprint::Shape::kFixedPath:
      DASCHED_CHECK_MSG(T + 1 == fp.path.size(),
                        "fixed-path footprint length disagrees with declared rounds");
      analyze_path(g, fp, cert);
      return cert;
    case StaticFootprint::Shape::kEnvelope: {
      cert.kind = CertificateKind::kUpperBound;
      DASCHED_CHECK_MSG(fp.per_edge_cap >= 1, "envelope footprint needs a per-edge cap");
      cert.per_cell_bound = 1;
      cert.per_edge_bound = std::min(T, fp.per_edge_cap);
      cert.congestion = cert.per_edge_bound;
      cert.total_messages =
          static_cast<std::uint64_t>(g.num_directed_edges()) * cert.per_edge_bound;
      cert.last_message_round = T;
      return cert;
    }
    case StaticFootprint::Shape::kOpaque:
      break;
  }

  // Fallback: the CONGEST worst case -- every directed edge, every round.
  cert.kind = CertificateKind::kFallback;
  cert.per_cell_bound = 1;
  cert.per_edge_bound = T;
  cert.congestion = T;
  cert.total_messages = static_cast<std::uint64_t>(g.num_directed_edges()) * T;
  cert.last_message_round = T;
  return cert;
}

}  // namespace dasched::analysis
