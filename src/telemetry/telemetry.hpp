// Telemetry core: the sink interface every instrumented subsystem talks to.
//
// Design goals, in order:
//   1. Zero overhead when disabled. Instrumentation sites hold a
//      `TelemetrySink*` that is null by default; every emission is guarded by
//      a single pointer test and hot loops batch locally so the disabled path
//      performs no virtual calls and no allocations.
//   2. One interface, many backends. `MetricsRegistry` (src/telemetry/
//      metrics_registry.hpp) aggregates in memory and snapshots to JSON;
//      `ChromeTraceSink` (src/telemetry/chrome_trace.hpp) emits Chrome
//      `trace_event` JSON viewable in chrome://tracing or Perfetto; `TeeSink`
//      fans out to both. See docs/OBSERVABILITY.md.
//   3. Names are stable identifiers. Dotted lowercase paths
//      ("executor.messages_sent"); spans additionally carry a category used
//      as the Chrome trace `cat` field.
//
// Thread-safety: sinks are NOT synchronized. The whole library is
// single-threaded per execution; share one sink across threads only with
// external locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dasched {

/// Numeric key/value attached to a span (rendered as Chrome trace `args`).
struct SpanArg {
  std::string_view key;
  double value;
};

/// Abstract telemetry consumer. All methods take `string_view` names so call
/// sites can pass string literals without allocating.
class TelemetrySink {
 public:
  virtual ~TelemetrySink();

  /// Monotonically increasing sum (events, messages, rounds, ...).
  virtual void add_counter(std::string_view name, std::uint64_t delta) = 0;

  /// Last-write-wins scalar (configuration values, derived parameters).
  virtual void set_gauge(std::string_view name, double value) = 0;

  /// One sample of a distribution (edge loads, delays, radii, ...).
  virtual void record_value(std::string_view name, double value) = 0;

  /// A completed wall-clock span. `start_us`/`dur_us` come from `now_us()`.
  virtual void record_span(std::string_view category, std::string_view name,
                           std::uint64_t start_us, std::uint64_t dur_us,
                           std::span<const SpanArg> args) = 0;

  /// Monotonic clock in microseconds (steady_clock; origin arbitrary but
  /// consistent within a process, so spans from different sinks line up).
  static std::uint64_t now_us();
};

/// RAII wall-clock span. No-op (not even a clock read) when `sink` is null.
///
///   {
///     TimedSpan span(cfg.telemetry, "executor", "run");
///     span.arg("big_rounds", t);   // optional, numeric only
///     ... work ...
///   }  // recorded here
class TimedSpan {
 public:
  TimedSpan(TelemetrySink* sink, std::string_view category, std::string_view name)
      : sink_(sink), category_(category), name_(name),
        start_us_(sink ? TelemetrySink::now_us() : 0) {}

  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;

  /// Attach a numeric argument (capped at kMaxArgs; extras are dropped).
  void arg(std::string_view key, double value) {
    if (sink_ != nullptr && num_args_ < kMaxArgs) args_[num_args_++] = {key, value};
  }

  /// Record now instead of at destruction (idempotent).
  void finish() {
    if (sink_ == nullptr) return;
    const std::uint64_t end = TelemetrySink::now_us();
    sink_->record_span(category_, name_, start_us_,
                       end >= start_us_ ? end - start_us_ : 0,
                       {args_, num_args_});
    sink_ = nullptr;
  }

  ~TimedSpan() { finish(); }

 private:
  static constexpr std::size_t kMaxArgs = 8;
  TelemetrySink* sink_;
  std::string_view category_;
  std::string_view name_;
  std::uint64_t start_us_;
  SpanArg args_[kMaxArgs];
  std::size_t num_args_ = 0;
};

/// Fans every emission out to several sinks (e.g. registry + trace). Borrowed
/// pointers; null entries are skipped.
class TeeSink final : public TelemetrySink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TelemetrySink*> sinks) : sinks_(std::move(sinks)) {}

  void add(TelemetrySink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  bool empty() const { return sinks_.empty(); }

  void add_counter(std::string_view name, std::uint64_t delta) override;
  void set_gauge(std::string_view name, double value) override;
  void record_value(std::string_view name, double value) override;
  void record_span(std::string_view category, std::string_view name,
                   std::uint64_t start_us, std::uint64_t dur_us,
                   std::span<const SpanArg> args) override;

 private:
  std::vector<TelemetrySink*> sinks_;
};

}  // namespace dasched
