#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/json.hpp"

namespace dasched {

namespace {

// Heterogeneous find-or-insert: std::map<..., std::less<>> supports
// string_view lookup but insertion still needs a std::string key.
template <typename Map, typename Make>
auto& slot(Map& map, std::string_view name, Make make) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return it->second;
}

}  // namespace

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  slot(counters_, name, [] { return std::uint64_t{0}; }) += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  slot(gauges_, name, [] { return 0.0; }) = value;
}

void MetricsRegistry::record_value(std::string_view name, double value) {
  slot(histograms_, name, [this] { return Histogram{sample_cap_}; }).add(value);
}

void MetricsRegistry::record_span(std::string_view category, std::string_view name,
                                  std::uint64_t /*start_us*/, std::uint64_t dur_us,
                                  std::span<const SpanArg> /*args*/) {
  std::string key;
  key.reserve(category.size() + 1 + name.size());
  key.append(category).append("/").append(name);
  auto& stats = spans_[key];
  ++stats.count;
  stats.total_us += dur_us;
  stats.max_us = std::max(stats.max_us, dur_us);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const MetricsRegistry::SpanStats* MetricsRegistry::span(std::string_view key) const {
  const auto it = spans_.find(key);
  return it == spans_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
}

void MetricsRegistry::write_json(std::ostream& os, bool include_samples) const {
  json::Writer w(os);
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.kv(name, v);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.kv(name, v);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", static_cast<std::uint64_t>(h.count()));
    if (!h.empty()) {
      w.kv("min", h.min());
      w.kv("max", h.max());
      w.kv("mean", h.mean());
      w.kv("p50", h.quantile(0.5));
      w.kv("p90", h.quantile(0.9));
      w.kv("p99", h.quantile(0.99));
      if (include_samples) {
        w.key("samples");
        w.begin_array();
        for (const double x : h.sorted()) w.value(x);
        w.end_array();
        if (!h.complete()) {
          w.kv("samples_dropped",
               static_cast<std::uint64_t>(h.count() - h.retained()));
        }
      }
    }
    w.end_object();
  }
  w.end_object();

  w.key("spans");
  w.begin_object();
  for (const auto& [key, s] : spans_) {
    w.key(key);
    w.begin_object();
    w.kv("count", s.count);
    w.kv("total_us", s.total_us);
    w.kv("mean_us", s.count == 0 ? 0.0
                                 : static_cast<double>(s.total_us) /
                                       static_cast<double>(s.count));
    w.kv("max_us", s.max_us);
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

std::string MetricsRegistry::to_json(bool include_samples) const {
  std::ostringstream oss;
  write_json(oss, include_samples);
  return oss.str();
}

}  // namespace dasched
