#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace dasched::json {

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Writer::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the key just written; no comma.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
  }
}

void Writer::begin_object() {
  separator();
  os_ << '{';
  has_element_.push_back(false);
}

void Writer::end_object() {
  DASCHED_CHECK(!has_element_.empty());
  has_element_.pop_back();
  os_ << '}';
}

void Writer::begin_array() {
  separator();
  os_ << '[';
  has_element_.push_back(false);
}

void Writer::end_array() {
  DASCHED_CHECK(!has_element_.empty());
  has_element_.pop_back();
  os_ << ']';
}

void Writer::key(std::string_view k) {
  DASCHED_CHECK(!pending_key_);
  separator();
  write_escaped(os_, k);
  os_ << ':';
  pending_key_ = true;
}

void Writer::value(std::string_view s) {
  separator();
  write_escaped(os_, s);
}

void Writer::value(double v) {
  separator();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; null is the least-bad spelling.
    os_ << "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles; trim to shortest via %g first when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17e", v);
  }
  os_ << buf;
}

void Writer::value(std::uint64_t v) {
  separator();
  os_ << v;
}

void Writer::value(std::int64_t v) {
  separator();
  os_ << v;
}

void Writer::value(bool b) {
  separator();
  os_ << (b ? "true" : "false");
}

void Writer::null() {
  separator();
  os_ << "null";
}

void Writer::raw(std::string_view text) {
  separator();
  os_ << text;
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : it->second.get();
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  ValuePtr run() {
    auto v = parse_value();
    if (v == nullptr) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return nullptr;
    }
    return v;
  }

 private:
  void fail(const char* msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  ValuePtr parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') {
      auto v = std::make_shared<Value>();
      v->kind = Value::Kind::kBool;
      v->boolean = (c == 't');
      if (!literal(c == 't' ? "true" : "false")) {
        fail("bad literal");
        return nullptr;
      }
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) {
        fail("bad literal");
        return nullptr;
      }
      return std::make_shared<Value>();
    }
    return parse_number();
  }

  ValuePtr parse_object() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kObject;
    DASCHED_CHECK(consume('{'));
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (key == nullptr) return nullptr;
      if (!consume(':')) {
        fail("expected ':'");
        return nullptr;
      }
      auto member = parse_value();
      if (member == nullptr) return nullptr;
      v->object.emplace(std::move(key->string), std::move(member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      fail("expected ',' or '}'");
      return nullptr;
    }
  }

  ValuePtr parse_array() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kArray;
    DASCHED_CHECK(consume('['));
    if (consume(']')) return v;
    while (true) {
      auto element = parse_value();
      if (element == nullptr) return nullptr;
      v->array.push_back(std::move(element));
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']'");
      return nullptr;
    }
  }

  ValuePtr parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': v->string += '"'; break;
          case '\\': v->string += '\\'; break;
          case '/': v->string += '/'; break;
          case 'n': v->string += '\n'; break;
          case 'r': v->string += '\r'; break;
          case 't': v->string += '\t'; break;
          case 'b': v->string += '\b'; break;
          case 'f': v->string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return nullptr;
            }
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const auto code = static_cast<unsigned>(std::strtoul(hex.c_str(), nullptr, 16));
            // We only emit \u00xx for control characters; decode the ASCII
            // range and pass anything else through as '?'.
            v->string += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("bad escape");
            return nullptr;
        }
      } else {
        v->string += c;
      }
    }
    fail("unterminated string");
    return nullptr;
  }

  ValuePtr parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) {
      fail("expected number");
      return nullptr;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kNumber;
    v->number = d;
    return v;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

ValuePtr parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace dasched::json
