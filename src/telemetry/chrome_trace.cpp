#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <fstream>

#include "telemetry/json.hpp"

namespace dasched {

ChromeTraceSink::ChromeTraceSink(std::string process_name)
    : process_name_(std::move(process_name)) {}

void ChromeTraceSink::add_counter(std::string_view name, std::uint64_t delta) {
  auto it = std::find_if(counter_totals_.begin(), counter_totals_.end(),
                         [&](const auto& kv) { return kv.first == name; });
  if (it == counter_totals_.end()) {
    counter_totals_.emplace_back(std::string(name), 0);
    it = counter_totals_.end() - 1;
  }
  it->second += delta;
  Event ev;
  ev.phase = 'C';
  ev.name = it->first;
  ev.ts_us = now_us();
  ev.dur_us = 0;
  ev.args.emplace_back("value", static_cast<double>(it->second));
  events_.push_back(std::move(ev));
}

void ChromeTraceSink::set_gauge(std::string_view name, double value) {
  Event ev;
  ev.phase = 'C';
  ev.name = std::string(name);
  ev.ts_us = now_us();
  ev.dur_us = 0;
  ev.args.emplace_back("value", value);
  events_.push_back(std::move(ev));
}

void ChromeTraceSink::record_value(std::string_view name, double value) {
  // Each sample is a counter-track point at its emission time: the trace
  // shows the quantity over time (e.g. max load per big-round), while the
  // full distribution stays MetricsRegistry's job.
  Event ev;
  ev.phase = 'C';
  ev.name = std::string(name);
  ev.ts_us = now_us();
  ev.dur_us = 0;
  ev.args.emplace_back("value", value);
  events_.push_back(std::move(ev));
}

void ChromeTraceSink::record_span(std::string_view category, std::string_view name,
                                  std::uint64_t start_us, std::uint64_t dur_us,
                                  std::span<const SpanArg> args) {
  Event ev;
  ev.phase = 'X';
  ev.category = std::string(category);
  ev.name = std::string(name);
  ev.ts_us = start_us;
  // chrome://tracing drops 0-duration complete events; clamp up to 1us.
  ev.dur_us = std::max<std::uint64_t>(1, dur_us);
  ev.args.reserve(args.size());
  for (const auto& a : args) ev.args.emplace_back(std::string(a.key), a.value);
  events_.push_back(std::move(ev));
}

void ChromeTraceSink::write(std::ostream& os) const {
  std::uint64_t base = ~std::uint64_t{0};
  for (const auto& ev : events_) base = std::min(base, ev.ts_us);
  if (events_.empty()) base = 0;

  json::Writer w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Process-name metadata event, the idiomatic first entry.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", std::uint64_t{0});
  w.kv("tid", std::uint64_t{0});
  w.key("args");
  w.begin_object();
  w.kv("name", process_name_);
  w.end_object();
  w.end_object();

  for (const auto& ev : events_) {
    w.begin_object();
    w.kv("name", ev.name);
    if (!ev.category.empty()) w.kv("cat", ev.category);
    w.key("ph");
    w.value(std::string_view(&ev.phase, 1));
    w.kv("ts", ev.ts_us - base);
    if (ev.phase == 'X') w.kv("dur", ev.dur_us);
    w.kv("pid", std::uint64_t{0});
    w.kv("tid", std::uint64_t{0});
    if (!ev.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [k, v] : ev.args) w.kv(k, v);
      w.end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace dasched
