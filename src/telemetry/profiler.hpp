// Opt-in congestion profiler for the scheduled-execution engine: where does
// congestion actually land, edge by edge and big-round by big-round?
//
// The paper's entire bound (Theorem 1.1: O(congestion + dilation log n)
// rounds) is a statement about per-(directed-edge, big-round) loads, but the
// executor's ExecutionResult only keeps aggregates (max per big-round, global
// max). ExecProfiler records the full load surface so experiments can see
// *which* edges are hot and *when* -- and so the divergence monitor
// (verify/divergence.hpp) can join the measured surface against the static
// loads the schedule verifier predicted. That comparison is the sensor the
// ROADMAP's adaptive-scheduling loop steers by.
//
// Engineering contract (mirrors the PR 5 hot-path discipline):
//   * Sizing happens once per run in begin_run(): fixed-size SoA accumulators
//     per directed edge and per big-round (with retry headroom, so
//     fault-induced horizon extensions never resize mid-loop), a sparse
//     (big_round, edge, load) cell list reserved to its high-water mark, and
//     fixed 64-bucket log histograms. From the second profiled run of an
//     Executor onwards, the big-round loop performs zero heap allocations
//     with the profiler attached (tests/test_profiler.cpp measures this).
//   * Per-worker shards: event/inbox counters are bumped by the executing
//     shard (no sharing, no atomics) and merged in shard order at the serial
//     delivery barrier. Merged values are sums over a round, so every
//     snapshot is bit-identical across thread counts -- same guarantee as
//     ExecutionResult itself.
//   * The profiler only observes: attaching it never changes execution
//     results (pinned by the golden-fingerprint tests), and a null
//     ExecConfig::profiler leaves the engine byte-for-byte unprofiled.
//
// Rendering: top-N hot-edge / hot-round Tables (with an ASCII heatmap bar),
// a JSON `profile` section for RunReport (schema dasched.profile.v1, see
// docs/OBSERVABILITY.md), and profile.* telemetry via emit().
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dasched {

class Table;

/// One measured (or statically predicted) per-(big-round, directed-edge)
/// load. Ordered by (big_round, edge) so measured and predicted tables join
/// with one linear merge.
struct LoadCell {
  std::uint32_t big_round = 0;
  std::uint32_t edge = 0;  // directed edge id
  std::uint32_t load = 0;
  friend bool operator<(const LoadCell& x, const LoadCell& y) {
    if (x.big_round != y.big_round) return x.big_round < y.big_round;
    return x.edge < y.edge;
  }
  friend bool operator==(const LoadCell&, const LoadCell&) = default;
};

class ExecProfiler {
 public:
  /// Per-worker hot-path counters; padded out so adjacent shards do not
  /// false-share a cache line while workers bump them concurrently.
  struct alignas(64) WorkerShard {
    std::uint64_t events = 0;  // events executed by this shard this round
    std::uint64_t inbox = 0;   // messages consumed from inboxes this round
  };

  /// Aggregated view of one directed edge over the whole run.
  struct EdgeSummary {
    std::uint32_t edge = 0;
    std::uint64_t total_load = 0;   // messages over all big-rounds
    std::uint32_t max_load = 0;     // busiest single big-round
    std::uint32_t peak_round = 0;   // first big-round achieving max_load
  };

  // --- Executor-facing hooks (congest/executor.cpp). ---

  /// Sizes every accumulator for a run of `num_big_rounds` scheduled rounds
  /// plus `round_headroom` extra rounds retransmissions may extend into, and
  /// resets the previous run's data (capacities are retained, so repeated
  /// runs stay allocation-free once warm). Called by the executor before the
  /// steady-state window opens.
  /// `tile_events` is the executor's delivery-tile width (events per tile,
  /// from ExecConfig::tile_bytes), recorded into the profile JSON so per-round
  /// inbox distributions can be read against the barrier geometry that
  /// produced them; 0 means "not reported".
  void begin_run(std::uint32_t num_directed_edges, std::uint32_t num_big_rounds,
                 std::uint32_t num_workers, std::uint32_t round_headroom,
                 std::uint32_t tile_events = 0);

  /// Hot path, serial barrier: one touched (edge, big-round) cell.
  void record_cell(std::uint32_t big_round, std::uint32_t edge, std::uint32_t load) {
    cells_.push_back({big_round, edge, load});
    edge_total_[edge] += load;
    if (load > edge_max_[edge]) {
      edge_max_[edge] = load;
      edge_peak_round_[edge] = big_round;
    }
    hist_cell_load_.add(load);
  }

  /// Hot path, worker shards: bumped during event execution with no
  /// synchronization (each worker owns its shard), merged by end_round().
  WorkerShard* shards() { return shards_.data(); }

  /// Serial barrier epilogue: folds the worker shards (in shard order -- the
  /// same deterministic order the staging buffers merge in) into this round's
  /// SoA slots and resets them for the next round.
  void end_round(std::uint32_t big_round, std::uint64_t messages,
                 std::uint32_t max_load, std::uint64_t retries);

  /// Closes the run (total attempts recorded for the summary).
  void end_run();

  // --- Post-run queries (allocation is fine here). ---

  std::uint64_t runs() const { return runs_; }
  /// Big-rounds the last run actually used (>= scheduled when retries
  /// extended the horizon).
  std::uint32_t rounds_used() const { return rounds_used_; }
  std::uint32_t num_directed_edges() const { return num_edges_; }
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t total_retries() const { return total_retries_; }
  std::uint32_t max_edge_load() const { return run_max_load_; }

  std::uint64_t round_messages(std::uint32_t t) const { return round_messages_[t]; }
  std::uint32_t round_max_load(std::uint32_t t) const { return round_max_load_[t]; }
  std::uint64_t round_events(std::uint32_t t) const { return round_events_[t]; }
  std::uint64_t round_inbox(std::uint32_t t) const { return round_inbox_[t]; }
  std::uint64_t round_retries(std::uint32_t t) const { return round_retries_[t]; }
  /// Per-big-round max loads as one span (rounds_used() entries) -- the
  /// profiled counterpart of ExecutionResult::max_load_per_big_round, e.g.
  /// for fault::analyze_slack.
  std::span<const std::uint32_t> round_max_loads() const {
    return {round_max_load_.data(), rounds_used_};
  }

  /// Every touched cell of the last run in barrier order (rounds ascending,
  /// first-touch order within a round). Deterministic across thread counts.
  const std::vector<LoadCell>& cells() const { return cells_; }
  /// The cells sorted by (big_round, edge) -- the join key the divergence
  /// monitor and the verifier's static load table share.
  std::vector<LoadCell> sorted_cells() const;

  /// The n busiest directed edges by total load (ties broken by edge id).
  std::vector<EdgeSummary> top_edges(std::size_t n) const;
  /// The n single hottest cells by load (ties: earlier round, lower edge).
  std::vector<LoadCell> top_cells(std::size_t n) const;

  const LogHistogram& cell_load_histogram() const { return hist_cell_load_; }
  const LogHistogram& round_max_histogram() const { return hist_round_max_; }

  // --- Rendering. ---

  /// Top-N hot edges: edge id, an optional caller-supplied label (the caller
  /// owns graph knowledge; telemetry deliberately does not), totals, and the
  /// peak round.
  Table hot_edges_table(std::size_t top_n,
                        const std::function<std::string(std::uint32_t)>&
                            edge_label = {}) const;
  /// Top-N hottest big-rounds with an ASCII heatmap bar scaled to the run's
  /// max load.
  Table hot_rounds_table(std::size_t top_n) const;

  /// The RunReport `profile` section (schema dasched.profile.v1).
  void write_json(std::ostream& os) const;
  std::string to_json() const;

  /// profile.* counters/gauges/histogram samples (docs/OBSERVABILITY.md).
  void emit(TelemetrySink* sink) const;

 private:
  // All vectors below are fixed-size SoA accumulators or high-water-mark
  // arenas: sized in begin_run(), never grown inside the big-round loop.
  std::uint32_t num_edges_ = 0;
  std::uint32_t num_workers_ = 0;
  std::uint32_t rounds_capacity_ = 0;
  std::uint32_t tile_events_ = 0;  // delivery-tile width of the profiled run
  std::uint32_t rounds_used_ = 0;
  std::uint64_t runs_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_inbox_ = 0;
  std::uint64_t total_retries_ = 0;
  std::uint32_t run_max_load_ = 0;
  std::size_t cells_high_water_ = 0;

  std::vector<WorkerShard> shards_;

  // Per-directed-edge SoA (size num_edges_).
  std::vector<std::uint64_t> edge_total_;
  std::vector<std::uint32_t> edge_max_;
  std::vector<std::uint32_t> edge_peak_round_;

  // Per-big-round SoA (size rounds_capacity_).
  std::vector<std::uint64_t> round_messages_;
  std::vector<std::uint32_t> round_max_load_;
  std::vector<std::uint64_t> round_events_;
  std::vector<std::uint64_t> round_inbox_;
  std::vector<std::uint64_t> round_retries_;

  // Sparse touched cells, barrier order; capacity reused across runs.
  std::vector<LoadCell> cells_;

  LogHistogram hist_cell_load_;
  LogHistogram hist_round_max_;
};

}  // namespace dasched
