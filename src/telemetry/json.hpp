// Minimal JSON support for the telemetry subsystem: a streaming writer (used
// by MetricsRegistry / ChromeTraceSink / RunReport) and a small recursive-
// descent parser (used by tests to round-trip snapshots and by tools that
// read reports back). Deliberately tiny and dependency-free; not a general
// JSON library -- numbers are doubles, no \uXXXX emission beyond pass-through
// escaping, inputs are trusted artifacts we wrote ourselves.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dasched::json {

/// Streaming writer producing compact, valid JSON. Usage:
///   Writer w(os);
///   w.begin_object();
///   w.key("counters"); w.begin_object(); ... w.end_object();
///   w.end_object();
/// Comma placement is automatic. The caller is responsible for balanced
/// begin/end calls.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value (or container).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool b);
  void null();

  /// Splices pre-rendered JSON verbatim in value position (after a key or as
  /// an array element), with normal comma/pending-key handling. The caller
  /// guarantees `text` is one complete JSON value.
  void raw(std::string_view text);

  // Convenience: key + scalar value.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void separator();
  std::ostream& os_;
  /// Per-nesting-level flag: true once the first element has been written.
  std::vector<bool> has_element_{};
  bool pending_key_ = false;
};

/// Escapes `s` per RFC 8259 and writes it including surrounding quotes.
void write_escaped(std::ostream& os, std::string_view s);

// ---------------------------------------------------------------------------
// Parser (tests / report readers).
// ---------------------------------------------------------------------------

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  const Value* get(std::string_view key) const;
};

/// Parses a complete JSON document. Returns nullptr on malformed input
/// (if `error` is non-null it receives a short description).
ValuePtr parse(std::string_view text, std::string* error = nullptr);

}  // namespace dasched::json
