// In-memory aggregating TelemetrySink: counters sum, gauges overwrite,
// histograms accumulate into SampleSets, spans accumulate duration stats.
// Queryable by name and snapshottable to JSON, so tests and run reports can
// assert on exactly what the instrumented code emitted.
//
// JSON snapshot schema (docs/OBSERVABILITY.md):
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": n, "min": ..., "max": ...,
//                                 "mean": ..., "p50": ..., "p90": ...,
//                                 "p99": ..., "samples": [...]? }, ... },
//     "spans":      { "<category>/<name>": { "count": n, "total_us": ...,
//                                            "mean_us": ..., "max_us": ... } }
//   }
// `samples` (the full ascending sample list) is included only when the
// snapshot is taken with include_samples = true.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace dasched {

class MetricsRegistry final : public TelemetrySink {
 public:
  struct SpanStats {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };

  // --- TelemetrySink ---
  void add_counter(std::string_view name, std::uint64_t delta) override;
  void set_gauge(std::string_view name, double value) override;
  void record_value(std::string_view name, double value) override;
  void record_span(std::string_view category, std::string_view name,
                   std::uint64_t start_us, std::uint64_t dur_us,
                   std::span<const SpanArg> args) override;

  // --- Queries (absent names return zero / nullptr). ---
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const SampleSet* histogram(std::string_view name) const;
  /// Key is "<category>/<name>".
  const SpanStats* span(std::string_view key) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, SampleSet, std::less<>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, SpanStats, std::less<>>& spans() const { return spans_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && spans_.empty();
  }
  void clear();

  /// Writes the snapshot documented above (deterministic key order).
  void write_json(std::ostream& os, bool include_samples = false) const;
  std::string to_json(bool include_samples = false) const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, SampleSet, std::less<>> histograms_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

}  // namespace dasched
