// In-memory aggregating TelemetrySink: counters sum, gauges overwrite,
// histograms accumulate into capped log-bucketed Histograms (util/stats.hpp),
// spans accumulate duration stats. Queryable by name and snapshottable to
// JSON, so tests and run reports can assert on exactly what the instrumented
// code emitted.
//
// Memory discipline: a histogram retains at most `sample_cap` verbatim
// samples (default Histogram::kDefaultSampleCap = 4096) next to its exact
// streaming moments and fixed 64-bucket log histogram, so profiled
// million-message runs cost O(cap) per metric instead of O(messages).
// Quantiles are exact while the retained list is complete and log-bucket
// approximations (within 2x) past the cap. Call keep_all_samples() before
// recording to opt into unbounded retention -- the explicit flag for runs
// where the full distribution is the artifact.
//
// JSON snapshot schema (docs/OBSERVABILITY.md):
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": n, "min": ..., "max": ...,
//                                 "mean": ..., "p50": ..., "p90": ...,
//                                 "p99": ..., "samples": [...]?,
//                                 "samples_dropped": n? }, ... },
//     "spans":      { "<category>/<name>": { "count": n, "total_us": ...,
//                                            "mean_us": ..., "max_us": ... } }
//   }
// `samples` (the retained ascending sample list) is included only when the
// snapshot is taken with include_samples = true; `samples_dropped` appears
// only when the cap truncated the list.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace dasched {

class MetricsRegistry final : public TelemetrySink {
 public:
  struct SpanStats {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };

  // --- TelemetrySink ---
  void add_counter(std::string_view name, std::uint64_t delta) override;
  void set_gauge(std::string_view name, double value) override;
  void record_value(std::string_view name, double value) override;
  void record_span(std::string_view category, std::string_view name,
                   std::uint64_t start_us, std::uint64_t dur_us,
                   std::span<const SpanArg> args) override;

  /// Retention cap for *future* histogram names (existing histograms keep
  /// their cap). Histogram::kUnlimited disables the cap.
  void set_sample_cap(std::size_t cap) { sample_cap_ = cap; }
  /// The explicit opt-in to unbounded sample retention (old behavior).
  void keep_all_samples() { sample_cap_ = Histogram::kUnlimited; }
  std::size_t sample_cap() const { return sample_cap_; }

  // --- Queries (absent names return zero / nullptr). ---
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const Histogram* histogram(std::string_view name) const;
  /// Key is "<category>/<name>".
  const SpanStats* span(std::string_view key) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, SpanStats, std::less<>>& spans() const { return spans_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && spans_.empty();
  }
  void clear();

  /// Writes the snapshot documented above (deterministic key order).
  void write_json(std::ostream& os, bool include_samples = false) const;
  std::string to_json(bool include_samples = false) const;

 private:
  std::size_t sample_cap_ = Histogram::kDefaultSampleCap;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

}  // namespace dasched
