// TelemetrySink emitting Chrome trace_event JSON ("JSON Array Format" wrapped
// in a {"traceEvents": [...]} object), loadable in chrome://tracing and
// https://ui.perfetto.dev. Spans become complete ("X") duration events;
// counters, gauges, and histogram samples (record_value) become counter ("C")
// tracks sampled at emission time -- counters plot their running total,
// gauges and samples plot the emitted value. Per-big-round samples like
// executor.max_load_per_big_round therefore render as a congestion-over-time
// track alongside the big-round spans they annotate (full distributions
// still belong in MetricsRegistry; pair both sinks with TeeSink).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace dasched {

class ChromeTraceSink final : public TelemetrySink {
 public:
  /// `process_name` labels the trace's single process track.
  explicit ChromeTraceSink(std::string process_name = "dasched");

  void add_counter(std::string_view name, std::uint64_t delta) override;
  void set_gauge(std::string_view name, double value) override;
  void record_value(std::string_view name, double value) override;
  void record_span(std::string_view category, std::string_view name,
                   std::uint64_t start_us, std::uint64_t dur_us,
                   std::span<const SpanArg> args) override;

  std::size_t num_events() const { return events_.size(); }

  /// Writes the full trace document. Timestamps are rebased to the first
  /// recorded event so traces start near t=0.
  void write(std::ostream& os) const;
  /// Returns false (and leaves no partial file guarantees) if the file
  /// cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' (complete span) or 'C' (counter sample)
    std::string category;
    std::string name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;                               // spans only
    std::vector<std::pair<std::string, double>> args;   // numeric args
  };

  std::string process_name_;
  std::vector<Event> events_;
  /// Running totals backing the "C" tracks (counter events carry the
  /// cumulative value, which is what trace viewers plot).
  std::vector<std::pair<std::string, std::uint64_t>> counter_totals_;
};

}  // namespace dasched
