#include "telemetry/profiler.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/check.hpp"

namespace dasched {

void ExecProfiler::begin_run(std::uint32_t num_directed_edges,
                             std::uint32_t num_big_rounds,
                             std::uint32_t num_workers,
                             std::uint32_t round_headroom,
                             std::uint32_t tile_events) {
  num_edges_ = num_directed_edges;
  num_workers_ = num_workers;
  tile_events_ = tile_events;
  rounds_capacity_ = num_big_rounds + round_headroom;
  rounds_used_ = 0;
  total_messages_ = 0;
  total_events_ = 0;
  total_inbox_ = 0;
  total_retries_ = 0;
  run_max_load_ = 0;

  shards_.assign(num_workers, WorkerShard{});
  edge_total_.assign(num_edges_, 0);
  edge_max_.assign(num_edges_, 0);
  edge_peak_round_.assign(num_edges_, 0);
  round_messages_.assign(rounds_capacity_, 0);
  round_max_load_.assign(rounds_capacity_, 0);
  round_events_.assign(rounds_capacity_, 0);
  round_inbox_.assign(rounds_capacity_, 0);
  round_retries_.assign(rounds_capacity_, 0);

  cells_.clear();
  cells_.reserve(cells_high_water_);
  hist_cell_load_.clear();
  hist_round_max_.clear();
}

void ExecProfiler::end_round(std::uint32_t big_round, std::uint64_t messages,
                             std::uint32_t max_load, std::uint64_t retries) {
  DASCHED_CHECK_MSG(big_round < rounds_capacity_,
                    "profiler: big-round beyond the sized horizon headroom");
  std::uint64_t events = 0;
  std::uint64_t inbox = 0;
  // Shard order == the order the staging buffers merge in; per-round values
  // are sums over every shard, so the merged numbers are independent of how
  // events were partitioned across workers.
  for (auto& sh : shards_) {
    events += sh.events;
    inbox += sh.inbox;
    sh.events = 0;
    sh.inbox = 0;
  }
  round_messages_[big_round] = messages;
  round_max_load_[big_round] = max_load;
  round_events_[big_round] = events;
  round_inbox_[big_round] = inbox;
  round_retries_[big_round] = retries;
  rounds_used_ = std::max(rounds_used_, big_round + 1);
  total_messages_ += messages;
  total_events_ += events;
  total_inbox_ += inbox;
  total_retries_ += retries;
  run_max_load_ = std::max(run_max_load_, max_load);
  hist_round_max_.add(max_load);
}

void ExecProfiler::end_run() {
  ++runs_;
  cells_high_water_ = std::max(cells_high_water_, cells_.size());
}

std::vector<LoadCell> ExecProfiler::sorted_cells() const {
  std::vector<LoadCell> out = cells_;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ExecProfiler::EdgeSummary> ExecProfiler::top_edges(std::size_t n) const {
  std::vector<EdgeSummary> all;
  all.reserve(num_edges_);
  for (std::uint32_t e = 0; e < num_edges_; ++e) {
    if (edge_total_[e] == 0) continue;
    all.push_back({e, edge_total_[e], edge_max_[e], edge_peak_round_[e]});
  }
  const std::size_t keep = std::min(n, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end(), [](const EdgeSummary& x, const EdgeSummary& y) {
                      if (x.total_load != y.total_load) return x.total_load > y.total_load;
                      return x.edge < y.edge;
                    });
  all.resize(keep);
  return all;
}

std::vector<LoadCell> ExecProfiler::top_cells(std::size_t n) const {
  std::vector<LoadCell> all = cells_;
  const std::size_t keep = std::min(n, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                    all.end(), [](const LoadCell& x, const LoadCell& y) {
                      if (x.load != y.load) return x.load > y.load;
                      if (x.big_round != y.big_round) return x.big_round < y.big_round;
                      return x.edge < y.edge;
                    });
  all.resize(keep);
  return all;
}

namespace {

std::string heat_bar(std::uint32_t value, std::uint32_t max_value) {
  constexpr std::uint32_t kWidth = 24;
  if (max_value == 0) return std::string();
  const std::uint32_t filled =
      value == 0 ? 0
                 : std::max<std::uint32_t>(
                       1, static_cast<std::uint32_t>(
                              (static_cast<std::uint64_t>(value) * kWidth) /
                              max_value));
  return std::string(filled, '#');
}

}  // namespace

Table ExecProfiler::hot_edges_table(
    std::size_t top_n,
    const std::function<std::string(std::uint32_t)>& edge_label) const {
  Table table("profile: top-" + std::to_string(top_n) + " hot directed edges");
  table.set_header({"edge", "endpoints", "total load", "max load", "peak round", "heat"});
  const auto edges = top_edges(top_n);
  const std::uint64_t hottest = edges.empty() ? 0 : edges.front().total_load;
  for (const auto& e : edges) {
    table.add_row(
        {Table::fmt(std::uint64_t{e.edge}),
         edge_label ? edge_label(e.edge) : "-", Table::fmt(e.total_load),
         Table::fmt(std::uint64_t{e.max_load}), Table::fmt(std::uint64_t{e.peak_round}),
         heat_bar(static_cast<std::uint32_t>(e.total_load),
                  static_cast<std::uint32_t>(hottest))});
  }
  return table;
}

Table ExecProfiler::hot_rounds_table(std::size_t top_n) const {
  Table table("profile: top-" + std::to_string(top_n) + " hot big-rounds");
  table.set_header({"big-round", "messages", "max load", "events", "retries", "heat"});
  std::vector<std::uint32_t> rounds(rounds_used_);
  for (std::uint32_t t = 0; t < rounds_used_; ++t) rounds[t] = t;
  const std::size_t keep = std::min(top_n, rounds.size());
  std::partial_sort(rounds.begin(), rounds.begin() + static_cast<std::ptrdiff_t>(keep),
                    rounds.end(), [&](std::uint32_t x, std::uint32_t y) {
                      if (round_max_load_[x] != round_max_load_[y]) {
                        return round_max_load_[x] > round_max_load_[y];
                      }
                      return x < y;
                    });
  rounds.resize(keep);
  for (const auto t : rounds) {
    table.add_row({Table::fmt(std::uint64_t{t}), Table::fmt(round_messages_[t]),
                   Table::fmt(std::uint64_t{round_max_load_[t]}),
                   Table::fmt(round_events_[t]), Table::fmt(round_retries_[t]),
                   heat_bar(round_max_load_[t], run_max_load_)});
  }
  return table;
}

void ExecProfiler::write_json(std::ostream& os) const {
  json::Writer w(os);
  w.begin_object();
  w.kv("schema", "dasched.profile.v1");

  w.key("totals");
  w.begin_object();
  w.kv("runs", runs_);
  w.kv("big_rounds", std::uint64_t{rounds_used_});
  w.kv("directed_edges", std::uint64_t{num_edges_});
  w.kv("messages", total_messages_);
  w.kv("events", total_events_);
  w.kv("inbox_messages", total_inbox_);
  w.kv("retries", total_retries_);
  w.kv("max_edge_load", std::uint64_t{run_max_load_});
  w.kv("touched_cells", std::uint64_t{cells_.size()});
  // Deliberately no worker count here: the profile of a run is bit-identical
  // across thread counts (tests/test_profiler.cpp), and tile geometry -- a
  // pure config value -- is the only engine parameter that may appear.
  w.kv("tile_events", std::uint64_t{tile_events_});
  w.end_object();

  w.key("rounds");
  w.begin_array();
  for (std::uint32_t t = 0; t < rounds_used_; ++t) {
    w.begin_object();
    w.kv("t", std::uint64_t{t});
    w.kv("messages", round_messages_[t]);
    w.kv("max_load", std::uint64_t{round_max_load_[t]});
    w.kv("events", round_events_[t]);
    w.kv("inbox", round_inbox_[t]);
    w.kv("retries", round_retries_[t]);
    w.end_object();
  }
  w.end_array();

  w.key("top_edges");
  w.begin_array();
  for (const auto& e : top_edges(16)) {
    w.begin_object();
    w.kv("edge", std::uint64_t{e.edge});
    w.kv("total_load", e.total_load);
    w.kv("max_load", std::uint64_t{e.max_load});
    w.kv("peak_round", std::uint64_t{e.peak_round});
    w.end_object();
  }
  w.end_array();

  w.key("cell_load_histogram");
  w.begin_array();
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    if (hist_cell_load_.bucket(i) == 0) continue;
    w.begin_object();
    w.kv("ge", LogHistogram::bucket_floor(i));
    w.kv("count", hist_cell_load_.bucket(i));
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

std::string ExecProfiler::to_json() const {
  std::ostringstream oss;
  write_json(oss);
  return oss.str();
}

void ExecProfiler::emit(TelemetrySink* sink) const {
  if (sink == nullptr) return;
  sink->add_counter("profile.messages", total_messages_);
  sink->add_counter("profile.events", total_events_);
  sink->add_counter("profile.retries", total_retries_);
  sink->add_counter("profile.touched_cells", cells_.size());
  sink->set_gauge("profile.big_rounds", rounds_used_);
  sink->set_gauge("profile.max_edge_load", run_max_load_);
  for (std::uint32_t t = 0; t < rounds_used_; ++t) {
    sink->record_value("profile.round_max_load", round_max_load_[t]);
  }
}

}  // namespace dasched
