#include "telemetry/run_report.hpp"

#include <fstream>

#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/check.hpp"

namespace dasched {

void RunReport::set_meta(std::string_view key, std::string_view value) {
  for (auto& e : meta_) {
    if (e.key == key) {
      e.is_number = false;
      e.string_value = std::string(value);
      return;
    }
  }
  MetaEntry e;
  e.key = std::string(key);
  e.string_value = std::string(value);
  meta_.push_back(std::move(e));
}

void RunReport::set_meta(std::string_view key, double value) {
  for (auto& e : meta_) {
    if (e.key == key) {
      e.is_number = true;
      e.number_value = value;
      return;
    }
  }
  MetaEntry e;
  e.key = std::string(key);
  e.is_number = true;
  e.number_value = value;
  meta_.push_back(std::move(e));
}

void RunReport::add_table(const Table& table) { tables_.push_back(table); }

void RunReport::add_series(Series series) {
  for (const auto& point : series.points) {
    DASCHED_CHECK_MSG(point.size() == series.columns.size(),
                      "series point width does not match its columns");
  }
  series_.push_back(std::move(series));
}

void RunReport::add_finding(FindingRecord finding) {
  findings_.push_back(std::move(finding));
}

void RunReport::add_finding_totals(std::uint64_t errors, std::uint64_t warnings,
                                   std::uint64_t infos) {
  have_finding_totals_ = true;
  finding_errors_ += errors;
  finding_warnings_ += warnings;
  finding_infos_ += infos;
}

void RunReport::set_section_json(std::string_view name, std::string json) {
  for (const char* reserved : {"schema", "meta", "tables", "series", "findings",
                               "profile", "telemetry"}) {
    DASCHED_CHECK_MSG(name != reserved, "set_section_json: reserved section name");
  }
  for (auto& [key, value] : sections_) {
    if (key == name) {
      value = std::move(json);
      return;
    }
  }
  sections_.emplace_back(std::string(name), std::move(json));
}

void RunReport::attach_metrics(const MetricsRegistry& metrics, bool include_samples) {
  telemetry_json_ = metrics.to_json(include_samples);
}

void RunReport::write(std::ostream& os) const {
  json::Writer w(os);
  w.begin_object();
  w.kv("schema", "dasched.run_report.v1");

  w.key("meta");
  w.begin_object();
  for (const auto& e : meta_) {
    if (e.is_number) {
      w.kv(e.key, e.number_value);
    } else {
      w.kv(e.key, std::string_view(e.string_value));
    }
  }
  w.end_object();

  w.key("tables");
  w.begin_array();
  for (const auto& t : tables_) {
    w.begin_object();
    w.kv("title", std::string_view(t.title()));
    w.key("columns");
    w.begin_array();
    for (const auto& c : t.header()) w.value(std::string_view(c));
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : t.data()) {
      w.begin_array();
      for (const auto& cell : row) w.value(std::string_view(cell));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  if (!series_.empty()) {
    w.key("series");
    w.begin_array();
    for (const auto& s : series_) {
      w.begin_object();
      w.kv("name", std::string_view(s.name));
      w.key("columns");
      w.begin_array();
      for (const auto& c : s.columns) w.value(std::string_view(c));
      w.end_array();
      w.key("points");
      w.begin_array();
      for (const auto& point : s.points) {
        w.begin_array();
        for (const auto v : point) w.value(v);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }

  if (!findings_.empty() || have_finding_totals_) {
    w.key("findings");
    w.begin_object();
    w.kv("errors", static_cast<double>(finding_errors_));
    w.kv("warnings", static_cast<double>(finding_warnings_));
    w.kv("infos", static_cast<double>(finding_infos_));
    w.key("items");
    w.begin_array();
    for (const auto& f : findings_) {
      w.begin_object();
      w.kv("severity", std::string_view(f.severity));
      w.kv("code", std::string_view(f.code));
      w.kv("location", std::string_view(f.location));
      w.kv("message", std::string_view(f.message));
      if (!f.metrics.empty()) {
        w.key("metrics");
        w.begin_object();
        for (const auto& [key, value] : f.metrics) w.kv(key, value);
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!profile_json_.empty()) {
    w.key("profile");
    // Spliced verbatim: a complete JSON object from ExecProfiler::to_json().
    w.raw(profile_json_);
  }

  for (const auto& [name, json] : sections_) {
    w.key(name);
    // Spliced verbatim: the caller guaranteed one complete JSON value.
    w.raw(json);
  }

  if (!telemetry_json_.empty()) {
    w.key("telemetry");
    // Splice the pre-rendered registry snapshot verbatim: it is itself a
    // complete JSON object produced by MetricsRegistry::write_json.
    w.raw(telemetry_json_);
  }

  w.end_object();
  os << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace dasched
