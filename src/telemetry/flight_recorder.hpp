// Bounded flight recorder for the scheduled-execution engine: a fixed-size
// ring buffer per worker (plus one for the serial delivery barrier) of the
// most recent logical events -- executions, deliveries, drops, retries,
// crash skips, barrier summaries -- that can be dumped as a post-mortem JSON
// document when something goes wrong: the admission gate rejects a schedule,
// a unit-capacity phase overflows, or crash-stop faults fired during a run.
//
// Determinism contract: entries carry only *logical* fields (kind, big-round,
// ids, counts) and deliberately no wall-clock timestamps, so for a fixed seed
// the dump is byte-stable run over run (tests/test_profiler.cpp pins this).
// Wall-clock timing belongs to the Chrome trace sink.
//
// Memory contract: rings are sized once in begin_run() (power-of-two
// capacity, default 256 entries/ring of 24-byte PODs) and record() is a
// masked store plus an increment -- no allocation, no branch on fullness.
// Overwritten history is counted, not kept: dumps report how many entries
// each ring dropped.
//
// Dump schema (dasched.flight_recorder.v1, docs/OBSERVABILITY.md):
//   { "schema": ..., "reason": ..., "workers": N,
//     "rings": [ { "ring": "worker0" | ... | "barrier",
//                  "recorded": total, "dropped": overwritten,
//                  "entries": [ {"kind": ..., "round": ..., <per-kind>}... ] } ] }
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dasched {

struct FlightRecorderConfig {
  /// Entries per ring; rounded up to a power of two. Every ring holds the
  /// newest `capacity` entries and counts (not stores) the rest.
  std::uint32_t capacity = 256;
  /// Auto-dump target for dump_on(); empty disables file dumps (the
  /// in-memory rings still record and can be dumped explicitly).
  std::string dump_path;
};

class FlightRecorder {
 public:
  enum class Kind : std::uint32_t {
    kEvent = 0,        // a = (alg << 32) | vround, b = node
    kCrashSkip,        // a = (alg << 32) | vround, b = node
    kDeliver,          // a = (alg << 32) | tag,    b = directed edge
    kDropRandom,       // a = (alg << 32) | tag,    b = directed edge
    kDropOutage,       // a = (alg << 32) | tag,    b = directed edge
    kDropCrash,        // a = (alg << 32) | tag,    b = directed edge
    kDuplicate,        // a = (alg << 32) | tag,    b = directed edge
    kRetry,            // a = (attempt << 32) | tag, b = directed edge
    kLost,             // a = (alg << 32) | tag,    b = directed edge
    kBarrier,          // a = messages this round,  b = max edge load
  };

  /// 24-byte POD; rings move these as raw bytes.
  struct Entry {
    std::uint32_t kind = 0;
    std::uint32_t big_round = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  explicit FlightRecorder(FlightRecorderConfig cfg = {});

  /// Sizes one ring per worker plus the barrier ring and clears history
  /// (capacities retained -- repeated runs allocate nothing).
  void begin_run(std::uint32_t num_workers);

  std::uint32_t num_workers() const { return num_workers_; }
  std::uint32_t capacity() const { return capacity_; }

  /// Hot path: store into `worker`'s ring (index num_workers() is the
  /// barrier ring, or use record_barrier below).
  void record(std::uint32_t worker, Kind kind, std::uint32_t big_round,
              std::uint64_t a, std::uint64_t b) {
    Ring& ring = rings_[worker];
    ring.buf[ring.pos & mask_] = {static_cast<std::uint32_t>(kind), big_round, a, b};
    ++ring.pos;
  }
  void record_barrier(std::uint32_t big_round, std::uint64_t messages,
                      std::uint64_t max_load) {
    record(num_workers_, Kind::kBarrier, big_round, messages, max_load);
  }

  /// Post-mortem dump to the configured dump_path (no-op returning false when
  /// the path is empty or the file cannot be written). Safe to call before
  /// begin_run(): the dump then has zero rings.
  bool dump_on(std::string_view reason);
  std::uint64_t dumps_written() const { return dumps_written_; }
  const std::string& last_reason() const { return last_reason_; }

  /// The dump document, to any stream / as a string (tests pin
  /// byte-stability on this).
  void write_json(std::ostream& os, std::string_view reason) const;
  std::string to_json(std::string_view reason) const;
  bool dump_file(const std::string& path, std::string_view reason) const;

 private:
  struct Ring {
    std::vector<Entry> buf;  // size == capacity_, written modulo mask_
    std::uint64_t pos = 0;   // total recorded; oldest live entry is pos - cap
  };

  FlightRecorderConfig cfg_;
  std::uint32_t capacity_ = 0;  // power of two
  std::uint64_t mask_ = 0;
  std::uint32_t num_workers_ = 0;
  std::vector<Ring> rings_;  // num_workers_ + 1 (last = barrier)
  std::uint64_t dumps_written_ = 0;
  std::string last_reason_;
};

}  // namespace dasched
