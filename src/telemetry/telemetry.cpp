#include "telemetry/telemetry.hpp"

#include <chrono>

namespace dasched {

TelemetrySink::~TelemetrySink() = default;

std::uint64_t TelemetrySink::now_us() {
  const auto d = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void TeeSink::add_counter(std::string_view name, std::uint64_t delta) {
  for (auto* s : sinks_) {
    if (s != nullptr) s->add_counter(name, delta);
  }
}

void TeeSink::set_gauge(std::string_view name, double value) {
  for (auto* s : sinks_) {
    if (s != nullptr) s->set_gauge(name, value);
  }
}

void TeeSink::record_value(std::string_view name, double value) {
  for (auto* s : sinks_) {
    if (s != nullptr) s->record_value(name, value);
  }
}

void TeeSink::record_span(std::string_view category, std::string_view name,
                          std::uint64_t start_us, std::uint64_t dur_us,
                          std::span<const SpanArg> args) {
  for (auto* s : sinks_) {
    if (s != nullptr) s->record_span(category, name, start_us, dur_us, args);
  }
}

}  // namespace dasched
