// Structured JSON run reports: the machine-readable counterpart of the ASCII
// tables the benches and the CLI print. A report collects
//   * metadata       -- instance parameters (graph family, n, k, seed, ...),
//   * tables         -- every experiment Table, serialized cell-for-cell,
//   * series         -- named numeric point sets (sweep curves: each point is
//                       one value per column), for plots and diffing without
//                       re-parsing formatted table cells,
//   * findings       -- static-verifier diagnostics (src/verify/), each a
//                       severity + stable code + location + message + metrics,
//   * telemetry      -- a MetricsRegistry snapshot (optional),
// and writes one JSON document:
//   {
//     "schema": "dasched.run_report.v1",
//     "meta":   { "<key>": <string|number>, ... },
//     "tables": [ { "title": ..., "columns": [...], "rows": [[...], ...] } ],
//     "series": [ { "name": ..., "columns": [...],
//                   "points": [[<number>, ...], ...] } ],   // if any
//     "findings": { "errors": N, "warnings": N, "infos": N,  // if any
//                   "items": [ { "severity": ..., "code": ..., "location": ...,
//                                "message": ..., "metrics": {...} } ] },
//     "profile":   { ...ExecProfiler snapshot... }?,        // if attached
//     "telemetry": { ...MetricsRegistry snapshot... }?      // if attached
//   }
// This is what `--report out.json` produces from every bench binary and from
// examples/dasched_cli, making BENCH_*.json artifacts reproducible instead of
// scraped from stdout. See docs/OBSERVABILITY.md for the full schema.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace dasched {

class MetricsRegistry;

class RunReport {
 public:
  /// A named set of numeric points (a sweep curve). Every point must have
  /// exactly one value per column; add_series checks this.
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> points;
  };

  /// One static-verifier diagnostic (verify::Finding, flattened to strings so
  /// telemetry does not depend on the verifier).
  struct FindingRecord {
    std::string severity;  // "error" | "warning" | "info"
    std::string code;      // stable catalogue id (src/verify/invariants.hpp)
    std::string location;  // rendered location, "" if instance-wide
    std::string message;
    std::vector<std::pair<std::string, double>> metrics;
  };

  void set_meta(std::string_view key, std::string_view value);
  void set_meta(std::string_view key, const char* value) {
    set_meta(key, std::string_view(value));
  }
  void set_meta(std::string_view key, double value);
  void set_meta(std::string_view key, std::uint64_t value) {
    set_meta(key, static_cast<double>(value));
  }

  /// Copies the table (title, columns, rows) into the report.
  void add_table(const Table& table);

  /// Adds a numeric sweep series (see the schema above).
  void add_series(Series series);

  /// Appends one verifier finding to the `findings` section.
  void add_finding(FindingRecord finding);

  /// Accumulates exact severity totals for the `findings` section header.
  /// Totals may exceed the recorded items when the verifier's per-code cap
  /// dropped findings; call once per verifier Report merged in.
  void add_finding_totals(std::uint64_t errors, std::uint64_t warnings,
                          std::uint64_t infos);

  /// Embeds a snapshot of `metrics` taken now (include_samples controls
  /// whether full histogram sample lists are written).
  void attach_metrics(const MetricsRegistry& metrics, bool include_samples = true);

  /// Embeds a pre-rendered `profile` section (a complete JSON object --
  /// ExecProfiler::to_json()). Spliced verbatim, same contract as the
  /// telemetry section.
  void set_profile_json(std::string json) { profile_json_ = std::move(json); }

  /// Embeds a pre-rendered top-level section under `name` (the caller
  /// guarantees `json` is one complete JSON value -- e.g. the service
  /// daemon's dasched.service.v1 object). Sections are written between the
  /// profile and telemetry sections in insertion order; setting the same
  /// name again replaces the previous value. `name` must not collide with a
  /// fixed section (schema/meta/tables/series/findings/profile/telemetry).
  void set_section_json(std::string_view name, std::string json);

  bool empty() const {
    return meta_.empty() && tables_.empty() && series_.empty() &&
           findings_.empty() && !have_finding_totals_ && telemetry_json_.empty() &&
           profile_json_.empty() && sections_.empty();
  }
  std::size_t num_tables() const { return tables_.size(); }
  std::size_t num_series() const { return series_.size(); }
  std::size_t num_findings() const { return findings_.size(); }

  void write(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  struct MetaEntry {
    std::string key;
    bool is_number = false;
    std::string string_value;
    double number_value = 0.0;
  };
  std::vector<MetaEntry> meta_;
  std::vector<Table> tables_;
  std::vector<Series> series_;
  std::vector<FindingRecord> findings_;
  bool have_finding_totals_ = false;
  std::uint64_t finding_errors_ = 0;
  std::uint64_t finding_warnings_ = 0;
  std::uint64_t finding_infos_ = 0;
  std::string telemetry_json_;  // pre-rendered snapshot, "" if none
  std::string profile_json_;    // pre-rendered ExecProfiler snapshot, "" if none
  /// Named pre-rendered sections (insertion order preserved for byte-stable
  /// reports).
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace dasched
