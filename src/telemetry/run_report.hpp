// Structured JSON run reports: the machine-readable counterpart of the ASCII
// tables the benches and the CLI print. A report collects
//   * metadata       -- instance parameters (graph family, n, k, seed, ...),
//   * tables         -- every experiment Table, serialized cell-for-cell,
//   * series         -- named numeric point sets (sweep curves: each point is
//                       one value per column), for plots and diffing without
//                       re-parsing formatted table cells,
//   * telemetry      -- a MetricsRegistry snapshot (optional),
// and writes one JSON document:
//   {
//     "schema": "dasched.run_report.v1",
//     "meta":   { "<key>": <string|number>, ... },
//     "tables": [ { "title": ..., "columns": [...], "rows": [[...], ...] } ],
//     "series": [ { "name": ..., "columns": [...],
//                   "points": [[<number>, ...], ...] } ],   // if any
//     "telemetry": { ...MetricsRegistry snapshot... }?      // if attached
//   }
// This is what `--report out.json` produces from every bench binary and from
// examples/dasched_cli, making BENCH_*.json artifacts reproducible instead of
// scraped from stdout. See docs/OBSERVABILITY.md for the full schema.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.hpp"

namespace dasched {

class MetricsRegistry;

class RunReport {
 public:
  /// A named set of numeric points (a sweep curve). Every point must have
  /// exactly one value per column; add_series checks this.
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> points;
  };

  void set_meta(std::string_view key, std::string_view value);
  void set_meta(std::string_view key, const char* value) {
    set_meta(key, std::string_view(value));
  }
  void set_meta(std::string_view key, double value);
  void set_meta(std::string_view key, std::uint64_t value) {
    set_meta(key, static_cast<double>(value));
  }

  /// Copies the table (title, columns, rows) into the report.
  void add_table(const Table& table);

  /// Adds a numeric sweep series (see the schema above).
  void add_series(Series series);

  /// Embeds a snapshot of `metrics` taken now (include_samples controls
  /// whether full histogram sample lists are written).
  void attach_metrics(const MetricsRegistry& metrics, bool include_samples = true);

  bool empty() const {
    return meta_.empty() && tables_.empty() && series_.empty() &&
           telemetry_json_.empty();
  }
  std::size_t num_tables() const { return tables_.size(); }
  std::size_t num_series() const { return series_.size(); }

  void write(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  struct MetaEntry {
    std::string key;
    bool is_number = false;
    std::string string_value;
    double number_value = 0.0;
  };
  std::vector<MetaEntry> meta_;
  std::vector<Table> tables_;
  std::vector<Series> series_;
  std::string telemetry_json_;  // pre-rendered snapshot, "" if none
};

}  // namespace dasched
