#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"

namespace dasched {

namespace {

const char* kind_name(std::uint32_t kind) {
  switch (static_cast<FlightRecorder::Kind>(kind)) {
    case FlightRecorder::Kind::kEvent: return "event";
    case FlightRecorder::Kind::kCrashSkip: return "crash-skip";
    case FlightRecorder::Kind::kDeliver: return "deliver";
    case FlightRecorder::Kind::kDropRandom: return "drop-random";
    case FlightRecorder::Kind::kDropOutage: return "drop-outage";
    case FlightRecorder::Kind::kDropCrash: return "drop-crash";
    case FlightRecorder::Kind::kDuplicate: return "duplicate";
    case FlightRecorder::Kind::kRetry: return "retry";
    case FlightRecorder::Kind::kLost: return "lost";
    case FlightRecorder::Kind::kBarrier: return "barrier";
  }
  return "unknown";
}

void write_entry(json::Writer& w, const FlightRecorder::Entry& e) {
  w.begin_object();
  w.kv("kind", kind_name(e.kind));
  w.kv("round", std::uint64_t{e.big_round});
  switch (static_cast<FlightRecorder::Kind>(e.kind)) {
    case FlightRecorder::Kind::kEvent:
    case FlightRecorder::Kind::kCrashSkip:
      w.kv("alg", e.a >> 32);
      w.kv("vround", e.a & 0xffffffffu);
      w.kv("node", e.b);
      break;
    case FlightRecorder::Kind::kRetry:
      w.kv("attempt", e.a >> 32);
      w.kv("tag", e.a & 0xffffffffu);
      w.kv("edge", e.b);
      break;
    case FlightRecorder::Kind::kBarrier:
      w.kv("messages", e.a);
      w.kv("max_load", e.b);
      break;
    default:  // per-message fates: deliver / drops / duplicate / lost
      w.kv("alg", e.a >> 32);
      w.kv("tag", e.a & 0xffffffffu);
      w.kv("edge", e.b);
      break;
  }
  w.end_object();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(std::move(cfg)) {
  capacity_ = std::bit_ceil(std::max<std::uint32_t>(1, cfg_.capacity));
  mask_ = capacity_ - 1;
}

void FlightRecorder::begin_run(std::uint32_t num_workers) {
  num_workers_ = num_workers;
  rings_.resize(std::size_t{num_workers} + 1);
  for (auto& ring : rings_) {
    ring.buf.resize(capacity_);
    ring.pos = 0;
  }
}

void FlightRecorder::write_json(std::ostream& os, std::string_view reason) const {
  json::Writer w(os);
  w.begin_object();
  w.kv("schema", "dasched.flight_recorder.v1");
  w.kv("reason", reason);
  w.kv("workers", std::uint64_t{num_workers_});
  w.kv("capacity", std::uint64_t{capacity_});
  w.key("rings");
  w.begin_array();
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = rings_[r];
    w.begin_object();
    w.kv("ring", r == num_workers_ ? std::string("barrier")
                                   : "worker" + std::to_string(r));
    w.kv("recorded", ring.pos);
    const std::uint64_t live = std::min<std::uint64_t>(ring.pos, capacity_);
    w.kv("dropped", ring.pos - live);
    w.key("entries");
    w.begin_array();
    // Oldest to newest among the live window.
    for (std::uint64_t i = ring.pos - live; i < ring.pos; ++i) {
      write_entry(w, ring.buf[i & mask_]);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string FlightRecorder::to_json(std::string_view reason) const {
  std::ostringstream oss;
  write_json(oss, reason);
  return oss.str();
}

bool FlightRecorder::dump_file(const std::string& path, std::string_view reason) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os, reason);
  return static_cast<bool>(os);
}

bool FlightRecorder::dump_on(std::string_view reason) {
  last_reason_ = std::string(reason);
  if (cfg_.dump_path.empty()) return false;
  if (!dump_file(cfg_.dump_path, reason)) return false;
  ++dumps_written_;
  return true;
}

}  // namespace dasched
