// SchedulerDaemon: scheduling-as-a-service on a simulated clock.
//
// The paper's Theorem 1.1 schedules a *fixed* batch of k algorithms: draw one
// random start delay per algorithm, run everything in big-rounds of
// Theta(log n) physical rounds, and w.h.p. no (big-round, edge) cell exceeds
// its phase budget. The daemon extends that regime to an *online* setting --
// jobs arrive continuously on a simulated tick clock, tagged by tenant -- by
// keeping the delay trick but applying it incrementally:
//
//   admission   Arrivals enter a bounded queue (overflow is an immediate
//               kQueueFull rejection -- the outermost backpressure valve).
//   compose     At every epoch boundary the daemon drains the queue in
//               fairness order (fewest-admitted tenant first, then arrival,
//               then job id) and folds each job into the live composite
//               schedule: the job draws a fresh random delay from its own
//               seed stream while already-accepted jobs keep theirs --
//               re-randomizing only the newcomer preserves the Theorem 1.1
//               congestion argument for the union. A job whose solo loads
//               would push any (big-round, edge) cell over the phase budget
//               is deferred to the next epoch (bounded retries, then a
//               kCongestionBudget rejection: sustained-overload backpressure).
//   profile     Folding needs the job's solo communication pattern. Profiles
//               are cached across jobs and epochs keyed on (program
//               fingerprint, graph fingerprint) -- see profile_cache.hpp --
//               so repeat tenants skip their solo runs entirely.
//   gate        Every composed schedule passes the static verifier
//               (verify::check_schedule) *before* execution. Cached profiles
//               are trusted data, not trusted truth: a stale or poisoned
//               entry surfaces here as an error finding attributed to the
//               offending job, which is then re-profiled from scratch and
//               requeued (and rejected kVerifyFailed if it fails again).
//               The same options are installed as the executor's
//               VerifyingAdmission gate, so nothing unverified ever runs.
//   execute     The admitted cohort runs on the engine; per-job completion is
//               checked against the solo ground truth, and the execution
//               fingerprint is folded into the service fingerprint.
//
// Everything is driven by seeds and the simulated clock: a (graph, config,
// stream) triple produces bit-identical ServiceResults -- outcomes, stats,
// fingerprint -- for every thread count and tile size (the engine's identity
// contract lifts to the service layer). See docs/SERVICE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "congest/executor.hpp"
#include "graph/graph.hpp"
#include "service/job_stream.hpp"
#include "service/profile_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace dasched::service {

/// Terminal rejection reasons (a deferred job that later completes is not
/// rejected; its outcome records the deferral count instead).
enum class RejectCode : std::uint8_t {
  kNone = 0,
  kQueueFull,         // admission queue at capacity on arrival
  kCongestionBudget,  // offered congestion exceeded the phase budget in more
                      // than max_deferrals consecutive composes
  kVerifyFailed,      // verifier gate rejected the job even after re-profiling
};

const char* to_string(RejectCode code);

struct ServiceConfig {
  /// Physical rounds per big-round. 0 derives ceil(log2 n), the paper's
  /// Theta(log n) phase.
  std::uint32_t phase_len = 0;
  /// Per-(big-round, directed edge) load budget for admission and the
  /// verifier gate. 0 derives 2 * phase_len.
  std::uint32_t congestion_budget = 0;
  /// Seed stream for per-job delays (combined with job id and epoch).
  std::uint64_t delay_seed = 5;
  /// Ticks between compose points while arrivals are still flowing. Once the
  /// stream drains, the daemon composes every tick until the queue is empty.
  std::uint64_t epoch_ticks = 8;
  std::size_t cache_capacity = 64;
  /// Admission-queue bound; arrivals beyond it are rejected kQueueFull.
  std::size_t max_queue = 256;
  /// Consecutive budget-overflow deferrals before a kCongestionBudget reject.
  std::uint32_t max_deferrals = 4;
  /// Executor threading (0/1 = serial). Never affects results -- the service
  /// inherits the engine's bit-identity contract.
  std::uint32_t num_threads = 0;
  std::size_t tile_bytes = kDefaultTileBytes;
  std::uint32_t max_payload_words = kDefaultMaxPayloadWords;
  /// Profile cache-miss jobs from the static pattern analyzer (src/analysis)
  /// when their footprint yields an exact certificate with outputs, instead
  /// of solo-executing them -- near-free cold-start admission. The verifier
  /// gate still checks every composed schedule and execution still compares
  /// against the (now derived) solo outputs, so a wrong certificate is caught
  /// exactly like a poisoned cache entry. Never affects results: certificates
  /// are cell-for-cell equal to solo runs (tests/test_analysis.cpp), so
  /// fingerprints match the executed-profiling path bit for bit.
  bool static_admission = true;
  /// Optional sink (borrowed). Emits service.* counters (arrivals, admits,
  /// rejections by code, deferrals, cache traffic, gate runs) plus the
  /// executor's and verifier's own instrumentation.
  TelemetrySink* telemetry = nullptr;
};

/// Per-job trajectory through the service, indexed by job id in
/// ServiceResult::outcomes.
struct JobOutcome {
  JobRequest request;
  bool admitted = false;    // survived the gate and executed
  bool completed = false;   // executed to completion with solo-equal outputs
  RejectCode rejected = RejectCode::kNone;
  std::uint32_t deferrals = 0;  // compose passes that pushed the job back
  bool cache_hit = false;       // profile came from the cache
  std::uint32_t delay = 0;      // big-round start delay of the admitting epoch
  std::uint64_t epoch = 0;      // compose pass that admitted the job
  std::uint64_t finish_tick = 0;
  std::uint64_t latency_ticks = 0;  // finish_tick - arrival_tick
};

struct ServiceStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_congestion = 0;
  std::uint64_t rejected_verify = 0;
  std::uint64_t deferrals = 0;       // budget-overflow defer events
  std::uint64_t requeues_verify = 0; // gate-triggered re-profile requeues
  std::uint64_t composes = 0;        // compose passes over a non-empty queue
  std::uint64_t executions = 0;      // cohorts that reached the engine
  std::uint64_t gate_runs = 0;
  std::uint64_t gate_rejections = 0;
  std::uint64_t total_big_rounds = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t ticks = 0;
  /// Cache-miss profiles synthesized from static certificates (no execution)
  /// vs solo-executed. static + executed == cache misses served.
  std::uint64_t profiles_static = 0;
  std::uint64_t profiles_executed = 0;
  CacheStats cache;
  /// Wall-clock time inside serve(). Nondeterministic: excluded from the
  /// fingerprint and from to_json(false).
  double wall_seconds = 0.0;
  /// Wall-clock time spent acquiring cache-miss profiles (the cold-start
  /// admission cost bench E17 measures). Nondeterministic, like wall_seconds.
  double profile_seconds = 0.0;

  std::uint64_t rejected() const {
    return rejected_queue_full + rejected_congestion + rejected_verify;
  }
};

struct ServiceResult {
  std::vector<JobOutcome> outcomes;  // indexed by job id
  ServiceStats stats;
  /// Nearest-rank percentiles of latency_ticks over completed jobs.
  std::uint64_t latency_p50 = 0;
  std::uint64_t latency_p90 = 0;
  std::uint64_t latency_p99 = 0;
  double latency_mean_ticks = 0.0;
  /// End-to-end digest: every epoch's execution fingerprint plus every job's
  /// outcome fields (wall time excluded). Equal fingerprints mean the whole
  /// service trajectory -- admissions, deferrals, delays, outputs -- agreed.
  std::uint64_t fingerprint = 0;

  double jobs_per_sec() const {
    return stats.wall_seconds > 0.0
               ? static_cast<double>(stats.completed) / stats.wall_seconds
               : 0.0;
  }
  double cache_hit_rate() const {
    const std::uint64_t total = stats.cache.hits + stats.cache.misses;
    return total > 0 ? static_cast<double>(stats.cache.hits) / static_cast<double>(total)
                     : 0.0;
  }

  /// The `dasched.service.v1` JSON object (RunReport::set_section_json
  /// payload). With include_timing=false the document is a pure function of
  /// the run's deterministic state -- byte-identical across repeats and
  /// thread counts; include_timing=true adds wall_seconds and the derived
  /// jobs/sec and messages/sec rates.
  std::string to_json(bool include_timing = true) const;
};

class SchedulerDaemon {
 public:
  /// The graph is borrowed and must outlive the daemon.
  explicit SchedulerDaemon(const Graph& g, ServiceConfig cfg = {});

  /// Runs the full stream to quiescence: every job ends admitted+executed or
  /// rejected with a reason. `stream` must be sorted by (arrival_tick,
  /// job_id) with dense job ids, as generate_job_stream produces.
  ServiceResult serve(const std::vector<JobRequest>& stream);

  const ProfileCache& cache() const { return cache_; }
  /// Mutable cache access for administration (pre-warming, manual
  /// invalidation) and for tests that inject stale entries to exercise the
  /// verifier gate. The daemon never needs this itself.
  ProfileCache& mutable_cache() { return cache_; }
  std::uint32_t phase_len() const { return phase_len_; }
  std::uint32_t congestion_budget() const { return budget_; }

 private:
  struct Pending {
    JobRequest request;
    std::uint32_t deferrals = 0;
    /// Set after a gate rejection: skip the cache read and re-profile.
    bool force_profile = false;
  };
  struct Admitted {
    Pending pending;
    JobProfile profile;  // by value: cache entries may be evicted underneath
    ProfileKey key;
    bool cache_hit = false;
    std::uint32_t delay = 0;
  };

  /// One compose pass at the end of `tick`: fairness-sort the queue, fold
  /// each job into the live load grid (defer on overflow), gate the composed
  /// schedule, execute the survivors.
  void compose_and_execute(std::uint64_t tick, ServiceResult& result);

  /// Obtains the job's profile (cache or fresh solo run) and whether it hit.
  Admitted acquire_profile(Pending pending);

  void run_cohort(std::vector<Admitted> cohort, std::uint64_t tick,
                  ServiceResult& result);

  void count(std::string_view name, std::uint64_t delta = 1);

  const Graph& graph_;
  ServiceConfig cfg_;
  std::uint32_t phase_len_;
  std::uint32_t budget_;
  std::uint64_t graph_fp_;
  ProfileCache cache_;
  std::vector<Pending> queue_;
  // Fairness state: jobs admitted per tenant so far (ordered map -- the
  // compose sort iterates it).
  std::map<std::uint32_t, std::uint64_t> tenant_admitted_;
  std::uint64_t epoch_ = 0;  // compose-pass index (delay seed component)
  ServiceStats stats_;
  std::uint64_t fp_state_;  // running FNV-1a fold (util/fingerprint.hpp)
};

}  // namespace dasched::service
