// Solo-run profile cache for the scheduling service.
//
// Admitting a job requires its solo profile (communication pattern, outputs,
// message totals) -- the inputs to congestion accounting, delay drawing, and
// the verifier gate. Profiling means running the job alone on the graph,
// which dominates admission cost; but tenants resubmit recurring specs, so
// the daemon caches profiles keyed on (program fingerprint, graph
// fingerprint) and reuses them across jobs, epochs, and serve() calls.
//
// Eviction is deterministic LRU on a logical access clock (no wall time, no
// pointers ordered by address), so cache behaviour -- and therefore the whole
// service run -- is bit-identical across machines and thread counts. A
// cached entry is *trusted data, not trusted truth*: every composed schedule
// still passes the verifier gate, which is what catches a stale or poisoned
// entry (see the divergence test in tests/test_service.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "sched/problem.hpp"

namespace dasched::service {

/// Cache key: the program half comes from JobSpec::fingerprint(), the graph
/// half from graph_fingerprint(). Equal keys mean "same program text on the
/// same topology", which is exactly when a solo profile is reusable.
struct ProfileKey {
  std::uint64_t program_fp = 0;
  std::uint64_t graph_fp = 0;

  friend auto operator<=>(const ProfileKey&, const ProfileKey&) = default;
};

/// A cached solo run plus the headline scalars admission reads constantly.
struct JobProfile {
  std::uint32_t rounds = 0;         // declared rounds of the profiled program
  std::uint32_t max_edge_load = 0;  // solo congestion contribution
  std::uint64_t total_messages = 0;
  SoloRunResult solo;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // explicit erases (verifier-gate fallout)
};

class ProfileCache {
 public:
  /// capacity == 0 disables caching (every find misses, inserts are dropped).
  explicit ProfileCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up `key`, counting a hit or miss and bumping recency on hit.
  /// The returned pointer is invalidated by the next insert/erase -- callers
  /// that outlive the lookup must copy the profile.
  const JobProfile* find(const ProfileKey& key);

  /// Inserts (or replaces) the profile for `key`, evicting the
  /// least-recently-used entry when at capacity.
  void insert(const ProfileKey& key, JobProfile profile);

  /// Drops `key` if present (verifier-gate invalidation). Counts toward
  /// `invalidations` only when an entry was actually removed.
  void erase(const ProfileKey& key);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    JobProfile profile;
    std::uint64_t last_use = 0;
  };

  std::size_t capacity_;
  // std::map, not unordered: eviction scans iterate the container, and that
  // iteration feeds a decision (which key to evict). Deterministic order is
  // load-bearing here, not a style choice.
  std::map<ProfileKey, Entry> entries_;
  std::uint64_t clock_ = 0;  // logical access counter -> deterministic LRU
  CacheStats stats_;
};

}  // namespace dasched::service
