#include "service/daemon.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/analyzer.hpp"
#include "congest/simulator.hpp"
#include "sched/problem.hpp"
#include "telemetry/json.hpp"
#include "util/check.hpp"
#include "util/fingerprint.hpp"
#include "util/rng.hpp"
#include "verify/schedule_verifier.hpp"

namespace dasched::service {
namespace {

constexpr std::uint64_t ceil_div_u64(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

std::uint32_t derive_phase_len(std::uint32_t requested, NodeId n) {
  if (requested != 0) return requested;
  // ceil(log2 n) with the same floor the schedulers use (n < 2 -> 1).
  const NodeId clamped = n < 2 ? 2 : n;
  return static_cast<std::uint32_t>(std::bit_width(clamped - 1));
}

/// Nearest-rank percentile of a sorted sample (q in (0, 100]).
std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      ceil_div_u64(static_cast<std::uint64_t>(q * static_cast<double>(sorted.size())),
                   100));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

const char* to_string(RejectCode code) {
  switch (code) {
    case RejectCode::kNone:
      return "none";
    case RejectCode::kQueueFull:
      return "queue-full";
    case RejectCode::kCongestionBudget:
      return "congestion-budget";
    case RejectCode::kVerifyFailed:
      return "verify-failed";
  }
  return "unknown";
}

SchedulerDaemon::SchedulerDaemon(const Graph& g, ServiceConfig cfg)
    : graph_(g),
      cfg_(cfg),
      phase_len_(derive_phase_len(cfg.phase_len, g.num_nodes())),
      budget_(cfg.congestion_budget != 0 ? cfg.congestion_budget : 2 * phase_len_),
      graph_fp_(graph_fingerprint(g)),
      cache_(cfg.cache_capacity),
      fp_state_(kFnvOffsetBasis) {
  DASCHED_CHECK_MSG(g.num_nodes() > 0, "service: graph must be non-empty");
  DASCHED_CHECK_MSG(cfg_.epoch_ticks >= 1, "service: epoch_ticks must be >= 1");
  DASCHED_CHECK_MSG(cfg_.max_queue >= 1, "service: max_queue must be >= 1");
  DASCHED_CHECK_MSG(budget_ >= 1, "service: congestion budget must be >= 1");
}

void SchedulerDaemon::count(std::string_view name, std::uint64_t delta) {
  if (cfg_.telemetry != nullptr && delta > 0) cfg_.telemetry->add_counter(name, delta);
}

SchedulerDaemon::Admitted SchedulerDaemon::acquire_profile(Pending pending) {
  Admitted adm;
  adm.key = ProfileKey{pending.request.spec.fingerprint(), graph_fp_};
  if (!pending.force_profile) {
    if (const JobProfile* cached = cache_.find(adm.key)) {
      // Shape guard: a profile recorded on a different topology would make
      // the congestion accounting below read out of bounds. Anything subtler
      // (wrong rounds, wrong loads, wrong outputs) is deliberately left for
      // the verifier gate -- the cache is data, the gate is the authority.
      if (cached->solo.pattern.num_directed_edges() == graph_.num_directed_edges()) {
        adm.profile = *cached;  // copy: inserts below may evict this entry
        adm.cache_hit = true;
        adm.pending = std::move(pending);
        return adm;
      }
      cache_.erase(adm.key);
    }
  }
  const auto profile_start = std::chrono::steady_clock::now();
  auto algorithm = make_algorithm(pending.request.spec);

  // Static admission: derive the solo ground truth from the algorithm's
  // pattern certificate instead of executing it. All JobSpec kinds declare
  // exact footprints today, but the executed path stays as the fallback for
  // future kinds with envelope/opaque footprints.
  SoloRunResult solo;
  bool from_static = false;
  if (cfg_.static_admission) {
    analysis::PatternCertificate cert = analysis::analyze(graph_, *algorithm);
    if (cert.exact() && cert.has_outputs) {
      solo = cert.to_solo();
      from_static = true;
    }
  }
  if (!from_static) {
    solo = Simulator(graph_, cfg_.max_payload_words, cfg_.telemetry).run(*algorithm);
  }
  if (from_static) {
    ++stats_.profiles_static;
    count("service.profiles_static");
  } else {
    ++stats_.profiles_executed;
    count("service.profiles_executed");
  }
  stats_.profile_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - profile_start)
          .count();

  adm.profile.rounds = algorithm->rounds();
  adm.profile.max_edge_load = solo.pattern.max_edge_load();
  adm.profile.total_messages = solo.total_messages;
  adm.profile.solo = std::move(solo);
  cache_.insert(adm.key, adm.profile);
  adm.cache_hit = false;
  adm.pending = std::move(pending);
  return adm;
}

void SchedulerDaemon::compose_and_execute(std::uint64_t tick, ServiceResult& result) {
  if (queue_.empty()) return;
  ++stats_.composes;
  const std::uint64_t epoch = epoch_++;

  // Fairness order: tenants with the fewest admitted jobs go first, ties
  // broken by arrival then job id. The snapshot is taken once so the sort
  // key is stable while this pass itself admits jobs.
  const auto snapshot = tenant_admitted_;
  std::stable_sort(queue_.begin(), queue_.end(),
                   [&snapshot](const Pending& a, const Pending& b) {
                     const auto admitted_of = [&snapshot](std::uint32_t tenant) {
                       const auto it = snapshot.find(tenant);
                       return it == snapshot.end() ? std::uint64_t{0} : it->second;
                     };
                     const auto ka = admitted_of(a.request.tenant);
                     const auto kb = admitted_of(b.request.tenant);
                     if (ka != kb) return ka < kb;
                     if (a.request.arrival_tick != b.request.arrival_tick)
                       return a.request.arrival_tick < b.request.arrival_tick;
                     return a.request.job_id < b.request.job_id;
                   });

  // Incremental composition: fold jobs into the live load grid one at a
  // time. edge_acc holds the summed solo loads of everything accepted so
  // far; grid[t][d] the composed per-cell loads. Accepted jobs keep their
  // delays -- only the newcomer draws fresh randomness.
  std::vector<Admitted> cohort;
  std::vector<Pending> deferred;
  std::vector<std::uint32_t> edge_acc(graph_.num_directed_edges(), 0);
  std::vector<std::vector<std::uint32_t>> grid;  // [big_round][directed edge]

  for (auto& pending : queue_) {
    Admitted adm = acquire_profile(std::move(pending));
    const CommunicationPattern& pattern = adm.profile.solo.pattern;

    // Offered congestion including this job: the Theorem 1.1 delay range is
    // ceil(congestion / phase_len) big-rounds.
    std::uint32_t offered = 0;
    for (std::uint32_t d = 0; d < graph_.num_directed_edges(); ++d) {
      const std::uint32_t load = edge_acc[d] + pattern.edge_load(d);
      offered = std::max(offered, load);
    }
    const auto range = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, ceil_div_u64(offered, phase_len_)));
    const std::uint32_t delay = static_cast<std::uint32_t>(
        splitmix64(seed_combine(cfg_.delay_seed, adm.pending.request.job_id, epoch)) %
        range);

    // Trial fold: would any (big-round, edge) cell exceed the phase budget?
    const std::uint32_t last_round = pattern.last_message_round();
    const std::size_t need_rows = delay + last_round;
    bool overflow = false;
    for (std::uint32_t r = 1; r <= last_round && !overflow; ++r) {
      const std::size_t t = delay + r - 1;
      if (t >= grid.size()) continue;  // untouched rows hold zero load
      for (const std::uint32_t d : pattern.edges_in_round(r)) {
        if (grid[t][d] + 1 > budget_) {
          overflow = true;
          break;
        }
      }
    }

    if (overflow) {
      ++stats_.deferrals;
      count("service.deferrals");
      JobOutcome& out = result.outcomes[adm.pending.request.job_id];
      ++out.deferrals;
      if (adm.pending.deferrals >= cfg_.max_deferrals) {
        out.rejected = RejectCode::kCongestionBudget;
        ++stats_.rejected_congestion;
        count("service.rejected.congestion_budget");
      } else {
        ++adm.pending.deferrals;
        deferred.push_back(std::move(adm.pending));
      }
      continue;
    }

    // Commit the fold.
    if (grid.size() < need_rows)
      grid.resize(need_rows, std::vector<std::uint32_t>(graph_.num_directed_edges(), 0));
    for (std::uint32_t r = 1; r <= last_round; ++r) {
      for (const std::uint32_t d : pattern.edges_in_round(r)) ++grid[delay + r - 1][d];
    }
    for (std::uint32_t d = 0; d < graph_.num_directed_edges(); ++d) {
      edge_acc[d] += pattern.edge_load(d);
    }
    adm.delay = delay;
    JobOutcome& out = result.outcomes[adm.pending.request.job_id];
    out.cache_hit = adm.cache_hit;
    out.delay = delay;
    out.epoch = epoch;
    cohort.push_back(std::move(adm));
  }
  queue_ = std::move(deferred);

  if (!cohort.empty()) run_cohort(std::move(cohort), tick, result);
}

void SchedulerDaemon::run_cohort(std::vector<Admitted> cohort, std::uint64_t tick,
                                 ServiceResult& result) {
  verify::VerifyOptions opts;
  opts.congestion_budget = budget_;
  opts.phase_len = phase_len_;
  opts.telemetry = cfg_.telemetry;

  // The gate loop: verify the composed schedule; on failure, evict and
  // requeue the offending jobs (re-profiled from scratch next epoch) and
  // re-verify the remainder with their delays untouched.
  while (!cohort.empty()) {
    ScheduleProblem problem(graph_);
    std::vector<SoloRunResult> solos;
    std::vector<std::uint32_t> delays;
    solos.reserve(cohort.size());
    delays.reserve(cohort.size());
    for (auto& adm : cohort) {
      problem.add(make_algorithm(adm.pending.request.spec));
      solos.push_back(adm.profile.solo);
      delays.push_back(adm.delay);
    }
    problem.adopt_solo(std::move(solos));
    const auto algorithms = problem.algorithm_ptrs();
    const ScheduleTable table =
        ScheduleTable::from_delays(algorithms, graph_.num_nodes(), delays);

    ++stats_.gate_runs;
    count("service.gate_runs");
    const verify::Report report = verify::check_schedule(problem, table, opts);
    if (!report.ok()) {
      ++stats_.gate_rejections;
      count("service.gate_rejections");
      // Attribute errors to jobs; unattributed errors condemn the whole
      // cohort (defensive -- every gate error today carries a location).
      std::set<std::size_t> offenders;
      bool unattributed = false;
      for (const auto& finding : report.findings()) {
        if (finding.severity != verify::Severity::kError) continue;
        if (finding.location.alg == verify::Location::kNone) {
          unattributed = true;
        } else {
          offenders.insert(static_cast<std::size_t>(finding.location.alg));
        }
      }
      if (unattributed || offenders.empty()) {
        for (std::size_t a = 0; a < cohort.size(); ++a) offenders.insert(a);
      }
      // Remove offenders back-to-front so indices stay valid.
      for (auto it = offenders.rbegin(); it != offenders.rend(); ++it) {
        Admitted adm = std::move(cohort[*it]);
        cohort.erase(cohort.begin() + static_cast<std::ptrdiff_t>(*it));
        cache_.erase(adm.key);  // whatever the gate saw, stop serving it
        JobOutcome& out = result.outcomes[adm.pending.request.job_id];
        if (adm.pending.force_profile) {
          // Already re-profiled once; the job itself is unschedulable here.
          out.rejected = RejectCode::kVerifyFailed;
          ++stats_.rejected_verify;
          count("service.rejected.verify_failed");
        } else {
          adm.pending.force_profile = true;
          ++adm.pending.deferrals;
          ++out.deferrals;
          ++stats_.requeues_verify;
          count("service.requeues.verify");
          queue_.push_back(std::move(adm.pending));
        }
      }
      continue;  // re-gate the surviving cohort
    }

    // Admitted: run it, with the same verifier installed as the engine's
    // admission gate (belt and braces -- it just passed statically).
    verify::VerifyingAdmission gate(problem, opts);
    ExecConfig ec;
    ec.max_payload_words = cfg_.max_payload_words;
    ec.tile_bytes = cfg_.tile_bytes;
    ec.num_threads = cfg_.num_threads;
    ec.telemetry = cfg_.telemetry;
    ec.admission = &gate;
    Executor executor(graph_, ec);
    const ExecutionResult exec = executor.run(algorithms, table);

    ++stats_.executions;
    stats_.total_big_rounds += exec.num_big_rounds;
    stats_.total_messages += exec.total_messages;
    fp_state_ = fnv1a_mix(fp_state_, result_fingerprint(exec));

    for (std::size_t a = 0; a < cohort.size(); ++a) {
      const Admitted& adm = cohort[a];
      JobOutcome& out = result.outcomes[adm.pending.request.job_id];
      out.admitted = true;
      bool complete = true;
      for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
        if (!exec.completed[a][v] ||
            exec.outputs[a][v] != adm.profile.solo.outputs[v]) {
          complete = false;
          break;
        }
      }
      out.completed = complete;
      out.finish_tick = tick + 1;
      out.latency_ticks = out.finish_tick - adm.pending.request.arrival_tick;
      ++tenant_admitted_[adm.pending.request.tenant];
      ++stats_.admitted;
      count("service.jobs_admitted");
      if (complete) {
        ++stats_.completed;
        count("service.jobs_completed");
        if (cfg_.telemetry != nullptr) {
          cfg_.telemetry->record_value("service.schedule_latency_ticks",
                                       static_cast<double>(out.latency_ticks));
        }
      }
      if (adm.cache_hit) count("service.cache_hits");
    }
    return;
  }
}

ServiceResult SchedulerDaemon::serve(const std::vector<JobRequest>& stream) {
  const auto start = std::chrono::steady_clock::now();
  TimedSpan span(cfg_.telemetry, "service", "serve");

  ServiceResult result;
  result.outcomes.resize(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    DASCHED_CHECK_MSG(stream[i].job_id == i, "service: stream job ids must be dense");
    result.outcomes[i].request = stream[i];
  }

  std::size_t next = 0;  // next arrival to admit
  std::uint64_t tick = 0;
  while (next < stream.size() || !queue_.empty()) {
    // Admit this tick's arrivals.
    while (next < stream.size() && stream[next].arrival_tick <= tick) {
      const JobRequest& request = stream[next++];
      ++stats_.arrived;
      count("service.jobs_arrived");
      if (queue_.size() >= cfg_.max_queue) {
        result.outcomes[request.job_id].rejected = RejectCode::kQueueFull;
        ++stats_.rejected_queue_full;
        count("service.rejected.queue_full");
        continue;
      }
      queue_.push_back(Pending{request, 0, false});
      stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                        queue_.size());
    }

    // Compose at epoch boundaries; once the stream drains, compose every
    // tick so the queue runs dry (bounded by max_deferrals per job).
    const bool drained = next >= stream.size();
    if ((tick + 1) % cfg_.epoch_ticks == 0 || drained) {
      compose_and_execute(tick, result);
    }
    ++tick;
  }
  stats_.ticks = tick;
  stats_.cache = cache_.stats();

  // Fold every outcome into the fingerprint: the digest pins the full
  // trajectory (who was admitted when, with which delay, to what end), not
  // just the execution outputs.
  std::uint64_t fp = fp_state_;
  for (const JobOutcome& out : result.outcomes) {
    fp = fnv1a_mix(fp, out.request.job_id);
    fp = fnv1a_mix(fp, static_cast<std::uint64_t>(out.rejected));
    fp = fnv1a_mix(fp, (std::uint64_t{out.admitted} << 2) |
                           (std::uint64_t{out.completed} << 1) |
                           std::uint64_t{out.cache_hit});
    fp = fnv1a_mix(fp, out.deferrals);
    fp = fnv1a_mix(fp, out.delay);
    fp = fnv1a_mix(fp, out.finish_tick);
  }
  result.fingerprint = fp;

  std::vector<std::uint64_t> latencies;
  for (const JobOutcome& out : result.outcomes) {
    if (out.completed) latencies.push_back(out.latency_ticks);
  }
  std::sort(latencies.begin(), latencies.end());
  result.latency_p50 = nearest_rank(latencies, 50.0);
  result.latency_p90 = nearest_rank(latencies, 90.0);
  result.latency_p99 = nearest_rank(latencies, 99.0);
  if (!latencies.empty()) {
    std::uint64_t sum = 0;
    for (const std::uint64_t l : latencies) sum += l;
    result.latency_mean_ticks =
        static_cast<double>(sum) / static_cast<double>(latencies.size());
  }

  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.stats = stats_;

  if (cfg_.telemetry != nullptr) {
    cfg_.telemetry->set_gauge("service.peak_queue_depth",
                              static_cast<double>(stats_.peak_queue_depth));
    cfg_.telemetry->set_gauge("service.cache_hit_rate", result.cache_hit_rate());
    count("service.cache_misses", stats_.cache.misses);
    count("service.cache_evictions", stats_.cache.evictions);
    count("service.cache_invalidations", stats_.cache.invalidations);
    count("service.epochs", stats_.composes);
  }
  return result;
}

std::string ServiceResult::to_json(bool include_timing) const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.kv("schema", "dasched.service.v1");

  w.key("jobs");
  w.begin_object();
  w.kv("arrived", static_cast<double>(stats.arrived));
  w.kv("admitted", static_cast<double>(stats.admitted));
  w.kv("completed", static_cast<double>(stats.completed));
  w.kv("rejected", static_cast<double>(stats.rejected()));
  w.kv("rejected_queue_full", static_cast<double>(stats.rejected_queue_full));
  w.kv("rejected_congestion", static_cast<double>(stats.rejected_congestion));
  w.kv("rejected_verify", static_cast<double>(stats.rejected_verify));
  w.kv("deferrals", static_cast<double>(stats.deferrals));
  w.kv("requeues_verify", static_cast<double>(stats.requeues_verify));
  w.end_object();

  w.key("throughput");
  w.begin_object();
  w.kv("ticks", static_cast<double>(stats.ticks));
  w.kv("epochs", static_cast<double>(stats.composes));
  w.kv("executions", static_cast<double>(stats.executions));
  w.kv("total_big_rounds", static_cast<double>(stats.total_big_rounds));
  w.kv("total_messages", static_cast<double>(stats.total_messages));
  if (include_timing) {
    w.kv("wall_seconds", stats.wall_seconds);
    w.kv("jobs_per_sec", jobs_per_sec());
    w.kv("messages_per_sec",
         stats.wall_seconds > 0.0
             ? static_cast<double>(stats.total_messages) / stats.wall_seconds
             : 0.0);
  }
  w.end_object();

  w.key("latency_ticks");
  w.begin_object();
  w.kv("p50", static_cast<double>(latency_p50));
  w.kv("p90", static_cast<double>(latency_p90));
  w.kv("p99", static_cast<double>(latency_p99));
  w.kv("mean", latency_mean_ticks);
  w.end_object();

  w.key("queue");
  w.begin_object();
  w.kv("peak_depth", static_cast<double>(stats.peak_queue_depth));
  w.end_object();

  w.key("profiling");
  w.begin_object();
  w.kv("static", static_cast<double>(stats.profiles_static));
  w.kv("executed", static_cast<double>(stats.profiles_executed));
  if (include_timing) w.kv("profile_seconds", stats.profile_seconds);
  w.end_object();

  w.key("cache");
  w.begin_object();
  w.kv("hits", static_cast<double>(stats.cache.hits));
  w.kv("misses", static_cast<double>(stats.cache.misses));
  w.kv("evictions", static_cast<double>(stats.cache.evictions));
  w.kv("invalidations", static_cast<double>(stats.cache.invalidations));
  w.kv("hit_rate", cache_hit_rate());
  w.end_object();

  w.key("verify");
  w.begin_object();
  w.kv("gate_runs", static_cast<double>(stats.gate_runs));
  w.kv("gate_rejections", static_cast<double>(stats.gate_rejections));
  w.end_object();

  // Hex string: a u64 digest does not survive a double round-trip.
  char hex[19];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  w.kv("fingerprint", std::string_view(hex));
  w.end_object();
  return os.str();
}

}  // namespace dasched::service
