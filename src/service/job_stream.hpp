// Seeded multi-tenant job streams for the scheduling service.
//
// The service regime (ROADMAP "scheduling-as-a-service") replaces the fixed
// batch of k algorithms with jobs arriving continuously on a simulated
// clock. A stream is generated *up front* from a seed -- Poisson arrivals
// per tick, tenants drawn per arrival, each tenant cycling through a small
// pool of recurring job specs -- so the whole workload is a pure function of
// (JobStreamConfig, n) and every run of the daemon over it is reproducible,
// thread-count invariant, and diffable.
//
// Recurring specs are the point: a tenant resubmitting the same JobSpec
// produces the same program fingerprint, which is what makes the profile
// cache (profile_cache.hpp) earn its keep on repeat tenants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"

namespace dasched::service {

/// What a tenant asks the service to run: a concrete algorithm family plus
/// its parameters. The spec is the unit of profile caching -- two requests
/// with equal specs run byte-identical programs, so one solo profile serves
/// both (fingerprint() is the cache key's program half).
struct JobSpec {
  enum class Kind : std::uint8_t { kBroadcast = 0, kBfs = 1, kAggregate = 2 };

  Kind kind = Kind::kBroadcast;
  NodeId root = 0;            // broadcast/BFS source or aggregation root
  std::uint32_t radius = 3;   // hop radius; rounds follow the family's rule
  std::uint64_t payload_seed = 0;  // base seed and value material

  friend bool operator==(const JobSpec&, const JobSpec&) = default;

  /// Declared rounds of the program this spec builds (without building it).
  std::uint32_t rounds() const;

  /// Canonical program fingerprint (util/fingerprint.hpp) over every field
  /// that shapes the program: the cache key's program half.
  std::uint64_t fingerprint() const;
};

const char* to_string(JobSpec::Kind kind);

/// Builds the algorithm instance a spec describes. `root` must be < n of the
/// graph the job will run on (the stream generator guarantees this).
std::unique_ptr<DistributedAlgorithm> make_algorithm(const JobSpec& spec);

/// One queued unit of work: a spec plus its arrival bookkeeping. job_id is
/// the dense arrival index -- the deterministic tie-break everywhere order
/// matters (fairness sort, delay derivation).
struct JobRequest {
  std::uint64_t job_id = 0;
  std::uint32_t tenant = 0;
  std::uint64_t arrival_tick = 0;
  JobSpec spec;
};

struct JobStreamConfig {
  /// Expected arrivals per tick (Poisson). Must be > 0.
  double arrival_rate = 0.5;
  std::uint64_t arrival_seed = 1;
  /// Number of tenants; each arrival is tagged with one, uniformly. Must be >= 1.
  std::uint32_t tenants = 4;
  /// Ticks of arrivals: arrival_tick ranges over [0, duration). Must be >= 1.
  std::uint64_t duration = 64;
  /// Hop radius every generated spec uses.
  std::uint32_t radius = 3;
  /// Size of each tenant's recurring spec pool. Small pools mean frequent
  /// resubmission of identical specs -- the profile cache's hit source.
  std::uint32_t specs_per_tenant = 2;
};

/// The recurring spec a tenant's pool holds at `slot`: a pure function of
/// (arrival_seed, tenant, slot, radius, n), so streams and tests agree on it
/// without sharing state.
JobSpec tenant_spec(const JobStreamConfig& cfg, std::uint32_t tenant,
                    std::uint32_t slot, NodeId n);

/// Generates the full stream: for each tick, a Poisson(arrival_rate) number
/// of arrivals, each tagged with a uniform tenant and one spec from that
/// tenant's pool. Sorted by (arrival_tick, job_id) with dense job ids --
/// exactly the shape SchedulerDaemon::serve consumes.
std::vector<JobRequest> generate_job_stream(const JobStreamConfig& cfg, NodeId n);

}  // namespace dasched::service
