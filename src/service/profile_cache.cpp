#include "service/profile_cache.hpp"

#include <utility>

namespace dasched::service {

const JobProfile* ProfileCache::find(const ProfileKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_use = ++clock_;
  return &it->second.profile;
}

void ProfileCache::insert(const ProfileKey& key, JobProfile profile) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.profile = std::move(profile);
    it->second.last_use = ++clock_;
    return;
  }
  if (entries_.size() >= capacity_) {
    // Deterministic LRU: the logical clock strictly increases per access, so
    // the minimum is unique and independent of platform or thread count.
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_use < victim->second.last_use) victim = cand;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
  entries_.emplace(key, Entry{std::move(profile), ++clock_});
}

void ProfileCache::erase(const ProfileKey& key) {
  if (entries_.erase(key) > 0) ++stats_.invalidations;
}

}  // namespace dasched::service
