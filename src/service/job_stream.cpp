#include "service/job_stream.hpp"

#include <cmath>

#include "algos/aggregate.hpp"
#include "algos/bfs.hpp"
#include "algos/broadcast.hpp"
#include "util/check.hpp"
#include "util/fingerprint.hpp"
#include "util/rng.hpp"

namespace dasched::service {
namespace {

// Purpose tags keep the per-tick arrival draws and the per-(tenant, slot)
// spec derivation on disjoint seed streams.
constexpr std::uint64_t kArrivalTag = 0x5eb1ce0a44174a01ULL;
constexpr std::uint64_t kSpecTag = 0x5eb1ce0a44174a02ULL;

}  // namespace

std::uint32_t JobSpec::rounds() const {
  switch (kind) {
    case Kind::kBroadcast:
    case Kind::kBfs:
      return radius;
    case Kind::kAggregate:
      return 3 * radius + 1;
  }
  DASCHED_CHECK_MSG(false, "JobSpec::rounds: unknown kind");
  return 0;
}

std::uint64_t JobSpec::fingerprint() const {
  return Fingerprint{}
      .mix(static_cast<std::uint64_t>(kind))
      .mix(root)
      .mix(radius)
      .mix(payload_seed)
      .digest();
}

const char* to_string(JobSpec::Kind kind) {
  switch (kind) {
    case JobSpec::Kind::kBroadcast:
      return "broadcast";
    case JobSpec::Kind::kBfs:
      return "bfs";
    case JobSpec::Kind::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

std::unique_ptr<DistributedAlgorithm> make_algorithm(const JobSpec& spec) {
  DASCHED_CHECK_MSG(spec.radius >= 1, "JobSpec: radius must be >= 1");
  switch (spec.kind) {
    case JobSpec::Kind::kBroadcast:
      return std::make_unique<BroadcastAlgorithm>(
          spec.root, spec.radius, splitmix64(spec.payload_seed), spec.payload_seed);
    case JobSpec::Kind::kBfs:
      return std::make_unique<BfsAlgorithm>(spec.root, spec.radius, spec.payload_seed);
    case JobSpec::Kind::kAggregate:
      return std::make_unique<AggregateAlgorithm>(spec.root, spec.radius,
                                                  spec.payload_seed);
  }
  DASCHED_CHECK_MSG(false, "make_algorithm: unknown kind");
  return nullptr;
}

JobSpec tenant_spec(const JobStreamConfig& cfg, std::uint32_t tenant,
                    std::uint32_t slot, NodeId n) {
  DASCHED_CHECK(n > 0);
  DASCHED_CHECK(cfg.radius >= 1);
  const std::uint64_t material = seed_combine(cfg.arrival_seed, kSpecTag, tenant, slot);
  JobSpec spec;
  spec.kind = static_cast<JobSpec::Kind>((tenant + slot) % 3);
  spec.root = static_cast<NodeId>(splitmix64(material) % n);
  spec.radius = cfg.radius;
  spec.payload_seed = seed_combine(material, kSpecTag);
  return spec;
}

std::vector<JobRequest> generate_job_stream(const JobStreamConfig& cfg, NodeId n) {
  DASCHED_CHECK_MSG(cfg.arrival_rate > 0.0, "job stream: arrival rate must be > 0");
  DASCHED_CHECK_MSG(cfg.tenants >= 1, "job stream: need at least one tenant");
  DASCHED_CHECK_MSG(cfg.duration >= 1, "job stream: duration must be >= 1");
  DASCHED_CHECK_MSG(cfg.specs_per_tenant >= 1,
                    "job stream: need at least one spec per tenant");

  std::vector<JobRequest> stream;
  const double threshold = std::exp(-cfg.arrival_rate);
  for (std::uint64_t tick = 0; tick < cfg.duration; ++tick) {
    // Per-tick Rng: inserting or removing ticks never perturbs the draws of
    // other ticks, so truncated and extended streams share a prefix.
    Rng rng(seed_combine(cfg.arrival_seed, kArrivalTag, tick));
    // Knuth's product-of-uniforms Poisson sampler; exact for the modest
    // arrival rates the service targets.
    std::uint32_t arrivals = 0;
    double product = rng.next_double();
    while (product > threshold) {
      ++arrivals;
      product *= rng.next_double();
    }
    for (std::uint32_t i = 0; i < arrivals; ++i) {
      JobRequest request;
      request.job_id = stream.size();
      request.tenant = static_cast<std::uint32_t>(rng.next_below(cfg.tenants));
      request.arrival_tick = tick;
      const auto slot = static_cast<std::uint32_t>(rng.next_below(cfg.specs_per_tenant));
      request.spec = tenant_spec(cfg, request.tenant, slot, n);
      stream.push_back(request);
    }
  }
  return stream;
}

}  // namespace dasched::service
