// Appendix A's distributed analogue of Newman's theorem: if every node's
// input fits in poly(n) bits, O(log n) bits of shared randomness suffice.
//
// An algorithm with R shared bits is a collection of 2^R deterministic
// algorithms; sampling poly(n) of them preserves, for every input, a >=3/5
// majority on the canonical output (Chernoff + union bound over the
// 2^{poly(n)} inputs). The argument is existential, but -- as the paper notes
// -- nodes can *deterministically* search candidate sub-collections in a
// fixed order and consistently adopt the first good one, since the check
// needs only local computation.
//
// This module implements exactly that brute-force search for instance sizes
// where it is exact: candidate sub-collections are generated in a canonical
// deterministic order and validated against an evaluation oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dasched {

/// Evaluation oracle: output (hashed) of deterministic algorithm `seed_index`
/// on `input_index`.
using NewmanEval = std::function<std::uint64_t(std::uint32_t seed_index,
                                               std::uint32_t input_index)>;

struct NewmanResult {
  /// Indices of the chosen sub-collection (empty if none found).
  std::vector<std::uint32_t> collection;
  /// Candidate collections examined before the first good one.
  std::uint32_t candidates_tried = 0;
  bool found = false;
};

/// Canonical output per input: the majority output over the full collection
/// (ties broken toward the smaller hash). Exposed for tests.
std::vector<std::uint64_t> newman_canonical_outputs(const NewmanEval& eval,
                                                    std::uint32_t num_seeds,
                                                    std::uint32_t num_inputs);

/// Finds, in deterministic order, the first sub-collection of `subset_size`
/// seed indices such that for *every* input, at least `num`/`den` of the
/// sub-collection produce the canonical output. `max_candidates` bounds the
/// search.
NewmanResult newman_reduce(const NewmanEval& eval, std::uint32_t num_seeds,
                           std::uint32_t num_inputs, std::uint32_t subset_size,
                           std::uint32_t num, std::uint32_t den,
                           std::uint32_t max_candidates = 1000);

}  // namespace dasched
