#include "derand/bellagio.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

BellagioResult run_bellagio(const Graph& g, std::uint32_t algorithm_rounds,
                            const SeededAlgorithmFactory& factory,
                            const BellagioConfig& cfg) {
  DASCHED_CHECK(algorithm_rounds >= 1);
  const NodeId n = g.num_nodes();
  BellagioResult result;

  // --- Lemma 4.2 clustering at radius scale Theta(T). ---
  ClusteringConfig ccfg;
  ccfg.seed = cfg.seed;
  ccfg.dilation = algorithm_rounds;
  ccfg.radius_factor = cfg.radius_factor;
  if (cfg.num_layers > 0) ccfg.num_layers = cfg.num_layers;
  const ClusteringBuilder builder(ccfg);
  const Clustering clustering =
      cfg.central_precomputation ? builder.build_central(g) : builder.build_distributed(g);
  result.precomputation_rounds += clustering.precomputation_rounds;
  result.num_layers = static_cast<std::uint32_t>(clustering.num_layers());

  // --- Lemma 4.3 seed sharing. ---
  RandSharingConfig scfg;
  scfg.seed = cfg.seed;
  if (cfg.seed_words > 0) scfg.words_per_seed = cfg.seed_words;
  const RandomnessSharing sharing(scfg);
  const SharedSeeds seeds = cfg.central_precomputation
                                ? sharing.run_central(g, clustering)
                                : sharing.run_distributed(g, clustering);
  result.precomputation_rounds += seeds.rounds;

  // --- One truncated copy per layer, run back to back. ---
  std::vector<std::unique_ptr<DistributedAlgorithm>> copies;
  std::vector<const DistributedAlgorithm*> ptrs;
  for (std::size_t l = 0; l < clustering.num_layers(); ++l) {
    copies.push_back(factory(seeds.layers[l].words));
    DASCHED_CHECK_MSG(copies.back()->rounds() == algorithm_rounds,
                      "factory must produce the declared round count");
    ptrs.push_back(copies.back().get());
  }

  Executor executor(g, {});
  const std::uint32_t t = algorithm_rounds;
  const auto exec = executor.run(
      ptrs, [&clustering, t](std::size_t l, NodeId v, std::uint32_t r) {
        // Layer l occupies big-rounds [l*T, (l+1)*T); the Lemma 4.4
        // truncation keeps boundary-cut executions causally closed.
        if (clustering.layers[l].h_prime[v] + 1 < r) return kNeverScheduled;
        return static_cast<std::uint32_t>(l) * t + (r - 1);
      });
  DASCHED_CHECK(exec.causality_violations == 0);
  result.execution_rounds = static_cast<std::uint64_t>(result.num_layers) * t;

  // --- Each node adopts the output of a fully-containing layer. ---
  result.outputs.assign(n, {});
  result.valid.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t l = 0; l < clustering.num_layers(); ++l) {
      if (clustering.layers[l].h_prime[v] >= algorithm_rounds && exec.completed[l][v]) {
        result.outputs[v] = exec.outputs[l][v];
        result.valid[v] = 1;
        break;
      }
    }
    if (!result.valid[v]) ++result.uncovered_nodes;
  }
  return result;
}

}  // namespace dasched
