#include "derand/newman.hpp"

#include <map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dasched {

std::vector<std::uint64_t> newman_canonical_outputs(const NewmanEval& eval,
                                                    std::uint32_t num_seeds,
                                                    std::uint32_t num_inputs) {
  std::vector<std::uint64_t> canonical(num_inputs);
  for (std::uint32_t x = 0; x < num_inputs; ++x) {
    std::map<std::uint64_t, std::uint32_t> votes;
    for (std::uint32_t s = 0; s < num_seeds; ++s) ++votes[eval(s, x)];
    std::uint64_t best = 0;
    std::uint32_t best_count = 0;
    for (const auto& [out, count] : votes) {
      if (count > best_count) {
        best = out;
        best_count = count;
      }
    }
    canonical[x] = best;
  }
  return canonical;
}

NewmanResult newman_reduce(const NewmanEval& eval, std::uint32_t num_seeds,
                           std::uint32_t num_inputs, std::uint32_t subset_size,
                           std::uint32_t num, std::uint32_t den,
                           std::uint32_t max_candidates) {
  DASCHED_CHECK(subset_size >= 1);
  DASCHED_CHECK(den >= 1 && num <= den);
  const auto canonical = newman_canonical_outputs(eval, num_seeds, num_inputs);

  NewmanResult result;
  // Deterministic candidate order: candidate c draws its subset from Rng(c).
  // Every node running the same loop picks the same collection -- the
  // "consistent deterministic search" of Appendix A.
  for (std::uint32_t c = 0; c < max_candidates; ++c) {
    Rng rng(c);
    std::vector<std::uint32_t> subset;
    subset.reserve(subset_size);
    for (std::uint32_t i = 0; i < subset_size; ++i) {
      subset.push_back(static_cast<std::uint32_t>(rng.next_below(num_seeds)));
    }
    ++result.candidates_tried;

    bool good = true;
    for (std::uint32_t x = 0; x < num_inputs && good; ++x) {
      std::uint32_t agree = 0;
      for (const auto s : subset) {
        if (eval(s, x) == canonical[x]) ++agree;
      }
      good = (static_cast<std::uint64_t>(agree) * den >=
              static_cast<std::uint64_t>(num) * subset_size);
    }
    if (good) {
      result.collection = std::move(subset);
      result.found = true;
      return result;
    }
  }
  return result;
}

}  // namespace dasched
