// Appendix A, Meta-Theorem A.1: removing shared randomness from Bellagio
// (pseudo-deterministic) distributed algorithms at an O(log^2 n) slowdown.
//
// Given a T-round algorithm that needs R bits of shared randomness, the
// wrapper (1) carves Theta(log n) clustering layers with radius scale
// Theta(T) (Lemma 4.2), (2) shares a seed inside every cluster (Lemma 4.3),
// (3) runs one copy of the algorithm per layer, truncated at cluster
// boundaries exactly like Lemma 4.4 (node v executes round r of a layer only
// if h'(v) >= r-1), each copy consuming its *cluster's* seed, and (4) has
// each node adopt the output of a layer whose cluster fully contains its
// T-ball -- where the local execution is indistinguishable from a global
// shared-randomness run. The Bellagio property (a canonical output in >= 2/3
// of executions) is what makes outputs from different nodes' different
// chosen layers mutually consistent.
//
// Total cost: O(T log^2 n + R) pre-computation plus num_layers * T execution
// rounds, vs Omega(diameter) for naively electing a leader to broadcast
// shared randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/executor.hpp"
#include "graph/graph.hpp"
#include "sched/clustering.hpp"
#include "sched/rand_sharing.hpp"

namespace dasched {

/// Builds the seeded algorithm: `node_seeds[v]` is the shared seed as node v
/// knows it (cluster-consistent). The result must be a T-round algorithm
/// with T == declared_rounds.
using SeededAlgorithmFactory = std::function<std::unique_ptr<DistributedAlgorithm>(
    const std::vector<std::vector<std::uint64_t>>& node_seeds)>;

struct BellagioConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_layers = 0;   // 0: Theta(log n)
  double radius_factor = 2.0;     // clustering radius scale, in units of T
  std::uint32_t seed_words = 0;   // R / Theta(log n); 0: Theta(log n)
  bool central_precomputation = false;  // oracle clustering/sharing (fast sweeps)
};

struct BellagioResult {
  /// outputs[v]: the output node v adopts (from its first fully-containing
  /// layer); empty if the node had no valid layer (valid[v] == 0).
  std::vector<std::vector<std::uint64_t>> outputs;
  std::vector<std::uint8_t> valid;
  std::uint64_t precomputation_rounds = 0;  // Lemmas 4.2 + 4.3
  std::uint64_t execution_rounds = 0;       // num_layers * T
  std::uint32_t num_layers = 0;
  std::uint64_t uncovered_nodes = 0;
};

/// Runs the wrapper for a T-round seeded algorithm.
BellagioResult run_bellagio(const Graph& g, std::uint32_t algorithm_rounds,
                            const SeededAlgorithmFactory& factory,
                            const BellagioConfig& cfg);

}  // namespace dasched
