#include "verify/divergence.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace dasched::verify {

namespace {

Location cell_location(const LoadCell& cell) {
  Location loc;
  loc.big_round = cell.big_round;
  loc.edge = cell.edge;
  return loc;
}

}  // namespace

Report check_divergence(std::span<const LoadCell> predicted,
                        const ExecProfiler& measured,
                        const DivergenceOptions& opts) {
  Report report;
  report.max_findings_per_code = opts.max_findings_per_code;

  const std::vector<LoadCell> cells = measured.sorted_cells();

  std::uint64_t compared = 0;
  std::uint64_t diverged = 0;
  std::uint64_t messages_predicted = 0;
  std::uint64_t messages_measured = 0;
  std::uint64_t max_abs_delta = 0;

  // One linear merge over the two sorted surfaces; every cell present in
  // either surface is visited exactly once.
  std::size_t p = 0;
  std::size_t m = 0;
  while (p < predicted.size() || m < cells.size()) {
    const bool take_p =
        m >= cells.size() || (p < predicted.size() && predicted[p] < cells[m]);
    const bool take_m =
        p >= predicted.size() || (m < cells.size() && cells[m] < predicted[p]);
    if (take_p) {
      // Predicted but never realized: the sender transmitted nothing here.
      const LoadCell& cell = predicted[p++];
      messages_predicted += cell.load;
      ++diverged;
      max_abs_delta = std::max<std::uint64_t>(max_abs_delta, cell.load);
      std::ostringstream os;
      os << "predicted load " << cell.load
         << " never materialized (crash-stopped or truncated sender?)";
      report.add({Severity::kWarning, kCodeDivergenceUnrealized,
                  cell_location(cell), os.str(),
                  {{"predicted", static_cast<double>(cell.load)},
                   {"measured", 0.0}}});
    } else if (take_m) {
      // Measured but never predicted: bandwidth the static model missed.
      const LoadCell& cell = cells[m++];
      messages_measured += cell.load;
      ++diverged;
      max_abs_delta = std::max<std::uint64_t>(max_abs_delta, cell.load);
      std::ostringstream os;
      os << "measured load " << cell.load
         << " on a cell the static model did not predict (retransmissions?)";
      report.add({Severity::kWarning, kCodeDivergenceUnpredicted,
                  cell_location(cell), os.str(),
                  {{"predicted", 0.0},
                   {"measured", static_cast<double>(cell.load)}}});
    } else {
      // Same (big_round, edge) cell on both sides.
      const LoadCell& want = predicted[p++];
      const LoadCell& got = cells[m++];
      messages_predicted += want.load;
      messages_measured += got.load;
      ++compared;
      const std::uint64_t delta = want.load > got.load ? want.load - got.load
                                                       : got.load - want.load;
      if (delta > opts.tolerance) {
        ++diverged;
        max_abs_delta = std::max(max_abs_delta, delta);
        std::ostringstream os;
        os << "measured load " << got.load << " != predicted " << want.load
           << " (|delta| " << delta << " > tolerance " << opts.tolerance << ")";
        report.add({Severity::kWarning, kCodeDivergenceLoad,
                    cell_location(want), os.str(),
                    {{"predicted", static_cast<double>(want.load)},
                     {"measured", static_cast<double>(got.load)},
                     {"delta", static_cast<double>(delta)}}});
      }
    }
  }

  if (opts.scheduled_big_rounds > 0 &&
      measured.rounds_used() != opts.scheduled_big_rounds) {
    std::ostringstream os;
    os << "run used " << measured.rounds_used() << " big-rounds; the schedule has "
       << opts.scheduled_big_rounds << " (retry horizon extension?)";
    report.add({Severity::kWarning, kCodeDivergenceRounds, {}, os.str(),
                {{"scheduled", static_cast<double>(opts.scheduled_big_rounds)},
                 {"used", static_cast<double>(measured.rounds_used())}}});
  }

  {
    std::ostringstream os;
    os << compared << " cells joined on both surfaces, " << diverged
       << " diverged in total; " << messages_predicted << " messages predicted vs "
       << messages_measured << " measured";
    report.add({Severity::kInfo, kCodeDivergenceSummary, {}, os.str(),
                {{"cells_compared", static_cast<double>(compared)},
                 {"cells_diverged", static_cast<double>(diverged)},
                 {"messages_predicted", static_cast<double>(messages_predicted)},
                 {"messages_measured", static_cast<double>(messages_measured)},
                 {"max_abs_delta", static_cast<double>(max_abs_delta)}}});
  }

  if (opts.telemetry != nullptr) {
    opts.telemetry->add_counter("divergence.cells_compared", compared);
    opts.telemetry->add_counter("divergence.cells_diverged", diverged);
    opts.telemetry->add_counter("divergence.load",
                                report.count(kCodeDivergenceLoad));
    opts.telemetry->add_counter("divergence.unpredicted",
                                report.count(kCodeDivergenceUnpredicted));
    opts.telemetry->add_counter("divergence.unrealized",
                                report.count(kCodeDivergenceUnrealized));
    opts.telemetry->set_gauge("divergence.max_abs_delta",
                              static_cast<double>(max_abs_delta));
  }
  return report;
}

}  // namespace dasched::verify
