// Static schedule verification: prove a schedule's invariants from
// (ScheduleTable, Problem, Graph) alone, with no execution.
//
// The executor discovers bad schedules dynamically -- a causality violation
// is a counter after the fact, a congestion overflow is a measured overflow.
// check_schedule() proves (or refutes) the same properties *before* any
// event runs, from the solo communication patterns: which (round, edge)
// pairs carry messages is a pure function of the patterns, and where those
// messages land in time is a pure function of the table. Every violated
// invariant becomes a structured Finding (findings.hpp) keyed by the
// catalogue in invariants.hpp.
//
// Static loads equal dynamic loads exactly on a reliable network: algorithms
// are deterministic per (alg, node) seed, so a scheduled run transmits
// precisely the solo-pattern messages whose producer slot is scheduled
// (truncated producers send nothing -- Lemma 4.4's discard rule). Tests
// assert this equality against the executor's measured loads.
//
// VerifyingAdmission adapts the verifier to the executor's pre-execution
// admission gate (congest/admission.hpp): with it installed in
// ExecConfig::admission, a bad schedule aborts at admission time instead of
// corrupting a run.
#pragma once

#include <span>
#include <vector>

#include "congest/admission.hpp"
#include "sched/problem.hpp"
#include "telemetry/profiler.hpp"
#include "verify/findings.hpp"
#include "verify/invariants.hpp"

namespace dasched::verify {

/// Statically checks `schedule` against `problem`'s solo patterns and the
/// invariants selected by `opts`. Requires problem.run_solo() to have been
/// performed (congestion and patterns come from it). Never executes anything.
///
/// When `static_loads` is non-null it receives the full predicted load
/// surface -- one LoadCell per (big-round, directed edge) pair that carries
/// at least one message, sorted by (big_round, edge). On a reliable network
/// this equals the surface an ExecProfiler measures cell for cell; the
/// divergence monitor (verify/divergence.hpp) performs exactly that join.
Report check_schedule(const ScheduleProblem& problem, const ScheduleTable& schedule,
                      const VerifyOptions& opts = {},
                      std::vector<LoadCell>* static_loads = nullptr);

/// ExecConfig::admission adapter: verifies every schedule handed to the
/// executor and rejects on any error-severity finding. The report of the most
/// recent admit() is kept for inspection. Borrow semantics: the problem must
/// outlive the gate, the gate must outlive the executor run.
class VerifyingAdmission final : public ScheduleAdmission {
 public:
  explicit VerifyingAdmission(ScheduleProblem& problem, VerifyOptions opts = {})
      : problem_(&problem), opts_(opts) {
    problem.run_solo();
  }

  bool admit(std::span<const DistributedAlgorithm* const> algorithms,
             const ScheduleTable& schedule) const override;

  /// Findings of the most recent admit() (empty before the first call).
  const Report& last_report() const { return last_; }

 private:
  ScheduleProblem* problem_;
  VerifyOptions opts_;
  mutable Report last_;
};

}  // namespace dasched::verify
