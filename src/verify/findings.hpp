// Structured diagnostics emitted by the static schedule verifier.
//
// A Finding is one violated (or measured) invariant: a severity, a stable
// machine-readable code from the catalogue in invariants.hpp, a structured
// location inside the schedule (algorithm / node / virtual round / big-round
// / directed edge, each optional), a human-readable message, and named
// numeric metrics (the measured quantities behind the diagnosis -- loads,
// budgets, slots -- so reports stay diffable without re-parsing messages).
//
// A Report collects findings with full per-code counts. To keep pathological
// schedules from producing megabytes of diagnostics, at most
// `max_findings_per_code` findings are *recorded* per code (the rest are
// counted but dropped); `count(code)` and the severity totals always reflect
// every occurrence, so `ok()` is exact. See docs/VERIFICATION.md for the
// invariant catalogue and the JSON shape of the RunReport `findings` section.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace dasched {
class RunReport;
}

namespace dasched::verify {

enum class Severity { kInfo, kWarning, kError };

const char* to_string(Severity severity);

/// Where inside the schedule a finding points. Every field is optional
/// (kNone); str() renders only the set ones, in a fixed order.
struct Location {
  static constexpr std::int64_t kNone = -1;
  std::int64_t alg = kNone;
  std::int64_t node = kNone;
  std::int64_t vround = kNone;     // 1-based virtual round
  std::int64_t big_round = kNone;
  std::int64_t edge = kNone;       // directed edge id

  std::string str() const;
};

struct Finding {
  Severity severity = Severity::kError;
  std::string code;       // stable catalogue id (invariants.hpp)
  Location location;
  std::string message;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Instance-level quantities the verifier measured while checking; these are
/// the constants behind the paper's O(congestion + dilation log n) budget.
struct Measured {
  std::uint32_t congestion = 0;       // max_e sum_i c_i(e), from solo patterns
  std::uint32_t dilation = 0;         // max_i rounds(A_i)
  std::uint32_t phase_len = 0;        // physical rounds per big-round
  std::uint32_t big_rounds = 0;       // schedule length in big-rounds
  std::uint32_t max_edge_load = 0;    // static max per-edge per-big-round load
  std::uint64_t scheduled_slots = 0;  // (alg, node, vround) slots checked
  std::uint64_t checked_messages = 0; // pattern messages with a causality constraint
  std::uint64_t truncated_rows = 0;   // (alg, node) rows with a shortened prefix
  /// big_rounds * phase_len / (congestion + dilation * ceil(log2 n)):
  /// the measured constant of Theorem 1.1's round bound.
  double length_ratio = 0.0;
};

class Report {
 public:
  /// Records `finding` (subject to the per-code cap) and counts it (always).
  void add(Finding finding);

  const std::vector<Finding>& findings() const { return findings_; }

  std::uint64_t errors() const { return errors_; }
  std::uint64_t warnings() const { return warnings_; }
  std::uint64_t infos() const { return infos_; }
  /// No error-severity findings: the schedule is admissible.
  bool ok() const { return errors_ == 0; }

  /// Total occurrences of `code`, including ones dropped by the cap.
  std::uint64_t count(std::string_view code) const;
  bool has(std::string_view code) const { return count(code) > 0; }
  /// Sorted distinct codes of error-severity findings (exact, cap-immune).
  std::vector<std::string> error_codes() const;

  /// Recorded-findings cap per code; set before the verifier fills the report.
  std::size_t max_findings_per_code = 16;

  Measured measured;

  /// One row per recorded finding: severity | code | location | message.
  Table to_table(const std::string& title) const;

  /// Appends every recorded finding (and the exact severity totals) to the
  /// report's `findings` section (telemetry/run_report.hpp).
  void to_run_report(RunReport& report, std::string_view location_prefix = "") const;

 private:
  std::vector<Finding> findings_;
  // Ordered map: deterministic code enumeration for error_codes()/reports.
  std::map<std::string, std::uint64_t, std::less<>> counts_by_code_;
  std::map<std::string, std::uint64_t, std::less<>> error_counts_by_code_;
  std::uint64_t errors_ = 0;
  std::uint64_t warnings_ = 0;
  std::uint64_t infos_ = 0;
};

}  // namespace dasched::verify
