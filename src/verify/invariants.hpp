// The invariant catalogue of the static schedule verifier, and the options
// that select which invariants are *enforced* (error findings) versus only
// *measured* (info findings).
//
// Every correctness claim the repo previously enforced dynamically -- by
// running the executor and comparing outputs/fingerprints -- has a static
// counterpart here, checkable from (ScheduleTable, Problem, Graph) alone:
//
//   code                 paper reference                what it proves
//   ------------------   ----------------------------   ----------------------
//   dimension-mismatch   Section 2 (DAS instance)       table matches k, n, T_i;
//                                                       solo profiles match the
//                                                       declared algorithms
//                                                       (catches stale adopted
//                                                       cache entries)
//   gap                  Section 2 simulation mapping   scheduled rounds form a
//                                                       gap-free prefix 1..p
//   order                Section 2 simulation mapping   big-rounds strictly
//                                                       increase per (alg, node)
//   causality            Section 2 (simulation)         every message's consumer
//                                                       slot strictly after its
//                                                       producer slot
//   missing-producer     Lemma 4.4 discard rule         a scheduled consumer
//                                                       round whose producer
//                                                       round was truncated
//                                                       (discards must be
//                                                       causally closed)
//   retry-headroom       docs/FAULTS.md stretch lemma   with retry budget R,
//                                                       every consumer lands
//                                                       >= 2^R slots after its
//                                                       producer, so all
//                                                       retransmissions land
//                                                       strictly before it
//   congestion-overrun   Thm 1.1 / Lemma 3.2            per-directed-edge
//                                                       per-big-round load
//                                                       within the phase budget
//   block-delay          Lemma 4.4                      implied start delays lie
//                                                       inside the block-
//                                                       distribution support
//   block-monotonic      Lemma 4.4                      implied delays are
//                                                       non-decreasing in the
//                                                       virtual round (the
//                                                       eligible-layer prefix
//                                                       only shrinks)
//   length-budget        Thm 1.1                        total length within
//                                                       factor * (congestion +
//                                                       dilation * ceil(log2 n))
//   truncation           Lemma 4.4                      (info) count of rows
//                                                       with shortened prefixes
//   measured-constants   Thm 1.1                        (info) the measured
//                                                       constants of the bound
//
// The divergence.* family below is emitted by the *divergence monitor*
// (verify/divergence.hpp), which joins the loads the verifier predicted
// statically against the loads an ExecProfiler measured at runtime -- the
// closed-loop counterpart of the static checks above:
//
//   divergence.load        measured load != predicted load on a cell
//   divergence.unpredicted a (big-round, edge) cell carried messages the
//                          static model did not predict (e.g. retransmissions)
//   divergence.unrealized  a predicted cell carried no messages (e.g. a
//                          crash-stopped sender never transmitted)
//   divergence.rounds      the run used a different number of big-rounds than
//                          the static model (retry horizon extension)
//   divergence.summary     (info) totals: cells compared / diverged, messages
//                          predicted / measured
//
// docs/VERIFICATION.md is the narrative version of this table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "telemetry/telemetry.hpp"

namespace dasched::verify {

// ---------------------------------------------------------------------------
// Finding codes (stable identifiers; tests and CI match on these).
// ---------------------------------------------------------------------------
inline constexpr const char* kCodeDimensionMismatch = "dimension-mismatch";
inline constexpr const char* kCodeGap = "gap";
inline constexpr const char* kCodeOrder = "order";
inline constexpr const char* kCodeCausality = "causality";
inline constexpr const char* kCodeMissingProducer = "missing-producer";
inline constexpr const char* kCodeRetryHeadroom = "retry-headroom";
inline constexpr const char* kCodeCongestionOverrun = "congestion-overrun";
inline constexpr const char* kCodeBlockDelay = "block-delay";
inline constexpr const char* kCodeBlockMonotonic = "block-monotonic";
inline constexpr const char* kCodeLengthBudget = "length-budget";
inline constexpr const char* kCodeTruncation = "truncation";
inline constexpr const char* kCodeMeasured = "measured-constants";

// Certificate cross-check codes (verify/certificate_check.hpp): the static
// pattern analyzer's certificate joined against a solo-executed pattern.
//   certificate.dims             pattern/output dimensions disagree with the
//                                graph or the declared rounds
//   certificate.cell-mismatch    exact certificate: a (round, directed edge)
//                                cell's load differs from the executed one
//   certificate.output-mismatch  exact certificate: a node's derived output
//                                differs from the executed one
//   certificate.bound-violation  envelope/fallback certificate: an executed
//                                quantity exceeds the certified bound
//   certificate.summary          (info) totals: cells compared, messages,
//                                certificate kind
inline constexpr const char* kCodeCertificateDims = "certificate.dims";
inline constexpr const char* kCodeCertificateCellMismatch = "certificate.cell-mismatch";
inline constexpr const char* kCodeCertificateOutputMismatch = "certificate.output-mismatch";
inline constexpr const char* kCodeCertificateBoundViolation = "certificate.bound-violation";
inline constexpr const char* kCodeCertificateSummary = "certificate.summary";

// Divergence-monitor codes (verify/divergence.hpp).
inline constexpr const char* kCodeDivergenceLoad = "divergence.load";
inline constexpr const char* kCodeDivergenceUnpredicted = "divergence.unpredicted";
inline constexpr const char* kCodeDivergenceUnrealized = "divergence.unrealized";
inline constexpr const char* kCodeDivergenceRounds = "divergence.rounds";
inline constexpr const char* kCodeDivergenceSummary = "divergence.summary";

struct VerifyOptions {
  /// Per-directed-edge per-big-round load budget (the phase budget: a
  /// big-round of P physical rounds can carry at most P messages per edge).
  /// 0 = measure only: the static max load is reported in the
  /// measured-constants finding but never errors.
  std::uint32_t congestion_budget = 0;

  /// Physical rounds per big-round, for the length measure. 0 derives
  /// ceil(log2 n) (the paper's Theta(log n) phase).
  std::uint32_t phase_len = 0;

  /// Retry budget R the schedule was stretched for (ScheduleTable::scaled by
  /// 2^R, see fault/reliable.hpp): every consumer must land >= 2^R big-rounds
  /// after its producer, which statically re-proves that all bounded-backoff
  /// retransmissions (last one at producer + 2^R - 1) land strictly before
  /// every dependent consumer. 0 = plain strict causality (consumer slot >
  /// producer slot).
  std::uint32_t retry_budget = 0;

  /// Lemma 4.4 block membership: when > 0, every implied start delay
  /// (slot - (vround - 1)) must lie in [0, delay_support). Pass the private
  /// scheduler's PrivateScheduleOutcome::delay_support. 0 = skip.
  std::uint32_t delay_support = 0;

  /// Lemma 4.4 monotonicity: implied start delays must be non-decreasing in
  /// the virtual round (as rounds grow, fewer clustering layers are eligible,
  /// so the min-delay over the eligible prefix can only grow).
  bool check_delay_monotonic = false;

  /// Total-length budget: error when
  ///   big_rounds * phase_len > factor * (congestion + dilation * ceil(log2 n)).
  /// 0 = measure only (the ratio is always reported).
  double length_budget_factor = 0.0;

  /// Cap on *recorded* findings per code; totals stay exact (findings.hpp).
  std::size_t max_findings_per_code = 16;

  /// Optional telemetry sink (borrowed). Emits a verify/check_schedule span
  /// plus verify.* counters and gauges (docs/OBSERVABILITY.md).
  TelemetrySink* telemetry = nullptr;
};

}  // namespace dasched::verify
