#include "verify/schedule_verifier.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/math.hpp"

namespace dasched::verify {

namespace {

std::string format_msg(const std::ostringstream& os) { return os.str(); }

/// One staged (big_round, directed_edge) transmission for the static load
/// accounting; sorting groups equal pairs so loads are a run-length count.
struct LoadKey {
  std::uint32_t big_round;
  std::uint32_t edge;
  friend bool operator<(const LoadKey& x, const LoadKey& y) {
    if (x.big_round != y.big_round) return x.big_round < y.big_round;
    return x.edge < y.edge;
  }
  friend bool operator==(const LoadKey& x, const LoadKey& y) {
    return x.big_round == y.big_round && x.edge == y.edge;
  }
};

}  // namespace

Report check_schedule(const ScheduleProblem& problem, const ScheduleTable& schedule,
                      const VerifyOptions& opts,
                      std::vector<LoadCell>* static_loads) {
  if (static_loads != nullptr) static_loads->clear();
  DASCHED_CHECK_MSG(problem.solo_done(),
                    "check_schedule needs solo patterns: call problem.run_solo() first");
  TimedSpan span(opts.telemetry, "verify", "check_schedule");

  Report report;
  report.max_findings_per_code = opts.max_findings_per_code;

  const Graph& g = problem.graph();
  const NodeId n = g.num_nodes();
  const std::size_t k = problem.size();

  // --- Dimensions: everything else indexes through these, so a mismatch is
  // terminal for the remaining checks. ---
  bool dimensions_ok = schedule.num_algorithms() == k && schedule.num_nodes() == n;
  if (!dimensions_ok) {
    std::ostringstream os;
    os << "schedule table is " << schedule.num_algorithms() << " algorithms x "
       << schedule.num_nodes() << " nodes; the problem is " << k << " x " << n;
    report.add({Severity::kError, kCodeDimensionMismatch, {}, format_msg(os), {}});
  } else {
    for (std::size_t a = 0; a < k; ++a) {
      if (schedule.rounds(a) != problem.algorithm(a).rounds()) {
        std::ostringstream os;
        os << "schedule allots " << schedule.rounds(a) << " rounds; algorithm has "
           << problem.algorithm(a).rounds();
        Location loc;
        loc.alg = static_cast<std::int64_t>(a);
        report.add({Severity::kError, kCodeDimensionMismatch, loc, format_msg(os), {}});
        dimensions_ok = false;
      }
    }
  }
  if (!dimensions_ok) return report;

  // --- Solo-profile consistency: every remaining check (and
  // problem.congestion() itself) indexes through the solo patterns, so a
  // profile that disagrees with the declared algorithm geometry is terminal
  // too. Solo results produced by run_solo() always agree; this catches
  // *adopted* profiles (ScheduleProblem::adopt_solo) that went stale -- a
  // poisoned service cache entry whose pattern belongs to a different
  // program or graph -- before they can misdirect the message-level checks.
  for (std::size_t a = 0; a < k; ++a) {
    const auto& solo = problem.solo()[a];
    std::ostringstream os;
    if (solo.pattern.num_directed_edges() != g.num_directed_edges()) {
      os << "solo pattern covers " << solo.pattern.num_directed_edges()
         << " directed edges; the graph has " << g.num_directed_edges();
    } else if (solo.pattern.last_message_round() > problem.algorithm(a).rounds()) {
      os << "solo pattern sends in round " << solo.pattern.last_message_round()
         << "; the algorithm declares " << problem.algorithm(a).rounds() << " rounds";
    } else if (solo.outputs.size() != n) {
      os << "solo outputs cover " << solo.outputs.size() << " nodes; the graph has "
         << n;
    } else {
      continue;
    }
    os << " (stale adopted profile?)";
    Location loc;
    loc.alg = static_cast<std::int64_t>(a);
    report.add({Severity::kError, kCodeDimensionMismatch, loc, format_msg(os), {}});
    dimensions_ok = false;
  }
  if (!dimensions_ok) return report;

  report.measured.congestion = problem.congestion();
  report.measured.dilation = problem.dilation();
  report.measured.phase_len =
      opts.phase_len > 0
          ? opts.phase_len
          : static_cast<std::uint32_t>(std::max(1, ceil_log2(std::max<NodeId>(2, n))));

  // --- Per-(alg, node) row invariants: gap-free prefix, strictly increasing
  // big-rounds, and (optionally) Lemma 4.4 implied-delay block membership and
  // monotonicity. ---
  std::uint32_t max_slot = 0;
  bool any_slot = false;
  for (std::size_t a = 0; a < k; ++a) {
    for (NodeId v = 0; v < n; ++v) {
      const auto slots = schedule.row(a, v);
      std::uint32_t prev_slot = 0;
      std::int64_t prev_delay = -1;
      bool row_ended = false;
      bool row_truncated = false;
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        const std::uint32_t t = slots[r - 1];
        Location loc;
        loc.alg = static_cast<std::int64_t>(a);
        loc.node = v;
        loc.vround = r;
        if (t == kNeverScheduled) {
          row_ended = true;
          row_truncated = true;
          continue;
        }
        loc.big_round = t;
        ++report.measured.scheduled_slots;
        any_slot = true;
        max_slot = std::max(max_slot, t);
        if (row_ended) {
          std::ostringstream os;
          os << "round " << r << " is scheduled after an unscheduled earlier round";
          report.add({Severity::kError, kCodeGap, loc, format_msg(os), {}});
          // Keep checking the rest of the row, but the prefix is broken.
          row_ended = false;
        }
        if (r >= 2 && prev_slot != kNeverScheduled && t <= prev_slot &&
            slots[r - 2] != kNeverScheduled) {
          std::ostringstream os;
          os << "big-round " << t << " does not strictly follow round " << (r - 1)
             << "'s big-round " << prev_slot;
          report.add({Severity::kError, kCodeOrder, loc, format_msg(os),
                      {{"slot", static_cast<double>(t)},
                       {"prev_slot", static_cast<double>(prev_slot)}}});
        }
        // Implied start delay of this round: slot - (r - 1). Negative only
        // when ordering is already broken, so clamp through int64.
        const std::int64_t implied = static_cast<std::int64_t>(t) - (r - 1);
        if (opts.delay_support > 0 &&
            (implied < 0 || implied >= static_cast<std::int64_t>(opts.delay_support))) {
          std::ostringstream os;
          os << "implied start delay " << implied << " outside the block support [0, "
             << opts.delay_support << ")";
          report.add({Severity::kError, kCodeBlockDelay, loc, format_msg(os),
                      {{"implied_delay", static_cast<double>(implied)},
                       {"delay_support", static_cast<double>(opts.delay_support)}}});
        }
        if (opts.check_delay_monotonic && prev_delay >= 0 && implied < prev_delay) {
          std::ostringstream os;
          os << "implied start delay drops from " << prev_delay << " to " << implied
             << ": the eligible-layer prefix can only shrink as rounds grow";
          report.add({Severity::kError, kCodeBlockMonotonic, loc, format_msg(os),
                      {{"implied_delay", static_cast<double>(implied)},
                       {"prev_implied_delay", static_cast<double>(prev_delay)}}});
        }
        prev_delay = implied;
        prev_slot = t;
      }
      if (row_truncated) ++report.measured.truncated_rows;
    }
  }

  // --- Message-level invariants from the solo patterns: causality (and the
  // retry-stretch headroom), missing producers, and the static load
  // accounting behind the congestion check. A message exists in the scheduled
  // run iff its producer slot is scheduled (Lemma 4.4 discard rule). ---
  const std::uint32_t headroom =
      opts.retry_budget == 0 ? 1u : (1u << opts.retry_budget);
  std::vector<LoadKey> loads;
  for (std::size_t a = 0; a < k; ++a) {
    const auto& pattern = problem.solo()[a].pattern;
    const std::uint32_t rounds = problem.algorithm(a).rounds();
    for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
      for (const auto d : pattern.edges_in_round(r)) {
        const EdgeId e = d / 2;
        const auto [lo, hi] = g.endpoints(e);
        const NodeId sender = (d % 2 == 0) ? lo : hi;
        const NodeId receiver = (d % 2 == 0) ? hi : lo;
        const std::uint32_t producer_slot = schedule.at(a, sender, r);
        // The consumer executes virtual round r + 1; for r == rounds the
        // consumer is on_finish, which always runs after the whole schedule.
        const std::uint32_t consumer_slot =
            r + 1 <= rounds ? schedule.at(a, receiver, r + 1) : kNeverScheduled;
        if (producer_slot == kNeverScheduled) {
          // Truncated producer: the message is discarded. Legal only if the
          // consumer round is truncated too (causally closed discards).
          if (consumer_slot != kNeverScheduled) {
            Location loc;
            loc.alg = static_cast<std::int64_t>(a);
            loc.node = receiver;
            loc.vround = r + 1;
            loc.big_round = consumer_slot;
            loc.edge = d;
            std::ostringstream os;
            os << "consumer round is scheduled but its producer (node " << sender
               << ", round " << r << ") is truncated: discards are not causally closed";
            report.add({Severity::kError, kCodeMissingProducer, loc, format_msg(os), {}});
          }
          continue;
        }
        loads.push_back({producer_slot, d});
        if (consumer_slot == kNeverScheduled) continue;  // discard rule: no constraint
        ++report.measured.checked_messages;
        if (consumer_slot <= producer_slot) {
          Location loc;
          loc.alg = static_cast<std::int64_t>(a);
          loc.node = receiver;
          loc.vround = r + 1;
          loc.big_round = consumer_slot;
          loc.edge = d;
          std::ostringstream os;
          os << "consumer big-round " << consumer_slot
             << " is not strictly after producer big-round " << producer_slot;
          report.add({Severity::kError, kCodeCausality, loc, format_msg(os),
                      {{"producer_slot", static_cast<double>(producer_slot)},
                       {"consumer_slot", static_cast<double>(consumer_slot)}}});
        } else if (consumer_slot - producer_slot < headroom) {
          // Static re-proof of the 2^R stretch lemma (fault/reliable.hpp):
          // the last retransmission lands at producer + 2^R - 1, so the
          // consumer needs a gap of at least 2^R big-rounds.
          Location loc;
          loc.alg = static_cast<std::int64_t>(a);
          loc.node = receiver;
          loc.vround = r + 1;
          loc.big_round = consumer_slot;
          loc.edge = d;
          std::ostringstream os;
          os << "gap of " << (consumer_slot - producer_slot) << " big-rounds < 2^"
             << opts.retry_budget << ": a final retransmission at "
             << (producer_slot + headroom - 1) << " could land after the consumer";
          report.add({Severity::kError, kCodeRetryHeadroom, loc, format_msg(os),
                      {{"gap", static_cast<double>(consumer_slot - producer_slot)},
                       {"required", static_cast<double>(headroom)}}});
        }
      }
    }
  }

  // --- Static per-edge per-big-round loads: sort the (big_round, edge)
  // transmissions and run-length count. Equal to the executor's measured
  // loads on a reliable network. ---
  std::sort(loads.begin(), loads.end());
  for (std::size_t i = 0; i < loads.size();) {
    std::size_t j = i;
    while (j < loads.size() && loads[j] == loads[i]) ++j;
    const auto load = static_cast<std::uint32_t>(j - i);
    report.measured.max_edge_load = std::max(report.measured.max_edge_load, load);
    if (static_loads != nullptr) {
      // The run-length groups come out sorted by (big_round, edge) -- the
      // exact order ExecProfiler::sorted_cells() uses, so the surfaces join
      // with one linear merge.
      static_loads->push_back({loads[i].big_round, loads[i].edge, load});
    }
    if (opts.congestion_budget > 0 && load > opts.congestion_budget) {
      Location loc;
      loc.big_round = loads[i].big_round;
      loc.edge = loads[i].edge;
      std::ostringstream os;
      os << load << " messages on one directed edge in one big-round exceed the phase budget "
         << opts.congestion_budget;
      report.add({Severity::kError, kCodeCongestionOverrun, loc, format_msg(os),
                  {{"load", static_cast<double>(load)},
                   {"budget", static_cast<double>(opts.congestion_budget)}}});
    }
    i = j;
  }

  // --- Total length vs the O(congestion + dilation log n) budget. ---
  report.measured.big_rounds = any_slot ? max_slot + 1 : 0;
  const double physical =
      static_cast<double>(report.measured.big_rounds) * report.measured.phase_len;
  const double budget_denominator =
      static_cast<double>(report.measured.congestion) +
      static_cast<double>(report.measured.dilation) *
          std::max(1, ceil_log2(std::max<NodeId>(2, n)));
  report.measured.length_ratio =
      budget_denominator > 0 ? physical / budget_denominator : 0.0;
  if (opts.length_budget_factor > 0.0 &&
      report.measured.length_ratio > opts.length_budget_factor) {
    std::ostringstream os;
    os << "schedule length " << physical << " physical rounds exceeds "
       << opts.length_budget_factor << " x (congestion + dilation log n) = "
       << opts.length_budget_factor * budget_denominator;
    report.add({Severity::kError, kCodeLengthBudget, {}, format_msg(os),
                {{"length_ratio", report.measured.length_ratio},
                 {"budget_factor", opts.length_budget_factor}}});
  }

  // --- Info findings: truncation count and the measured constants. ---
  if (report.measured.truncated_rows > 0) {
    std::ostringstream os;
    os << report.measured.truncated_rows
       << " (alg, node) rows have truncated round prefixes (Lemma 4.4 discards)";
    report.add({Severity::kInfo, kCodeTruncation, {}, format_msg(os),
                {{"truncated_rows", static_cast<double>(report.measured.truncated_rows)}}});
  }
  {
    std::ostringstream os;
    os << "length = " << report.measured.big_rounds << " big-rounds x "
       << report.measured.phase_len << " rounds = " << report.measured.length_ratio
       << " x (congestion + dilation log n); static max edge load "
       << report.measured.max_edge_load;
    report.add({Severity::kInfo, kCodeMeasured, {}, format_msg(os),
                {{"congestion", static_cast<double>(report.measured.congestion)},
                 {"dilation", static_cast<double>(report.measured.dilation)},
                 {"phase_len", static_cast<double>(report.measured.phase_len)},
                 {"big_rounds", static_cast<double>(report.measured.big_rounds)},
                 {"max_edge_load", static_cast<double>(report.measured.max_edge_load)},
                 {"length_ratio", report.measured.length_ratio}}});
  }

  if (opts.telemetry != nullptr) {
    opts.telemetry->add_counter("verify.checked_slots", report.measured.scheduled_slots);
    opts.telemetry->add_counter("verify.checked_messages",
                                report.measured.checked_messages);
    opts.telemetry->add_counter("verify.findings.errors", report.errors());
    opts.telemetry->add_counter("verify.findings.warnings", report.warnings());
    opts.telemetry->add_counter("verify.findings.infos", report.infos());
    opts.telemetry->set_gauge("verify.static_max_edge_load",
                              report.measured.max_edge_load);
    opts.telemetry->set_gauge("verify.big_rounds", report.measured.big_rounds);
    opts.telemetry->set_gauge("verify.length_ratio", report.measured.length_ratio);
    span.arg("slots", static_cast<double>(report.measured.scheduled_slots));
    span.arg("messages", static_cast<double>(report.measured.checked_messages));
    span.arg("errors", static_cast<double>(report.errors()));
  }
  return report;
}

bool VerifyingAdmission::admit(std::span<const DistributedAlgorithm* const> algorithms,
                               const ScheduleTable& schedule) const {
  // The gate verifies the problem it was built for; a different algorithm set
  // is itself an admission failure (caught as a dimension mismatch unless the
  // counts coincide, so check identity first).
  DASCHED_CHECK_EQ(algorithms.size(), problem_->size(),
                   "admission gate: algorithm set does not match the problem");
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    DASCHED_CHECK_MSG(algorithms[a] == &problem_->algorithm(a),
                      "admission gate: algorithm set does not match the problem");
  }
  last_ = check_schedule(*problem_, schedule, opts_);
  return last_.ok();
}

}  // namespace dasched::verify
