// The measured-vs-predicted divergence monitor: the closed-loop counterpart
// of the static schedule verifier.
//
// check_schedule() predicts the full per-(big-round, directed-edge) load
// surface of a run from the solo patterns alone (its `static_loads`
// out-parameter); an ExecProfiler measures the surface the executor actually
// realized. On a reliable network the two are equal cell for cell --
// algorithms are deterministic per (alg, node) seed, so the scheduled run
// transmits precisely the predicted messages. check_divergence() joins the
// two sorted surfaces with one linear merge and reports every disagreement
// as a structured finding (codes in invariants.hpp):
//
//   divergence.load        both surfaces have the cell, loads differ
//   divergence.unpredicted measured messages on a cell the model missed
//                          (retransmissions consume unmodelled bandwidth)
//   divergence.unrealized  a predicted cell carried nothing (a crash-stopped
//                          sender never transmitted)
//   divergence.rounds      the run's horizon differs from the scheduled
//                          length (retry extension)
//   divergence.summary     (info) join totals
//
// Divergences are *warnings*, not errors: they diagnose where the physical
// network departed from the paper's reliable model, they do not invalidate
// the schedule (Report::ok() stays true). Fault-free runs must produce zero
// divergence findings; tests/test_profiler.cpp pins both directions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/findings.hpp"
#include "verify/invariants.hpp"

namespace dasched::verify {

struct DivergenceOptions {
  /// Absolute per-cell load slack: |measured - predicted| <= tolerance is
  /// treated as agreement. 0 demands exact equality (the reliable-network
  /// contract).
  std::uint32_t tolerance = 0;

  /// Scheduled big-rounds (e.g. check_schedule's Measured::big_rounds). When
  /// > 0 and the profiled run used a different horizon, a divergence.rounds
  /// finding is emitted. 0 skips the horizon check.
  std::uint32_t scheduled_big_rounds = 0;

  /// Cap on *recorded* findings per code; totals stay exact (findings.hpp).
  std::size_t max_findings_per_code = 16;

  /// Optional telemetry sink (borrowed). Emits divergence.* counters and
  /// gauges (docs/OBSERVABILITY.md).
  TelemetrySink* telemetry = nullptr;
};

/// Joins the statically `predicted` load surface (sorted by (big_round,
/// edge), as check_schedule emits it) against the surface `measured` by the
/// profiler's last run. Warning findings per disagreeing cell plus one info
/// summary; ok() is always true.
Report check_divergence(std::span<const LoadCell> predicted,
                        const ExecProfiler& measured,
                        const DivergenceOptions& opts = {});

}  // namespace dasched::verify
