#include "verify/findings.hpp"

#include <sstream>

#include "telemetry/run_report.hpp"

namespace dasched::verify {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Location::str() const {
  std::ostringstream os;
  const char* sep = "";
  auto field = [&](const char* name, std::int64_t v) {
    if (v == kNone) return;
    os << sep << name << '=' << v;
    sep = " ";
  };
  field("alg", alg);
  field("node", node);
  field("vround", vround);
  field("big_round", big_round);
  field("edge", edge);
  return os.str();
}

void Report::add(Finding finding) {
  switch (finding.severity) {
    case Severity::kError:
      ++errors_;
      ++error_counts_by_code_[finding.code];
      break;
    case Severity::kWarning:
      ++warnings_;
      break;
    case Severity::kInfo:
      ++infos_;
      break;
  }
  const auto total = ++counts_by_code_[finding.code];
  if (total <= max_findings_per_code) {
    findings_.push_back(std::move(finding));
  }
}

std::uint64_t Report::count(std::string_view code) const {
  const auto it = counts_by_code_.find(code);
  return it == counts_by_code_.end() ? 0 : it->second;
}

std::vector<std::string> Report::error_codes() const {
  std::vector<std::string> codes;
  codes.reserve(error_counts_by_code_.size());
  for (const auto& [code, count] : error_counts_by_code_) codes.push_back(code);
  return codes;
}

Table Report::to_table(const std::string& title) const {
  Table table(title);
  table.set_header({"severity", "code", "location", "message"});
  for (const auto& f : findings_) {
    table.add_row({to_string(f.severity), f.code, f.location.str(), f.message});
  }
  return table;
}

void Report::to_run_report(RunReport& report, std::string_view location_prefix) const {
  for (const auto& f : findings_) {
    RunReport::FindingRecord rec;
    rec.severity = to_string(f.severity);
    rec.code = f.code;
    rec.location = f.location.str();
    if (!location_prefix.empty()) {
      rec.location = std::string(location_prefix) +
                     (rec.location.empty() ? "" : " ") + rec.location;
    }
    rec.message = f.message;
    rec.metrics = f.metrics;
    report.add_finding(std::move(rec));
  }
  // Totals are exact even when the per-code cap dropped recorded findings.
  report.add_finding_totals(errors_, warnings_, infos_);
}

}  // namespace dasched::verify
