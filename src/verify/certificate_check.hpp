// Certificate-vs-execution cross-check: joins a static PatternCertificate
// (src/analysis) against the solo run it claims to describe.
//
// This is the closed loop that makes static certificates trustworthy inputs
// for admission: for an *exact* certificate every (round, directed-edge)
// cell and every per-node output must match the executed solo run
// bit-for-bit (any difference is an error finding); for an *envelope* or
// *fallback* certificate the executed run must stay within the certified
// bounds (per-cell, per-edge, congestion, totals, last round) -- a sound
// bound can be loose, never violated. Tests run this check for every
// algorithm family across the graph suite; the dasched_analyze CLI exposes
// it as --cross-check.
//
// Findings reuse the verifier's Report machinery with the certificate.*
// codes from invariants.hpp; `alg_index` seeds Location::alg so service-style
// gates can attribute failures to the offending job.
#pragma once

#include "analysis/certificate.hpp"
#include "congest/simulator.hpp"
#include "verify/findings.hpp"
#include "verify/invariants.hpp"

namespace dasched::verify {

/// Appends certificate findings for one (certificate, solo run) pair to
/// `report`. Returns true when no error finding was added.
bool check_certificate(const analysis::PatternCertificate& cert, const SoloRunResult& solo,
                       Report& report, std::int64_t alg_index = -1);

/// Convenience wrapper: a fresh report for a single pair.
Report check_certificate(const analysis::PatternCertificate& cert, const SoloRunResult& solo,
                         const VerifyOptions& opts = {});

}  // namespace dasched::verify
