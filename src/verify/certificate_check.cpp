#include "verify/certificate_check.hpp"

#include <algorithm>
#include <sstream>

namespace dasched::verify {

namespace {

Location at(std::int64_t alg_index) {
  Location loc;
  loc.alg = alg_index;
  return loc;
}

/// Per-round cell loads of `pattern`, as (directed edge -> count) over the
/// scratch vector; `touched` lists the nonzero entries for cheap reset.
void round_loads(const CommunicationPattern& pattern, std::uint32_t round,
                 std::vector<std::uint32_t>& loads, std::vector<std::uint32_t>& touched) {
  for (const std::uint32_t d : pattern.edges_in_round(round)) {
    if (loads[d]++ == 0) touched.push_back(d);
  }
}

}  // namespace

bool check_certificate(const analysis::PatternCertificate& cert, const SoloRunResult& solo,
                       Report& report, std::int64_t alg_index) {
  const std::uint64_t errors_before = report.errors();
  const std::uint32_t num_directed = solo.pattern.num_directed_edges();

  // --- Dimensions: everything below indexes through these. ---
  bool dims_ok = true;
  if (cert.exact() && cert.pattern.num_directed_edges() != num_directed) {
    std::ostringstream os;
    os << "certificate surface covers " << cert.pattern.num_directed_edges()
       << " directed edges; the executed pattern has " << num_directed;
    report.add({Severity::kError, kCodeCertificateDims, at(alg_index), os.str(), {}});
    dims_ok = false;
  }
  if (cert.has_outputs && cert.outputs.size() != solo.outputs.size()) {
    std::ostringstream os;
    os << "certificate outputs cover " << cert.outputs.size() << " nodes; the executed run has "
       << solo.outputs.size();
    report.add({Severity::kError, kCodeCertificateDims, at(alg_index), os.str(), {}});
    dims_ok = false;
  }
  if (cert.last_message_round > cert.rounds) {
    std::ostringstream os;
    os << "certificate sends in round " << cert.last_message_round
       << "; the algorithm declares " << cert.rounds << " rounds";
    report.add({Severity::kError, kCodeCertificateDims, at(alg_index), os.str(), {}});
    dims_ok = false;
  }
  if (!dims_ok) return false;

  std::uint64_t cells_compared = 0;
  std::vector<std::uint32_t> cert_loads(num_directed, 0);
  std::vector<std::uint32_t> solo_loads(num_directed, 0);
  std::vector<std::uint32_t> touched;

  if (cert.exact()) {
    // Cell-for-cell equality over the union of rounds either side touches.
    const std::uint32_t last =
        std::max(cert.pattern.last_message_round(), solo.pattern.last_message_round());
    for (std::uint32_t r = 1; r <= last; ++r) {
      touched.clear();
      round_loads(cert.pattern, r, cert_loads, touched);
      round_loads(solo.pattern, r, solo_loads, touched);
      for (const std::uint32_t d : touched) {
        ++cells_compared;
        if (cert_loads[d] != solo_loads[d]) {
          std::ostringstream os;
          os << "certified load " << cert_loads[d] << " != executed load " << solo_loads[d];
          Location loc = at(alg_index);
          loc.vround = r;
          loc.edge = d;
          report.add({Severity::kError, kCodeCertificateCellMismatch, loc, os.str(),
                      {{"certified", static_cast<double>(cert_loads[d])},
                       {"executed", static_cast<double>(solo_loads[d])}}});
        }
        cert_loads[d] = 0;
        solo_loads[d] = 0;
      }
    }
    if (cert.has_outputs) {
      for (NodeId v = 0; v < solo.outputs.size(); ++v) {
        if (cert.outputs[v] == solo.outputs[v]) continue;
        std::ostringstream os;
        os << "derived output (" << cert.outputs[v].size() << " words) != executed output ("
           << solo.outputs[v].size() << " words)";
        Location loc = at(alg_index);
        loc.node = static_cast<std::int64_t>(v);
        report.add({Severity::kError, kCodeCertificateOutputMismatch, loc, os.str(), {}});
      }
    }
  } else {
    // Sound bounds: the executed run must stay inside the envelope.
    const auto bound_violation = [&](const char* what, std::uint64_t executed,
                                     std::uint64_t certified, Location loc) {
      std::ostringstream os;
      os << what << " " << executed << " exceeds certified bound " << certified;
      report.add({Severity::kError, kCodeCertificateBoundViolation, loc, os.str(),
                  {{"executed", static_cast<double>(executed)},
                   {"certified", static_cast<double>(certified)}}});
    };
    if (solo.pattern.last_message_round() > cert.last_message_round) {
      bound_violation("last message round", solo.pattern.last_message_round(),
                      cert.last_message_round, at(alg_index));
    }
    if (solo.total_messages > cert.total_messages) {
      bound_violation("total messages", solo.total_messages, cert.total_messages,
                      at(alg_index));
    }
    for (std::uint32_t d = 0; d < num_directed; ++d) {
      ++cells_compared;
      if (solo.pattern.edge_load(d) > cert.per_edge_bound) {
        Location loc = at(alg_index);
        loc.edge = d;
        bound_violation("per-edge load", solo.pattern.edge_load(d), cert.per_edge_bound, loc);
      }
    }
    for (std::uint32_t r = 1; r <= solo.pattern.last_message_round(); ++r) {
      touched.clear();
      round_loads(solo.pattern, r, solo_loads, touched);
      for (const std::uint32_t d : touched) {
        ++cells_compared;
        if (solo_loads[d] > cert.per_cell_bound) {
          Location loc = at(alg_index);
          loc.vround = r;
          loc.edge = d;
          bound_violation("cell load", solo_loads[d], cert.per_cell_bound, loc);
        }
        solo_loads[d] = 0;
      }
    }
  }

  {
    std::ostringstream os;
    os << to_string(cert.kind) << " certificate for " << cert.algorithm << ": "
       << cells_compared << " cells checked, " << solo.total_messages
       << " executed messages vs " << cert.total_messages << " certified";
    report.add({Severity::kInfo, kCodeCertificateSummary, at(alg_index), os.str(),
                {{"cells_compared", static_cast<double>(cells_compared)},
                 {"certified_congestion", static_cast<double>(cert.congestion)},
                 {"executed_congestion", static_cast<double>(solo.pattern.max_edge_load())}}});
  }
  return report.errors() == errors_before;
}

Report check_certificate(const analysis::PatternCertificate& cert, const SoloRunResult& solo,
                         const VerifyOptions& opts) {
  Report report;
  report.max_findings_per_code = opts.max_findings_per_code;
  check_certificate(cert, solo, report, -1);
  return report;
}

}  // namespace dasched::verify
