#include "lowerbound/hard_instance.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "util/math.hpp"

namespace dasched {

namespace {

/// Node roles on the layered graph.
struct Role {
  bool is_spine = false;
  NodeId spine_index = 0;  // p in [0, L]
  NodeId group_layer = 0;  // i in [1, L] for group nodes
};

Role classify(NodeId node, NodeId layers, NodeId width) {
  Role role;
  if (node <= layers) {
    role.is_spine = true;
    role.spine_index = node;
  } else {
    role.group_layer = (node - layers - 1) / width + 1;
  }
  return role;
}

class HardInstanceProgram final : public NodeProgram {
 public:
  HardInstanceProgram(const HardInstanceAlgorithm& algo, NodeId self)
      : algo_(algo), self_(self), role_(classify(self, algo.layers(), algo.width())) {
    if (role_.is_spine) {
      if (role_.spine_index == 0) state_ = algo_.expected_spine_state(0);
      is_member_ = false;
    } else {
      const auto& s = algo_.members()[role_.group_layer - 1];
      is_member_ = std::binary_search(s.begin(), s.end(), self);
    }
  }

  void on_round(VirtualContext& ctx) override {
    const std::uint32_t r = ctx.vround();
    if (role_.is_spine) {
      const NodeId p = role_.spine_index;
      // Absorb S_p replies (sent in round 2p, arriving at round 2p+1).
      if (p >= 1 && r == 2u * p + 1) {
        state_ = 0;
        for (const auto& m : ctx.inbox()) state_ ^= m.payload.at(0);
        got_state_ = true;
      }
      // Fan out to S_{p+1} in round 2p+1.
      if (p < algo_.layers() && r == 2u * p + 1) {
        for (const NodeId u : algo_.members()[p]) ctx.send(u, {state_});
      }
      return;
    }
    // Group node in layer i: absorb the spine message at round 2i, reply.
    if (is_member_ && r == 2u * role_.group_layer) {
      DASCHED_DCHECK(ctx.inbox().size() <= 1);
      if (!ctx.inbox().empty()) {
        received_ = ctx.inbox().front().payload.at(0);
        got_state_ = true;
        ctx.send(role_.group_layer /* == id of v_i */,
                 {received_ ^ HardInstanceAlgorithm::member_mix(self_)});
      }
    }
  }

  void on_finish(VirtualContext& ctx) override {
    if (role_.is_spine && role_.spine_index == algo_.layers() && algo_.layers() >= 1) {
      state_ = 0;
      for (const auto& m : ctx.inbox()) state_ ^= m.payload.at(0);
      got_state_ = true;
    }
  }

  std::vector<std::uint64_t> output() const override {
    if (role_.is_spine) return {state_, got_state_ ? 1ULL : 0ULL};
    if (is_member_) return {received_, got_state_ ? 1ULL : 0ULL};
    return {};
  }

 private:
  const HardInstanceAlgorithm& algo_;
  NodeId self_;
  Role role_;
  bool is_member_ = false;
  bool got_state_ = false;
  std::uint64_t state_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace

HardInstanceAlgorithm::HardInstanceAlgorithm(NodeId layers, NodeId width,
                                             std::vector<std::vector<NodeId>> members,
                                             std::uint64_t initial_value,
                                             std::uint64_t base_seed)
    : DistributedAlgorithm(base_seed),
      layers_(layers),
      width_(width),
      members_(std::move(members)),
      initial_value_(initial_value) {
  DASCHED_CHECK(layers_ >= 1);
  DASCHED_CHECK(members_.size() == layers_);
  for (auto& s : members_) {
    DASCHED_CHECK(std::is_sorted(s.begin(), s.end()));
  }
}

std::uint64_t HardInstanceAlgorithm::expected_spine_state(NodeId p) const {
  DASCHED_CHECK(p <= layers_);
  std::uint64_t state = initial_value_;
  for (NodeId j = 1; j <= p; ++j) {
    std::uint64_t next = 0;
    for (const NodeId u : members_[j - 1]) next ^= state ^ member_mix(u);
    state = next;
  }
  return state;
}

std::unique_ptr<NodeProgram> HardInstanceAlgorithm::make_program(NodeId node) const {
  return std::make_unique<HardInstanceProgram>(*this, node);
}

std::unique_ptr<ScheduleProblem> make_hard_instance(const Graph& g,
                                                    const HardInstanceConfig& cfg) {
  DASCHED_CHECK(g.num_nodes() == cfg.layers + 1 + cfg.layers * cfg.width);
  auto problem = std::make_unique<ScheduleProblem>(g);
  Rng rng(seed_combine(cfg.seed, 0x4A2D));
  for (std::size_t a = 0; a < cfg.algorithms; ++a) {
    std::vector<std::vector<NodeId>> members(cfg.layers);
    for (NodeId i = 1; i <= cfg.layers; ++i) {
      for (NodeId j = 0; j < cfg.width; ++j) {
        if (rng.next_bool(cfg.participation)) {
          members[i - 1].push_back(layered_group_node(cfg.layers, cfg.width, i, j));
        }
      }
    }
    problem->add(std::make_unique<HardInstanceAlgorithm>(
        cfg.layers, cfg.width, std::move(members), splitmix64(cfg.seed ^ a),
        seed_combine(cfg.seed, a, 0x11)));
  }
  return problem;
}

HardInstanceConfig scaled_hard_instance_config(std::uint64_t n_target, std::uint64_t seed) {
  HardInstanceConfig cfg;
  cfg.seed = seed;
  // Keep the proof's ratios at laptop scale: L grows slowly, width absorbs
  // the rest of the node budget, and k*q ~ 2L keeps congestion ~ dilation.
  cfg.layers = std::max<NodeId>(
      3, static_cast<NodeId>(std::lround(std::pow(static_cast<double>(n_target), 0.25))));
  cfg.width = std::max<NodeId>(8, static_cast<NodeId>(n_target / cfg.layers));
  cfg.participation = std::min(0.5, 6.0 / std::sqrt(static_cast<double>(cfg.width)));
  cfg.algorithms = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::lround(2.0 * cfg.layers / cfg.participation)));
  return cfg;
}

}  // namespace dasched
