// Section 3: the hard distribution of DAS instances behind Theorem 3.1.
//
// Network (Figure 2): spine v_0..v_L plus groups U_1..U_L of `width` nodes,
// u in U_i adjacent to v_{i-1} and v_i. Each algorithm A_i:
//   round 2j-1:  v_{j-1} sends its running state to every u in S_j,
//   round 2j:    every u in S_j replies to v_j (state xor a u-specific mix),
// where S_j includes each node of U_j independently with probability q (the
// paper's n^{-0.1}). dilation = 2L; E[congestion] = k*q per directed edge.
//
// The paper's probabilistic-method argument: break time into phases of
// log n / (100 log log n) rounds; for any fixed crossing pattern some
// (layer, phase) pair carries load ~>= 0.9 * k * L / (L * 0.1L) per layer and
// anti-concentration forces some edge to exceed the phase budget with
// probability >= n^{-0.2}; independence across the width edges plus a union
// bound over the e^{Theta(n^{0.3})} crossing patterns kills every short
// schedule. Empirically (bench E2) we measure exactly the quantity the proof
// manipulates: the per-(phase, edge) load overflow of the best schedules we
// can produce, and the achieved length / (congestion + dilation) ratio, which
// grows with n on this family while staying O(1) on packet routing.
//
// The XOR-chain states make every spine output depend on the entire
// communication history, so scheduling errors are always detected by
// output comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "sched/problem.hpp"
#include "util/rng.hpp"

namespace dasched {

class HardInstanceAlgorithm final : public DistributedAlgorithm {
 public:
  /// members[j] lists the nodes of S_{j+1} (ids in the layered graph),
  /// sorted. `layers` is L, `width` the group size.
  HardInstanceAlgorithm(NodeId layers, NodeId width,
                        std::vector<std::vector<NodeId>> members,
                        std::uint64_t initial_value, std::uint64_t base_seed);

  std::string name() const override { return "hard-instance"; }
  std::uint32_t rounds() const override { return 2 * layers_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

  /// Spine/member exchanges are single-word state values.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 1;
    return f;
  }

  /// Oracle: the state spine v_p should hold after absorbing S_p's replies.
  std::uint64_t expected_spine_state(NodeId p) const;

  /// Deterministic per-member reply mix.
  static std::uint64_t member_mix(NodeId member) { return splitmix64(0x5EEDBA5Eu ^ member); }

  NodeId layers() const { return layers_; }
  NodeId width() const { return width_; }
  const std::vector<std::vector<NodeId>>& members() const { return members_; }

 private:
  NodeId layers_;
  NodeId width_;
  std::vector<std::vector<NodeId>> members_;
  std::uint64_t initial_value_;
};

struct HardInstanceConfig {
  NodeId layers = 8;         // L
  NodeId width = 32;         // eta
  std::size_t algorithms = 16;  // k
  double participation = 0.25;  // q = P[u in S_j]
  std::uint64_t seed = 1;
};

/// Samples a DAS instance from the Section 3 distribution on the layered
/// graph `g` (which must be make_layered(cfg.layers, cfg.width)).
std::unique_ptr<ScheduleProblem> make_hard_instance(const Graph& g,
                                                    const HardInstanceConfig& cfg);

/// Paper-faithful parameter scaling for a given budget `n_target` of nodes:
/// L ~ n^0.1 and width ~ n^0.9 collapse at laptop scale, so we use the same
/// *ratios* the proof needs -- k*q = Theta(L) (congestion ~ dilation) with
/// q = c / sqrt(width) so that per-edge loads are in the anti-concentration
/// regime. Returns the config (graph built by the caller via make_layered).
HardInstanceConfig scaled_hard_instance_config(std::uint64_t n_target, std::uint64_t seed);

}  // namespace dasched
