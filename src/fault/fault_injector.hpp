// FaultInjector: the executable form of a FaultPlan.
//
// The injector answers three questions on the executor's send/deliver path:
//   * is node v crashed at big-round t?           (crash-stop, preprocessed
//                                                  into a dense per-node array)
//   * is undirected edge e dark at big-round t?   (outage intervals, indexed
//                                                  per edge)
//   * is transmission attempt `attempt` of the (alg, directed_edge, tag)
//     message dropped / duplicated?               (stateless seeded decision)
//
// Determinism contract: every answer is a pure function of the plan and the
// query arguments. Random drop/duplicate decisions hash the message identity
// (alg, directed edge, sender virtual round, attempt index) together with the
// plan seed into a uniform [0, 1) value -- no shared RNG state is consumed,
// so decisions are independent of the order in which messages are processed
// and of `ExecConfig::num_threads` sharding. Retransmissions pass a fresh
// attempt index and therefore redraw independently. See docs/FAULTS.md for
// the full argument.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

class FaultInjector {
 public:
  /// Preprocesses `plan` against `g` (borrowed; must outlive the injector).
  /// Crashes at out-of-range nodes and outages at out-of-range edges are
  /// rejected by DASCHED_CHECK.
  FaultInjector(const Graph& g, FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool any_faults() const { return plan_.any_faults(); }

  /// First big-round at which v no longer executes (kNoCrash if never).
  std::uint32_t crash_round(NodeId v) const { return crash_round_[v]; }
  bool node_crashed(NodeId v, std::uint32_t t) const {
    return t >= crash_round_[v];
  }
  std::uint32_t num_crashes() const {
    return static_cast<std::uint32_t>(plan_.crashes.size());
  }

  /// True if undirected edge e delivers nothing at big-round t.
  bool link_down(EdgeId e, std::uint32_t t) const;

  /// Bernoulli(drop_rate) for one transmission attempt; pure in its
  /// arguments (order- and thread-count-independent).
  bool drop(std::uint32_t alg, std::uint32_t directed_edge, std::uint32_t tag,
            std::uint32_t attempt) const {
    return plan_.drop_rate > 0.0 &&
           unit(alg, directed_edge, tag, attempt, kDropSalt) < plan_.drop_rate;
  }

  /// Bernoulli(duplicate_rate) for one delivered message; independent of the
  /// drop decision (distinct salt).
  bool duplicate(std::uint32_t alg, std::uint32_t directed_edge, std::uint32_t tag,
                 std::uint32_t attempt) const {
    return plan_.duplicate_rate > 0.0 &&
           unit(alg, directed_edge, tag, attempt, kDuplicateSalt) <
               plan_.duplicate_rate;
  }

 private:
  static constexpr std::uint64_t kDropSalt = 0x64726f705f5f5f31ULL;
  static constexpr std::uint64_t kDuplicateSalt = 0x6475705f5f5f5f31ULL;

  /// Uniform [0, 1) from the message identity: one splitmix64 chain over the
  /// packed key, mapped to a double exactly like Rng::next_double.
  double unit(std::uint32_t alg, std::uint32_t directed_edge, std::uint32_t tag,
              std::uint32_t attempt, std::uint64_t salt) const {
    const std::uint64_t h = seed_combine(
        plan_.seed ^ salt, (std::uint64_t{alg} << 32) | directed_edge,
        (std::uint64_t{tag} << 32) | attempt);
    return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  }

  FaultPlan plan_;
  std::vector<std::uint32_t> crash_round_;  // per node; kNoCrash default
  /// plan_.outages sorted by edge for binary search in link_down.
  std::vector<LinkOutage> sorted_outages_;
};

}  // namespace dasched
