// Schedule-robustness analysis: how much headroom a schedule has and how
// often faulty runs still complete correctly.
//
// Two views:
//   * Slack: per big-round, phase_len - max_edge_load. Positive slack is the
//     paper's w.h.p. headroom (a fixed phase absorbs that many extra
//     messages, e.g. retransmissions, before overflowing); negative slack
//     marks overflowing phases. Computed from the executor's measured
//     `max_load_per_big_round`, so it works for any schedule.
//   * Survival curve: fraction of runs that complete correctly as a function
//     of the drop rate, measured empirically over seeded trials. The trial
//     body is a caller-provided callback so this file stays independent of
//     problem/scheduler types; fault seeds are derived deterministically from
//     (base_seed, point index, trial index).
//
// Both export through the existing telemetry counters (`fault.slack.*`,
// `fault.survival.*`) when handed a sink, and render to `Table`s that flow
// into RunReport JSON. See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace dasched {

struct SlackReport {
  std::uint32_t phase_len = 0;
  /// Per big-round: phase_len - max_load (negative = overflowing phase).
  std::vector<std::int64_t> slack;
  std::int64_t min_slack = 0;
  double mean_slack = 0.0;
  /// Big-rounds whose load exceeded phase_len (schedule failures).
  std::uint64_t negative_rounds = 0;

  Table to_table(const std::string& title) const;
};

/// Slack of a realized schedule against fixed phases of `phase_len` physical
/// rounds. `max_load_per_big_round` is ExecutionResult's vector of the same
/// name. Emits fault.slack.min/mean gauges, the fault.slack.negative_rounds
/// counter, and one fault.slack histogram sample per big-round when
/// `telemetry` is non-null.
SlackReport analyze_slack(std::span<const std::uint32_t> max_load_per_big_round,
                          std::uint32_t phase_len,
                          TelemetrySink* telemetry = nullptr);

/// Convenience overload over a profiled run: analyzes the per-big-round max
/// loads ExecProfiler measured (round_max_loads() of its last run).
SlackReport analyze_slack(const ExecProfiler& profiler, std::uint32_t phase_len,
                          TelemetrySink* telemetry = nullptr);

struct SurvivalPoint {
  double drop_rate = 0.0;
  std::uint32_t trials = 0;
  std::uint32_t survived = 0;
  double survival_fraction() const {
    return trials == 0 ? 0.0 : static_cast<double>(survived) / trials;
  }
};

struct SurvivalCurve {
  std::vector<SurvivalPoint> points;
  Table to_table(const std::string& title) const;
};

/// Runs `trials` seeded trials per drop rate; `run_trial(drop_rate, seed)`
/// returns true when the faulty run completed correctly. Seeds are
/// seed_combine(base_seed, point index, trial index), so curves are exactly
/// reproducible. Emits fault.survival.trials / fault.survival.survived
/// counters and one fault.survival.fraction histogram sample per point when
/// `telemetry` is non-null.
SurvivalCurve survival_curve(
    std::span<const double> drop_rates, std::uint32_t trials,
    std::uint64_t base_seed,
    const std::function<bool(double drop_rate, std::uint64_t fault_seed)>& run_trial,
    TelemetrySink* telemetry = nullptr);

}  // namespace dasched
