#include "fault/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dasched {

namespace {

// Purpose salts keep the crash and outage generators on disjoint streams of
// the same plan seed.
constexpr std::uint64_t kCrashSalt = 0x63726173685f5f31ULL;
constexpr std::uint64_t kOutageSalt = 0x6f75746167655f31ULL;

}  // namespace

void add_random_crashes(FaultPlan& plan, NodeId num_nodes, std::uint32_t count,
                        std::uint32_t max_round) {
  if (count == 0 || num_nodes == 0) return;
  std::vector<std::uint8_t> crashed(num_nodes, 0);
  for (const auto& c : plan.crashes) {
    if (c.node < num_nodes) crashed[c.node] = 1;
  }
  std::vector<NodeId> candidates;
  candidates.reserve(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (!crashed[v]) candidates.push_back(v);
  }
  Rng rng(seed_combine(plan.seed, kCrashSalt, count, max_round));
  const auto picks = std::min<std::size_t>(count, candidates.size());
  // Partial Fisher-Yates: the first `picks` entries are a uniform sample
  // without replacement.
  for (std::size_t i = 0; i < picks; ++i) {
    const auto j = i + rng.next_below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
    plan.crashes.push_back(
        {candidates[i], static_cast<std::uint32_t>(rng.next_below(
                            static_cast<std::uint64_t>(max_round) + 1))});
  }
}

void add_random_outages(FaultPlan& plan, const Graph& g, std::uint32_t count,
                        std::uint32_t max_round, std::uint32_t max_len) {
  if (count == 0 || g.num_edges() == 0) return;
  DASCHED_CHECK(max_len >= 1);
  std::vector<EdgeId> edges(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = e;
  Rng rng(seed_combine(plan.seed, kOutageSalt, count,
                       seed_combine(max_round, max_len)));
  const auto picks = std::min<std::size_t>(count, edges.size());
  for (std::size_t i = 0; i < picks; ++i) {
    const auto j = i + rng.next_below(edges.size() - i);
    std::swap(edges[i], edges[j]);
    const auto start = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(max_round) + 1));
    const auto len =
        static_cast<std::uint32_t>(1 + rng.next_below(max_len));
    plan.outages.push_back({edges[i], start, start + len});
  }
}

}  // namespace dasched
