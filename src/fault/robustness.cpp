#include "fault/robustness.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dasched {

Table SlackReport::to_table(const std::string& title) const {
  Table t(title);
  t.set_header({"phase_len", "big_rounds", "min_slack", "mean_slack",
                "negative_rounds"});
  t.add_row({Table::fmt(std::uint64_t{phase_len}),
             Table::fmt(static_cast<std::uint64_t>(slack.size())),
             Table::fmt(min_slack), Table::fmt(mean_slack, 2),
             Table::fmt(negative_rounds)});
  return t;
}

SlackReport analyze_slack(std::span<const std::uint32_t> max_load_per_big_round,
                          std::uint32_t phase_len, TelemetrySink* telemetry) {
  DASCHED_CHECK(phase_len >= 1);
  SlackReport report;
  report.phase_len = phase_len;
  report.slack.reserve(max_load_per_big_round.size());
  report.min_slack = phase_len;
  double total = 0.0;
  for (const auto load : max_load_per_big_round) {
    const std::int64_t s =
        static_cast<std::int64_t>(phase_len) - static_cast<std::int64_t>(load);
    report.slack.push_back(s);
    report.min_slack = std::min(report.min_slack, s);
    total += static_cast<double>(s);
    if (s < 0) ++report.negative_rounds;
    if (telemetry != nullptr) {
      telemetry->record_value("fault.slack", static_cast<double>(s));
    }
  }
  if (report.slack.empty()) report.min_slack = 0;
  report.mean_slack =
      report.slack.empty() ? 0.0 : total / static_cast<double>(report.slack.size());
  if (telemetry != nullptr) {
    telemetry->set_gauge("fault.slack.min", static_cast<double>(report.min_slack));
    telemetry->set_gauge("fault.slack.mean", report.mean_slack);
    telemetry->add_counter("fault.slack.negative_rounds", report.negative_rounds);
  }
  return report;
}

SlackReport analyze_slack(const ExecProfiler& profiler, std::uint32_t phase_len,
                          TelemetrySink* telemetry) {
  return analyze_slack(profiler.round_max_loads(), phase_len, telemetry);
}

Table SurvivalCurve::to_table(const std::string& title) const {
  Table t(title);
  t.set_header({"drop_rate", "trials", "survived", "survival"});
  for (const auto& p : points) {
    t.add_row({Table::fmt(p.drop_rate, 3), Table::fmt(std::uint64_t{p.trials}),
               Table::fmt(std::uint64_t{p.survived}),
               Table::fmt(p.survival_fraction(), 2)});
  }
  return t;
}

SurvivalCurve survival_curve(
    std::span<const double> drop_rates, std::uint32_t trials,
    std::uint64_t base_seed,
    const std::function<bool(double drop_rate, std::uint64_t fault_seed)>& run_trial,
    TelemetrySink* telemetry) {
  SurvivalCurve curve;
  curve.points.reserve(drop_rates.size());
  for (std::size_t i = 0; i < drop_rates.size(); ++i) {
    SurvivalPoint point;
    point.drop_rate = drop_rates[i];
    point.trials = trials;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t fault_seed = seed_combine(base_seed, i, trial);
      if (run_trial(point.drop_rate, fault_seed)) ++point.survived;
    }
    if (telemetry != nullptr) {
      telemetry->add_counter("fault.survival.trials", point.trials);
      telemetry->add_counter("fault.survival.survived", point.survived);
      telemetry->record_value("fault.survival.fraction", point.survival_fraction());
    }
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace dasched
