#include "fault/fault_injector.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

FaultInjector::FaultInjector(const Graph& g, FaultPlan plan)
    : plan_(std::move(plan)), crash_round_(g.num_nodes(), kNoCrash) {
  DASCHED_CHECK_MSG(plan_.drop_rate >= 0.0 && plan_.drop_rate <= 1.0,
                    "drop_rate must be a probability");
  DASCHED_CHECK_MSG(plan_.duplicate_rate >= 0.0 && plan_.duplicate_rate <= 1.0,
                    "duplicate_rate must be a probability");
  for (const auto& c : plan_.crashes) {
    DASCHED_CHECK_MSG(c.node < g.num_nodes(), "crash at out-of-range node");
    // A node listed twice crashes at the earliest listed round.
    crash_round_[c.node] = std::min(crash_round_[c.node], c.at_round);
  }
  sorted_outages_ = plan_.outages;
  for (const auto& o : sorted_outages_) {
    DASCHED_CHECK_MSG(o.edge < g.num_edges(), "outage at out-of-range edge");
    DASCHED_CHECK_MSG(o.from_round <= o.until_round, "outage interval reversed");
  }
  std::sort(sorted_outages_.begin(), sorted_outages_.end(),
            [](const LinkOutage& a, const LinkOutage& b) { return a.edge < b.edge; });
}

bool FaultInjector::link_down(EdgeId e, std::uint32_t t) const {
  auto it = std::lower_bound(
      sorted_outages_.begin(), sorted_outages_.end(), e,
      [](const LinkOutage& o, EdgeId x) { return o.edge < x; });
  for (; it != sorted_outages_.end() && it->edge == e; ++it) {
    if (t >= it->from_round && t < it->until_round) return true;
  }
  return false;
}

}  // namespace dasched
