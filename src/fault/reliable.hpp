// Reliable delivery over a faulty network: bounded retransmissions with
// exponential slot backoff, plus the schedule stretch that reserves the
// retry slots.
//
// Semantics (the executor implements these at its delivery barrier, see
// congest/executor.cpp):
//   * Acks are free: a transmission attempt that is not dropped is known
//     delivered (synchronous model, acks ride the reverse direction of the
//     same big-round and are never lost in this model).
//   * A dropped attempt is retransmitted while the sender is alive and the
//     retry budget lasts: attempt i (1-based) of a message first transmitted
//     in big-round t is re-sent in big-round t + 2^i - 1, i.e. the gap after
//     failed attempt a (0-based) is 2^a slots.
//   * Each retransmission occupies one bandwidth slot on its directed edge in
//     the big-round it is sent -- retries are not free; they show up in edge
//     loads and therefore in the realized schedule length.
//   * The receiver de-duplicates: with the reliable layer active, at most one
//     copy of each (alg, edge, virtual-round) message reaches the inbox.
//
// Why stretching by 2^R preserves causality: with R retries the last attempt
// lands 2^R - 1 slots after the original transmission. Scaling every
// scheduled slot by S = 2^R maps a sender event at big-round t to S*t and the
// earliest causally-after consumer event (originally at some t' >= t + 1) to
// S*t' >= S*t + S, while the last retransmission lands at S*t + 2^R - 1
// < S*t + S. So every retry completes strictly before every consumer that
// depended on the original message, and a faulty run has causality
// violations only when a message exhausts its whole retry budget (counted as
// `lost`, not as a violation) -- i.e. retries turn late deliveries back into
// completed runs at a measurable round-overhead cost. docs/FAULTS.md spells
// this out.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "congest/schedule_table.hpp"
#include "util/check.hpp"

namespace dasched {

struct RetryPolicy {
  /// Extra transmission attempts after the first; 0 disables the reliable
  /// layer entirely.
  std::uint32_t max_retries = 0;

  /// Offset of (1-based) attempt `attempt` from the original transmission
  /// round: 2^attempt - 1 (exponential backoff over slots).
  std::uint32_t backoff_offset(std::uint32_t attempt) const {
    DASCHED_CHECK(attempt >= 1 && attempt <= 20);
    return (1u << attempt) - 1;
  }

  /// Big-round stretch factor reserving every retry slot: 2^max_retries.
  std::uint32_t stretch_factor() const {
    DASCHED_CHECK_MSG(max_retries <= 20, "retry budget unreasonably large");
    return max_retries == 0 ? 1 : (1u << max_retries);
  }
};

/// Stretches a schedule so retry slots exist between consecutive original
/// big-rounds: every scheduled slot t becomes t * stretch_factor().
inline ScheduleTable stretch_for_retries(const ScheduleTable& schedule,
                                         RetryPolicy policy) {
  return schedule.scaled(policy.stretch_factor());
}

/// Per-big-round retransmission bookkeeping: messages awaiting a retry slot,
/// bucketed by the absolute big-round in which they are due. Generic over the
/// staged-message type M (owned by the executor); drained in FIFO order per
/// round, which is deterministic because entries are scheduled at the
/// (serial) delivery barrier.
template <typename M>
class RetryQueue {
 public:
  struct Entry {
    M msg;
    std::uint32_t attempt;  // 1-based attempt index this entry will make
  };

  void schedule(std::uint32_t round, M msg, std::uint32_t attempt) {
    if (round >= buckets_.size()) buckets_.resize(std::size_t{round} + 1);
    auto& bucket = buckets_[round];
    if (bucket.capacity() == 0 && spare_.capacity() != 0) {
      // Recycle a previously drained bucket's storage instead of allocating:
      // in steady state retries cycle through a bounded set of future rounds,
      // so the spare keeps the reliable layer off the allocator.
      bucket = std::move(spare_);
      spare_ = {};
    }
    bucket.push_back({std::move(msg), attempt});
    ++pending_;
    last_round_ = std::max(last_round_, round);
  }

  /// Drains and returns the entries due at `round` (empty if none).
  std::vector<Entry> take(std::uint32_t round) {
    if (round >= buckets_.size()) return {};
    auto due = std::move(buckets_[round]);
    buckets_[round].clear();
    pending_ -= due.size();
    return due;
  }

  /// Allocation-free drain: copies the entries due at `round` into `out`
  /// (cleared first; capacity reused) and recycles the bucket's storage for
  /// future schedule() calls. Requires M trivially copyable.
  void drain_into(std::uint32_t round, std::vector<Entry>& out) {
    static_assert(std::is_trivially_copyable_v<M>);
    out.clear();
    if (round >= buckets_.size()) return;
    auto& bucket = buckets_[round];
    out.insert(out.end(), bucket.begin(), bucket.end());
    pending_ -= bucket.size();
    bucket.clear();
    if (bucket.capacity() > spare_.capacity()) std::swap(bucket, spare_);
  }

  std::uint64_t pending() const { return pending_; }
  /// Highest round any entry was ever scheduled for (0 if none ever).
  std::uint32_t last_round() const { return last_round_; }

 private:
  // perf-ok: bucket storage is recycled through spare_, not reallocated.
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> spare_;  // recycled capacity from drained buckets
  std::uint64_t pending_ = 0;
  std::uint32_t last_round_ = 0;
};

}  // namespace dasched
