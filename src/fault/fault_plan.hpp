// Fault plans: the declarative description of how the network misbehaves.
//
// The paper's model (and everything the schedulers guarantee) assumes a
// perfectly reliable synchronous CONGEST network. A FaultPlan describes a
// deviation from that ideal:
//
//   * per-transmission message drops   -- iid Bernoulli(drop_rate),
//   * per-delivery duplication         -- iid Bernoulli(duplicate_rate),
//   * link outages                     -- an undirected edge transmits nothing
//                                         during a big-round interval,
//   * crash-stop node failures         -- a node executes no scheduled event
//                                         from its crash big-round onward and
//                                         never produces an output.
//
// A plan is pure data plus a seed. All randomness derived from it (the
// FaultInjector's per-message decisions, the random-crash/outage generators
// below) is a deterministic function of that seed, so every faulty run is
// exactly reproducible -- and, because per-message decisions are keyed on
// message identity rather than drawn from shared mutable RNG state, the
// realized faults are independent of executor thread count and processing
// order. See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dasched {

/// Crash round for nodes that never crash.
inline constexpr std::uint32_t kNoCrash = ~std::uint32_t{0};

/// An undirected edge delivers nothing (either direction) during big-rounds
/// [from_round, until_round).
struct LinkOutage {
  EdgeId edge = kInvalidEdge;
  std::uint32_t from_round = 0;
  std::uint32_t until_round = 0;
};

/// Crash-stop failure: the node executes no event at big-round >= at_round.
struct NodeCrash {
  NodeId node = kInvalidNode;
  std::uint32_t at_round = 0;
};

struct FaultPlan {
  /// Seed for every fault decision derived from this plan.
  std::uint64_t seed = 1;
  /// Probability that one transmission attempt is lost (iid per attempt, so
  /// retransmissions redraw).
  double drop_rate = 0.0;
  /// Probability that a successfully delivered message arrives twice.
  double duplicate_rate = 0.0;
  std::vector<LinkOutage> outages;
  std::vector<NodeCrash> crashes;

  bool any_faults() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || !outages.empty() ||
           !crashes.empty();
  }
};

/// Appends `count` crash-stop failures at distinct nodes not already crashed
/// in the plan, with crash rounds uniform in [0, max_round]. Node choice and
/// rounds are a deterministic function of (plan.seed, count, max_round).
/// count is clamped to the number of crash-free nodes.
void add_random_crashes(FaultPlan& plan, NodeId num_nodes, std::uint32_t count,
                        std::uint32_t max_round);

/// Appends `count` link outages on distinct random edges of `g`; each starts
/// uniformly in [0, max_round] and lasts 1..max_len big-rounds. Deterministic
/// in (plan.seed, count, max_round, max_len). count is clamped to the number
/// of edges.
void add_random_outages(FaultPlan& plan, const Graph& g, std::uint32_t count,
                        std::uint32_t max_round, std::uint32_t max_len);

}  // namespace dasched
