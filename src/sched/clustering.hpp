// Lemma 4.2: ball-carving graph partitioning with only private randomness.
//
// Theta(log n) independent layers; in each layer every node u draws a
// truncated-exponential radius r(u) (scale Theta(dilation), following
// Bartal) and a random label l(u), and every node v joins the cluster of the
// *smallest-labelled* u whose ball B(u, r(u)) contains v. Properties:
//   (1) clusters in a layer are node-disjoint (each v picks one center),
//   (2) weak cluster diameter O(dilation log n) (radii are capped at H),
//   (3) w.h.p. each node's dilation-ball is fully inside a cluster in
//       Theta(log n) of the layers (the memoryless-tail argument), and
//   (4) each node learns h'(v): the largest h with B(v, h) inside its cluster
//       (equivalently its distance to the nearest cluster-boundary node,
//       capped at the query radius).
//
// The distributed implementation is the paper's: every u injects a message
// carrying (l(u), fake initial hop-count H - r(u)); at round i nodes forward
// the smallest-labelled "ripe" message, so m_u reaches exactly B(u, r(u)) and
// the smallest label always survives blocking. Boundary detection plus a
// BFS-style boundary flood then yields h'. One layer costs H + O(dilation)
// rounds; all Theta(log n) layers cost O(dilation log^2 n) -- the paper's
// pre-computation bound.
//
// A central (non-distributed) construction with the *same* randomness is
// provided as a test oracle: both must agree exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "rand/distributions.hpp"
#include "telemetry/telemetry.hpp"

namespace dasched {

struct ClusteringConfig {
  std::uint64_t seed = 1;
  /// The paper's `dilation` parameter: radii scale with it and h' is capped
  /// at it (coverage means h'(v) >= dilation).
  std::uint32_t dilation = 1;
  /// Radius scale multiplier: R = radius_factor * dilation. Calibrated so a
  /// dilation-ball is padded with probability ~0.4-0.5 per layer across the
  /// test topologies (the paper's "constant probability"; see bench E3).
  double radius_factor = 2.0;
  /// Radius truncation: caps radii at R * truncation_lns * ln(n).
  double truncation_lns = 2.0;
  /// Number of layers; 0 derives layer_factor * ln(n).
  std::uint32_t num_layers = 0;
  double layer_factor = 2.0;
  /// Optional telemetry sink (borrowed): clustering/build span, per-layer
  /// clustering/layer spans, clustering.rounds counter, and
  /// clustering.clusters_per_layer / clustering.h_prime histograms.
  TelemetrySink* telemetry = nullptr;
};

struct ClusterLayer {
  std::vector<NodeId> center;         // per node: id of its cluster center
  std::vector<std::uint64_t> label;   // per node: label of its center
  std::vector<std::uint32_t> h_prime; // per node: contained radius, capped
};

struct Clustering {
  std::vector<ClusterLayer> layers;
  std::uint32_t hop_cap = 0;        // H = max radius + 1
  std::uint32_t radius_query_cap = 0;  // h' cap (== config dilation)
  std::uint64_t precomputation_rounds = 0;  // CONGEST rounds actually spent
  /// Radius distribution parameters, kept so downstream protocols (Lemma 4.3
  /// sharing) can replay the identical per-node draws.
  double radius_scale = 1.0;
  double radius_truncation_logs = 1.0;

  TruncatedExponentialRadius radius_distribution_for_replay() const {
    return {radius_scale, radius_truncation_logs};
  }

  std::size_t num_layers() const { return layers.size(); }

  /// Number of layers whose cluster fully contains B(v, radius).
  std::uint32_t coverage(NodeId v, std::uint32_t radius) const;

  /// Max over layers of h'(v).
  std::uint32_t best_radius(NodeId v) const;
};

class ClusteringBuilder {
 public:
  explicit ClusteringBuilder(ClusteringConfig cfg);

  /// Runs the Lemma 4.2 message-passing programs in the CONGEST simulator.
  Clustering build_distributed(const Graph& g) const;

  /// Same clusters computed centrally from the same per-node random draws
  /// (test oracle; precomputation_rounds is 0).
  Clustering build_central(const Graph& g) const;

  /// Per-layer base seed -- the clustering and randomness-sharing programs of
  /// a layer share it so their per-node draws coincide.
  static std::uint64_t layer_seed(std::uint64_t seed, std::uint32_t layer) {
    return seed_combine(seed, layer, 0xC1u);
  }

  /// The (radius, label) draw every node performs first, shared by the
  /// distributed program and the central oracle. Label embeds the node id in
  /// the low 32 bits so labels are distinct deterministically.
  static void draw_node_params(Rng& rng, const TruncatedExponentialRadius& dist,
                               NodeId node, std::uint32_t* radius, std::uint64_t* label);

  std::uint32_t resolved_layers(NodeId n) const;

 private:
  ClusteringConfig cfg_;
};

}  // namespace dasched
