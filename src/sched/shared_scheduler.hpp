// Theorem 1.1: scheduling with shared randomness via random phase delays.
//
// "Break time into phases, each having Theta(log n) rounds. ... We delay the
// start of each algorithm by a uniform random delay in
// [O(congestion / log n)] phases." The Chernoff bound (for Theta(log n)-wise
// independent delays) then gives O(log n) messages per edge per phase w.h.p.,
// so the whole execution fits in O(congestion/log n) + dilation phases =
// O(congestion + dilation * log n) rounds.
//
// The shared randomness is exactly what the paper budgets: a
// Theta(log n)-wise independent family over GF(p) seeded with Theta(log^2 n)
// bits; algorithm A_i draws its delay from the family at its algorithm id
// (the paper's AID bucket construction).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "sched/problem.hpp"

namespace dasched {

struct SharedSchedulerConfig {
  /// Shared-randomness seed: the Theta(log^2 n) bits all nodes hold.
  std::uint64_t shared_seed = 1;
  /// Phase length multiplier: phase_len = max(1, round(factor * log2 n)).
  double phase_factor = 1.0;
  /// Delay range multiplier: range = max(1, ceil(factor * congestion / phase_len)).
  double range_factor = 1.0;
  /// Independence k of the delay family; 0 means Theta(log n).
  std::uint32_t independence = 0;
  /// Override for the congestion estimate handed to the scheduler (0 = use the
  /// exact value). Lets tests exercise the paper's "constant-factor
  /// approximation" assumption.
  std::uint32_t congestion_estimate = 0;
  /// Worker threads for the scheduled execution (ExecConfig::num_threads);
  /// 0/1 = serial. Results are bit-identical for every value.
  std::uint32_t num_threads = 0;
  /// Optional telemetry sink (borrowed). Emits sched.shared/run +
  /// sched.shared/execute spans, phase/delay gauges, a sched.shared.delay
  /// histogram, the fixed-phase overflow counter, and the executor's metrics.
  TelemetrySink* telemetry = nullptr;
  /// Optional congestion profiler (borrowed), handed through to
  /// ExecConfig::profiler for the scheduled execution. Null = unprofiled.
  ExecProfiler* profiler = nullptr;
};

struct SharedScheduleOutcome {
  ExecutionResult exec;
  std::uint32_t phase_len = 0;
  std::uint32_t delay_range = 0;  // in phases
  std::vector<std::uint32_t> delays;  // per algorithm, in phases
  /// Realized schedule length in physical rounds (adaptive phase lengths).
  std::uint64_t schedule_rounds = 0;
  /// Fixed-phase view at phase_len.
  ExecutionResult::FixedPhase fixed{};
  /// The executed big-round table, for static verification
  /// (verify::check_schedule).
  ScheduleTable schedule;
};

class SharedRandomnessScheduler {
 public:
  explicit SharedRandomnessScheduler(SharedSchedulerConfig cfg = {}) : cfg_(cfg) {}

  /// Runs all algorithms of `problem` under random phase delays and returns
  /// the full execution (verify with problem.verify()).
  SharedScheduleOutcome run(ScheduleProblem& problem) const;

  /// Just draws the per-algorithm delays (used by the combinatorial analyzer
  /// to sweep many trials cheaply).
  static std::vector<std::uint32_t> draw_delays(std::uint64_t shared_seed,
                                                std::size_t num_algorithms,
                                                std::uint32_t delay_range,
                                                std::uint32_t independence);

 private:
  SharedSchedulerConfig cfg_;
};

}  // namespace dasched
