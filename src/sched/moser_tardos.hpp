// O(congestion + dilation) schedules for packet-routing-like instances via
// constructive Lovász Local Lemma (Moser-Tardos resampling).
//
// The paper's Section 1: packet routing admits O(congestion + dilation)
// schedules, classically via log* n levels of LLL [22] -- "now one of the
// materials typically covered in courses on randomized algorithms for
// introducing the Lovász Local Lemma" -- and Theorem 3.1 shows this is
// exactly what *cannot* be done for general algorithms. This module makes
// the routing side of that separation constructive:
//
//   * every algorithm gets a uniformly random start delay in a frame of
//     Theta(congestion) rounds (unit-length phases: this is the true
//     O(C + D) regime, no log n phase padding);
//   * a "bad event" is an overloaded (round, directed edge) pair (more
//     messages than the unit capacity);
//   * while bad events exist, resample the delays of all algorithms
//     participating in one (Moser-Tardos); under the LLL-style condition
//     (bounded dependency between path overlaps) this converges in
//     expectation in O(#events) resamplings.
//
// The result is a schedule of num_phases = frame + dilation rounds with NO
// overflow -- within a constant of C + D. On the Section 3 hard family the
// same procedure must either fail to converge or converge only with a large
// frame (bench E9 measures both sides).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "sched/problem.hpp"

namespace dasched {

struct MoserTardosConfig {
  std::uint64_t seed = 1;
  /// Messages allowed per (round, directed edge): 1 is the CONGEST capacity.
  std::uint32_t capacity = 1;
  /// Delay frame = max(1, ceil(frame_factor * congestion / capacity)).
  double frame_factor = 3.0;
  /// Give up after this many resampling iterations (no convergence).
  std::uint64_t max_iterations = 200000;
};

struct MoserTardosOutcome {
  bool converged = false;
  std::uint64_t resample_iterations = 0;
  std::uint32_t frame = 0;
  std::vector<std::uint32_t> delays;  // per algorithm (valid if converged)
  /// Schedule length in rounds (phases are unit length); 0 if not converged.
  std::uint64_t schedule_rounds = 0;
  /// Full execution of the converged schedule (verify via problem.verify()).
  ExecutionResult exec;
};

class MoserTardosScheduler {
 public:
  explicit MoserTardosScheduler(MoserTardosConfig cfg = {}) : cfg_(cfg) {}

  MoserTardosOutcome run(ScheduleProblem& problem) const;

 private:
  MoserTardosConfig cfg_;
};

}  // namespace dasched
