#include "sched/doubling.hpp"

#include "util/check.hpp"

namespace dasched {

DoublingOutcome run_with_doubling(ScheduleProblem& problem, SharedSchedulerConfig base) {
  problem.run_solo();
  DoublingOutcome out;
  // Start from C_hat = 1 (a single delay phase) and double.
  for (std::uint32_t guess = 1;; guess *= 2) {
    SharedSchedulerConfig cfg = base;
    cfg.congestion_estimate = guess;
    cfg.shared_seed = seed_combine(base.shared_seed, out.attempts);
    const auto attempt = SharedRandomnessScheduler(cfg).run(problem);
    ++out.attempts;
    if (attempt.fixed.overflowing_phases == 0) {
      out.successful_estimate = guess;
      out.total_rounds = out.wasted_rounds + attempt.fixed.physical_rounds;
      out.final = attempt;
      return out;
    }
    // Abort at the first overflowing phase: the incident nodes observe the
    // overflow locally in that phase and trigger the restart, so a failed
    // attempt only costs the prefix it actually ran.
    std::uint32_t first_overflow = attempt.exec.num_big_rounds;
    for (std::uint32_t t = 0; t < attempt.exec.max_load_per_big_round.size(); ++t) {
      if (attempt.exec.max_load_per_big_round[t] > attempt.phase_len) {
        first_overflow = t;
        break;
      }
    }
    out.wasted_rounds += static_cast<std::uint64_t>(first_overflow + 1) * attempt.phase_len;
    DASCHED_CHECK_MSG(guess < (1u << 30), "doubling did not converge");
  }
}

}  // namespace dasched
