// Workload generators: canonical DAS problem instances.
//
// These are the workloads the paper's introduction motivates: k h-hop
// broadcasts from random sources (item I), k h-hop BFS instances (item II),
// packet routing along shortest paths (item III), and a mixed bag that adds
// tree aggregations. Used by tests, benchmarks, and examples.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"
#include "sched/problem.hpp"
#include "util/rng.hpp"

namespace dasched {

/// k h-hop broadcasts from distinct random sources.
std::unique_ptr<ScheduleProblem> make_broadcast_workload(const Graph& g, std::size_t k,
                                                         std::uint32_t radius,
                                                         std::uint64_t seed);

/// k h-hop BFS instances from distinct random sources.
std::unique_ptr<ScheduleProblem> make_bfs_workload(const Graph& g, std::size_t k,
                                                   std::uint32_t radius,
                                                   std::uint64_t seed);

/// k shortest-path packet routings between random pairs (the LMR workload).
std::unique_ptr<ScheduleProblem> make_routing_workload(const Graph& g, std::size_t k,
                                                       std::uint64_t seed);

/// Mixed workload: k/3 broadcasts, k/3 BFS, k/3 aggregations (plus remainder
/// broadcasts), all with the given radius.
std::unique_ptr<ScheduleProblem> make_mixed_workload(const Graph& g, std::size_t k,
                                                     std::uint32_t radius,
                                                     std::uint64_t seed);

}  // namespace dasched
