// Lemma 4.3: sharing Theta(log^2 n) bits of randomness in every cluster.
//
// Every node (a potential center) draws s = Theta(log n) seed words of
// Theta(log n) bits and injects s messages (label l(u), sub-label j, word),
// all with the same fake initial hop-count H - r(u) as in the clustering of
// Lemma 4.2. Each round every node forwards the lexicographically smallest
// (hop-count, label, sub-label) message it has not forwarded yet -- Lenzen's
// pipelining -- so after H + Theta(log n) rounds per layer each node has
// received all s words of its cluster center (the center's label is by
// definition the smallest that can reach the node). All Theta(log n) layers
// together cost O(dilation log^2 n) rounds, and a node turns the received
// words into a Theta(log n)-wise independent value family (rand/kwise.hpp)
// from which per-algorithm delays are drawn consistently cluster-wide.
//
// The layer programs reuse the clustering layer's base seed, so the
// (radius, label) draws coincide with Lemma 4.2's and the words a node
// receives really are "its center's".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sched/clustering.hpp"

namespace dasched {

struct RandSharingConfig {
  /// Must equal the ClusteringConfig seed used for the clustering.
  std::uint64_t seed = 1;
  /// s: number of Theta(log n)-bit words per cluster seed; this is also the
  /// independence parameter of the derived k-wise family. 0 derives ceil(ln n).
  std::uint32_t words_per_seed = 0;
  /// Extra rounds beyond the H + s pipelining bound (safety slack).
  std::uint32_t slack_rounds = 4;
  /// Optional telemetry sink (borrowed): rand_sharing/run + per-layer spans,
  /// rand_sharing.rounds and rand_sharing.incomplete_nodes counters.
  TelemetrySink* telemetry = nullptr;
};

struct SharedSeeds {
  struct Layer {
    /// words[v]: the seed words node v attributes to its center (size s;
    /// missing words are 0 with complete[v] == false).
    std::vector<std::vector<std::uint64_t>> words;
    /// Smallest label node v heard during sharing (must equal its clustering
    /// center label -- checked by tests).
    std::vector<std::uint64_t> center_label;
    std::vector<std::uint8_t> complete;
  };
  std::vector<Layer> layers;
  std::uint32_t words_per_seed = 0;
  std::uint64_t rounds = 0;  // CONGEST rounds spent

  bool all_complete() const;
};

class RandomnessSharing {
 public:
  explicit RandomnessSharing(RandSharingConfig cfg) : cfg_(cfg) {}

  /// The real protocol, run in the CONGEST simulator, one run per layer.
  SharedSeeds run_distributed(const Graph& g, const Clustering& clustering) const;

  /// Oracle: hands every node its center's words directly (same draws,
  /// zero rounds). Used by tests and by fast benchmark sweeps.
  SharedSeeds run_central(const Graph& g, const Clustering& clustering) const;

  std::uint32_t resolved_words(NodeId n) const;

 private:
  RandSharingConfig cfg_;
};

}  // namespace dasched
