#include "sched/problem.hpp"

#include <algorithm>

#include "congest/pattern.hpp"
#include "util/check.hpp"

namespace dasched {

void ScheduleProblem::add(std::unique_ptr<DistributedAlgorithm> algorithm) {
  DASCHED_CHECK_MSG(solo_.empty(), "add algorithms before run_solo()");
  DASCHED_CHECK(algorithm != nullptr);
  DASCHED_CHECK(algorithm->rounds() >= 1);
  algorithms_.push_back(std::move(algorithm));
}

std::vector<const DistributedAlgorithm*> ScheduleProblem::algorithm_ptrs() const {
  std::vector<const DistributedAlgorithm*> ptrs;
  ptrs.reserve(algorithms_.size());
  for (const auto& a : algorithms_) ptrs.push_back(a.get());
  return ptrs;
}

void ScheduleProblem::run_solo() {
  if (solo_done()) return;
  Simulator sim(*graph_);
  solo_.reserve(algorithms_.size());
  for (const auto& a : algorithms_) solo_.push_back(sim.run(*a));
}

void ScheduleProblem::adopt_solo(std::vector<SoloRunResult> solo) {
  DASCHED_CHECK_MSG(solo_.empty(), "adopt_solo: solo results already present");
  DASCHED_CHECK_EQ(solo.size(), algorithms_.size(),
                   "adopt_solo: one solo result per algorithm, in order");
  DASCHED_CHECK_MSG(!solo.empty(), "adopt_solo: empty result set");
  solo_ = std::move(solo);
}

const std::vector<SoloRunResult>& ScheduleProblem::solo() const {
  DASCHED_CHECK_MSG(solo_done(), "call run_solo() first");
  return solo_;
}

std::uint32_t ScheduleProblem::dilation() const {
  std::uint32_t d = 0;
  for (const auto& a : algorithms_) d = std::max(d, a->rounds());
  return d;
}

std::uint32_t ScheduleProblem::congestion() const {
  DASCHED_CHECK_MSG(solo_done(), "call run_solo() first");
  std::vector<std::uint32_t> loads(graph_->num_directed_edges(), 0);
  for (const auto& s : solo_) {
    for (std::uint32_t d = 0; d < loads.size(); ++d) loads[d] += s.pattern.edge_load(d);
  }
  std::uint32_t congestion = 0;
  for (const auto load : loads) congestion = std::max(congestion, load);
  return congestion;
}

std::vector<analysis::PatternCertificate> ScheduleProblem::analyze_static() const {
  std::vector<analysis::PatternCertificate> certs;
  certs.reserve(algorithms_.size());
  for (const auto& a : algorithms_) certs.push_back(analysis::analyze(*graph_, *a));
  return certs;
}

std::uint32_t ScheduleProblem::certified_congestion_bound() const {
  // Sum per-edge loads where certificates carry the exact surface, and add
  // each non-exact certificate's per-edge bound uniformly -- the sum of sound
  // per-edge bounds dominates every realizable combined load.
  std::vector<std::uint64_t> loads(graph_->num_directed_edges(), 0);
  std::uint64_t envelope = 0;
  for (const auto& cert : analyze_static()) {
    if (cert.exact()) {
      for (std::uint32_t d = 0; d < loads.size(); ++d) loads[d] += cert.pattern.edge_load(d);
    } else {
      envelope += cert.per_edge_bound;
    }
  }
  std::uint64_t bound = 0;
  for (const auto load : loads) bound = std::max(bound, load);
  bound += envelope;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(bound, ~std::uint32_t{0}));
}

std::uint32_t ScheduleProblem::trivial_lower_bound() const {
  return std::max(congestion(), dilation());
}

std::uint64_t ScheduleProblem::total_messages() const {
  DASCHED_CHECK_MSG(solo_done(), "call run_solo() first");
  std::uint64_t total = 0;
  for (const auto& s : solo_) total += s.total_messages;
  return total;
}

ScheduleProblem::Verification ScheduleProblem::verify(const ExecutionResult& exec) const {
  DASCHED_CHECK_MSG(solo_done(), "call run_solo() first");
  DASCHED_CHECK(exec.outputs.size() == algorithms_.size());
  Verification v;
  v.causality_violations = exec.causality_violations;
  for (std::size_t a = 0; a < algorithms_.size(); ++a) {
    for (NodeId node = 0; node < graph_->num_nodes(); ++node) {
      if (!exec.completed[a][node]) {
        ++v.incomplete_nodes;
      } else if (exec.outputs[a][node] != solo_[a].outputs[node]) {
        ++v.mismatched_outputs;
      }
    }
  }
  return v;
}

}  // namespace dasched
