#include "sched/delay_schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

std::uint64_t LoadProfile::adaptive_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_phase) rounds += std::max<std::uint32_t>(1, load);
  return rounds;
}

LoadProfile::Fixed LoadProfile::fixed(std::uint32_t phase_len) const {
  DASCHED_CHECK(phase_len >= 1);
  Fixed f{static_cast<std::uint64_t>(max_load_per_phase.size()) * phase_len, 0};
  for (const auto load : max_load_per_phase) {
    if (load > phase_len) ++f.overflowing_phases;
  }
  return f;
}

LoadProfile delay_load_profile(const ScheduleProblem& problem,
                               std::span<const std::uint32_t> delays) {
  DASCHED_CHECK(delays.size() == problem.size());
  const auto& g = problem.graph();

  std::uint32_t num_phases = 0;
  for (std::size_t a = 0; a < problem.size(); ++a) {
    const auto last = problem.solo()[a].pattern.last_message_round();
    if (last > 0) num_phases = std::max(num_phases, delays[a] + last);
  }

  LoadProfile profile;
  profile.max_load_per_phase.assign(num_phases, 0);

  // Sparse per-phase counting: bucket (phase -> edges touched this phase).
  std::vector<std::vector<std::uint32_t>> phase_edges(num_phases);
  for (std::size_t a = 0; a < problem.size(); ++a) {
    const auto& pattern = problem.solo()[a].pattern;
    for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
      const auto edges = pattern.edges_in_round(r);
      auto& bucket = phase_edges[delays[a] + r - 1];
      bucket.insert(bucket.end(), edges.begin(), edges.end());
      profile.total_messages += edges.size();
    }
  }

  std::vector<std::uint32_t> count(g.num_directed_edges(), 0);
  for (std::uint32_t t = 0; t < num_phases; ++t) {
    std::uint32_t max_load = 0;
    for (const auto d : phase_edges[t]) {
      max_load = std::max(max_load, ++count[d]);
    }
    for (const auto d : phase_edges[t]) count[d] = 0;
    profile.max_load_per_phase[t] = max_load;
    profile.max_load = std::max(profile.max_load, max_load);
  }
  return profile;
}

}  // namespace dasched
