#include "sched/shared_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "rand/distributions.hpp"
#include "rand/kwise.hpp"
#include "util/math.hpp"

namespace dasched {

std::vector<std::uint32_t> SharedRandomnessScheduler::draw_delays(
    std::uint64_t shared_seed, std::size_t num_algorithms, std::uint32_t delay_range,
    std::uint32_t independence) {
  DASCHED_CHECK(delay_range >= 1);
  DASCHED_CHECK(independence >= 1);
  // Field large enough that unit_value discretization cannot bias delays:
  // prime >= max(2^20, 4 * range).
  const std::uint64_t prime =
      next_prime(std::max<std::uint64_t>(1u << 20, 4ULL * delay_range));
  Rng seed_rng(shared_seed);
  const KWiseFamily family(prime, independence, seed_rng);
  const UniformDelay dist(delay_range);
  std::vector<std::uint32_t> delays;
  delays.reserve(num_algorithms);
  for (std::size_t a = 0; a < num_algorithms; ++a) {
    delays.push_back(dist.delay_from_unit(family.unit_value(a)));
  }
  return delays;
}

SharedScheduleOutcome SharedRandomnessScheduler::run(ScheduleProblem& problem) const {
  TimedSpan run_span(cfg_.telemetry, "sched.shared", "run");
  problem.run_solo();
  const NodeId n = problem.graph().num_nodes();
  const std::uint32_t log_n = std::max(1, ceil_log2(std::max<NodeId>(2, n)));

  SharedScheduleOutcome out;
  out.phase_len = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(cfg_.phase_factor * log_n)));
  const std::uint32_t congestion =
      cfg_.congestion_estimate > 0 ? cfg_.congestion_estimate : problem.congestion();
  out.delay_range = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::ceil(cfg_.range_factor * congestion / out.phase_len)));
  const std::uint32_t independence =
      cfg_.independence > 0 ? cfg_.independence : std::max<std::uint32_t>(2, log_n);

  out.delays = draw_delays(cfg_.shared_seed, problem.size(), out.delay_range, independence);

  if (cfg_.telemetry != nullptr) {
    cfg_.telemetry->set_gauge("sched.shared.phase_len", out.phase_len);
    cfg_.telemetry->set_gauge("sched.shared.delay_range", out.delay_range);
    cfg_.telemetry->set_gauge("sched.shared.congestion", congestion);
    cfg_.telemetry->set_gauge("sched.shared.independence", independence);
    for (const auto d : out.delays) {
      cfg_.telemetry->record_value("sched.shared.delay", d);
    }
  }

  ExecConfig ecfg;
  ecfg.telemetry = cfg_.telemetry;
  ecfg.profiler = cfg_.profiler;
  ecfg.num_threads = cfg_.num_threads;
  Executor executor(problem.graph(), ecfg);
  const auto algos = problem.algorithm_ptrs();
  out.schedule =
      ScheduleTable::from_delays(algos, problem.graph().num_nodes(), out.delays);
  {
    TimedSpan exec_span(cfg_.telemetry, "sched.shared", "execute");
    out.exec = executor.run(algos, out.schedule);
  }

  out.schedule_rounds = out.exec.adaptive_physical_rounds();
  out.fixed = out.exec.fixed_phase(out.phase_len);
  if (cfg_.telemetry != nullptr) {
    cfg_.telemetry->add_counter("sched.shared.fixed_phase_overflows",
                                out.fixed.overflowing_phases);
    cfg_.telemetry->set_gauge("sched.shared.schedule_rounds",
                              static_cast<double>(out.schedule_rounds));
    run_span.arg("schedule_rounds", static_cast<double>(out.schedule_rounds));
    run_span.arg("phase_len", out.phase_len);
    run_span.arg("delay_range", out.delay_range);
  }
  return out;
}

}  // namespace dasched
