// Combinatorial analysis of delay-based schedules.
//
// A delay schedule assigns each algorithm a start phase; algorithm i's
// virtual round r lands in phase delay_i + r - 1. Given the solo
// communication patterns, the per-(phase, directed-edge) loads -- and hence
// every schedule-length measure -- are a pure counting exercise. This lets
// benchmark sweeps evaluate thousands of random delay draws without
// re-running the black-box programs (the executor is used once per
// configuration to validate correctness; the analyzer reproduces its load
// profile exactly, which tests assert).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/problem.hpp"

namespace dasched {

struct LoadProfile {
  std::vector<std::uint32_t> max_load_per_phase;
  std::uint32_t max_load = 0;
  std::uint64_t total_messages = 0;

  std::uint32_t num_phases() const {
    return static_cast<std::uint32_t>(max_load_per_phase.size());
  }

  /// Realized rounds with adaptive phase lengths: sum of max(1, load).
  std::uint64_t adaptive_rounds() const;

  struct Fixed {
    std::uint64_t rounds;
    std::uint64_t overflowing_phases;
  };
  /// Fixed phases of `phase_len` rounds.
  Fixed fixed(std::uint32_t phase_len) const;
};

/// Loads under per-algorithm phase delays (requires problem.run_solo()).
LoadProfile delay_load_profile(const ScheduleProblem& problem,
                               std::span<const std::uint32_t> delays);

}  // namespace dasched
