// The naive alternative to Theorem 4.1 that the paper argues against:
// globally share the Theta(log^2 n) random bits by electing a leader and
// broadcasting, then run the Theorem 1.1 scheduler.
//
// "clearly one can elect a leader to pick the required initial 'shared'
// randomness and broadcast it to all nodes. However, this, and moreover any
// such global sharing procedure, will need at least Omega(D) rounds, for D
// being the network diameter, which is not desirable." (Section 1)
//
// We implement it faithfully as a CONGEST protocol -- BFS-tree election from
// the minimum id + pipelined broadcast of the seed words -- so that the E10
// ablation can compare its Theta(diameter) pre-computation against
// Theorem 4.1's O(dilation log^2 n): private-local sharing wins exactly when
// dilation << diameter / log^2 n, i.e. local algorithms on high-diameter
// networks.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "graph/graph.hpp"
#include "sched/problem.hpp"
#include "sched/shared_scheduler.hpp"

namespace dasched {

struct GlobalSharingConfig {
  std::uint64_t seed = 1;           // the leader's private randomness
  std::uint32_t seed_words = 0;     // Theta(log n) if 0
  SharedSchedulerConfig scheduler;  // shared_seed is overwritten
};

struct GlobalSharingOutcome {
  /// Rounds of the election + broadcast protocol (Theta(diameter + words)).
  std::uint64_t precomputation_rounds = 0;
  /// True iff every node received the full seed (protocol correctness).
  bool sharing_complete = false;
  SharedScheduleOutcome schedule;
};

class GlobalSharingScheduler {
 public:
  explicit GlobalSharingScheduler(GlobalSharingConfig cfg = {}) : cfg_(cfg) {}

  GlobalSharingOutcome run(ScheduleProblem& problem) const;

 private:
  GlobalSharingConfig cfg_;
};

}  // namespace dasched
