#include "sched/global_sharing.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "util/math.hpp"

namespace dasched {

namespace {

constexpr std::uint64_t kTagMinId = 1;
constexpr std::uint64_t kTagWord = 2;

/// Leader election (min-id flood) + pipelined seed broadcast.
///
/// Rounds 1..D+1:        min-id flood (send on improvement).
/// Rounds D+2..2D+s+3:   the leader (the node whose id survived) floods its
///                       s seed words, pipelined one per round per node.
/// The diameter bound D is an input -- the standard assumption for the naive
/// approach (and exactly why it costs Omega(diameter)).
class MinIdSeedBroadcast final : public DistributedAlgorithm {
 public:
  MinIdSeedBroadcast(std::uint32_t diameter_bound, std::uint32_t words,
                     std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed), diameter_(diameter_bound), words_(words) {}

  std::string name() const override { return "min-id-seed-broadcast"; }
  /// Widest message is the pipelined word {tag, index, word}: three words.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 3;
    return f;
  }
  std::uint32_t rounds() const override { return 2 * diameter_ + words_ + 3; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

  std::uint32_t diameter() const { return diameter_; }
  std::uint32_t words() const { return words_; }

 private:
  std::uint32_t diameter_;
  std::uint32_t words_;
};

class MinIdSeedProgram final : public NodeProgram {
 public:
  MinIdSeedProgram(const MinIdSeedBroadcast& algo, NodeId self)
      : algo_(algo), self_(self), best_(self) {}

  void on_round(VirtualContext& ctx) override {
    const std::uint32_t flood_end = algo_.diameter() + 1;
    absorb(ctx);
    if (ctx.vround() <= flood_end) {
      if (best_ != last_sent_) {
        last_sent_ = best_;
        for (const auto& nb : ctx.neighbors()) ctx.send(nb.neighbor, {kTagMinId, best_});
      }
      return;
    }
    if (ctx.vround() == flood_end + 1 && best_ == self_) {
      // This node won the election; draw the seed words privately.
      for (std::uint32_t j = 0; j < algo_.words(); ++j) {
        const std::uint64_t word = ctx.rng()();
        enqueue_word(j, word);
      }
    }
    // Pipelined word flood: one new word per round to all neighbors.
    if (!queue_.empty()) {
      const auto [j, word] = queue_.front();
      queue_.pop_front();
      for (const auto& nb : ctx.neighbors()) ctx.send(nb.neighbor, {kTagWord, j, word});
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    std::vector<std::uint64_t> out = {words_.size() == algo_.words() ? 1ULL : 0ULL, best_};
    for (std::uint32_t j = 0; j < algo_.words(); ++j) {
      const auto it = words_.find(j);
      out.push_back(it == words_.end() ? 0 : it->second);
    }
    return out;
  }

 private:
  void enqueue_word(std::uint32_t j, std::uint64_t word) {
    if (words_.emplace(j, word).second) queue_.emplace_back(j, word);
  }

  void absorb(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (m.payload.at(0) == kTagMinId) {
        best_ = std::min(best_, m.payload.at(1));
      } else {
        enqueue_word(static_cast<std::uint32_t>(m.payload.at(1)), m.payload.at(2));
      }
    }
  }

  const MinIdSeedBroadcast& algo_;
  NodeId self_;
  std::uint64_t best_;
  std::uint64_t last_sent_ = ~std::uint64_t{0};
  std::map<std::uint32_t, std::uint64_t> words_;
  std::deque<std::pair<std::uint32_t, std::uint64_t>> queue_;
};

std::unique_ptr<NodeProgram> MinIdSeedBroadcast::make_program(NodeId node) const {
  return std::make_unique<MinIdSeedProgram>(*this, node);
}

}  // namespace

GlobalSharingOutcome GlobalSharingScheduler::run(ScheduleProblem& problem) const {
  problem.run_solo();
  const auto& g = problem.graph();
  const std::uint32_t diameter = exact_diameter(g);
  const std::uint32_t words =
      cfg_.seed_words > 0
          ? cfg_.seed_words
          : std::max<std::uint32_t>(2, static_cast<std::uint32_t>(
                                           log_ceil_ln(g.num_nodes())));

  GlobalSharingOutcome out;
  MinIdSeedBroadcast protocol(std::max(1u, diameter), words, cfg_.seed);
  Simulator sim(g);
  const auto run = sim.run(protocol);
  out.precomputation_rounds = protocol.rounds();

  // Every node folds the received words into the shared scheduler seed; if
  // the protocol is correct they all agree.
  out.sharing_complete = true;
  std::uint64_t folded = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (run.outputs[v][0] != 1) out.sharing_complete = false;
    std::uint64_t f = 0x9e3779b97f4a7c15ULL;
    for (std::size_t j = 2; j < run.outputs[v].size(); ++j) {
      f = seed_combine(f, run.outputs[v][j]);
    }
    if (v == 0) {
      folded = f;
    } else if (f != folded) {
      out.sharing_complete = false;
    }
  }

  SharedSchedulerConfig scfg = cfg_.scheduler;
  scfg.shared_seed = folded;
  out.schedule = SharedRandomnessScheduler(scfg).run(problem);
  return out;
}

}  // namespace dasched
