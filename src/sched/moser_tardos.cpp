#include "sched/moser_tardos.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace dasched {

MoserTardosOutcome MoserTardosScheduler::run(ScheduleProblem& problem) const {
  problem.run_solo();
  const std::size_t k = problem.size();

  MoserTardosOutcome out;
  out.frame = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::ceil(cfg_.frame_factor * problem.congestion() / cfg_.capacity)));

  // Flatten messages: (algorithm, round, directed edge).
  struct Msg {
    std::uint32_t alg;
    std::uint32_t round;
    std::uint32_t dedge;
  };
  std::vector<Msg> messages;
  for (std::size_t a = 0; a < k; ++a) {
    const auto& pattern = problem.solo()[a].pattern;
    for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
      for (const auto d : pattern.edges_in_round(r)) {
        messages.push_back({static_cast<std::uint32_t>(a), r, d});
      }
    }
  }

  Rng rng(cfg_.seed);
  out.delays.resize(k);
  for (auto& d : out.delays) d = static_cast<std::uint32_t>(rng.next_below(out.frame));

  std::unordered_map<std::uint64_t, std::uint32_t> load;
  load.reserve(messages.size() * 2);
  for (out.resample_iterations = 0; out.resample_iterations < cfg_.max_iterations;
       ++out.resample_iterations) {
    // Count loads; remember the lexicographically smallest violated cell so
    // the run is deterministic per seed.
    load.clear();
    std::uint64_t violated = ~std::uint64_t{0};
    for (const auto& m : messages) {
      const std::uint64_t cell =
          (static_cast<std::uint64_t>(out.delays[m.alg] + m.round - 1) << 32) | m.dedge;
      if (++load[cell] > cfg_.capacity) violated = std::min(violated, cell);
    }
    if (violated == ~std::uint64_t{0}) {
      out.converged = true;
      break;
    }
    // Moser-Tardos: resample every algorithm participating in the event.
    // (Collect first, then resample -- computing cells with mutated delays
    // would misidentify participants.)
    std::vector<std::uint8_t> in_event(k, 0);
    for (const auto& m : messages) {
      const std::uint64_t cell =
          (static_cast<std::uint64_t>(out.delays[m.alg] + m.round - 1) << 32) | m.dedge;
      if (cell == violated) in_event[m.alg] = 1;
    }
    for (std::size_t a = 0; a < k; ++a) {
      if (in_event[a]) {
        out.delays[a] = static_cast<std::uint32_t>(rng.next_below(out.frame));
      }
    }
  }

  if (!out.converged) return out;

  // Realize the schedule: unit-length phases, unit capacity enforced.
  ExecConfig cfg;
  cfg.enforce_unit_capacity = (cfg_.capacity == 1);
  Executor executor(problem.graph(), cfg);
  const auto algos = problem.algorithm_ptrs();
  out.exec = executor.run(
      algos,
      ScheduleTable::from_delays(algos, problem.graph().num_nodes(), out.delays));
  out.schedule_rounds = out.exec.num_big_rounds;
  return out;
}

}  // namespace dasched
