#include "sched/rand_sharing.hpp"

#include <algorithm>
#include <map>

#include "congest/simulator.hpp"
#include "util/math.hpp"

namespace dasched {

bool SharedSeeds::all_complete() const {
  for (const auto& layer : layers) {
    for (const auto c : layer.complete) {
      if (!c) return false;
    }
  }
  return true;
}

std::uint32_t RandomnessSharing::resolved_words(NodeId n) const {
  if (cfg_.words_per_seed > 0) return cfg_.words_per_seed;
  return std::max<std::uint32_t>(2, static_cast<std::uint32_t>(log_ceil_ln(n)));
}

namespace {

/// Key of one token: (label, sub-label) is the forwarding priority; the held
/// hop-count plays two separate roles, exactly as in Lemma 4.2's flood:
/// *ripeness* (a token with hop-count h moves no earlier than round h+1 --
/// the paper's "the message with hop-count i" synchronization) and *budget*
/// (a token never travels more than H hop-units, fake initial hops included,
/// so it reaches exactly its center's ball). Queueing delay does not consume
/// budget; Lenzen's pipelining bounds the delay by the token's rank.
struct TokenKey {
  std::uint64_t label;
  std::uint32_t sub;

  auto operator<=>(const TokenKey&) const = default;
};

class SharingLayerAlgorithm final : public DistributedAlgorithm {
 public:
  SharingLayerAlgorithm(std::uint64_t base_seed, TruncatedExponentialRadius dist,
                        std::uint32_t hop_cap, std::uint32_t words,
                        std::uint32_t slack)
      : DistributedAlgorithm(base_seed),
        dist_(dist),
        hop_cap_(hop_cap),
        words_(words),
        slack_(slack) {}

  std::string name() const override { return "rand-sharing-layer"; }
  /// Pattern is data/seed-driven (opaque), but every token message is the
  /// fixed record {label, sub, word, hop}: four words.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 4;
    return f;
  }
  std::uint32_t rounds() const override {
    // H + Theta(s): the pipelining delay of a token is bounded by the number
    // of smaller-keyed tokens it meets, empirically < 2s across topologies;
    // 3s is a safe constant and keeps the budget O(dilation log n).
    return hop_cap_ + 3 * words_ + slack_;
  }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

  const TruncatedExponentialRadius& dist() const { return dist_; }
  std::uint32_t hop_cap() const { return hop_cap_; }
  std::uint32_t words() const { return words_; }

 private:
  TruncatedExponentialRadius dist_;
  std::uint32_t hop_cap_;
  std::uint32_t words_;
  std::uint32_t slack_;
};

class SharingLayerProgram final : public NodeProgram {
 public:
  explicit SharingLayerProgram(const SharingLayerAlgorithm& algo) : algo_(algo) {}

  void on_round(VirtualContext& ctx) override {
    if (ctx.vround() == 1) init(ctx);
    absorb(ctx);
    // Forward the smallest (label, sub) token that is ripe (hop <= round-1),
    // has hop budget left, and has not been sent at this (or a smaller) hop
    // before. A token is re-forwarded if a lower-hop copy arrived later (a
    // queue-delayed short-path copy can lose the race to a long-path copy;
    // the relaxation keeps the reach of every token exact).
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      auto& st = it->second;
      if (st.hop + 1 > algo_.hop_cap()) continue;  // budget exhausted here
      if (st.hop >= st.sent_hop) continue;         // no improvement to ship
      if (st.hop > ctx.vround() - 1) continue;     // not ripe yet
      const TokenKey key = it->first;
      const std::uint64_t word = words_.at({key.label, key.sub});
      st.sent_hop = st.hop;
      for (const auto& nb : ctx.neighbors()) {
        ctx.send(nb.neighbor, {key.label, key.sub, word, st.hop + 1});
      }
      break;
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    // {min label, count, word_0 .. word_{s-1}} for the min label.
    std::vector<std::uint64_t> out = {min_label_, 0};
    std::uint64_t count = 0;
    for (std::uint32_t j = 0; j < algo_.words(); ++j) {
      const auto it = words_.find({min_label_, j});
      if (it != words_.end()) {
        out.push_back(it->second);
        ++count;
      } else {
        out.push_back(0);
      }
    }
    out[1] = count;
    return out;
  }

 private:
  void init(VirtualContext& ctx) {
    std::uint32_t radius;
    std::uint64_t label;
    // Identical first draws as the clustering layer program.
    ClusteringBuilder::draw_node_params(ctx.rng(), algo_.dist(), ctx.self(), &radius,
                                        &label);
    min_label_ = label;
    const std::uint32_t initial_hop = algo_.hop_cap() - radius;
    for (std::uint32_t j = 0; j < algo_.words(); ++j) {
      const std::uint64_t word = ctx.rng()();
      words_[{label, j}] = word;
      pending_.emplace(TokenKey{label, j}, TokenState{initial_hop});
    }
  }

  void absorb(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      const std::uint64_t label = m.payload.at(0);
      const auto sub = static_cast<std::uint32_t>(m.payload.at(1));
      const std::uint64_t word = m.payload.at(2);
      const auto hop = static_cast<std::uint32_t>(m.payload.at(3));
      min_label_ = std::min(min_label_, label);
      words_.emplace(std::pair{label, sub}, word);
      const auto [it, inserted] = pending_.emplace(TokenKey{label, sub}, TokenState{hop});
      if (!inserted) it->second.hop = std::min(it->second.hop, hop);
    }
  }

  const SharingLayerAlgorithm& algo_;
  std::uint64_t min_label_ = ~std::uint64_t{0};
  struct TokenState {
    std::uint32_t hop;                      // best (smallest) held hop-count
    std::uint32_t sent_hop = ~std::uint32_t{0};  // hop at the last send
  };

  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> words_;
  std::map<TokenKey, TokenState> pending_;
};

std::unique_ptr<NodeProgram> SharingLayerAlgorithm::make_program(NodeId) const {
  return std::make_unique<SharingLayerProgram>(*this);
}

}  // namespace

SharedSeeds RandomnessSharing::run_distributed(const Graph& g,
                                               const Clustering& clustering) const {
  DASCHED_CHECK(!clustering.layers.empty());
  const std::uint32_t s = resolved_words(g.num_nodes());
  SharedSeeds result;
  result.words_per_seed = s;

  TimedSpan run_span(cfg_.telemetry, "rand_sharing", "run_distributed");
  run_span.arg("layers", static_cast<double>(clustering.num_layers()));
  run_span.arg("words_per_seed", s);
  Simulator sim(g);
  for (std::uint32_t l = 0; l < clustering.num_layers(); ++l) {
    TimedSpan layer_span(cfg_.telemetry, "rand_sharing", "layer");
    layer_span.arg("layer", l);
    SharingLayerAlgorithm algo(ClusteringBuilder::layer_seed(cfg_.seed, l),
                               clustering.radius_distribution_for_replay(),
                               clustering.hop_cap, s, cfg_.slack_rounds);
    const auto run = sim.run(algo);
    result.rounds += algo.rounds();
    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->add_counter("rand_sharing.rounds", algo.rounds());
      layer_span.arg("rounds", algo.rounds());
    }

    SharedSeeds::Layer layer;
    layer.words.resize(g.num_nodes());
    layer.center_label.resize(g.num_nodes());
    layer.complete.resize(g.num_nodes());
    std::uint64_t incomplete = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& out = run.outputs[v];
      layer.center_label[v] = out[0];
      layer.complete[v] = (out[1] == s) ? 1 : 0;
      if (layer.complete[v] == 0) ++incomplete;
      layer.words[v].assign(out.begin() + 2, out.end());
    }
    if (cfg_.telemetry != nullptr && incomplete > 0) {
      cfg_.telemetry->add_counter("rand_sharing.incomplete_nodes", incomplete);
    }
    result.layers.push_back(std::move(layer));
  }
  return result;
}

SharedSeeds RandomnessSharing::run_central(const Graph& g,
                                           const Clustering& clustering) const {
  const std::uint32_t s = resolved_words(g.num_nodes());
  SharedSeeds result;
  result.words_per_seed = s;
  result.rounds = 0;

  const auto dist = clustering.radius_distribution_for_replay();
  for (std::uint32_t l = 0; l < clustering.num_layers(); ++l) {
    const std::uint64_t lseed = ClusteringBuilder::layer_seed(cfg_.seed, l);
    // Per center: replay the draw sequence (radius, label, then s words).
    std::vector<std::vector<std::uint64_t>> center_words(g.num_nodes());
    auto words_of = [&](NodeId u) -> const std::vector<std::uint64_t>& {
      if (center_words[u].empty()) {
        Rng rng(seed_combine(lseed, u));
        std::uint32_t radius;
        std::uint64_t label;
        ClusteringBuilder::draw_node_params(rng, dist, u, &radius, &label);
        center_words[u].reserve(s);
        for (std::uint32_t j = 0; j < s; ++j) center_words[u].push_back(rng());
      }
      return center_words[u];
    };

    SharedSeeds::Layer layer;
    layer.words.resize(g.num_nodes());
    layer.center_label.resize(g.num_nodes());
    layer.complete.assign(g.num_nodes(), 1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId center = clustering.layers[l].center[v];
      layer.words[v] = words_of(center);
      layer.center_label[v] = clustering.layers[l].label[v];
    }
    result.layers.push_back(std::move(layer));
  }
  return result;
}

}  // namespace dasched
