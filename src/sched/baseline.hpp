// Baseline schedulers the paper's results are measured against.
//
// * SequentialScheduler -- run A_1 to completion, then A_2, ...: always
//   correct, takes sum_i dilation_i rounds. This is what "no scheduling"
//   costs and the baseline the whole line of work (pipelining, LMR, this
//   paper) improves on.
//
// * GreedyScheduler -- an *offline* list scheduler at physical-round
//   granularity: it knows every algorithm's communication pattern (which a
//   distributed scheduler cannot, per Section 2) and pushes every
//   (algorithm, node, round) execution as early as possible subject to
//   (a) per-directed-edge capacity of one message per round and
//   (b) causality (a round runs strictly after its inbound messages arrive).
//   Greedy is aggressive and correct by construction; the interesting
//   comparison is its length vs the randomized schedules, and vs
//   congestion + dilation.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "sched/problem.hpp"

namespace dasched {

struct BaselineOutcome {
  ExecutionResult exec;
  /// Schedule length in physical rounds (big-round == physical round here).
  std::uint64_t schedule_rounds = 0;
  /// The executed table (one physical round per big-round), for static
  /// verification (verify::check_schedule with congestion_budget = 1).
  ScheduleTable schedule;
};

class SequentialScheduler {
 public:
  BaselineOutcome run(ScheduleProblem& problem) const;
};

class GreedyScheduler {
 public:
  BaselineOutcome run(ScheduleProblem& problem) const;
};

}  // namespace dasched
