// The Distributed Algorithm Scheduling (DAS) problem instance (Section 2).
//
// A problem is a network plus k independent black-box algorithms A_1..A_k.
// The two parameters every bound in the paper is stated in:
//
//   dilation   = max_i (rounds of A_i)
//   congestion = max over directed edges e of sum_i c_i(e), where c_i(e) is
//                the number of rounds in which A_i sends a message over e
//
// are computed here from solo executions. Solo runs also provide the
// ground-truth outputs: the DAS correctness requirement is that under any
// schedule "each node outputs the same value as if that algorithm was run
// alone", which verify() checks bit-for-bit.
//
// Note the paper's upper bounds assume nodes know constant-factor
// approximations of congestion and dilation; schedulers in this repo read the
// exact values from here, and tests exercise robustness to misestimates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/analyzer.hpp"
#include "congest/executor.hpp"
#include "congest/simulator.hpp"
#include "graph/graph.hpp"

namespace dasched {

class ScheduleProblem {
 public:
  explicit ScheduleProblem(const Graph& g) : graph_(&g) {}

  void add(std::unique_ptr<DistributedAlgorithm> algorithm);

  std::size_t size() const { return algorithms_.size(); }
  const Graph& graph() const { return *graph_; }
  const DistributedAlgorithm& algorithm(std::size_t i) const { return *algorithms_[i]; }
  std::vector<const DistributedAlgorithm*> algorithm_ptrs() const;

  /// Runs every algorithm alone, recording outputs and patterns. Idempotent.
  void run_solo();

  /// Adopts previously recorded solo results (one per added algorithm, in
  /// order) instead of simulating them -- the service profile cache's path
  /// for repeat jobs. After this, solo_done() is true and run_solo() is a
  /// no-op. The results are *trusted here*: the static verifier's
  /// profile-consistency check (verify/schedule_verifier.cpp) is the gate
  /// that catches adopted profiles disagreeing with the declared algorithms
  /// (a stale or poisoned cache entry), so route adopted problems through
  /// check_schedule before executing them.
  void adopt_solo(std::vector<SoloRunResult> solo);
  bool solo_done() const { return !solo_.empty(); }
  const std::vector<SoloRunResult>& solo() const;

  /// max_i rounds(A_i). Available without solo runs.
  std::uint32_t dilation() const;

  /// max_e sum_i c_i(e) over directed edges. Requires run_solo().
  std::uint32_t congestion() const;

  /// Static certificates for every algorithm (analysis/analyzer.hpp), derived
  /// from the declared footprints alone -- no solo runs, nothing executed.
  std::vector<analysis::PatternCertificate> analyze_static() const;

  /// Sound upper bound on congestion() from the static certificates: exact
  /// when every algorithm's footprint is exact, conservative otherwise.
  /// Available without run_solo() -- this is what discharges the paper's
  /// "known congestion/dilation" assumption for budget derivation.
  std::uint32_t certified_congestion_bound() const;

  /// The trivial lower bound max(congestion, dilation) >= (c+d)/2.
  std::uint32_t trivial_lower_bound() const;

  std::uint64_t total_messages() const;

  struct Verification {
    std::uint64_t incomplete_nodes = 0;   // (alg, node) pairs not run to completion
    std::uint64_t mismatched_outputs = 0; // completed but output != solo
    std::uint64_t causality_violations = 0;
    bool ok() const {
      return incomplete_nodes == 0 && mismatched_outputs == 0 &&
             causality_violations == 0;
    }
  };

  /// Compares an execution against the solo ground truth.
  Verification verify(const ExecutionResult& exec) const;

 private:
  const Graph* graph_;
  std::vector<std::unique_ptr<DistributedAlgorithm>> algorithms_;
  std::vector<SoloRunResult> solo_;
};

}  // namespace dasched
