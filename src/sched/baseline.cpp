#include "sched/baseline.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace dasched {

BaselineOutcome SequentialScheduler::run(ScheduleProblem& problem) const {
  problem.run_solo();
  const auto algos = problem.algorithm_ptrs();
  std::vector<std::uint32_t> offsets(algos.size(), 0);
  for (std::size_t a = 1; a < algos.size(); ++a) {
    offsets[a] = offsets[a - 1] + algos[a - 1]->rounds();
  }

  ExecConfig cfg;
  cfg.enforce_unit_capacity = true;  // one algorithm at a time: solo bandwidth holds
  Executor executor(problem.graph(), cfg);
  BaselineOutcome out;
  out.schedule =
      ScheduleTable::from_delays(algos, problem.graph().num_nodes(), offsets);
  out.exec = executor.run(algos, out.schedule);
  out.schedule_rounds = out.exec.num_big_rounds;
  return out;
}

namespace {

/// Inbound bookkeeping for one (algorithm, node): per message tag, how many
/// messages are still unscheduled and the latest arrival time so far.
struct InboundSlot {
  std::uint32_t remaining = 0;
  std::uint32_t last_arrival = 0;  // earliest time the consuming round may run
};

struct NodeState {
  std::uint32_t next_r = 1;
  std::uint32_t prev_time_plus1 = 0;  // lower bound from own previous round
  std::unordered_map<std::uint32_t, InboundSlot> inbound;  // tag -> slot
};

struct Item {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

}  // namespace

BaselineOutcome GreedyScheduler::run(ScheduleProblem& problem) const {
  problem.run_solo();
  const auto& g = problem.graph();
  const auto algos = problem.algorithm_ptrs();
  const std::size_t k = algos.size();
  const NodeId n = g.num_nodes();

  // --- Extract per-(alg, node, round) outgoing edges and inbound counts. ---
  // out_edges[a][v] maps vround -> directed edges v sends on.
  std::vector<std::vector<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>>>
      out_edges(k);
  std::vector<std::vector<NodeState>> state(k);
  for (std::size_t a = 0; a < k; ++a) {
    out_edges[a].resize(n);
    state[a].resize(n);
    const auto& pattern = problem.solo()[a].pattern;
    for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
      for (const auto d : pattern.edges_in_round(r)) {
        const EdgeId e = d / 2;
        const auto [lo, hi] = g.endpoints(e);
        const NodeId sender = (d % 2 == 0) ? lo : hi;
        const NodeId receiver = (d % 2 == 0) ? hi : lo;
        out_edges[a][sender][r].push_back(d);
        ++state[a][receiver].inbound[r].remaining;
      }
    }
  }

  // --- Greedy time-stepped list scheduling. ---
  ScheduleTable exec_time(algos, n);
  std::uint64_t remaining_items = 0;
  for (std::size_t a = 0; a < k; ++a) {
    remaining_items += static_cast<std::uint64_t>(n) * algos[a]->rounds();
  }

  std::vector<std::vector<Item>> becomes_ready(1);
  auto push_ready = [&becomes_ready](std::uint32_t t, Item item) {
    if (t >= becomes_ready.size()) becomes_ready.resize(t + 1);
    becomes_ready[t].push_back(item);
  };

  // A round is eligible once its inbound messages are all scheduled; its
  // earliest start is then max(prev round + 1, last arrival).
  auto try_activate = [&](std::uint32_t a, NodeId v) {
    auto& st = state[a][v];
    if (st.next_r > algos[a]->rounds()) return;
    const std::uint32_t tag = st.next_r - 1;
    std::uint32_t ready = st.prev_time_plus1;
    if (tag > 0) {
      const auto it = st.inbound.find(tag);
      if (it != st.inbound.end()) {
        if (it->second.remaining > 0) return;  // blocked on unscheduled senders
        ready = std::max(ready, it->second.last_arrival);
      }
    }
    push_ready(ready, {static_cast<std::uint32_t>(a), v, st.next_r});
  };

  for (std::size_t a = 0; a < k; ++a) {
    for (NodeId v = 0; v < n; ++v) try_activate(static_cast<std::uint32_t>(a), v);
  }

  std::vector<std::uint8_t> edge_used(g.num_directed_edges(), 0);
  std::vector<std::uint32_t> touched;
  std::vector<Item> deferred;
  std::vector<Item> current;
  std::uint32_t t = 0;
  std::uint32_t horizon_guard = 0;

  while (remaining_items > 0) {
    DASCHED_CHECK_MSG(++horizon_guard < 100'000'000u, "greedy scheduler diverged");
    current.clear();
    if (t < becomes_ready.size()) current.swap(becomes_ready[t]);
    current.insert(current.end(), deferred.begin(), deferred.end());
    deferred.clear();
    // Deterministic priority: algorithm, then node.
    std::sort(current.begin(), current.end(), [](const Item& x, const Item& y) {
      if (x.alg != y.alg) return x.alg < y.alg;
      return x.node < y.node;
    });

    for (const auto& item : current) {
      auto& st = state[item.alg][item.node];
      DASCHED_CHECK(st.next_r == item.vround);
      const auto it = out_edges[item.alg][item.node].find(item.vround);
      bool blocked = false;
      if (it != out_edges[item.alg][item.node].end()) {
        for (const auto d : it->second) {
          if (edge_used[d]) {
            blocked = true;
            break;
          }
        }
      }
      if (blocked) {
        deferred.push_back(item);
        continue;
      }
      // Schedule this round at time t.
      exec_time.set(item.alg, item.node, item.vround, t);
      --remaining_items;
      st.next_r = item.vround + 1;
      st.prev_time_plus1 = t + 1;
      if (it != out_edges[item.alg][item.node].end()) {
        for (const auto d : it->second) {
          edge_used[d] = 1;
          touched.push_back(d);
          const EdgeId e = d / 2;
          const auto [lo, hi] = g.endpoints(e);
          const NodeId receiver = (d % 2 == 0) ? hi : lo;
          auto& slot = state[item.alg][receiver].inbound[item.vround];
          DASCHED_CHECK(slot.remaining > 0);
          --slot.remaining;
          slot.last_arrival = std::max(slot.last_arrival, t + 1);
          if (slot.remaining == 0 &&
              state[item.alg][receiver].next_r == item.vround + 1) {
            try_activate(item.alg, receiver);
          }
        }
      }
      try_activate(item.alg, item.node);
    }

    for (const auto d : touched) edge_used[d] = 0;
    touched.clear();
    ++t;
  }

  // --- Realize and validate via the executor (unit capacity enforced). ---
  ExecConfig cfg;
  cfg.enforce_unit_capacity = true;
  Executor executor(g, cfg);
  BaselineOutcome out;
  out.schedule = std::move(exec_time);
  out.exec = executor.run(algos, out.schedule);
  out.schedule_rounds = out.exec.num_big_rounds;
  return out;
}

}  // namespace dasched
