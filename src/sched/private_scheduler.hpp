// Theorem 4.1 / Theorem 1.3: scheduling with only private randomness.
//
// Pipeline (Section 4.2):
//   1. Ball-carving clustering, Theta(log n) layers (Lemma 4.2)     -- O(dilation log^2 n) rounds
//   2. Share Theta(log^2 n) seed bits inside every cluster (Lemma 4.3)
//   3. Expand each cluster seed into a Theta(log n)-wise independent family
//      (Reed-Solomon over GF(p)) and draw, per clustering layer and per
//      algorithm, a start delay from the paper's nonuniform *block*
//      distribution (Lemma 4.4)
//   4. Run every algorithm truncated per layer (node v participates in round
//      r of a layer only if h'(v) >= r-1, the containment rule that keeps
//      discards causally closed) with first-copy-wins de-duplication:
//      effectively, node v executes round r at the earliest big-round any of
//      its eligible layers schedules it. One big-round = Theta(log n)
//      physical rounds.
//
// With the block distribution the probability that a given big-round carries
// the *first* copy of a message over an edge is O(log n / congestion), so the
// realized schedule is O(congestion + dilation log n) rounds -- measured here
// as the adaptive and fixed-phase lengths of the execution.
//
// The uniform-delay / no-dedup variants used by the E6 ablation live here
// too, as does the combinatorial no-dedup load analyzer.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "sched/clustering.hpp"
#include "sched/problem.hpp"
#include "sched/rand_sharing.hpp"

namespace dasched {

enum class DelayKind {
  kBlock,           // the paper's Lemma 4.4 distribution
  kUniformMatched,  // uniform over the same support size (ablation)
  kUniformFull,     // uniform over [congestion] big-rounds (the paper's
                    // "simpler solution" giving O((C + D) log n))
};

struct PrivateSchedulerConfig {
  std::uint64_t seed = 1;
  ClusteringConfig clustering;      // dilation is overwritten from the problem
  RandSharingConfig sharing;        // seed is overwritten from `seed`
  DelayKind delay_kind = DelayKind::kBlock;
  /// L = max(1, first_block_factor * congestion / ln n).
  double first_block_factor = 1.0;
  /// beta; 0 derives ceil(ln n).
  std::uint32_t num_blocks = 0;
  /// Geometric decay; 0 derives exp(-num_layers / beta) (the paper's gamma).
  double alpha = 0.0;
  /// Phase (big-round) length for the fixed-phase measure; 0 derives ceil(log2 n).
  std::uint32_t phase_len = 0;
  /// Use the central sharing oracle instead of the distributed protocol
  /// (skips simulation cost in large sweeps; results identical when the
  /// distributed protocol completes, which tests verify).
  bool central_sharing = false;
  /// Same for the clustering construction.
  bool central_clustering = false;
  std::uint32_t congestion_estimate = 0;  // 0 = exact
  /// Worker threads for the scheduled execution (ExecConfig::num_threads);
  /// 0/1 = serial. Results are bit-identical for every value.
  std::uint32_t num_threads = 0;
  /// Optional telemetry sink (borrowed). Propagated into the clustering and
  /// randomness-sharing stages and the executor; the scheduler itself wraps
  /// every pipeline stage (clustering, sharing, compute_delays, build
  /// schedule, execute) in sched.private/* spans and emits coverage/dedup
  /// metrics (see docs/OBSERVABILITY.md).
  TelemetrySink* telemetry = nullptr;
  /// Optional congestion profiler (borrowed), handed through to
  /// ExecConfig::profiler for the scheduled execution. Null = unprofiled.
  ExecProfiler* profiler = nullptr;
};

struct PrivateScheduleOutcome {
  ExecutionResult exec;
  /// CONGEST rounds spent before the schedule starts (Lemmas 4.2 + 4.3).
  std::uint64_t precomputation_rounds = 0;
  /// Realized schedule length in physical rounds (adaptive big-rounds).
  std::uint64_t schedule_rounds = 0;
  ExecutionResult::FixedPhase fixed{};
  std::uint32_t phase_len = 0;
  std::uint32_t delay_support = 0;  // big-rounds of delay range
  /// The executed big-round table (earliest eligible layer per slot), for
  /// static verification (verify::check_schedule with this delay_support).
  ScheduleTable schedule;

  // Clustering diagnostics (the Lemma 4.2 guarantees).
  std::uint32_t num_layers = 0;
  std::uint32_t hop_cap = 0;
  double mean_coverage = 0.0;   // mean #layers with h' >= dilation
  std::uint32_t min_coverage = 0;
  std::uint64_t uncovered_nodes = 0;  // nodes with no fully-containing layer
  std::uint64_t incomplete_seed_nodes = 0;  // sharing failures (theory: 0)
};

class PrivateRandomnessScheduler {
 public:
  explicit PrivateRandomnessScheduler(PrivateSchedulerConfig cfg = {}) : cfg_(cfg) {}

  PrivateScheduleOutcome run(ScheduleProblem& problem) const;

  /// E6 ablation: per-(big-round) edge loads if every eligible layer
  /// transmitted its copy (no de-duplication), under the same delays as the
  /// real run. Returns max load per big-round.
  static std::vector<std::uint32_t> no_dedup_loads(
      const ScheduleProblem& problem, const Clustering& clustering,
      const std::vector<std::vector<std::vector<std::uint32_t>>>& delay /* [layer][node][alg] */);

  /// Computes the per-(layer, node, algorithm) delays from shared seeds --
  /// exposed for the ablation and for tests of cluster-consistency.
  std::vector<std::vector<std::vector<std::uint32_t>>> compute_delays(
      const ScheduleProblem& problem, const Clustering& clustering,
      const SharedSeeds& seeds, std::uint32_t* support_out) const;

 private:
  PrivateSchedulerConfig cfg_;
};

}  // namespace dasched
