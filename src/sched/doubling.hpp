// Removing the known-congestion assumption via doubling (the paper defers
// this standard step to its full version; we implement it).
//
// The Theorem 1.1 scheduler needs a constant-factor congestion estimate to
// size its delay range. With an unknown congestion, guess C_hat = phase_len,
// run the fixed-phase schedule, and detect failure distributedly: a phase
// whose edge load exceeds the phase length cannot deliver all its messages
// -- the incident nodes observe the overflow locally and raise a (floodable)
// abort flag. On failure, double the guess and retry. Geometric growth makes
// the total cost O(cost of the first successful guess), and the first guess
// >= congestion succeeds w.h.p. -- so the adaptive scheduler is within a
// constant factor of the informed one.
//
// Failure detection here reads the executor's per-phase overflow count,
// which is exactly the event the incident nodes would observe.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/shared_scheduler.hpp"

namespace dasched {

struct DoublingOutcome {
  std::uint32_t attempts = 0;
  /// The first congestion guess whose fixed-phase schedule had no overflow.
  std::uint32_t successful_estimate = 0;
  /// Fixed-phase rounds burned by failed attempts.
  std::uint64_t wasted_rounds = 0;
  /// wasted_rounds + the successful attempt's fixed-phase rounds.
  std::uint64_t total_rounds = 0;
  /// The successful attempt (verify with problem.verify()).
  SharedScheduleOutcome final;
};

/// Runs Theorem 1.1 with doubling congestion guesses until a fixed-phase
/// schedule fits. `base.congestion_estimate` is ignored (that is the point).
DoublingOutcome run_with_doubling(ScheduleProblem& problem,
                                  SharedSchedulerConfig base = {});

}  // namespace dasched
