#include "sched/private_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "rand/distributions.hpp"
#include "rand/kwise.hpp"
#include "util/math.hpp"

namespace dasched {

namespace {

std::unique_ptr<DelayDistribution> make_delay_distribution(
    const PrivateSchedulerConfig& cfg, std::uint32_t congestion, std::uint32_t layers,
    NodeId n) {
  const double lns = std::max(1, log_ceil_ln(n));
  const std::uint32_t beta =
      cfg.num_blocks > 0 ? cfg.num_blocks
                         : std::max<std::uint32_t>(2, static_cast<std::uint32_t>(lns));
  const auto first_block = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(cfg.first_block_factor * congestion / lns)));
  double alpha = cfg.alpha;
  if (alpha <= 0.0) {
    // The paper's gamma = (1 - 1/beta)^{#layers}: the probability that none
    // of the other copies landed in an earlier block.
    alpha = std::pow(1.0 - 1.0 / beta, static_cast<double>(layers));
    alpha = std::min(0.95, std::max(0.05, alpha));
  }
  switch (cfg.delay_kind) {
    case DelayKind::kBlock:
      return std::make_unique<BlockDelayDistribution>(first_block, beta, alpha);
    case DelayKind::kUniformMatched: {
      const BlockDelayDistribution reference(first_block, beta, alpha);
      return std::make_unique<UniformDelay>(reference.support_size());
    }
    case DelayKind::kUniformFull:
      return std::make_unique<UniformDelay>(std::max<std::uint32_t>(1, congestion));
  }
  DASCHED_CHECK(false);
  return nullptr;
}

}  // namespace

std::vector<std::vector<std::vector<std::uint32_t>>>
PrivateRandomnessScheduler::compute_delays(const ScheduleProblem& problem,
                                           const Clustering& clustering,
                                           const SharedSeeds& seeds,
                                           std::uint32_t* support_out) const {
  const NodeId n = problem.graph().num_nodes();
  const std::size_t k = problem.size();
  const auto layers = static_cast<std::uint32_t>(clustering.num_layers());
  const std::uint32_t congestion =
      cfg_.congestion_estimate > 0 ? cfg_.congestion_estimate : problem.congestion();

  const auto dist = make_delay_distribution(cfg_, congestion, layers, n);
  if (support_out != nullptr) *support_out = dist->support_size();

  // One prime for everyone (all nodes can derive it from n and the congestion
  // estimate): large enough that unit_value granularity is irrelevant.
  const std::uint64_t prime =
      next_prime(std::max<std::uint64_t>(1u << 20, 8ULL * dist->support_size()));

  std::vector<std::vector<std::vector<std::uint32_t>>> delay(layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    delay[l].assign(n, std::vector<std::uint32_t>(k, 0));
    for (NodeId v = 0; v < n; ++v) {
      // Every node expands the seed *it received*; nodes of one cluster hold
      // identical words, hence identical delays -- the consistency the paper
      // needs inside each dilation-neighborhood.
      const auto& words = seeds.layers[l].words[v];
      const KWiseFamily family(prime, static_cast<std::uint32_t>(words.size()), words);
      for (std::size_t a = 0; a < k; ++a) {
        delay[l][v][a] = dist->delay_from_unit(family.unit_value(a));
      }
    }
  }
  return delay;
}

PrivateScheduleOutcome PrivateRandomnessScheduler::run(ScheduleProblem& problem) const {
  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "sched.private", "run");
  problem.run_solo();
  const auto& g = problem.graph();
  const NodeId n = g.num_nodes();
  const std::size_t k = problem.size();
  const std::uint32_t dilation = problem.dilation();

  PrivateScheduleOutcome out;

  // --- 1. Clustering (Lemma 4.2). ---
  ClusteringConfig ccfg = cfg_.clustering;
  ccfg.seed = cfg_.seed;
  ccfg.dilation = dilation;
  ccfg.telemetry = telemetry;
  const ClusteringBuilder builder(ccfg);
  TimedSpan cluster_span(telemetry, "sched.private", "clustering");
  const Clustering clustering =
      cfg_.central_clustering ? builder.build_central(g) : builder.build_distributed(g);
  cluster_span.finish();
  out.precomputation_rounds += clustering.precomputation_rounds;
  out.num_layers = static_cast<std::uint32_t>(clustering.num_layers());
  out.hop_cap = clustering.hop_cap;

  // --- 2. Randomness sharing (Lemma 4.3). ---
  RandSharingConfig scfg = cfg_.sharing;
  scfg.seed = cfg_.seed;
  scfg.telemetry = telemetry;
  const RandomnessSharing sharing(scfg);
  TimedSpan sharing_span(telemetry, "sched.private", "rand_sharing");
  const SharedSeeds seeds = cfg_.central_sharing ? sharing.run_central(g, clustering)
                                                 : sharing.run_distributed(g, clustering);
  sharing_span.finish();
  out.precomputation_rounds += seeds.rounds;
  for (const auto& layer : seeds.layers) {
    for (const auto c : layer.complete) {
      if (!c) ++out.incomplete_seed_nodes;
    }
  }

  // --- Coverage diagnostics. ---
  {
    double total = 0;
    std::uint32_t min_cov = ~std::uint32_t{0};
    for (NodeId v = 0; v < n; ++v) {
      const auto cov = clustering.coverage(v, dilation);
      total += cov;
      min_cov = std::min(min_cov, cov);
      if (cov == 0) ++out.uncovered_nodes;
      if (telemetry != nullptr) {
        telemetry->record_value("sched.private.coverage", cov);
      }
    }
    out.mean_coverage = total / n;
    out.min_coverage = min_cov;
  }

  // --- 3. Delays from cluster-local shared randomness. ---
  TimedSpan delays_span(telemetry, "sched.private", "compute_delays");
  const auto delay = compute_delays(problem, clustering, seeds, &out.delay_support);
  delays_span.finish();

  // --- 4. Earliest-eligible-layer schedule (Lemma 4.4 de-dup fixed point).---
  // Precompute exec times: exec(a, v, r) = min over layers with
  // h'_l(v) >= r-1 of delay(l, v, a) + (r - 1).
  TimedSpan schedule_span(telemetry, "sched.private", "build_schedule");
  // Lemma 4.4 accounting: each scheduled (alg, node, round) slot had `prefix`
  // eligible layer copies; first-copy-wins suppresses all but one.
  std::uint64_t scheduled_slots = 0;
  std::uint64_t dedup_suppressed = 0;
  const auto layers = static_cast<std::uint32_t>(clustering.num_layers());
  const auto algos = problem.algorithm_ptrs();
  ScheduleTable exec_time(algos, n);
  for (NodeId v = 0; v < n; ++v) {
    // Layers sorted by h'(v) descending; min-delay prefix per algorithm.
    std::vector<std::uint32_t> order(layers);
    for (std::uint32_t l = 0; l < layers; ++l) order[l] = l;
    std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
      return clustering.layers[x].h_prime[v] > clustering.layers[y].h_prime[v];
    });
    for (std::size_t a = 0; a < k; ++a) {
      const std::uint32_t rounds = problem.algorithm(a).rounds();
      const auto slots = exec_time.row_mut(a, v);
      // Walk rounds from 1 upward; maintain the prefix of layers with
      // h' >= r - 1 and its min delay.
      std::uint32_t prefix = 0;
      std::uint32_t min_delay = kNeverScheduled;
      for (std::uint32_t r = rounds; r >= 1; --r) {
        // Extend the prefix with layers whose h' >= r-1 (descending h').
        while (prefix < layers &&
               clustering.layers[order[prefix]].h_prime[v] >= r - 1) {
          min_delay = std::min(min_delay, delay[order[prefix]][v][a]);
          ++prefix;
        }
        if (min_delay != kNeverScheduled) {
          slots[r - 1] = min_delay + (r - 1);
          ++scheduled_slots;
          dedup_suppressed += prefix - 1;
        }
        // (Recomputed per r: prefix only grows as r decreases.)
      }
    }
  }
  schedule_span.finish();

  ExecConfig ecfg;
  ecfg.telemetry = telemetry;
  ecfg.profiler = cfg_.profiler;
  ecfg.num_threads = cfg_.num_threads;
  Executor executor(g, ecfg);
  out.schedule = std::move(exec_time);
  {
    TimedSpan exec_span(telemetry, "sched.private", "execute");
    out.exec = executor.run(algos, out.schedule);
  }

  out.phase_len = cfg_.phase_len > 0
                      ? cfg_.phase_len
                      : std::max<std::uint32_t>(1, ceil_log2(std::max<NodeId>(2, n)));
  out.schedule_rounds = out.exec.adaptive_physical_rounds();
  out.fixed = out.exec.fixed_phase(out.phase_len);

  if (telemetry != nullptr) {
    telemetry->set_gauge("sched.private.num_layers", out.num_layers);
    telemetry->set_gauge("sched.private.hop_cap", out.hop_cap);
    telemetry->set_gauge("sched.private.delay_support", out.delay_support);
    telemetry->set_gauge("sched.private.phase_len", out.phase_len);
    telemetry->set_gauge("sched.private.mean_coverage", out.mean_coverage);
    telemetry->set_gauge("sched.private.schedule_rounds",
                         static_cast<double>(out.schedule_rounds));
    telemetry->add_counter("sched.private.precomputation_rounds",
                           out.precomputation_rounds);
    telemetry->add_counter("sched.private.uncovered_nodes", out.uncovered_nodes);
    telemetry->add_counter("sched.private.incomplete_seed_nodes",
                           out.incomplete_seed_nodes);
    telemetry->add_counter("sched.private.scheduled_slots", scheduled_slots);
    telemetry->add_counter("sched.private.dedup_suppressed", dedup_suppressed);
    telemetry->add_counter("sched.private.fixed_phase_overflows",
                           out.fixed.overflowing_phases);
    run_span.arg("schedule_rounds", static_cast<double>(out.schedule_rounds));
    run_span.arg("precomputation_rounds",
                 static_cast<double>(out.precomputation_rounds));
    run_span.arg("num_layers", out.num_layers);
  }
  return out;
}

std::vector<std::uint32_t> PrivateRandomnessScheduler::no_dedup_loads(
    const ScheduleProblem& problem, const Clustering& clustering,
    const std::vector<std::vector<std::vector<std::uint32_t>>>& delay) {
  const auto& g = problem.graph();
  const auto layers = static_cast<std::uint32_t>(clustering.num_layers());

  // load[t][d] would be huge; track per-big-round maxima with a flat map.
  std::vector<std::vector<std::uint32_t>> load;  // [t][directed edge]
  auto bump = [&](std::uint32_t t, std::uint32_t d) {
    if (t >= load.size()) load.resize(t + 1);
    if (load[t].empty()) load[t].assign(g.num_directed_edges(), 0);
    ++load[t][d];
  };

  for (std::size_t a = 0; a < problem.size(); ++a) {
    const auto& pattern = problem.solo()[a].pattern;
    for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
      for (const auto d : pattern.edges_in_round(r)) {
        const EdgeId e = d / 2;
        const auto [lo, hi] = g.endpoints(e);
        const NodeId sender = (d % 2 == 0) ? lo : hi;
        for (std::uint32_t l = 0; l < layers; ++l) {
          if (clustering.layers[l].h_prime[sender] >= r - 1) {
            bump(delay[l][sender][a] + (r - 1), d);
          }
        }
      }
    }
  }

  std::vector<std::uint32_t> max_per_round(load.size(), 0);
  for (std::size_t t = 0; t < load.size(); ++t) {
    for (const auto x : load[t]) max_per_round[t] = std::max(max_per_round[t], x);
  }
  return max_per_round;
}

}  // namespace dasched
