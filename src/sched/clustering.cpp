#include "sched/clustering.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "util/math.hpp"

namespace dasched {

std::uint32_t Clustering::coverage(NodeId v, std::uint32_t radius) const {
  std::uint32_t count = 0;
  for (const auto& layer : layers) {
    if (layer.h_prime[v] >= radius) ++count;
  }
  return count;
}

std::uint32_t Clustering::best_radius(NodeId v) const {
  std::uint32_t best = 0;
  for (const auto& layer : layers) best = std::max(best, layer.h_prime[v]);
  return best;
}

ClusteringBuilder::ClusteringBuilder(ClusteringConfig cfg) : cfg_(cfg) {
  DASCHED_CHECK(cfg_.dilation >= 1);
  DASCHED_CHECK(cfg_.radius_factor > 0);
  DASCHED_CHECK(cfg_.truncation_lns > 0);
}

std::uint32_t ClusteringBuilder::resolved_layers(NodeId n) const {
  if (cfg_.num_layers > 0) return cfg_.num_layers;
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(cfg_.layer_factor * log_ceil_ln(n)));
}

namespace {

TruncatedExponentialRadius make_radius_dist(const ClusteringConfig& cfg, NodeId n) {
  const double scale = cfg.radius_factor * cfg.dilation;
  const double lns = std::max(1, log_ceil_ln(n));
  return {scale, cfg.truncation_lns * lns};
}

/// Layer-construction telemetry shared by the distributed and central builds:
/// cluster count and per-node contained-radius distribution.
void record_layer_metrics(TelemetrySink* telemetry, const ClusterLayer& layer) {
  if (telemetry == nullptr) return;
  std::vector<std::uint64_t> centers(layer.label);
  std::sort(centers.begin(), centers.end());
  const auto distinct =
      std::unique(centers.begin(), centers.end()) - centers.begin();
  telemetry->record_value("clustering.clusters_per_layer",
                          static_cast<double>(distinct));
  for (const auto h : layer.h_prime) {
    telemetry->record_value("clustering.h_prime", h);
  }
}

}  // namespace

void ClusteringBuilder::draw_node_params(Rng& rng, const TruncatedExponentialRadius& dist,
                                         NodeId node, std::uint32_t* radius,
                                         std::uint64_t* label) {
  *radius = dist.radius_from_unit(rng.next_double());
  // High 32 bits random, low 32 bits the node id: labels are distinct by
  // construction and uniform enough for the min-label argument.
  *label = ((rng() >> 32) << 32) | node;
}

// ---------------------------------------------------------------------------
// Distributed implementation (the Lemma 4.2 message-passing protocol).
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kTagLabelFlood = 1;
constexpr std::uint64_t kTagClusterLabel = 2;
constexpr std::uint64_t kTagBoundary = 3;

/// One clustering layer as a CONGEST algorithm.
///
/// Rounds 1..H:        min-label flood with fake initial hop-counts.
/// Round H+1:          every node announces its cluster label to neighbors.
/// Rounds H+2..H+1+Hb: boundary flood (BFS from all boundary nodes).
/// Output: {center label, h'}.
class ClusterLayerAlgorithm final : public DistributedAlgorithm {
 public:
  ClusterLayerAlgorithm(std::uint64_t base_seed, TruncatedExponentialRadius dist,
                        std::uint32_t hop_cap, std::uint32_t query_cap)
      : DistributedAlgorithm(base_seed),
        dist_(dist),
        hop_cap_(hop_cap),
        query_cap_(query_cap) {}

  std::string name() const override { return "cluster-layer"; }
  /// Widest message is a {tag, label} pair.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 2;
    return f;
  }
  std::uint32_t rounds() const override { return hop_cap_ + 1 + query_cap_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

  const TruncatedExponentialRadius& dist() const { return dist_; }
  std::uint32_t hop_cap() const { return hop_cap_; }
  std::uint32_t query_cap() const { return query_cap_; }

 private:
  TruncatedExponentialRadius dist_;
  std::uint32_t hop_cap_;   // H
  std::uint32_t query_cap_; // Hb: h' is learned up to this radius
};

class ClusterLayerProgram final : public NodeProgram {
 public:
  explicit ClusterLayerProgram(const ClusterLayerAlgorithm& algo) : algo_(algo) {}

  void on_round(VirtualContext& ctx) override {
    const std::uint32_t i = ctx.vround();
    const std::uint32_t h = algo_.hop_cap();

    if (i == 1) init(ctx);

    if (i <= h) {
      absorb_label_flood(ctx);
      // Forward the smallest eligible label not dominated by what we already
      // sent ("the message with hop-count i that has the smallest label among
      // the messages of hop-count i or smaller").
      auto it = candidates_.begin();
      while (it != candidates_.end()) {
        if (it->first >= last_sent_) {
          it = candidates_.erase(it);  // dominated by an already-sent label
          continue;
        }
        if (it->second <= i) break;  // eligible (ripe) and minimal
        ++it;
      }
      if (it != candidates_.end()) {
        const std::uint64_t label = it->first;
        candidates_.erase(it);  // smaller not-yet-ripe candidates stay pending
        last_sent_ = label;
        for (const auto& nb : ctx.neighbors()) {
          ctx.send(nb.neighbor, {kTagLabelFlood, label});
        }
      }
      return;
    }

    if (i == h + 1) {
      absorb_label_flood(ctx);  // messages from wire round H
      for (const auto& nb : ctx.neighbors()) {
        ctx.send(nb.neighbor, {kTagClusterLabel, min_label_});
      }
      return;
    }

    // Boundary phase.
    absorb_boundary(ctx);
    if (i == h + 2 && is_boundary_ && algo_.query_cap() >= 1) {
      for (const auto& nb : ctx.neighbors()) ctx.send(nb.neighbor, {kTagBoundary});
      boundary_forwarded_ = true;
    } else if (boundary_dist_known_ && !boundary_forwarded_ &&
               i == algo_.hop_cap() + 2 + boundary_dist_ &&
               boundary_dist_ + 1 <= algo_.query_cap()) {
      for (const auto& nb : ctx.neighbors()) ctx.send(nb.neighbor, {kTagBoundary});
      boundary_forwarded_ = true;
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb_boundary(ctx); }

  std::vector<std::uint64_t> output() const override {
    std::uint32_t h_prime;
    if (is_boundary_) {
      h_prime = 0;
    } else if (boundary_dist_known_) {
      h_prime = boundary_dist_;
    } else {
      h_prime = algo_.query_cap();  // no boundary within the query radius
    }
    return {min_label_, h_prime};
  }

 private:
  void init(VirtualContext& ctx) {
    std::uint32_t radius;
    ClusteringBuilder::draw_node_params(ctx.rng(), algo_.dist(), ctx.self(), &radius,
                                        &own_label_);
    min_label_ = own_label_;
    // Fake initial hop-count H - r(v): the own message becomes ripe at round
    // H - r(v) + 1.
    const std::uint32_t eligible_from = algo_.hop_cap() - radius + 1;
    candidates_.emplace(own_label_, eligible_from);
  }

  void absorb_label_flood(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      DASCHED_DCHECK(m.payload.at(0) == kTagLabelFlood);
      const std::uint64_t label = m.payload.at(1);
      min_label_ = std::min(min_label_, label);
      if (label < last_sent_) {
        // Ripe immediately: held hop == absorb round - 1.
        const auto [it, inserted] = candidates_.emplace(label, ctx.vround());
        if (!inserted) it->second = std::min(it->second, ctx.vround());
      }
    }
  }

  void absorb_boundary(VirtualContext& ctx) {
    const std::uint32_t h = algo_.hop_cap();
    for (const auto& m : ctx.inbox()) {
      const std::uint64_t tag = m.payload.at(0);
      if (tag == kTagClusterLabel) {
        if (m.payload.at(1) != min_label_) is_boundary_ = true;
      } else if (tag == kTagBoundary) {
        if (!is_boundary_ && !boundary_dist_known_) {
          boundary_dist_known_ = true;
          boundary_dist_ = ctx.vround() - (h + 2);  // hop count of the flood
        }
      } else {
        DASCHED_DCHECK(tag == kTagLabelFlood);
      }
    }
  }

  const ClusterLayerAlgorithm& algo_;
  std::uint64_t own_label_ = 0;
  std::uint64_t min_label_ = ~std::uint64_t{0};
  std::uint64_t last_sent_ = ~std::uint64_t{0};
  std::map<std::uint64_t, std::uint32_t> candidates_;  // label -> eligible round
  bool is_boundary_ = false;
  bool boundary_dist_known_ = false;
  bool boundary_forwarded_ = false;
  std::uint32_t boundary_dist_ = 0;
};

std::unique_ptr<NodeProgram> ClusterLayerAlgorithm::make_program(NodeId) const {
  return std::make_unique<ClusterLayerProgram>(*this);
}

}  // namespace

Clustering ClusteringBuilder::build_distributed(const Graph& g) const {
  const auto dist = make_radius_dist(cfg_, g.num_nodes());
  const std::uint32_t h = dist.max_radius() + 1;
  const std::uint32_t layers = resolved_layers(g.num_nodes());

  Clustering result;
  result.hop_cap = h;
  result.radius_query_cap = cfg_.dilation;
  result.radius_scale = dist.scale();
  result.radius_truncation_logs =
      cfg_.truncation_lns * std::max(1, log_ceil_ln(g.num_nodes()));
  TimedSpan build_span(cfg_.telemetry, "clustering", "build_distributed");
  build_span.arg("layers", layers);
  build_span.arg("hop_cap", h);
  Simulator sim(g);
  for (std::uint32_t l = 0; l < layers; ++l) {
    TimedSpan layer_span(cfg_.telemetry, "clustering", "layer");
    layer_span.arg("layer", l);
    ClusterLayerAlgorithm algo(layer_seed(cfg_.seed, l), dist, h, cfg_.dilation);
    const auto run = sim.run(algo);
    result.precomputation_rounds += algo.rounds();
    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->add_counter("clustering.rounds", algo.rounds());
      layer_span.arg("rounds", algo.rounds());
    }

    ClusterLayer layer;
    layer.center.resize(g.num_nodes());
    layer.label.resize(g.num_nodes());
    layer.h_prime.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint64_t label = run.outputs[v][0];
      layer.label[v] = label;
      layer.center[v] = static_cast<NodeId>(label & 0xffffffffu);
      layer.h_prime[v] = static_cast<std::uint32_t>(run.outputs[v][1]);
    }
    record_layer_metrics(cfg_.telemetry, layer);
    result.layers.push_back(std::move(layer));
  }
  return result;
}

Clustering ClusteringBuilder::build_central(const Graph& g) const {
  const auto dist = make_radius_dist(cfg_, g.num_nodes());
  const std::uint32_t h = dist.max_radius() + 1;
  const std::uint32_t layers = resolved_layers(g.num_nodes());
  const NodeId n = g.num_nodes();

  Clustering result;
  result.hop_cap = h;
  result.radius_query_cap = cfg_.dilation;
  result.radius_scale = dist.scale();
  result.radius_truncation_logs =
      cfg_.truncation_lns * std::max(1, log_ceil_ln(g.num_nodes()));
  result.precomputation_rounds = 0;

  TimedSpan build_span(cfg_.telemetry, "clustering", "build_central");
  build_span.arg("layers", layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    // Reproduce the distributed draws: program rng is
    // Rng(seed_combine(layer_seed, node)), drawing (radius, label) first.
    const std::uint64_t lseed = layer_seed(cfg_.seed, l);
    std::vector<std::uint32_t> radius(n);
    std::vector<std::uint64_t> label(n);
    for (NodeId v = 0; v < n; ++v) {
      Rng rng(seed_combine(lseed, v));
      ClusteringBuilder::draw_node_params(rng, dist, v, &radius[v], &label[v]);
    }

    // Assign each node the minimum label among balls containing it: process
    // centers in ascending label order, claim unassigned nodes in B(u, r(u)).
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return label[a] < label[b]; });

    ClusterLayer layer;
    layer.center.assign(n, kInvalidNode);
    layer.label.assign(n, ~std::uint64_t{0});
    layer.h_prime.assign(n, 0);
    for (const NodeId u : order) {
      const auto d = bfs_distances_capped(g, u, radius[u]);
      for (NodeId v = 0; v < n; ++v) {
        if (d[v] != kUnreachable && layer.center[v] == kInvalidNode) {
          layer.center[v] = u;
          layer.label[v] = label[u];
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) DASCHED_CHECK(layer.center[v] != kInvalidNode);

    // h': multi-source BFS from boundary nodes, capped at the query radius.
    std::vector<std::uint32_t> dist_to_boundary(n, kUnreachable);
    std::queue<NodeId> queue;
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& nb : g.neighbors(v)) {
        if (layer.center[nb.neighbor] != layer.center[v]) {
          dist_to_boundary[v] = 0;
          queue.push(v);
          break;
        }
      }
    }
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (const auto& nb : g.neighbors(v)) {
        if (dist_to_boundary[nb.neighbor] == kUnreachable) {
          dist_to_boundary[nb.neighbor] = dist_to_boundary[v] + 1;
          queue.push(nb.neighbor);
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      layer.h_prime[v] = std::min(dist_to_boundary[v], cfg_.dilation);
    }
    record_layer_metrics(cfg_.telemetry, layer);
    result.layers.push_back(std::move(layer));
  }
  return result;
}

}  // namespace dasched
