#include "sched/workloads.hpp"

#include "algos/aggregate.hpp"
#include "algos/bfs.hpp"
#include "algos/broadcast.hpp"
#include "algos/path_routing.hpp"

namespace dasched {

namespace {

NodeId random_node(const Graph& g, Rng& rng) {
  return static_cast<NodeId>(rng.next_below(g.num_nodes()));
}

}  // namespace

std::unique_ptr<ScheduleProblem> make_broadcast_workload(const Graph& g, std::size_t k,
                                                         std::uint32_t radius,
                                                         std::uint64_t seed) {
  auto problem = std::make_unique<ScheduleProblem>(g);
  Rng rng(seed_combine(seed, 0xB0));
  for (std::size_t i = 0; i < k; ++i) {
    problem->add(std::make_unique<BroadcastAlgorithm>(
        random_node(g, rng), radius, splitmix64(seed ^ i), seed_combine(seed, i, 1)));
  }
  return problem;
}

std::unique_ptr<ScheduleProblem> make_bfs_workload(const Graph& g, std::size_t k,
                                                   std::uint32_t radius,
                                                   std::uint64_t seed) {
  auto problem = std::make_unique<ScheduleProblem>(g);
  Rng rng(seed_combine(seed, 0xBF));
  for (std::size_t i = 0; i < k; ++i) {
    problem->add(std::make_unique<BfsAlgorithm>(random_node(g, rng), radius,
                                                seed_combine(seed, i, 2)));
  }
  return problem;
}

std::unique_ptr<ScheduleProblem> make_routing_workload(const Graph& g, std::size_t k,
                                                       std::uint64_t seed) {
  auto problem = std::make_unique<ScheduleProblem>(g);
  Rng rng(seed_combine(seed, 0x20));
  auto packets = make_random_routing_instance(g, k, rng, seed);
  for (auto& p : packets) problem->add(std::move(p));
  return problem;
}

std::unique_ptr<ScheduleProblem> make_mixed_workload(const Graph& g, std::size_t k,
                                                     std::uint32_t radius,
                                                     std::uint64_t seed) {
  auto problem = std::make_unique<ScheduleProblem>(g);
  Rng rng(seed_combine(seed, 0x3D));
  for (std::size_t i = 0; i < k; ++i) {
    switch (i % 3) {
      case 0:
        problem->add(std::make_unique<BroadcastAlgorithm>(
            random_node(g, rng), radius, splitmix64(seed ^ i), seed_combine(seed, i, 3)));
        break;
      case 1:
        problem->add(std::make_unique<BfsAlgorithm>(random_node(g, rng), radius,
                                                    seed_combine(seed, i, 4)));
        break;
      default:
        problem->add(std::make_unique<AggregateAlgorithm>(random_node(g, rng), radius,
                                                          seed_combine(seed, i, 5)));
        break;
    }
  }
  return problem;
}

}  // namespace dasched
