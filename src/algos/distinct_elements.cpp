#include "algos/distinct_elements.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/algorithms.hpp"
#include "util/math.hpp"

namespace dasched {

bool DistinctElementsAlgorithm::marked(std::uint64_t seed, std::uint32_t threshold_index,
                                       std::uint32_t iteration, std::uint64_t value,
                                       double rho) {
  const double k = std::pow(rho, threshold_index);
  const double p = 1.0 - std::pow(2.0, -1.0 / k);
  const std::uint64_t h = splitmix64(
      seed_combine(seed, threshold_index, iteration, splitmix64(value)));
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < p;
}

std::uint64_t DistinctElementsAlgorithm::fold_seed(
    const std::vector<std::uint64_t>& words) {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (const auto w : words) seed = seed_combine(seed, w);
  return seed;
}

DistinctElementsAlgorithm::DistinctElementsAlgorithm(
    const Graph& g, DistinctElementsParams params, std::vector<std::uint64_t> values,
    std::vector<std::vector<std::uint64_t>> node_seeds, std::uint64_t base_seed)
    : DistributedAlgorithm(base_seed),
      graph_(&g),
      params_(params),
      values_(std::move(values)),
      node_seeds_(std::move(node_seeds)) {
  DASCHED_CHECK(params_.radius >= 1);
  DASCHED_CHECK(params_.rho > 1.0);
  DASCHED_CHECK(params_.iterations >= 1);
  DASCHED_CHECK(values_.size() == g.num_nodes());
  DASCHED_CHECK(node_seeds_.size() == g.num_nodes());
  num_thresholds_ =
      params_.num_thresholds > 0
          ? params_.num_thresholds
          : static_cast<std::uint32_t>(
                std::ceil(std::log(static_cast<double>(std::max<NodeId>(2, g.num_nodes()))) /
                          std::log(params_.rho))) +
                1;
  const std::uint64_t experiments =
      static_cast<std::uint64_t>(num_thresholds_) * params_.iterations;
  words_ = static_cast<std::uint32_t>(ceil_div(experiments, 64));
  total_rounds_ = words_ * params_.radius;
}

namespace {

class DistinctElementsProgram final : public NodeProgram {
 public:
  DistinctElementsProgram(const DistinctElementsAlgorithm& algo, NodeId self,
                          std::uint64_t seed, std::uint64_t value)
      : algo_(algo), mask_(algo.words(), 0), pending_send_(algo.words(), true) {
    (void)self;
    // Own experiment bits.
    const auto& p = algo_.params();
    const std::uint32_t iters = p.iterations;
    for (std::uint32_t j = 0; j < algo_.num_thresholds(); ++j) {
      for (std::uint32_t t = 0; t < iters; ++t) {
        if (DistinctElementsAlgorithm::marked(seed, j, t, value, p.rho)) {
          const std::uint64_t bit = std::uint64_t{j} * iters + t;
          mask_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
        }
      }
    }
  }

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    // Word w floods during rounds w*d+1 .. (w+1)*d: send on change (plus the
    // initial send); a set bit advances one hop per round, so the OR over
    // the d-ball is complete after d rounds.
    const std::uint32_t w = (ctx.vround() - 1) / algo_.params().radius;
    if (w < algo_.words() && pending_send_[w]) {
      pending_send_[w] = false;
      for (const auto& nb : ctx.neighbors()) {
        ctx.send(nb.neighbor, {w, mask_[w]});
      }
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    const auto& p = algo_.params();
    // Majority per threshold; the estimate index is the last threshold whose
    // majority of OR-indicators is 1 (monotone w.h.p.).
    std::uint32_t j_hat = 0;
    for (std::uint32_t j = 0; j < algo_.num_thresholds(); ++j) {
      std::uint32_t ones = 0;
      for (std::uint32_t t = 0; t < p.iterations; ++t) {
        const std::uint64_t bit = std::uint64_t{j} * p.iterations + t;
        if (mask_[bit / 64] & (std::uint64_t{1} << (bit % 64))) ++ones;
      }
      if (2 * ones > p.iterations) j_hat = j;
    }
    const auto estimate =
        static_cast<std::uint64_t>(std::llround(std::pow(p.rho, j_hat)));
    return {j_hat, estimate};
  }

 private:
  void absorb(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      const auto w = static_cast<std::uint32_t>(m.payload.at(0));
      const std::uint64_t merged = mask_[w] | m.payload.at(1);
      if (merged != mask_[w]) {
        mask_[w] = merged;
        pending_send_[w] = true;
      }
    }
  }

  const DistinctElementsAlgorithm& algo_;
  std::vector<std::uint64_t> mask_;
  std::vector<bool> pending_send_;
};

}  // namespace

std::unique_ptr<NodeProgram> DistinctElementsAlgorithm::make_program(NodeId node) const {
  return std::make_unique<DistinctElementsProgram>(
      *this, node, fold_seed(node_seeds_[node]), values_[node]);
}

std::vector<std::uint64_t> exact_distinct_counts(const Graph& g,
                                                 const std::vector<std::uint64_t>& values,
                                                 std::uint32_t radius) {
  std::vector<std::uint64_t> counts(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances_capped(g, v, radius);
    std::unordered_set<std::uint64_t> distinct;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] != kUnreachable) distinct.insert(values[u]);
    }
    counts[v] = distinct.size();
  }
  return counts;
}

}  // namespace dasched
