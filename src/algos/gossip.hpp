// Randomized push gossip: in every round, each informed node pushes the
// rumor to one uniformly random neighbor.
//
// This workload exists to exercise a subtle part of the paper's Section 2
// model: the algorithms being scheduled may themselves be randomized, and
// "we consider [their randomness] as a part of the input to the node ... at
// the start of the execution, each node samples its bits of randomness,
// thus fixing them". In this library that is realized by deriving each
// node's Rng deterministically from (algorithm base seed, node id) -- so the
// solo execution and any scheduled execution see identical coin flips, and
// output verification stays exact even though the communication pattern is
// random.
//
// Gossip is also a pattern-wise interesting workload: its footprint is a
// random subgraph per round (low congestion, irregular), unlike the
// deterministic floods.
#pragma once

#include <cstdint>

#include "congest/program.hpp"

namespace dasched {

class GossipAlgorithm final : public DistributedAlgorithm {
 public:
  GossipAlgorithm(NodeId source, std::uint32_t rounds, std::uint64_t rumor,
                  std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed), source_(source), rounds_(rounds), rumor_(rumor) {
    DASCHED_CHECK(rounds >= 1);
  }

  std::string name() const override { return "push-gossip"; }
  std::uint32_t rounds() const override { return rounds_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  /// Exact despite the coin flips: per-node randomness is fixed at start from
  /// (base seed, node), so the analyzer replays the pushes centrally.
  StaticFootprint static_footprint() const override {
    return StaticFootprint::gossip_push(source_, rumor_);
  }

  /// Output layout: {informed (0/1), rumor, round informed (~0 if never)}.
  static constexpr std::size_t kOutInformed = 0;
  static constexpr std::size_t kOutRumor = 1;
  static constexpr std::size_t kOutRound = 2;

 private:
  NodeId source_;
  std::uint32_t rounds_;
  std::uint64_t rumor_;
};

}  // namespace dasched
