// BFS-tree aggregation: flood + timed convergecast + result flood.
//
// A three-phase algorithm rooted at `root` over the h-hop ball:
//   rounds 1..h          BFS token floods outward (builds distances/parents),
//   rounds h+1..2h+1     timed convergecast: a node at depth q sends the
//                        aggregate (sum) of its subtree to its parent in round
//                        2h+1-q -- children (depth q+1) sent in round 2h-q, so
//                        their values arrive exactly in time,
//   rounds 2h+2..3h+1    the root floods the global aggregate back out.
//
// This is the classic "broadcast-and-echo" building block; we include it in
// scheduling workloads because its pattern exercises both directions of tree
// edges at widely different times, unlike pure floods.
#pragma once

#include <cstdint>

#include "congest/program.hpp"

namespace dasched {

class AggregateAlgorithm final : public DistributedAlgorithm {
 public:
  /// Sums `local_value(v) = seed-hashed v` (deterministic) over the h-ball of
  /// root and delivers the sum to every node in the ball.
  AggregateAlgorithm(NodeId root, std::uint32_t radius, std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed), root_(root), radius_(radius) {
    DASCHED_CHECK(radius >= 1);
  }

  std::string name() const override { return "aggregate"; }
  std::uint32_t rounds() const override { return 3 * radius_ + 1; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  StaticFootprint static_footprint() const override {
    return StaticFootprint::three_phase_aggregate(root_, radius_);
  }

  NodeId root() const { return root_; }
  std::uint32_t radius() const { return radius_; }

  /// Deterministic per-node value being aggregated.
  std::uint64_t local_value(NodeId v) const { return splitmix64(base_seed() ^ v) & 0xffff; }

  /// Output layout: {in-ball (0/1), distance, subtree sum, global sum (0 if
  /// the result flood did not reach this node)}.
  static constexpr std::size_t kOutInBall = 0;
  static constexpr std::size_t kOutDistance = 1;
  static constexpr std::size_t kOutSubtreeSum = 2;
  static constexpr std::size_t kOutGlobalSum = 3;

 private:
  NodeId root_;
  std::uint32_t radius_;
};

}  // namespace dasched
