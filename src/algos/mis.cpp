#include "algos/mis.hpp"

#include <algorithm>

namespace dasched {

namespace {

constexpr std::uint64_t kTagPriority = 1;
constexpr std::uint64_t kTagJoin = 2;

class LubyMisProgram final : public NodeProgram {
 public:
  LubyMisProgram(NodeId self, std::uint64_t seed, bool seeded)
      : self_(self), seed_(seed), seeded_(seeded) {}

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    if (decided_) return;
    const std::uint32_t r = ctx.vround();
    if (r % 2 == 1) {
      // Round A of phase (r-1)/2: draw and announce the priority.
      const std::uint32_t phase = (r - 1) / 2;
      priority_ = seeded_ ? splitmix64(seed_combine(seed_, phase, self_)) : ctx.rng()();
      beaten_ = false;
      for (const auto& nb : ctx.neighbors()) {
        ctx.send(nb.neighbor, {kTagPriority, priority_});
      }
    } else {
      // Round B: the local maximum joins (absorb() above recorded whether any
      // active neighbor beat us).
      if (!beaten_) {
        decided_ = true;
        in_mis_ = true;
        for (const auto& nb : ctx.neighbors()) ctx.send(nb.neighbor, {kTagJoin});
      }
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    return {decided_ ? 1ULL : 0ULL, in_mis_ ? 1ULL : 0ULL};
  }

 private:
  void absorb(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (m.payload.at(0) == kTagJoin) {
        if (!decided_) decided_ = true;  // a neighbor joined; we are covered
      } else if (!decided_) {
        // Priority comparison with id tie-break (distinct by construction).
        const std::uint64_t p = m.payload.at(1);
        if (p > priority_ || (p == priority_ && m.from > self_)) beaten_ = true;
      }
    }
  }

  NodeId self_;
  std::uint64_t seed_;
  bool seeded_;
  bool decided_ = false;
  bool in_mis_ = false;
  bool beaten_ = false;
  std::uint64_t priority_ = 0;
};

}  // namespace

std::unique_ptr<NodeProgram> LubyMisAlgorithm::make_program(NodeId node) const {
  const bool seeded = !node_seeds_.empty();
  std::uint64_t seed = 0;
  if (seeded) {
    DASCHED_CHECK(node_seeds_.size() > node);
    seed = 0x9e3779b97f4a7c15ULL;
    for (const auto w : node_seeds_[node]) seed = seed_combine(seed, w);
  }
  return std::make_unique<LubyMisProgram>(node, seed, seeded);
}

std::pair<std::uint64_t, std::uint64_t> check_mis(const Graph& g,
                                                  const std::vector<std::uint8_t>& decided,
                                                  const std::vector<std::uint8_t>& in_mis) {
  std::uint64_t independence = 0;
  std::uint64_t maximality = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [a, b] = g.endpoints(e);
    if (in_mis[a] && in_mis[b]) ++independence;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!decided[v] || in_mis[v]) continue;
    bool covered = false;
    for (const auto& nb : g.neighbors(v)) covered |= (in_mis[nb.neighbor] != 0);
    if (!covered) ++maximality;
  }
  return {independence, maximality};
}

}  // namespace dasched
