#include "algos/aggregate.hpp"

#include <algorithm>

namespace dasched {

namespace {

constexpr std::uint64_t kTagToken = 1;   // BFS flood
constexpr std::uint64_t kTagUp = 2;      // convergecast
constexpr std::uint64_t kTagResult = 3;  // result flood

class AggregateProgram final : public NodeProgram {
 public:
  AggregateProgram(bool is_root, std::uint32_t radius, std::uint64_t value)
      : radius_(radius), subtree_sum_(value) {
    if (is_root) {
      reached_ = true;
      distance_ = 0;
    }
  }

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    const std::uint32_t r = ctx.vround();

    // Phase 1: flood the BFS token.
    if (reached_ && !forwarded_token_ && r == distance_ + 1 && r <= radius_) {
      for (const auto& h : ctx.neighbors()) ctx.send(h.neighbor, {kTagToken});
      forwarded_token_ = true;
    }

    // Phase 2: timed convergecast -- depth q reports in round 2h+1-q.
    if (reached_ && distance_ > 0 && r == 2 * radius_ + 1 - distance_) {
      ctx.send(parent_, {kTagUp, subtree_sum_});
    }

    // Phase 3: result flood, same shape as phase 1 shifted by 2h+1.
    if (have_result_ && !forwarded_result_ && r == 2 * radius_ + 1 + distance_ + 1) {
      for (const auto& h : ctx.neighbors()) ctx.send(h.neighbor, {kTagResult, global_sum_});
      forwarded_result_ = true;
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    return {reached_ ? 1ULL : 0ULL, reached_ ? std::uint64_t{distance_} : ~std::uint64_t{0},
            subtree_sum_, have_result_ ? global_sum_ : 0ULL};
  }

 private:
  void absorb(VirtualContext& ctx) {
    for (const auto& m : ctx.inbox()) {
      switch (m.payload.at(0)) {
        case kTagToken:
          if (!reached_) {
            reached_ = true;
            distance_ = ctx.vround() - 1;
            parent_ = std::min(parent_, m.from);
          } else if (ctx.vround() - 1 == distance_) {
            // Same-round duplicate: keep the deterministic min-id parent.
            parent_ = std::min(parent_, m.from);
          }
          break;
        case kTagUp:
          subtree_sum_ += m.payload.at(1);
          break;
        case kTagResult:
          if (!have_result_) {
            have_result_ = true;
            global_sum_ = m.payload.at(1);
          }
          break;
        default:
          DASCHED_CHECK_MSG(false, "aggregate: unknown message tag");
      }
    }
    // The root learns the global sum once all depth-1 reports are in: they are
    // sent in round 2h and absorbed at round 2h+1.
    if (reached_ && distance_ == 0 && !have_result_ && ctx.vround() == 2 * radius_ + 1) {
      have_result_ = true;
      global_sum_ = subtree_sum_;
    }
  }

  std::uint32_t radius_;
  bool reached_ = false;
  bool forwarded_token_ = false;
  bool have_result_ = false;
  bool forwarded_result_ = false;
  std::uint32_t distance_ = 0;
  NodeId parent_ = kInvalidNode;
  std::uint64_t subtree_sum_;
  std::uint64_t global_sum_ = 0;
};

}  // namespace

std::unique_ptr<NodeProgram> AggregateAlgorithm::make_program(NodeId node) const {
  return std::make_unique<AggregateProgram>(node == root_, radius_, local_value(node));
}

}  // namespace dasched
