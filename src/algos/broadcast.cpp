#include "algos/broadcast.hpp"

namespace dasched {

namespace {

class BroadcastProgram final : public NodeProgram {
 public:
  BroadcastProgram(bool is_source, std::uint64_t value) : is_source_(is_source) {
    if (is_source_) {
      received_ = true;
      value_ = value;
      distance_ = 0;
    }
  }

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    // Forward exactly once, in the round after first receipt (round 1 for the
    // source).
    if (received_ && !forwarded_ && ctx.vround() == distance_ + 1) {
      for (const auto& h : ctx.neighbors()) ctx.send(h.neighbor, {value_});
      forwarded_ = true;
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    return {received_ ? 1ULL : 0ULL, value_,
            received_ ? std::uint64_t{distance_} : ~std::uint64_t{0}};
  }

 private:
  void absorb(VirtualContext& ctx) {
    if (received_) return;
    if (!ctx.inbox().empty()) {
      received_ = true;
      value_ = ctx.inbox().front().payload.at(0);
      distance_ = ctx.vround() - 1;  // sent in round vround-1 == sender hop count
    }
  }

  bool is_source_;
  bool received_ = false;
  bool forwarded_ = false;
  std::uint64_t value_ = 0;
  std::uint32_t distance_ = 0;
};

}  // namespace

std::unique_ptr<NodeProgram> BroadcastAlgorithm::make_program(NodeId node) const {
  return std::make_unique<BroadcastProgram>(node == source_, value_);
}

}  // namespace dasched
