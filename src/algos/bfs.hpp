// h-hop breadth-first search (item (II) in the paper's introduction).
//
// Identical message footprint to broadcast -- the BFS token floods outward --
// but each node additionally outputs its hop distance and BFS parent (the
// minimum-id neighbor among first-round senders, making the output
// deterministic). This is the workload of Holzer-Wattenhofer / Lenzen-Peleg:
// k BFS instances together are schedulable in O(k + h) rounds, and the paper's
// scheduler recovers that behaviour up to its log factor.
//
// BFS is also the paper's canonical example of why communication patterns
// cannot be known a priori: a node does not know in which round or from which
// neighbors its token will arrive.
#pragma once

#include <cstdint>

#include "congest/program.hpp"

namespace dasched {

class BfsAlgorithm final : public DistributedAlgorithm {
 public:
  BfsAlgorithm(NodeId source, std::uint32_t max_hops, std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed), source_(source), max_hops_(max_hops) {
    DASCHED_CHECK(max_hops >= 1);
  }

  std::string name() const override { return "bfs"; }
  std::uint32_t rounds() const override { return max_hops_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  StaticFootprint static_footprint() const override {
    return StaticFootprint::flood(source_, StaticFootprint::Outputs::kBfs);
  }

  NodeId source() const { return source_; }

  /// Output layout: {reached (0/1), distance, parent} with parent == self for
  /// the source and ~0 when unreached.
  static constexpr std::size_t kOutReached = 0;
  static constexpr std::size_t kOutDistance = 1;
  static constexpr std::size_t kOutParent = 2;

 private:
  NodeId source_;
  std::uint32_t max_hops_;
};

}  // namespace dasched
