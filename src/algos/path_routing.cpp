#include "algos/path_routing.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dasched {

namespace {

class PathRoutingProgram final : public NodeProgram {
 public:
  /// `position` is the node's index on the path, or kNever if off-path; the
  /// same node may appear only once (paths are simple).
  PathRoutingProgram(std::uint32_t position, NodeId next_hop, bool is_source,
                     bool is_destination, std::uint64_t value)
      : position_(position),
        next_hop_(next_hop),
        is_source_(is_source),
        is_destination_(is_destination),
        value_(value) {
    if (is_source_) has_packet_ = true;  // the source holds the packet at start
  }

  static constexpr std::uint32_t kOffPath = ~std::uint32_t{0};

  void on_round(VirtualContext& ctx) override {
    if (position_ == kOffPath) return;
    absorb(ctx);
    if (ctx.vround() == position_ + 1 && has_packet_ && !is_destination_) {
      ctx.send(next_hop_, {value_});
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    if (!is_destination_) return {};
    return {has_packet_ ? 1ULL : 0ULL, has_packet_ ? value_ : 0ULL};
  }

 private:
  void absorb(VirtualContext& ctx) {
    if (is_source_ || has_packet_ || position_ == kOffPath) return;
    // The packet arrives from position_-1, sent in round position_.
    if (ctx.vround() == position_ + 1 && !ctx.inbox().empty()) {
      has_packet_ = true;
      value_ = ctx.inbox().front().payload.at(0);
    }
  }

  std::uint32_t position_;
  NodeId next_hop_;
  bool is_source_;
  bool is_destination_;
  bool has_packet_ = false;
  std::uint64_t value_ = 0;
};

}  // namespace

PathRoutingAlgorithm::PathRoutingAlgorithm(std::vector<NodeId> path,
                                           std::uint64_t packet_value,
                                           std::uint64_t base_seed)
    : DistributedAlgorithm(base_seed), path_(std::move(path)), packet_value_(packet_value) {
  DASCHED_CHECK_MSG(path_.size() >= 2, "path must have at least one edge");
  for (std::size_t i = 0; i < path_.size(); ++i) {
    for (std::size_t j = i + 1; j < path_.size(); ++j) {
      DASCHED_CHECK_MSG(path_[i] != path_[j], "routing path must be simple");
    }
  }
}

std::unique_ptr<NodeProgram> PathRoutingAlgorithm::make_program(NodeId node) const {
  std::uint32_t position = PathRoutingProgram::kOffPath;
  NodeId next_hop = kInvalidNode;
  for (std::size_t i = 0; i < path_.size(); ++i) {
    if (path_[i] == node) {
      position = static_cast<std::uint32_t>(i);
      if (i + 1 < path_.size()) next_hop = path_[i + 1];
      break;
    }
  }
  const bool is_source = position == 0;
  const bool is_destination =
      position != PathRoutingProgram::kOffPath && position + 1 == path_.size();
  // Source "has" the packet from the start.
  auto program = std::make_unique<PathRoutingProgram>(position, next_hop, is_source,
                                                      is_destination, packet_value_);
  return program;
}

std::vector<std::unique_ptr<PathRoutingAlgorithm>> make_random_routing_instance(
    const Graph& g, std::size_t num_packets, Rng& rng, std::uint64_t seed_base) {
  std::vector<std::unique_ptr<PathRoutingAlgorithm>> packets;
  packets.reserve(num_packets);
  for (std::size_t p = 0; p < num_packets; ++p) {
    NodeId src = 0;
    NodeId dst = 0;
    while (src == dst) {
      src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    }
    // Shortest path via BFS from dst: walk from src downhill, smallest-id
    // neighbor first (deterministic).
    const auto dist = bfs_distances(g, dst);
    DASCHED_CHECK(dist[src] != kUnreachable);
    std::vector<NodeId> path{src};
    NodeId cur = src;
    while (cur != dst) {
      NodeId next = kInvalidNode;
      for (const auto& h : g.neighbors(cur)) {
        if (dist[h.neighbor] + 1 == dist[cur]) {
          next = h.neighbor;
          break;  // neighbors sorted by id
        }
      }
      DASCHED_CHECK(next != kInvalidNode);
      path.push_back(next);
      cur = next;
    }
    packets.push_back(std::make_unique<PathRoutingAlgorithm>(
        std::move(path), splitmix64(seed_base + p), seed_combine(seed_base, p)));
  }
  return packets;
}

}  // namespace dasched
