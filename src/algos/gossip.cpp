#include "algos/gossip.hpp"

namespace dasched {

namespace {

class GossipProgram final : public NodeProgram {
 public:
  GossipProgram(bool is_source, std::uint64_t rumor) {
    if (is_source) {
      informed_ = true;
      rumor_ = rumor;
      informed_round_ = 0;
    }
  }

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    if (informed_ && ctx.degree() > 0) {
      const auto pick = ctx.rng().next_below(ctx.degree());
      ctx.send(ctx.neighbors()[pick].neighbor, {rumor_});
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    return {informed_ ? 1ULL : 0ULL, rumor_,
            informed_ ? std::uint64_t{informed_round_} : ~std::uint64_t{0}};
  }

 private:
  void absorb(VirtualContext& ctx) {
    if (informed_ || ctx.inbox().empty()) return;
    informed_ = true;
    rumor_ = ctx.inbox().front().payload.at(0);
    informed_round_ = ctx.vround() - 1;
  }

  bool informed_ = false;
  std::uint64_t rumor_ = 0;
  std::uint32_t informed_round_ = 0;
};

}  // namespace

std::unique_ptr<NodeProgram> GossipAlgorithm::make_program(NodeId node) const {
  return std::make_unique<GossipProgram>(node == source_, rumor_);
}

}  // namespace dasched
