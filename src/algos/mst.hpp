// Distributed MST with a congestion/dilation tradeoff knob (Section 5).
//
// The paper's concluding discussion observes that single-shot algorithms
// tuned for dilation (round complexity) are not congestion-optimal, and that
// Kutten-Peleg-style parameter tuning yields the tradeoff
//     congestion ~ L,   dilation ~ O~(D + n/L),
// which -- combined with the paper's scheduler -- solves k-shot MST in
// O~(D + sqrt(kn)) rounds at L = sqrt(n/k). This module implements that
// tunable algorithm:
//
//  Phase 1 (fragments):  Boruvka with star-contraction merging. Each phase:
//    exchange fragment ids -> timed convergecast of the fragment's minimum
//    weight outgoing edge (MWOE, blue rule) to the fragment root -> the root
//    of a "tail" fragment (public coin = hash(fragment id, phase)) merges
//    into a "head" fragment over its MWOE -> flood the new fragment id and
//    rebuild a BFS tree of the merged fragment. Phases stop once the number
//    of fragments is <= target_fragments (the knob: #fragments ~ final
//    upcast congestion ~ the paper's L).
//
//  Phase 2 (upcast):      build a BFS tree from node 0, then pipeline the
//    inter-fragment candidate edges upward with local Kruskal filtering
//    (a node forwards an edge only if it joins two fragments not yet
//    connected by edges it already forwarded); the root runs Kruskal and
//    pipelines the chosen inter-fragment MST edges back down.
//
// Round budgets are data-dependent (fragment diameters), so they are
// computed by a central *planner* that replays the deterministic merge
// schedule (same weights, same public coins). This mirrors the paper's
// standing assumption that nodes know constant-factor parameter estimates;
// the message-passing execution itself is genuinely distributed. DESIGN.md
// records the substitution.
//
// Output per node: the sorted list of its incident MST edge ids -- verified
// against central Kruskal in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

/// Per-phase budgets computed by the planner.
struct MstPhasePlan {
  std::uint32_t depth_before;    // max fragment-tree depth entering the phase
  std::uint32_t diameter_after;  // max fragment diameter after merging
  std::uint32_t budget;          // rounds allotted to the phase
};

struct MstPlan {
  std::vector<MstPhasePlan> phases;
  std::uint32_t num_fragments = 0;   // fragments entering the upcast
  std::uint32_t bfs_depth = 0;       // eccentricity of node 0
  std::uint32_t upcast_rounds = 0;
  std::uint32_t downcast_rounds = 0;
  std::uint32_t total_rounds = 0;
};

/// Deterministic distinct edge weights from a seed.
std::vector<std::uint64_t> make_mst_weights(const Graph& g, std::uint64_t seed);

/// Replays the deterministic fragment evolution centrally and returns tight
/// round budgets. `target_fragments` is the L knob (>= 1); the fragment
/// phase stops once #fragments <= target_fragments (or no merge happens).
MstPlan plan_mst(const Graph& g, const std::vector<std::uint64_t>& weights,
                 std::uint32_t target_fragments);

class PipelineMstAlgorithm final : public DistributedAlgorithm {
 public:
  PipelineMstAlgorithm(const Graph& g, std::vector<std::uint64_t> weights,
                       std::uint32_t target_fragments, std::uint64_t base_seed);

  std::string name() const override { return "pipeline-mst"; }
  std::uint32_t rounds() const override { return plan_.total_rounds; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  /// Deliberately opaque: the pattern depends on the data-driven fragment
  /// evolution (which edges are MWOEs, where fragments merge), so the
  /// analyzer falls back to the conservative whole-bandwidth bound. The
  /// payload width is still bounded: the widest record is the candidate
  /// report {tag, weight, u, v, fragments}, five words.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 5;
    return f;
  }

  const MstPlan& plan() const { return plan_; }
  const std::vector<std::uint64_t>& weights() const { return weights_; }
  const Graph& graph() const { return *graph_; }

  /// Public coin of a fragment in a phase (tail = merge-proposer when 0).
  static bool is_head(NodeId fragment, std::uint32_t phase) {
    return (splitmix64(seed_combine(fragment, phase, 0xC01u)) & 1) != 0;
  }

 private:
  const Graph* graph_;
  std::vector<std::uint64_t> weights_;
  std::uint32_t target_fragments_;
  MstPlan plan_;
};

}  // namespace dasched
