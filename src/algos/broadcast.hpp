// h-hop broadcast (item (I) in the paper's introduction).
//
// The source floods a value; every node forwards it to all neighbors exactly
// once. A node at distance q from the source receives the value in virtual
// round q and forwards in round q+1 (if q+1 <= h). Running k of these at once
// is the classical "k-broadcast" workload whose O(k + h) pipelining the paper
// cites [36] -- our Theorem 1.1 scheduler reproduces that additive behaviour
// up to the log factor.
#pragma once

#include <cstdint>

#include "congest/program.hpp"

namespace dasched {

class BroadcastAlgorithm final : public DistributedAlgorithm {
 public:
  BroadcastAlgorithm(NodeId source, std::uint32_t max_hops, std::uint64_t value,
                     std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed),
        source_(source),
        max_hops_(max_hops),
        value_(value) {
    DASCHED_CHECK(max_hops >= 1);
  }

  std::string name() const override { return "broadcast"; }
  std::uint32_t rounds() const override { return max_hops_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  StaticFootprint static_footprint() const override {
    return StaticFootprint::flood(source_, StaticFootprint::Outputs::kBroadcast, value_);
  }

  NodeId source() const { return source_; }
  std::uint64_t value() const { return value_; }

  /// Output layout: {received (0/1), value, hop distance (or ~0 if not reached)}.
  static constexpr std::size_t kOutReceived = 0;
  static constexpr std::size_t kOutValue = 1;
  static constexpr std::size_t kOutDistance = 2;

 private:
  NodeId source_;
  std::uint32_t max_hops_;
  std::uint64_t value_;
};

}  // namespace dasched
