#include "algos/bfs.hpp"

#include <algorithm>

namespace dasched {

namespace {

class BfsProgram final : public NodeProgram {
 public:
  BfsProgram(NodeId self, bool is_source) {
    if (is_source) {
      reached_ = true;
      distance_ = 0;
      parent_ = self;
    }
  }

  void on_round(VirtualContext& ctx) override {
    absorb(ctx);
    if (reached_ && !forwarded_ && ctx.vround() == distance_ + 1) {
      for (const auto& h : ctx.neighbors()) ctx.send(h.neighbor, {});
      forwarded_ = true;
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb(ctx); }

  std::vector<std::uint64_t> output() const override {
    if (!reached_) return {0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    return {1, distance_, parent_};
  }

 private:
  void absorb(VirtualContext& ctx) {
    if (reached_ || ctx.inbox().empty()) return;
    reached_ = true;
    distance_ = ctx.vround() - 1;
    NodeId best = ctx.inbox().front().from;
    for (const auto& m : ctx.inbox()) best = std::min(best, m.from);
    parent_ = best;
  }

  bool reached_ = false;
  bool forwarded_ = false;
  std::uint32_t distance_ = 0;
  NodeId parent_ = kInvalidNode;
};

}  // namespace

std::unique_ptr<NodeProgram> BfsAlgorithm::make_program(NodeId node) const {
  return std::make_unique<BfsProgram>(node, node == source_);
}

}  // namespace dasched
