// Store-and-forward packet routing along a fixed path -- the LMR workload
// (item (III) in the paper's introduction, Leighton-Maggs-Rao [22]).
//
// One algorithm routes one packet: the node at path position i receives the
// packet in round i and forwards it to position i+1 in round i+1. dilation of
// a routing instance is the longest path length and congestion is the maximum
// number of paths through a directed edge -- exactly the parameters of [22].
// E9 schedules many of these to recover the O(congestion + dilation log n)
// random-delay bound that the paper's Theorem 1.1 generalizes.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

class PathRoutingAlgorithm final : public DistributedAlgorithm {
 public:
  /// `path` lists consecutive adjacent nodes, source first. Adjacency is the
  /// caller's responsibility (the executor rejects non-neighbor sends).
  PathRoutingAlgorithm(std::vector<NodeId> path, std::uint64_t packet_value,
                       std::uint64_t base_seed);

  std::string name() const override { return "path-routing"; }
  std::uint32_t rounds() const override {
    return static_cast<std::uint32_t>(path_.size()) - 1;
  }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  StaticFootprint static_footprint() const override {
    return StaticFootprint::fixed_path(path_, packet_value_);
  }

  const std::vector<NodeId>& path() const { return path_; }

  /// Destination output: {delivered (0/1), packet value}; all other nodes
  /// output {}.
  static constexpr std::size_t kOutDelivered = 0;
  static constexpr std::size_t kOutValue = 1;

 private:
  std::vector<NodeId> path_;
  std::uint64_t packet_value_;
};

/// Generates a routing instance: `num_packets` packets between random
/// source/destination pairs, each along a shortest path (BFS, deterministic
/// tie-break). Returns one algorithm per packet.
std::vector<std::unique_ptr<PathRoutingAlgorithm>> make_random_routing_instance(
    const Graph& g, std::size_t num_packets, Rng& rng, std::uint64_t seed_base);

}  // namespace dasched
