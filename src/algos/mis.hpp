// Luby's Maximal Independent Set -- the paper's *non*-Bellagio example.
//
// Appendix A: the Bellagio wrapper applies to algorithms where each node
// outputs one canonical value in most executions; "a classical distributed
// problem for which obtaining a fast (polylogarithmic rounds) Bellagio
// algorithm seems hard is the Maximal Independent Set problem". Luby's
// algorithm is correct for every seed but different seeds yield *different*
// maximal independent sets -- so gluing per-cluster executions (each with its
// own seed) produces locally-valid but globally-inconsistent outputs:
// adjacent nodes can both claim membership. test/bench code measures exactly
// those conflicts as the negative control for the wrapper.
//
// Implementation: classic synchronous Luby. In each phase (2 rounds):
//   round A: every undecided node draws a random priority and sends it to
//            its neighbors (decided nodes are silent);
//   round B: a node that beat every priority it received joins the MIS and
//            announces it; neighbors of a joiner become decided non-members.
// The per-node randomness is either private (standalone Luby) or derived
// from a provided seed (the "shared randomness" variant the wrapper feeds
// per-cluster seeds into).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"

namespace dasched {

class LubyMisAlgorithm final : public DistributedAlgorithm {
 public:
  /// `phases` Luby phases (2 rounds each); Theta(log n) phases suffice
  /// w.h.p. `node_seeds[v]` drives node v's priorities; pass identical seeds
  /// everywhere for a shared-randomness run or per-cluster seeds under the
  /// Bellagio wrapper. An empty vector means "use private ctx.rng()".
  LubyMisAlgorithm(std::uint32_t phases, std::vector<std::vector<std::uint64_t>> node_seeds,
                   std::uint64_t base_seed)
      : DistributedAlgorithm(base_seed), phases_(phases), node_seeds_(std::move(node_seeds)) {
    DASCHED_CHECK(phases >= 1);
  }

  std::string name() const override { return "luby-mis"; }
  std::uint32_t rounds() const override { return 2 * phases_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  /// Sound upper-bound envelope: a directed edge carries at most one priority
  /// announcement per phase (only undecided nodes send in round A) and at
  /// most one join announcement ever (a node joins once, then is silent), so
  /// its total load is <= phases + 1.
  StaticFootprint static_footprint() const override {
    // Widest message is the priority announcement {tag, priority}.
    return StaticFootprint::envelope(phases_ + 1, /*max_payload_words=*/2);
  }

  std::uint32_t phases() const { return phases_; }

  /// Output layout: {decided (0/1), in MIS (0/1)}.
  static constexpr std::size_t kOutDecided = 0;
  static constexpr std::size_t kOutInMis = 1;

 private:
  std::uint32_t phases_;
  std::vector<std::vector<std::uint64_t>> node_seeds_;
};

/// Oracle check: is `in_mis` (per node) an independent set that is maximal
/// among `decided` nodes? Returns {independence violations, maximality
/// violations} counting edges/nodes.
std::pair<std::uint64_t, std::uint64_t> check_mis(const Graph& g,
                                                  const std::vector<std::uint8_t>& decided,
                                                  const std::vector<std::uint8_t>& in_mis);

}  // namespace dasched
