// Appendix A's worked example: (1+eps)-approximate counting of distinct
// elements in every node's d-hop neighborhood, using shared hash functions.
//
// Every node holds a string s_v (conceptually poly(n) bits; we store the
// Theta(log n)-bit image of the paper's first dimensionality-reduction hash,
// which is collision-free w.h.p.). For each threshold k_j = rho^j and each
// iteration t, a shared binary hash h'_{j,t} marks each string with
// probability p_j = 1 - 2^{-1/k_j} -- chosen so that the probability that
// *some* string in a set of N distinct strings is marked equals
// 1 - 2^{-N/k_j}, i.e. exactly 1/2 at N = k_j. A d-round bitwise-OR flood
// tells every node whether a marked string exists within d hops; the
// majority over Theta(log n / eps^2) iterations separates N >= (1+eps/2)k
// from N <= k/(1+eps/2), and scanning the thresholds yields the estimate.
// Iterations are bundled 64 per message word, giving the appendix's
// O(d log n / eps^3) rounds overall.
//
// The hash functions are derived from a seed: with *global* shared
// randomness the same seed is baked into every node; under the Bellagio
// wrapper (derand/bellagio.hpp) each node uses its cluster's locally-shared
// seed instead, which is consistent exactly where it matters (any d-ball
// inside one cluster).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

struct DistinctElementsParams {
  std::uint32_t radius = 2;        // d
  double rho = 1.5;                // threshold ratio 1 + eps
  std::uint32_t iterations = 48;   // per threshold (majority sample)
  std::uint32_t num_thresholds = 0;  // 0: derive ceil(log_rho n) + 1
};

class DistinctElementsAlgorithm final : public DistributedAlgorithm {
 public:
  /// `values[v]` is node v's string (distinct values are what gets counted;
  /// equal values at different nodes count once). `node_seeds[v]` is the
  /// shared-randomness seed as node v knows it -- identical everywhere for
  /// global shared randomness, or v's cluster seed under the wrapper.
  DistinctElementsAlgorithm(const Graph& g, DistinctElementsParams params,
                            std::vector<std::uint64_t> values,
                            std::vector<std::vector<std::uint64_t>> node_seeds,
                            std::uint64_t base_seed);

  std::string name() const override { return "distinct-elements"; }
  std::uint32_t rounds() const override { return total_rounds_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;
  /// Deliberately opaque -- and the fallback is tight here: the OR-flood has
  /// every node sending on every incident edge in every round, which is
  /// exactly the whole-bandwidth surface the analyzer assumes. Payload width
  /// is still bounded: every message is a {word index, mask word} pair.
  StaticFootprint static_footprint() const override {
    StaticFootprint f = StaticFootprint::opaque();
    f.max_payload_words = 2;
    return f;
  }

  std::uint32_t num_thresholds() const { return num_thresholds_; }
  std::uint32_t words() const { return words_; }
  const DistinctElementsParams& params() const { return params_; }

  /// The shared binary hash: is string `value` marked in experiment (j, t)
  /// under `seed`? Exposed so oracles can recompute expected outputs.
  static bool marked(std::uint64_t seed, std::uint32_t threshold_index,
                     std::uint32_t iteration, std::uint64_t value, double rho);

  /// Collapses a node's seed words into the single hashing seed.
  static std::uint64_t fold_seed(const std::vector<std::uint64_t>& words);

  /// Output layout: {threshold index j_hat, estimate round(rho^j_hat)}.
  static constexpr std::size_t kOutIndex = 0;
  static constexpr std::size_t kOutEstimate = 1;

 private:
  const Graph* graph_;
  DistinctElementsParams params_;
  std::vector<std::uint64_t> values_;
  std::vector<std::vector<std::uint64_t>> node_seeds_;
  std::uint32_t num_thresholds_;
  std::uint32_t words_;         // message words per node (64 experiments each)
  std::uint32_t total_rounds_;  // words * radius
};

/// Central oracle: exact number of distinct values within `radius` hops of
/// every node.
std::vector<std::uint64_t> exact_distinct_counts(const Graph& g,
                                                 const std::vector<std::uint64_t>& values,
                                                 std::uint32_t radius);

}  // namespace dasched
