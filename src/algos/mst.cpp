#include "algos/mst.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <set>

#include "graph/algorithms.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace dasched {

namespace {

// Message tags.
constexpr std::uint64_t kTagFragId = 1;
constexpr std::uint64_t kTagCandidate = 2;  // {tag, w, u, v}
constexpr std::uint64_t kTagDecision = 3;   // {tag, merge?, u, v}
constexpr std::uint64_t kTagActivate = 4;
constexpr std::uint64_t kTagFlood = 5;      // {tag, best id}
constexpr std::uint64_t kTagWave = 6;
constexpr std::uint64_t kTagUpBfs = 7;
constexpr std::uint64_t kTagUpCand = 8;     // {tag, w, u, v} (+frags below)
constexpr std::uint64_t kTagChosen = 9;     // {tag, u, v}
constexpr std::uint64_t kTagChild = 10;     // BFS-child announcement
constexpr std::uint64_t kTagUpDone = 11;    // child's upcast stream finished

constexpr std::uint64_t kNoEdge = ~std::uint64_t{0};

/// Minimal union-find keyed by fragment id (sparse).
class SparseUnionFind {
 public:
  NodeId find(NodeId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    NodeId root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const NodeId next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::map<NodeId, NodeId> parent_;
};

struct CandidateEdge {
  std::uint64_t w = ~std::uint64_t{0};
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;     // endpoints; fragment(u) != fragment(v)
  NodeId fu = kInvalidNode;
  NodeId fv = kInvalidNode;

  bool operator>(const CandidateEdge& o) const { return w > o.w; }
};

}  // namespace

std::vector<std::uint64_t> make_mst_weights(const Graph& g, std::uint64_t seed) {
  // Distinct by construction: random high bits, edge id low bits.
  std::vector<std::uint64_t> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[e] = (splitmix64(seed_combine(seed, e)) << 20) | e;
  }
  return w;
}

// ---------------------------------------------------------------------------
// Central planner: replays the deterministic fragment evolution.
// ---------------------------------------------------------------------------

namespace {

/// Max eccentricity-from-min-id-node over fragments, using only `frag_edge`.
std::uint32_t max_fragment_depth(const Graph& g, const std::vector<NodeId>& frag,
                                 const std::vector<std::uint8_t>& frag_edge) {
  const NodeId n = g.num_nodes();
  std::uint32_t worst = 0;
  std::vector<std::uint32_t> dist(n);
  std::vector<NodeId> queue;
  for (NodeId root = 0; root < n; ++root) {
    if (frag[root] != root) continue;  // fragment id == min node id == root
    // BFS from root over fragment edges.
    dist.assign(n, kUnreachable);
    queue.clear();
    dist[root] = 0;
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      worst = std::max(worst, dist[x]);
      for (const auto& h : g.neighbors(x)) {
        if (frag_edge[h.edge] && frag[h.neighbor] == root &&
            dist[h.neighbor] == kUnreachable) {
          dist[h.neighbor] = dist[x] + 1;
          queue.push_back(h.neighbor);
        }
      }
    }
  }
  return worst;
}

}  // namespace

MstPlan plan_mst(const Graph& g, const std::vector<std::uint64_t>& weights,
                 std::uint32_t target_fragments) {
  DASCHED_CHECK(g.num_nodes() >= 1);
  DASCHED_CHECK(weights.size() == g.num_edges());
  DASCHED_CHECK(target_fragments >= 1);
  const NodeId n = g.num_nodes();

  std::vector<NodeId> frag(n);
  for (NodeId v = 0; v < n; ++v) frag[v] = v;
  std::vector<std::uint8_t> frag_edge(g.num_edges(), 0);
  std::uint32_t num_fragments = n;

  MstPlan plan;
  std::uint32_t depth_before = 0;
  const std::uint32_t max_phases = 20 + 4 * (n > 1 ? ceil_log2(n) : 1);

  for (std::uint32_t p = 0; p < max_phases && num_fragments > target_fragments &&
                            num_fragments > 1;
       ++p) {
    // Per-fragment MWOE.
    std::map<NodeId, CandidateEdge> mwoe;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [a, b] = g.endpoints(e);
      if (frag[a] == frag[b]) continue;
      for (const NodeId f : {frag[a], frag[b]}) {
        auto& best = mwoe[f];
        if (weights[e] < best.w) {
          best = {weights[e], a, b, frag[a], frag[b]};
        }
      }
    }
    // Star contraction: tail fragments merge over their MWOE into heads.
    std::vector<EdgeId> activated;
    for (const auto& [f, cand] : mwoe) {
      if (PipelineMstAlgorithm::is_head(f, p)) continue;  // heads do not propose
      const NodeId other = (cand.fu == f) ? cand.fv : cand.fu;
      if (!PipelineMstAlgorithm::is_head(other, p)) continue;
      const EdgeId e = g.find_edge(cand.u, cand.v);
      DASCHED_CHECK(e != kInvalidEdge);
      activated.push_back(e);
    }
    for (const EdgeId e : activated) frag_edge[e] = 1;

    // Recompute fragments as components over fragment edges.
    {
      std::vector<NodeId> new_frag(n, kInvalidNode);
      std::vector<NodeId> queue;
      for (NodeId v = 0; v < n; ++v) {
        if (new_frag[v] != kInvalidNode) continue;
        // BFS; component id = min node id, and nodes are visited from the
        // smallest id first, so v is the minimum of its component.
        queue.clear();
        queue.push_back(v);
        new_frag[v] = v;
        for (std::size_t head = 0; head < queue.size(); ++head) {
          const NodeId x = queue[head];
          for (const auto& h : g.neighbors(x)) {
            if (frag_edge[h.edge] && new_frag[h.neighbor] == kInvalidNode) {
              new_frag[h.neighbor] = v;
              queue.push_back(h.neighbor);
            }
          }
        }
      }
      frag = std::move(new_frag);
    }
    num_fragments = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (frag[v] == v) ++num_fragments;
    }

    const std::uint32_t diameter_after = max_fragment_depth(g, frag, frag_edge);
    MstPhasePlan phase;
    phase.depth_before = depth_before;
    phase.diameter_after = diameter_after;
    phase.budget = 2 * depth_before + 2 * diameter_after + 5;
    plan.phases.push_back(phase);
    depth_before = diameter_after;

    if (activated.empty()) {
      // Coins can stall a phase but never two consecutive ones for the same
      // pair pattern is not guaranteed; keep going until the cap.
      continue;
    }
  }

  plan.num_fragments = num_fragments;
  plan.bfs_depth = (n > 1) ? eccentricity(g, 0) : 0;

  // Exact upcast budget: replay the safety-frontier filtered pipeline
  // centrally, slot-synchronously, with the exact rules of the program:
  // a node emits its heap minimum only when every BFS child has either
  // finished (DONE) or already delivered a weight at least as large (child
  // streams are nondecreasing, so nothing smaller can still arrive).
  {
    const auto dist0 = bfs_distances(g, 0);
    std::vector<NodeId> up_parent(n, kInvalidNode);
    std::vector<std::vector<NodeId>> children(n);
    for (NodeId v = 1; v < n; ++v) {
      for (const auto& h : g.neighbors(v)) {
        if (dist0[h.neighbor] + 1 == dist0[v]) {
          up_parent[v] = h.neighbor;
          break;  // neighbors sorted by id -> min-id parent
        }
      }
      DASCHED_CHECK(up_parent[v] != kInvalidNode);
      children[up_parent[v]].push_back(v);
    }
    using Heap = std::priority_queue<CandidateEdge, std::vector<CandidateEdge>,
                                     std::greater<CandidateEdge>>;
    std::vector<Heap> heap(n);
    std::vector<SparseUnionFind> uf(n);
    std::vector<std::map<NodeId, std::uint64_t>> last_w(n);  // child -> frontier
    std::vector<std::map<NodeId, bool>> child_done(n);
    std::vector<std::uint8_t> done_sent(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      for (const NodeId c : children[v]) child_done[v][c] = false;
    }
    for (NodeId v = 0; v < n; ++v) {
      for (const auto& h : g.neighbors(v)) {
        if (frag[h.neighbor] != frag[v] && v < h.neighbor && v != 0) {
          heap[v].push({weights[h.edge], v, h.neighbor, frag[v], frag[h.neighbor]});
        }
      }
    }
    struct Delivery {
      NodeId to;
      NodeId from;
      bool done;
      CandidateEdge edge;
    };
    std::uint32_t slot = 0;
    std::uint32_t last_send_slot = 0;
    bool active = true;
    std::vector<Delivery> staged;
    while (active) {
      ++slot;
      DASCHED_CHECK_MSG(slot < 16u * (g.num_edges() + n + 2),
                        "mst planner: upcast did not drain");
      active = false;
      staged.clear();
      for (NodeId v = 1; v < n; ++v) {
        if (done_sent[v]) continue;
        active = true;
        bool emitted = false;
        while (!heap[v].empty()) {
          const CandidateEdge c = heap[v].top();
          bool safe = true;
          for (const NodeId ch : children[v]) {
            if (child_done[v][ch]) continue;
            const auto it = last_w[v].find(ch);
            if (it == last_w[v].end() || it->second < c.w) {
              safe = false;
              break;
            }
          }
          if (!safe) break;
          heap[v].pop();
          if (uf[v].find(c.fu) == uf[v].find(c.fv)) continue;  // filtered
          uf[v].unite(c.fu, c.fv);
          staged.push_back({up_parent[v], v, false, c});
          last_send_slot = slot;
          emitted = true;
          break;
        }
        if (!emitted && heap[v].empty()) {
          bool all_done = true;
          for (const NodeId ch : children[v]) all_done &= child_done[v][ch];
          if (all_done) {
            staged.push_back({up_parent[v], v, true, {}});
            last_send_slot = slot;
            done_sent[v] = 1;
          }
        }
      }
      for (const auto& d : staged) {
        if (d.done) {
          child_done[d.to][d.from] = true;
        } else {
          last_w[d.to][d.from] = d.edge.w;
          if (d.to != 0) heap[d.to].push(d.edge);
        }
      }
    }
    plan.upcast_rounds = last_send_slot + 2;
  }
  plan.downcast_rounds = plan.bfs_depth + plan.num_fragments + 4;

  std::uint32_t total = 0;
  for (const auto& ph : plan.phases) total += ph.budget;
  // Upcast layout: 1 (frag ids) + (1 + bfs_depth) (BFS wave) + 1 (child
  // announcements) + upcast_rounds (pipeline slots) + downcast_rounds.
  total += 3 + plan.bfs_depth + plan.upcast_rounds + plan.downcast_rounds;
  plan.total_rounds = total;
  return plan;
}

// ---------------------------------------------------------------------------
// The distributed program.
// ---------------------------------------------------------------------------

namespace {

class PipelineMstProgram final : public NodeProgram {
 public:
  PipelineMstProgram(const PipelineMstAlgorithm& algo, NodeId self)
      : algo_(algo), self_(self), frag_(self) {
    const auto& g = algo_.graph();
    for (const auto& h : g.neighbors(self)) {
      incident_.push_back({h.neighbor, h.edge, algo_.weights()[h.edge]});
      nbr_frag_.push_back(kInvalidNode);
      is_frag_edge_.push_back(false);
      is_mst_edge_.push_back(false);
    }
    // Phase start offsets (prefix sums of budgets).
    std::uint32_t t = 0;
    for (const auto& ph : algo_.plan().phases) {
      phase_start_.push_back(t);
      t += ph.budget;
    }
    upcast_start_ = t;
  }

  void on_round(VirtualContext& ctx) override {
    const std::uint32_t r = ctx.vround();
    if (r <= upcast_start_) {
      fragment_phase_round(ctx, r);
    } else {
      upcast_phase_round(ctx, r - upcast_start_);
    }
  }

  void on_finish(VirtualContext& ctx) override { absorb_upcast(ctx, ~0u); }

  std::vector<std::uint64_t> output() const override {
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < incident_.size(); ++i) {
      if (is_frag_edge_[i] || is_mst_edge_[i]) out.push_back(incident_[i].edge);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Incident {
    NodeId neighbor;
    EdgeId edge;
    std::uint64_t weight;
  };

  std::size_t incident_index(NodeId neighbor) const {
    for (std::size_t i = 0; i < incident_.size(); ++i) {
      if (incident_[i].neighbor == neighbor) return i;
    }
    DASCHED_CHECK_MSG(false, "message from non-neighbor");
    return 0;
  }

  void send_frag_edges(VirtualContext& ctx, Payload payload) {
    for (std::size_t i = 0; i < incident_.size(); ++i) {
      if (is_frag_edge_[i]) ctx.send(incident_[i].neighbor, payload);
    }
  }

  // ---- Fragment (Boruvka) phases. ----

  void fragment_phase_round(VirtualContext& ctx, std::uint32_t r) {
    // Identify the current phase.
    while (phase_cursor_ + 1 < phase_start_.size() &&
           r > phase_start_[phase_cursor_ + 1]) {
      ++phase_cursor_;
    }
    if (phase_cursor_ >= algo_.plan().phases.size()) return;
    const auto& ph = algo_.plan().phases[phase_cursor_];
    const std::uint32_t l = r - phase_start_[phase_cursor_];  // local round, 1-based
    const std::uint32_t dp = ph.depth_before;
    const std::uint32_t da = ph.diameter_after;
    const std::uint32_t l_dec = dp + 2;
    const std::uint32_t l_flood = 2 * dp + 4;
    const std::uint32_t l_wave = 2 * dp + da + 5;

    if (l == 1) begin_phase();

    absorb_fragment(ctx, l, l_wave);

    if (l == 1) {
      for (const auto& inc : incident_) ctx.send(inc.neighbor, {kTagFragId, frag_});
      return;
    }

    // Timed convergecast: depth d sends at l = 2 + (dp - d).
    if (depth_ > 0 && dp >= depth_ && l == 2 + (dp - depth_)) {
      if (best_cand_.w != ~std::uint64_t{0}) {
        ctx.send(parent_, {kTagCandidate, best_cand_.w, best_cand_.u, best_cand_.v,
                           pack_frags(best_cand_)});
      }
      return;
    }

    // Root decision + broadcast start.
    if (depth_ == 0 && l == l_dec) {
      decide_merge(ctx);
      return;
    }

    // Broadcast forwarding + activation are handled in absorb_fragment.

    // Min-id flood.
    if (l >= l_flood && l < l_wave) {
      if (flood_best_ != flood_sent_) {
        send_frag_edges(ctx, {kTagFlood, flood_best_});
        flood_sent_ = flood_best_;
      }
      return;
    }

    // BFS wave start (the new root).
    if (l == l_wave && flood_best_ == self_) {
      frag_ = self_;
      parent_ = self_;
      depth_ = 0;
      wave_done_ = true;
      send_frag_edges(ctx, {kTagWave});
      return;
    }
  }

  void begin_phase() {
    best_cand_ = CandidateEdge{};
    own_done_ = false;
    decision_seen_ = false;
    flood_best_ = frag_;
    flood_sent_ = kNoEdge;  // force one flood send
    wave_done_ = false;
  }

  std::uint64_t pack_frags(const CandidateEdge& c) const {
    return (static_cast<std::uint64_t>(c.fu) << 32) | c.fv;
  }

  void merge_own_candidate() {
    if (own_done_) return;
    own_done_ = true;
    for (std::size_t i = 0; i < incident_.size(); ++i) {
      if (nbr_frag_[i] != kInvalidNode && nbr_frag_[i] != frag_ &&
          incident_[i].weight < best_cand_.w) {
        best_cand_ = {incident_[i].weight, self_, incident_[i].neighbor, frag_,
                      nbr_frag_[i]};
      }
    }
  }

  void decide_merge(VirtualContext& ctx) {
    merge_own_candidate();
    const std::uint32_t p = phase_cursor_;
    if (best_cand_.w == ~std::uint64_t{0}) return;                // spanning fragment
    if (PipelineMstAlgorithm::is_head(frag_, p)) return;          // heads wait
    const NodeId other = (best_cand_.fu == frag_) ? best_cand_.fv : best_cand_.fu;
    if (!PipelineMstAlgorithm::is_head(other, p)) return;         // tail->tail: stall
    // Announce the merge over the fragment tree (the root may itself be the
    // MWOE endpoint).
    handle_decision(ctx, best_cand_.u, best_cand_.v);
  }

  void handle_decision(VirtualContext& ctx, NodeId u, NodeId v) {
    if (decision_seen_) return;
    decision_seen_ = true;
    send_frag_edges(ctx, {kTagDecision, u, v});
    if (self_ == u) {
      const auto i = incident_index(v);
      is_frag_edge_[i] = true;
      ctx.send(v, {kTagActivate});
    }
  }

  void absorb_fragment(VirtualContext& ctx, std::uint32_t l, std::uint32_t l_wave) {
    for (const auto& m : ctx.inbox()) {
      switch (m.payload.at(0)) {
        case kTagFragId:
          nbr_frag_[incident_index(m.from)] = m.payload.at(1);
          break;
        case kTagCandidate: {
          merge_own_candidate();
          CandidateEdge c;
          c.w = m.payload.at(1);
          c.u = static_cast<NodeId>(m.payload.at(2));
          c.v = static_cast<NodeId>(m.payload.at(3));
          c.fu = static_cast<NodeId>(m.payload.at(4) >> 32);
          c.fv = static_cast<NodeId>(m.payload.at(4) & 0xffffffffu);
          if (c.w < best_cand_.w) best_cand_ = c;
          break;
        }
        case kTagDecision:
          handle_decision(ctx, static_cast<NodeId>(m.payload.at(1)),
                          static_cast<NodeId>(m.payload.at(2)));
          break;
        case kTagActivate:
          is_frag_edge_[incident_index(m.from)] = true;
          break;
        case kTagFlood: {
          const std::uint64_t candidate = m.payload.at(1);
          if (candidate < flood_best_) flood_best_ = static_cast<NodeId>(candidate);
          break;
        }
        case kTagWave:
          if (!wave_done_) {
            wave_done_ = true;
            frag_ = static_cast<NodeId>(flood_best_);
            parent_ = m.from;
            depth_ = l - l_wave;
            if (l < l_wave + algo_.plan().phases[phase_cursor_].diameter_after) {
              // Forward immediately (same-round absorb-then-send).
              for (std::size_t i = 0; i < incident_.size(); ++i) {
                if (is_frag_edge_[i] && incident_[i].neighbor != m.from) {
                  ctx.send(incident_[i].neighbor, {kTagWave});
                }
              }
            }
          } else if (l == depth_ + l_wave) {
            parent_ = std::min(parent_, m.from);  // deterministic tie-break
          }
          break;
        default:
          DASCHED_CHECK_MSG(false, "mst: unexpected tag in fragment phase");
      }
    }
    // Leaves of the convergecast must fold in their own candidate before
    // their timed send; do it as soon as neighbor fragments are known.
    if (l >= 2) merge_own_candidate();
  }

  // ---- Upcast phase. ----

  void upcast_phase_round(VirtualContext& ctx, std::uint32_t l) {
    const auto& plan = algo_.plan();
    const std::uint32_t l_child = 3 + plan.bfs_depth;   // child announcements
    const std::uint32_t l_up0 = 4 + plan.bfs_depth;     // first upcast slot
    const std::uint32_t dn_start = l_up0 + plan.upcast_rounds;

    absorb_upcast(ctx, l);

    if (l == 1) {
      for (const auto& inc : incident_) ctx.send(inc.neighbor, {kTagFragId, frag_});
      return;
    }
    if (l == 2 && self_ == 0) {
      up_depth_ = 0;
      up_parent_ = self_;
      up_done_ = true;
      for (const auto& inc : incident_) ctx.send(inc.neighbor, {kTagUpBfs});
      return;
    }
    if (l == l_child && self_ != 0) {
      DASCHED_CHECK_MSG(up_done_, "mst: BFS wave did not reach a node");
      ctx.send(up_parent_, {kTagChild});
      return;
    }
    if (l >= l_up0 && l < dn_start && self_ != 0 && !done_sent_) {
      // Emit the heap minimum once it is safe: every child has finished or
      // has already delivered a weight >= it (child streams never decrease).
      bool emitted = false;
      while (!heap_.empty()) {
        const CandidateEdge c = heap_.top();
        bool safe = true;
        for (const auto& [ch, done] : child_state_) {
          if (done) continue;
          const auto it = child_frontier_.find(ch);
          if (it == child_frontier_.end() || it->second < c.w) {
            safe = false;
            break;
          }
        }
        if (!safe) break;
        heap_.pop();
        if (uf_.find(c.fu) == uf_.find(c.fv)) continue;  // filtered (cycle)
        uf_.unite(c.fu, c.fv);
        ctx.send(up_parent_, {kTagUpCand, c.w, c.u, c.v, pack_frags(c)});
        emitted = true;
        break;
      }
      if (!emitted && heap_.empty() && heap_seeded_) {
        bool all_done = true;
        for (const auto& [ch, done] : child_state_) all_done &= done;
        if (all_done) {
          ctx.send(up_parent_, {kTagUpDone});
          done_sent_ = true;
        }
      }
      return;
    }
    if (l >= dn_start) {
      if (l == dn_start && self_ == 0) {
        // Root: all candidates have arrived; run exact Kruskal. (Per-child
        // streams are sorted but their interleaving is not, so the root must
        // sort globally.)
        std::sort(root_cands_.begin(), root_cands_.end(),
                  [](const CandidateEdge& a, const CandidateEdge& b) {
                    return a.w < b.w;
                  });
        for (const auto& c : root_cands_) {
          if (uf_.find(c.fu) != uf_.find(c.fv)) {
            uf_.unite(c.fu, c.fv);
            chosen_.emplace_back(c.u, c.v);
          }
        }
        for (const auto& c : chosen_) down_queue_.push_back(c);
        for (const auto& [u, v] : chosen_) mark_if_incident(u, v);
      }
      if (!down_queue_.empty()) {
        const auto [u, v] = down_queue_.front();
        down_queue_.pop_front();
        for (const auto& inc : incident_) {
          ctx.send(inc.neighbor, {kTagChosen, u, v});
        }
      }
      return;
    }
  }

  void absorb_upcast(VirtualContext& ctx, std::uint32_t l) {
    const auto& plan = algo_.plan();
    for (const auto& m : ctx.inbox()) {
      switch (m.payload.at(0)) {
        case kTagFragId:
          nbr_frag_[incident_index(m.from)] = m.payload.at(1);
          break;
        case kTagUpBfs:
          if (!up_done_) {
            up_done_ = true;
            up_parent_ = m.from;
            up_depth_ = l - 2;
            if (l < 2 + plan.bfs_depth) {
              for (const auto& inc : incident_) {
                if (inc.neighbor != m.from) ctx.send(inc.neighbor, {kTagUpBfs});
              }
            }
          } else if (l == up_depth_ + 2) {
            up_parent_ = std::min(up_parent_, m.from);
          }
          break;
        case kTagChild:
          child_state_[m.from] = false;
          break;
        case kTagUpDone:
          child_state_[m.from] = true;
          break;
        case kTagUpCand: {
          CandidateEdge c;
          c.w = m.payload.at(1);
          c.u = static_cast<NodeId>(m.payload.at(2));
          c.v = static_cast<NodeId>(m.payload.at(3));
          c.fu = static_cast<NodeId>(m.payload.at(4) >> 32);
          c.fv = static_cast<NodeId>(m.payload.at(4) & 0xffffffffu);
          child_frontier_[m.from] = c.w;
          if (self_ == 0) {
            root_cands_.push_back(c);
          } else {
            heap_.push(c);
          }
          break;
        }
        case kTagChosen: {
          const NodeId u = static_cast<NodeId>(m.payload.at(1));
          const NodeId v = static_cast<NodeId>(m.payload.at(2));
          const std::uint64_t key = (std::uint64_t{u} << 32) | v;
          if (chosen_seen_.insert(key).second) {
            down_queue_.emplace_back(u, v);
            mark_if_incident(u, v);
          }
          break;
        }
        default:
          DASCHED_CHECK_MSG(false, "mst: unexpected tag in upcast phase");
      }
    }
    // Seed the candidate heap with own inter-fragment edges once neighbor
    // fragments are refreshed (round 2 of the upcast phase). Each edge is
    // injected once, by its smaller endpoint.
    if (l >= 2 && l != ~0u && !heap_seeded_) {
      heap_seeded_ = true;
      for (std::size_t i = 0; i < incident_.size(); ++i) {
        if (nbr_frag_[i] == kInvalidNode || nbr_frag_[i] == frag_) continue;
        if (self_ >= incident_[i].neighbor) continue;
        const CandidateEdge c{incident_[i].weight, self_, incident_[i].neighbor,
                              frag_, nbr_frag_[i]};
        if (self_ == 0) {
          root_cands_.push_back(c);
        } else {
          heap_.push(c);
        }
      }
    }
  }

  void mark_if_incident(NodeId u, NodeId v) {
    if (self_ != u && self_ != v) return;
    const NodeId other = (self_ == u) ? v : u;
    is_mst_edge_[incident_index(other)] = true;
  }

  const PipelineMstAlgorithm& algo_;
  NodeId self_;
  std::vector<Incident> incident_;
  std::vector<NodeId> nbr_frag_;
  std::vector<bool> is_frag_edge_;
  std::vector<bool> is_mst_edge_;

  // Fragment-phase state.
  std::vector<std::uint32_t> phase_start_;
  std::uint32_t upcast_start_ = 0;
  std::size_t phase_cursor_ = 0;
  NodeId frag_;
  NodeId parent_ = kInvalidNode;
  std::uint32_t depth_ = 0;
  CandidateEdge best_cand_;
  bool own_done_ = false;
  bool decision_seen_ = false;
  NodeId flood_best_ = kInvalidNode;
  std::uint64_t flood_sent_ = kNoEdge;
  bool wave_done_ = false;

  // Upcast-phase state.
  bool up_done_ = false;
  bool heap_seeded_ = false;
  bool done_sent_ = false;
  NodeId up_parent_ = kInvalidNode;
  std::uint32_t up_depth_ = 0;
  std::map<NodeId, bool> child_state_;          // child -> done?
  std::map<NodeId, std::uint64_t> child_frontier_;  // child -> last weight
  std::priority_queue<CandidateEdge, std::vector<CandidateEdge>,
                      std::greater<CandidateEdge>>
      heap_;
  SparseUnionFind uf_;
  std::vector<CandidateEdge> root_cands_;  // root only
  std::vector<std::pair<NodeId, NodeId>> chosen_;
  std::deque<std::pair<NodeId, NodeId>> down_queue_;
  std::set<std::uint64_t> chosen_seen_;
};

}  // namespace

PipelineMstAlgorithm::PipelineMstAlgorithm(const Graph& g,
                                           std::vector<std::uint64_t> weights,
                                           std::uint32_t target_fragments,
                                           std::uint64_t base_seed)
    : DistributedAlgorithm(base_seed),
      graph_(&g),
      weights_(std::move(weights)),
      target_fragments_(target_fragments),
      plan_(plan_mst(g, weights_, target_fragments)) {}

std::unique_ptr<NodeProgram> PipelineMstAlgorithm::make_program(NodeId node) const {
  return std::make_unique<PipelineMstProgram>(*this, node);
}

}  // namespace dasched
