#include "congest/executor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

std::uint64_t ExecutionResult::adaptive_physical_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_big_round) {
    rounds += std::max<std::uint32_t>(1, load);
  }
  return rounds;
}

ExecutionResult::FixedPhase ExecutionResult::fixed_phase(std::uint32_t phase_len) const {
  DASCHED_CHECK_GE(phase_len, 1u);
  FixedPhase result{0, 0};
  result.physical_rounds =
      static_cast<std::uint64_t>(num_big_rounds) * phase_len;
  for (const auto load : max_load_per_big_round) {
    if (load > phase_len) ++result.overflowing_phases;
  }
  return result;
}

bool ExecutionResult::all_completed() const {
  for (const auto& per_alg : completed) {
    for (const auto c : per_alg) {
      if (!c) return false;
    }
  }
  return true;
}

namespace {

/// Staged transmission awaiting end-of-big-round delivery.
struct StagedMessage {
  std::uint32_t alg;
  std::uint32_t tag;  // sender's virtual round
  NodeId to;
  std::uint32_t directed_edge;
  VMessage msg;
};

/// One scheduled execution event.
struct ExecEvent {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

/// Per-event send collector. One binary search over the (sorted) adjacency
/// validates the neighbor and yields its adjacency slot; the per-slot bitmap
/// flags duplicate sends in O(1); the caller resolves the directed edge id
/// from the slot with a single indexed load -- no find_edge and no linear
/// duplicate scan anywhere on the send path.
struct SendSink {
  std::span<const HalfEdge> neighbors;
  std::uint32_t max_payload_words;
  std::uint8_t* slot_used;  // worker scratch sized max_degree, all zero between events
  std::vector<std::pair<std::uint32_t, Payload>>* sends;  // (slot, payload)

  static void send(void* raw, NodeId neighbor, Payload payload) {
    auto* sink = static_cast<SendSink*>(raw);
    const auto nbrs = sink->neighbors;
    const auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), neighbor,
        [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
    DASCHED_CHECK_MSG(it != nbrs.end() && it->neighbor == neighbor,
                      "send to non-neighbor");
    DASCHED_CHECK_MSG(payload.size() <= sink->max_payload_words,
                      "message exceeds CONGEST word budget");
    const auto slot = static_cast<std::uint32_t>(it - nbrs.begin());
    DASCHED_CHECK_MSG(!sink->slot_used[slot],
                      "two messages to one neighbor in one round");
    sink->slot_used[slot] = 1;
    sink->sends->emplace_back(slot, std::move(payload));
  }
};

/// Per-worker staging plus reusable scratch. Within one big-round every event
/// touches only its own (alg, node) state, so shards race only if they shared
/// scratch -- they don't; and because each shard appends to its own `staged`
/// and shards are contiguous slices of the bucket, concatenating the buffers
/// in shard order reproduces the serial staging order bit for bit.
struct WorkerState {
  std::vector<StagedMessage> staged;
  std::vector<std::pair<std::uint32_t, Payload>> sends;  // per-event scratch
  std::vector<std::uint8_t> slot_used;                   // size max_degree
  std::uint64_t delivered = 0;  // cumulative messages consumed by this worker
  std::uint64_t skipped = 0;    // events skipped because the node crash-stopped
};

/// Minimum events per shard before a big-round is farmed out to the pool:
/// below this, waking the workers costs more than the bucket. The cutoff is
/// invisible in results -- serial and parallel execution are bit-identical.
constexpr std::size_t kMinEventsPerShard = 16;

}  // namespace

Executor::Executor(const Graph& g, ExecConfig cfg) : graph_(g), cfg_(cfg) {}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ExecTimeFn& exec_time) {
  return run(algorithms,
             ScheduleTable::from_fn(algorithms, graph_.num_nodes(), exec_time));
}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ScheduleTable& schedule) {
  const std::size_t k = algorithms.size();
  const NodeId n = graph_.num_nodes();
  DASCHED_CHECK_EQ(schedule.num_algorithms(), k,
                   "schedule table does not match the problem dimensions");
  DASCHED_CHECK_EQ(schedule.num_nodes(), n,
                   "schedule table does not match the problem dimensions");

  // --- Admission gate: consulted once, before any event executes. A null
  // gate costs nothing; a rejection is a hard contract failure. ---
  if (cfg_.admission != nullptr) {
    DASCHED_CHECK_MSG(cfg_.admission->admit(algorithms, schedule),
                      "schedule rejected by the admission gate");
  }

  // --- Validate the schedule and count events. ---
  std::uint32_t max_big_round = 0;
  std::uint64_t total_events = 0;
  for (std::size_t a = 0; a < k; ++a) {
    DASCHED_CHECK_EQ(schedule.rounds(a), algorithms[a]->rounds(),
                     "schedule table does not match the algorithm round counts");
    for (NodeId v = 0; v < n; ++v) {
      const auto slots = schedule.row(a, v);
      std::uint32_t prev = 0;
      bool ended = false;
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        const std::uint32_t t = slots[r - 1];
        if (t == kNeverScheduled) {
          ended = true;
          continue;
        }
        DASCHED_CHECK_MSG(!ended, "schedule has a gap: round scheduled after a skipped one");
        DASCHED_CHECK_MSG(r == 1 || t > prev,
                          "schedule must be strictly increasing per (alg, node)");
        prev = t;
        max_big_round = std::max(max_big_round, t);
        ++total_events;
      }
    }
  }

  // --- Bucket events by big-round: one flat array plus CSR offsets. The
  // counting sort preserves (alg, node, round) order within each bucket,
  // which is the canonical serial execution order. ---
  const std::uint32_t num_big_rounds = total_events == 0 ? 0 : max_big_round + 1;
  std::vector<std::size_t> bucket_start(num_big_rounds + 1, 0);
  for (std::size_t a = 0; a < k; ++a) {
    for (NodeId v = 0; v < n; ++v) {
      for (const auto t : schedule.row(a, v)) {
        if (t != kNeverScheduled) ++bucket_start[t + 1];
      }
    }
  }
  for (std::uint32_t t = 1; t <= num_big_rounds; ++t) {
    bucket_start[t] += bucket_start[t - 1];
  }
  std::vector<ExecEvent> events(total_events);
  {
    std::vector<std::size_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t a = 0; a < k; ++a) {
      for (NodeId v = 0; v < n; ++v) {
        const auto slots = schedule.row(a, v);
        for (std::uint32_t r = 1; r <= slots.size(); ++r) {
          const std::uint32_t t = slots[r - 1];
          if (t != kNeverScheduled) {
            events[cursor[t]++] = {static_cast<std::uint32_t>(a), v, r};
          }
        }
      }
    }
  }

  // --- Per (alg, node) state. ---
  std::vector<std::vector<std::unique_ptr<NodeProgram>>> programs(k);
  std::vector<std::vector<Rng>> rngs(k);
  std::vector<std::vector<std::uint32_t>> progress(k);  // last executed vround
  // Tag-bucketed inboxes: inbox[a][v * T_a + (tag - 1)] holds the messages
  // sent to (a, v) in the sender's virtual round `tag`. The receiver consumes
  // the whole bucket when it executes round tag + 1 (or on_finish for
  // tag == T_a), so inbox lookup is one indexed load instead of a linear scan
  // over all pending messages.
  std::vector<std::vector<std::vector<VMessage>>> inbox(k);
  for (std::size_t a = 0; a < k; ++a) {
    programs[a].reserve(n);
    rngs[a].reserve(n);
    progress[a].assign(n, 0);
    inbox[a].resize(std::size_t{n} * algorithms[a]->rounds());
    for (NodeId v = 0; v < n; ++v) {
      programs[a].push_back(algorithms[a]->make_program(v));
      rngs[a].emplace_back(seed_combine(algorithms[a]->base_seed(), v));
    }
  }

  ExecutionResult result;
  result.outputs.assign(k, {});
  result.completed.assign(k, {});
  if (cfg_.record_patterns) {
    result.patterns.assign(k, CommunicationPattern(graph_.num_directed_edges()));
  }
  result.num_big_rounds = num_big_rounds;
  result.max_load_per_big_round.assign(num_big_rounds, 0);

  std::vector<std::uint32_t> edge_count(graph_.num_directed_edges(), 0);
  std::vector<std::uint32_t> touched_edges;

  // --- Fault injection and reliable delivery (docs/FAULTS.md). All fault
  // decisions run at the delivery barrier below, which processes messages in
  // shard-merged (== serial) order, and are pure functions of the plan seed
  // and message identity -- so faulty runs are bit-identical across thread
  // counts. With `faults` null none of this is touched. ---
  const FaultInjector* const faults = cfg_.faults;
  const std::uint32_t max_retries = faults != nullptr ? cfg_.retry.max_retries : 0;
  RetryQueue<StagedMessage> retry_queue;
  // Retransmissions may land past the last scheduled big-round (they still
  // matter: tag-T messages are consumed by on_finish after the loop); the
  // horizon grows to cover them.
  std::uint32_t horizon = num_big_rounds;

  // --- Worker pool and per-worker staging. ---
  const std::uint32_t num_workers = std::max<std::uint32_t>(1, cfg_.num_threads);
  if (num_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  std::vector<WorkerState> workers(num_workers);
  for (auto& ws : workers) ws.slot_used.assign(graph_.max_degree(), 0);
  std::uint64_t rounds_parallel = 0;
  std::uint64_t rounds_serial = 0;

  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "executor", "run");
  if (telemetry != nullptr) {
    telemetry->add_counter("executor.events_executed", total_events);
    telemetry->add_counter("executor.big_rounds", num_big_rounds);
    run_span.arg("algorithms", static_cast<double>(k));
    run_span.arg("big_rounds", static_cast<double>(num_big_rounds));
    run_span.arg("events", static_cast<double>(total_events));
  }

  // The per-event body shared by the serial and parallel paths. Everything it
  // mutates is either owned by the event's (alg, node) -- programs, rngs,
  // progress, the consumed inbox bucket -- or by the executing shard's
  // WorkerState, so shards are data-race free.
  auto execute_event = [&](const ExecEvent& ev, WorkerState& ws, std::uint32_t t) {
    if (faults != nullptr && faults->node_crashed(ev.node, t)) {
      // Crash-stop: the node executes nothing from its crash round on. Its
      // progress freezes, so it is never marked completed.
      ++ws.skipped;
      return;
    }
    auto& prog_progress = progress[ev.alg][ev.node];
    DASCHED_CHECK_EQ(prog_progress + 1, ev.vround,
                     "executor: out-of-order virtual round");
    prog_progress = ev.vround;

    std::vector<VMessage>* in_bucket = nullptr;
    std::span<const VMessage> in;
    if (ev.vround >= 2) {
      in_bucket = &inbox[ev.alg][std::size_t{ev.node} * schedule.rounds(ev.alg) +
                                 (ev.vround - 2)];
      in = *in_bucket;
    }
    ws.delivered += in.size();

    const auto nbrs = graph_.neighbors(ev.node);
    const auto directed = graph_.directed_ids(ev.node);
    ws.sends.clear();
    SendSink sink{nbrs, cfg_.max_payload_words, ws.slot_used.data(), &ws.sends};
    VirtualContext ctx;
    ctx.self_ = ev.node;
    ctx.num_nodes_ = n;
    ctx.vround_ = ev.vround;
    ctx.inbox_ = in;
    ctx.neighbors_ = nbrs;
    ctx.send_fn_ = &SendSink::send;
    ctx.sink_ = &sink;
    ctx.rng_ = &rngs[ev.alg][ev.node];

    programs[ev.alg][ev.node]->on_round(ctx);

    for (auto& [slot, payload] : ws.sends) {
      ws.slot_used[slot] = 0;
      ws.staged.push_back({ev.alg, ev.vround, nbrs[slot].neighbor, directed[slot],
                           VMessage{ev.node, std::move(payload)}});
    }
    if (in_bucket != nullptr) in_bucket->clear();
  };

  // --- Main loop over big-rounds. Rounds >= num_big_rounds exist only when
  // retransmissions extended the horizon; they have no scheduled events. ---
  std::uint64_t delivered_before = 0;
  for (std::uint32_t t = 0; t < horizon; ++t) {
    const std::size_t begin = t < num_big_rounds ? bucket_start[t] : events.size();
    const std::size_t end = t < num_big_rounds ? bucket_start[t + 1] : events.size();
    const std::size_t bucket_size = end - begin;
    // Telemetry is batched per big-round: the per-event/per-message path
    // below only bumps locals, so a null sink costs nothing and a live sink
    // costs O(1) virtual calls per big-round (plus one histogram sample per
    // touched edge).
    const std::uint64_t violations_before = result.causality_violations;
    TimedSpan round_span(telemetry, "executor", "big_round");

    // --- Execute the bucket: statically sharded when large enough. ---
    std::uint32_t shards = 1;
    if (num_workers > 1 && bucket_size >= 2 * kMinEventsPerShard) {
      shards = static_cast<std::uint32_t>(std::min<std::size_t>(
          num_workers, bucket_size / kMinEventsPerShard));
    }
    if (shards <= 1) {
      for (std::size_t i = begin; i < end; ++i) {
        execute_event(events[i], workers[0], t);
      }
      ++rounds_serial;
    } else {
      pool_->run(shards, [&](std::uint32_t s) {
        const std::size_t lo = begin + bucket_size * s / shards;
        const std::size_t hi = begin + bucket_size * (s + 1) / shards;
        auto& ws = workers[s];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], ws, t);
      });
      ++rounds_parallel;
    }

    // --- Barrier: deliver staged messages in shard order (this reproduces
    // the serial staging order exactly), account loads, detect violations. ---
    auto account_edge = [&](std::uint32_t d) {
      if (edge_count[d] == 0) touched_edges.push_back(d);
      ++edge_count[d];
    };
    auto deliver = [&](std::uint32_t alg, std::uint32_t tag, NodeId to,
                       VMessage msg) {
      // The consumer executes vround tag+1 (or on_finish if tag == T, which
      // always happens after the loop and so cannot be violated).
      const auto consumer_slots = schedule.row(alg, to);
      if (tag < consumer_slots.size()) {
        const std::uint32_t consumer_time = consumer_slots[tag];  // vround tag+1
        if (consumer_time != kNeverScheduled && consumer_time <= t) {
          ++result.causality_violations;
        }
      }
      inbox[alg][std::size_t{to} * schedule.rounds(alg) + (tag - 1)]
          .push_back(std::move(msg));
    };
    // Faulty-path transmission: one bandwidth slot in this big-round, fate
    // from the injector (pure in the message identity and t), retransmission
    // bookkeeping for the reliable layer.
    auto transmit_faulty = [&](StagedMessage& sm, std::uint32_t attempt) {
      auto& fs = result.faults;
      ++fs.attempts;
      account_edge(sm.directed_edge);
      ++result.total_messages;
      bool dropped = false;
      if (faults->link_down(sm.directed_edge / 2, t)) {
        ++fs.dropped_outage;
        dropped = true;
      } else if (faults->node_crashed(sm.to, t)) {
        // A crashed receiver neither stores nor acks the message.
        ++fs.dropped_crash;
        dropped = true;
      } else if (faults->drop(sm.alg, sm.directed_edge, sm.tag, attempt)) {
        ++fs.dropped_random;
        dropped = true;
      }
      if (!dropped) {
        ++fs.delivered;
        if (faults->duplicate(sm.alg, sm.directed_edge, sm.tag, attempt)) {
          if (max_retries > 0) {
            // The reliable layer's per-edge bookkeeping recognizes the copy.
            ++fs.duplicates_suppressed;
          } else {
            ++fs.duplicated;
            ++fs.delivered;
            deliver(sm.alg, sm.tag, sm.to, VMessage{sm.msg.from, sm.msg.payload});
          }
        }
        deliver(sm.alg, sm.tag, sm.to, std::move(sm.msg));
        return;
      }
      // Dropped. Retransmit with exponential backoff (gap 2^attempt after
      // failed attempt `attempt`) while the sender is alive and budget lasts.
      if (attempt < max_retries) {
        const std::uint32_t retry_round = t + (1u << attempt);
        if (!faults->node_crashed(sm.msg.from, retry_round)) {
          ++fs.retransmissions;
          if (retry_round >= horizon) {
            horizon = retry_round + 1;
            result.max_load_per_big_round.resize(horizon, 0);
          }
          retry_queue.schedule(retry_round, std::move(sm), attempt + 1);
          return;
        }
      }
      ++fs.lost;
    };

    std::uint64_t messages_this_round = 0;
    // Retransmissions due this round go first: they are older than this
    // round's fresh sends, and their queue order is deterministic (scheduled
    // at earlier barriers in shard-merged order).
    if (max_retries > 0) {
      auto due = retry_queue.take(t);
      messages_this_round += due.size();
      for (auto& entry : due) transmit_faulty(entry.msg, entry.attempt);
    }
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      auto& staged = workers[w].staged;
      messages_this_round += staged.size();
      for (auto& sm : staged) {
        if (cfg_.record_patterns) {
          // Patterns describe what the algorithm sent; retries are excluded.
          result.patterns[sm.alg].record(sm.tag, sm.directed_edge);
        }
        if (faults == nullptr) {
          account_edge(sm.directed_edge);
          ++result.total_messages;
          deliver(sm.alg, sm.tag, sm.to, std::move(sm.msg));
        } else {
          transmit_faulty(sm, 0);
        }
      }
      staged.clear();
    }

    std::uint32_t max_load = 0;
    for (const auto d : touched_edges) {
      max_load = std::max(max_load, edge_count[d]);
      if (cfg_.enforce_unit_capacity) {
        DASCHED_CHECK_LE(edge_count[d], 1u,
                         "CONGEST bandwidth violated: >1 message per edge per round");
      }
      if (telemetry != nullptr) {
        telemetry->record_value("executor.edge_load", edge_count[d]);
      }
      edge_count[d] = 0;
    }
    touched_edges.clear();
    result.max_load_per_big_round[t] = max_load;
    result.max_edge_load = std::max(result.max_edge_load, max_load);

    if (telemetry != nullptr) {
      std::uint64_t delivered_now = 0;
      for (const auto& ws : workers) delivered_now += ws.delivered;
      telemetry->add_counter("executor.messages_sent", messages_this_round);
      telemetry->add_counter("executor.messages_delivered",
                             delivered_now - delivered_before);
      telemetry->add_counter("executor.causality_violations",
                             result.causality_violations - violations_before);
      telemetry->record_value("executor.max_load_per_big_round", max_load);
      delivered_before = delivered_now;
      round_span.arg("t", t);
      round_span.arg("events", static_cast<double>(bucket_size));
      round_span.arg("messages", static_cast<double>(messages_this_round));
      round_span.arg("max_load", max_load);
    }
  }

  // Retransmissions may have extended the run past the scheduled horizon.
  result.num_big_rounds = horizon;
  for (const auto& ws : workers) result.faults.skipped_events += ws.skipped;

  // --- Finish and collect outputs. A crash-stopped node never runs
  // on_finish and is never marked completed, even if it crashed after its
  // last scheduled event. ---
  std::uint64_t delivered_at_finish = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    result.outputs[a].resize(n);
    result.completed[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (progress[a][v] != rounds) continue;
      if (faults != nullptr && faults->crash_round(v) < horizon) continue;
      std::span<const VMessage> in;
      if (rounds >= 1) {
        in = inbox[a][std::size_t{v} * rounds + (rounds - 1)];  // tag == T
      }
      delivered_at_finish += in.size();
      VirtualContext ctx;
      ctx.self_ = v;
      ctx.num_nodes_ = n;
      ctx.vround_ = rounds + 1;
      ctx.inbox_ = in;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.send_fn_ = nullptr;
      ctx.sink_ = nullptr;
      ctx.rng_ = &rngs[a][v];
      programs[a][v]->on_finish(ctx);
      result.completed[a][v] = 1;
      result.outputs[a][v] = programs[a][v]->output();
    }
  }

  if (telemetry != nullptr) {
    telemetry->add_counter("executor.messages_delivered", delivered_at_finish);
    telemetry->set_gauge("executor.max_edge_load", result.max_edge_load);
    telemetry->set_gauge("executor.parallel.num_threads", num_workers);
    telemetry->add_counter("executor.parallel.rounds_parallel", rounds_parallel);
    telemetry->add_counter("executor.parallel.rounds_serial", rounds_serial);
    run_span.arg("total_messages", static_cast<double>(result.total_messages));
    if (faults != nullptr) {
      // fault.* names are emitted only on faulty runs, so a null injector
      // leaves the telemetry stream byte-identical to the reliable engine.
      const auto& fs = result.faults;
      // Keep big_rounds == rounds_serial + rounds_parallel when retries
      // extended the horizon past the scheduled rounds counted up front.
      telemetry->add_counter("executor.big_rounds", horizon - num_big_rounds);
      telemetry->add_counter("fault.attempts", fs.attempts);
      telemetry->add_counter("fault.delivered", fs.delivered);
      telemetry->add_counter("fault.dropped.random", fs.dropped_random);
      telemetry->add_counter("fault.dropped.outage", fs.dropped_outage);
      telemetry->add_counter("fault.dropped.crash", fs.dropped_crash);
      telemetry->add_counter("fault.duplicates.delivered", fs.duplicated);
      telemetry->add_counter("fault.duplicates.suppressed", fs.duplicates_suppressed);
      telemetry->add_counter("fault.retransmissions", fs.retransmissions);
      telemetry->add_counter("fault.lost", fs.lost);
      telemetry->add_counter("fault.skipped_events", fs.skipped_events);
      telemetry->set_gauge("fault.crashed_nodes", faults->num_crashes());
      telemetry->set_gauge("fault.retry_budget", max_retries);
    }
  }

  return result;
}

}  // namespace dasched
