#include "congest/executor.hpp"

#include <algorithm>
#include <bit>

#include "util/alloc_counter.hpp"
#include "util/check.hpp"
#include "util/fingerprint.hpp"

namespace dasched {

std::uint64_t ExecutionResult::adaptive_physical_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_big_round) {
    rounds += std::max<std::uint32_t>(1, load);
  }
  return rounds;
}

ExecutionResult::FixedPhase ExecutionResult::fixed_phase(std::uint32_t phase_len) const {
  DASCHED_CHECK_GE(phase_len, 1u);
  FixedPhase result{0, 0};
  result.physical_rounds =
      static_cast<std::uint64_t>(num_big_rounds) * phase_len;
  for (const auto load : max_load_per_big_round) {
    if (load > phase_len) ++result.overflowing_phases;
  }
  return result;
}

bool ExecutionResult::all_completed() const {
  for (const auto& per_alg : completed) {
    for (const auto c : per_alg) {
      if (!c) return false;
    }
  }
  return true;
}

// The message-path structs live at namespace scope (not in an anonymous
// namespace) because ExecScratch -- declared in the header -- holds arenas of
// them; this TU is the only one that defines or uses them.

/// Staged transmission awaiting end-of-big-round delivery. Trivially
/// copyable: staging, retry queues, and delivery arenas move these as raw
/// bytes (the static_asserts below pin that property).
struct StagedMessage {
  std::uint32_t alg;
  std::uint32_t tag;  // sender's virtual round
  NodeId to;
  std::uint32_t directed_edge;
  VMessage msg;
};

/// One scheduled execution event.
struct ExecEvent {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

/// A delivered message parked until the big-round in which its consumer
/// executes (or until on_finish for tag == T messages).
struct PendingMessage {
  std::uint32_t alg;
  NodeId to;
  VMessage msg;
};

static_assert(std::is_trivially_copyable_v<StagedMessage>);
static_assert(std::is_trivially_copyable_v<ExecEvent>);
static_assert(std::is_trivially_copyable_v<PendingMessage>);

/// One owner-worker's parked deliveries bound to a future big-round: the
/// consumer-slot lane and the message lane kept parallel (SoA), so the gather
/// histogram at that round streams a dense u32 lane and only the final
/// scatter moves 56-byte VMessages.
struct PendingSeg {
  std::vector<std::uint32_t> slot;  // perf-ok: recycled via the owner's free list
  std::vector<VMessage> msg;        // perf-ok: recycled via the owner's free list
};

/// Per-worker staging plus reusable scratch. Within one big-round every event
/// touches only its own (alg, node) state, so shards race only if they shared
/// scratch -- they don't; and because each shard appends to its own `staged`
/// and shards are contiguous slices of the bucket, concatenating the buffers
/// in shard order reproduces the serial staging order bit for bit.
struct WorkerState {
  std::vector<StagedMessage> staged;  // perf-ok: cleared per round, capacity retained
  // SoA lanes parallel to `staged`, filled at staging time (inside the
  // parallel execution phase, where routing lookups are free): the directed
  // edge and the consumer-side coordinates each message binds to at the
  // barrier. The barrier's histogram and routing passes stream these dense
  // u32 lanes instead of striding through 72-byte StagedMessage records.
  std::vector<std::uint32_t> staged_edge;   // perf-ok: lane of `staged`
  std::vector<std::uint32_t> staged_round;  // perf-ok: consumer big-round, or kFinishDest/kNeverDest
  std::vector<std::uint32_t> staged_slot;   // perf-ok: consumer's slot in its round's bucket
  std::vector<std::pair<std::uint32_t, Payload>> sends;  // perf-ok: per-event scratch, reserved to max_degree
  std::vector<std::uint8_t> slot_used;  // perf-ok: size max_degree, zeroed once
  // --- Tile ownership (the tiled delivery barrier, docs/PERFORMANCE.md).
  // Each worker statically owns a contiguous range of consumer tiles per
  // round; everything below is written only by its owner during parallel
  // phases. The serial barrier writes the same structures owner-correctly,
  // so their contents are bit-identical across thread counts. ---
  std::vector<std::uint32_t> pend_round;  // perf-ok: big-round -> own seg index or kNoBucket
  std::vector<PendingSeg> pend_pool;      // perf-ok: recycled via pend_free
  std::vector<std::uint32_t> pend_free;   // perf-ok: drained-seg free list
  std::vector<std::uint32_t> touched;     // perf-ok: touched edges of this worker's edge range
  std::uint32_t max_load_partial = 0;  // max edge load over this worker's edge range
  std::uint64_t violations = 0;  // causality violations counted at the parallel barrier (worker 0)
  std::uint64_t delivered = 0;  // cumulative messages consumed by this worker
  std::uint64_t skipped = 0;    // events skipped because the node crash-stopped
};

namespace {

/// Per-event send collector. One binary search over the (sorted) adjacency
/// validates the neighbor and yields its adjacency slot; the per-slot bitmap
/// flags duplicate sends in O(1); the caller resolves the directed edge id
/// from the slot with a single indexed load -- no find_edge and no linear
/// duplicate scan anywhere on the send path.
struct SendSink {
  std::span<const HalfEdge> neighbors;
  std::uint32_t max_payload_words;
  std::uint8_t* slot_used;  // worker scratch sized max_degree, all zero between events
  std::vector<std::pair<std::uint32_t, Payload>>* sends;  // borrowed worker scratch

  static void send(void* raw, NodeId neighbor, Payload payload) {
    auto* sink = static_cast<SendSink*>(raw);
    const auto nbrs = sink->neighbors;
    const auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), neighbor,
        [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
    DASCHED_CHECK_MSG(it != nbrs.end() && it->neighbor == neighbor,
                      "send to non-neighbor");
    DASCHED_CHECK_MSG(payload.size() <= sink->max_payload_words,
                      "message exceeds CONGEST word budget");
    const auto slot = static_cast<std::uint32_t>(it - nbrs.begin());
    DASCHED_CHECK_MSG(!sink->slot_used[slot],
                      "two messages to one neighbor in one round");
    sink->slot_used[slot] = 1;
    sink->sends->emplace_back(slot, payload);
  }
};

/// Minimum events per shard before a big-round is farmed out to the pool:
/// below this, waking the workers costs more than the bucket. The cutoff is
/// invisible in results -- serial and parallel execution are bit-identical.
constexpr std::size_t kMinEventsPerShard = 16;

constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

/// staged_round sentinels. kFinishDest marks tag == T messages (consumed by
/// on_finish after the loop); kNeverDest marks messages whose consumer is
/// never scheduled (counted nowhere, dropped). Real destinations are
/// big-rounds < num_big_rounds, far below both. `dest >= kNeverDest` tests
/// for either sentinel in one compare.
constexpr std::uint32_t kNeverDest = ~std::uint32_t{0} - 1;
constexpr std::uint32_t kFinishDest = ~std::uint32_t{0};

/// Minimum staged messages in a big-round before the delivery barrier itself
/// runs tiled-parallel; below this the serial barrier wins (one pool dispatch
/// costs two condition-variable sweeps). Invisible in results: the parallel
/// barrier reproduces the serial routing bit for bit.
constexpr std::uint64_t kMinMessagesParallelBarrier = 256;

}  // namespace

/// Everything the engine reuses across big-rounds and runs. First run of a
/// workload grows each buffer to its high-water mark; from then on the
/// message path performs no heap allocation (ExecutionResult::hot_path_allocs
/// measures exactly this window).
struct ExecScratch {
  // perf-ok: all members below are arenas/scratch -- sized once per run (or
  // grown to a high-water mark during warm-up) and recycled, never allocated
  // per message.

  // --- Schedule flattening (rebuilt per run, capacity retained). ---
  std::vector<ExecEvent> events;          // perf-ok: per-run arena
  std::vector<std::size_t> bucket_start;  // perf-ok: CSR offsets per big-round
  std::vector<std::size_t> bucket_cursor;  // perf-ok: counting-sort scratch

  // --- Worker staging (persistent; slot_used zeroed once at creation and
  // kept all-zero between events by the senders themselves). ---
  std::vector<WorkerState> workers;  // perf-ok: persistent across runs
  std::size_t staged_high_water = 0;  // max staged per worker per big-round

  // --- Tiled delivery barrier (docs/PERFORMANCE.md). Pending deliveries
  // live in per-worker PendingSegs keyed by the consumer's big-round (see
  // WorkerState); the lanes below are the shared, statically-partitioned
  // coordinate system the owners operate in.
  //
  // slot_of is the lane parallel to ScheduleTable::flat(): for every
  // scheduled (alg, node, vround) slot, that event's index within its
  // big-round bucket, filled during the counting sort. It is never reset:
  // any entry the barrier reads belongs to a scheduled slot, which was
  // freshly written this run.
  //
  // slot_bound is the static tile-ownership table, num_big_rounds rows of
  // (num_workers + 1) consumer-slot boundaries: worker w owns slots
  // [row[w], row[w + 1]) of round t's bucket -- whole tiles, 64-event
  // aligned so one inbox_present word never spans two owners. ---
  std::vector<std::uint32_t> slot_of;      // perf-ok: lane of schedule.flat(), rebuilt per run
  std::vector<std::uint32_t> slot_bound;   // perf-ok: tile ownership, rebuilt per run
  std::vector<std::uint64_t> inbox_present;  // perf-ok: 1 bit per event of the bucket

  // --- Per-big-round CSR inbox arena: this round's consumable messages,
  // counting-sorted into one contiguous slice per event. ---
  std::vector<VMessage> round_arena;        // perf-ok: reused every big-round
  std::vector<std::uint32_t> inbox_offset;  // perf-ok: per event in bucket, size + 1
  std::vector<std::uint32_t> inbox_cursor;  // perf-ok: counting-sort scratch

  // --- tag == T messages, consumed by on_finish after the loop. ---
  std::vector<PendingMessage> finish_pending;  // perf-ok: appended across the run
  std::vector<VMessage> finish_arena;      // perf-ok: sorted once after the loop
  std::vector<std::size_t> finish_offset;  // perf-ok: per (alg, node), size k*n + 1

  // --- Edge-load accounting (self-zeroing between rounds). ---
  std::vector<std::uint32_t> edge_count;     // perf-ok: zeroed via touched_edges
  std::vector<std::uint32_t> touched_edges;  // perf-ok: reserved to num_directed_edges

  // --- Reliable-delivery drain buffer (faulty runs only). ---
  std::vector<RetryQueue<StagedMessage>::Entry> retry_due;  // perf-ok: drain_into reuses capacity
};

Executor::Executor(const Graph& g, ExecConfig cfg)
    : graph_(g), cfg_(cfg), scratch_(std::make_unique<ExecScratch>()) {
  DASCHED_CHECK_LE(cfg_.max_payload_words, InlinePayload::kInlineCapacity,
                   "max_payload_words exceeds the inline payload capacity; "
                   "recompile with -DDASCHED_PAYLOAD_INLINE_WORDS=<n> to spill "
                   "to a larger inline message");
}

Executor::~Executor() = default;

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ExecTimeFn& exec_time) {
  return run(algorithms,
             ScheduleTable::from_fn(algorithms, graph_.num_nodes(), exec_time));
}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ScheduleTable& schedule) {
  const std::size_t k = algorithms.size();
  const NodeId n = graph_.num_nodes();
  DASCHED_CHECK_EQ(schedule.num_algorithms(), k,
                   "schedule table does not match the problem dimensions");
  DASCHED_CHECK_EQ(schedule.num_nodes(), n,
                   "schedule table does not match the problem dimensions");

  // --- Admission gate: consulted once, before any event executes. A null
  // gate costs nothing; a rejection is a hard contract failure. ---
  if (cfg_.admission != nullptr && !cfg_.admission->admit(algorithms, schedule)) {
    // Post-mortem before aborting: with a recorder attached the rejection
    // leaves a dump (rings from any previous run of this recorder, or empty).
    if (cfg_.recorder != nullptr) cfg_.recorder->dump_on("admission_rejected");
    DASCHED_CHECK_MSG(false, "schedule rejected by the admission gate");
  }

  ExecScratch& scratch = *scratch_;

  // --- One pass over the schedule: validate (gap-free prefix, strictly
  // increasing big-rounds), count events per big-round, and record
  // max_big_round together. bucket_start[t + 1] accumulates the bucket sizes
  // and is prefix-summed into CSR offsets below. ---
  std::uint32_t max_big_round = 0;
  std::uint64_t total_events = 0;
  auto& bucket_start = scratch.bucket_start;
  bucket_start.clear();
  for (std::size_t a = 0; a < k; ++a) {
    DASCHED_CHECK_EQ(schedule.rounds(a), algorithms[a]->rounds(),
                     "schedule table does not match the algorithm round counts");
    for (NodeId v = 0; v < n; ++v) {
      const auto slots = schedule.row(a, v);
      std::uint32_t prev = 0;
      bool ended = false;
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        const std::uint32_t t = slots[r - 1];
        if (t == kNeverScheduled) {
          ended = true;
          continue;
        }
        DASCHED_CHECK_MSG(!ended, "schedule has a gap: round scheduled after a skipped one");
        DASCHED_CHECK_MSG(r == 1 || t > prev,
                          "schedule must be strictly increasing per (alg, node)");
        prev = t;
        max_big_round = std::max(max_big_round, t);
        if (std::size_t{t} + 2 > bucket_start.size()) bucket_start.resize(std::size_t{t} + 2, 0);
        ++bucket_start[std::size_t{t} + 1];
        ++total_events;
      }
    }
  }

  const std::uint32_t num_big_rounds = total_events == 0 ? 0 : max_big_round + 1;
  bucket_start.resize(std::size_t{num_big_rounds} + 1, 0);
  std::size_t max_bucket_size = 0;
  for (std::uint32_t t = 1; t <= num_big_rounds; ++t) {
    max_bucket_size = std::max(max_bucket_size, bucket_start[t]);
    bucket_start[t] += bucket_start[t - 1];
  }

  // --- Bucket events by big-round: one flat array plus the CSR offsets. The
  // counting sort preserves (alg, node, round) order within each bucket,
  // which is the canonical serial execution order. The same pass fills the
  // slot_of lane: each scheduled slot's event index within its bucket, i.e.
  // the consumer-side coordinate every staged message will carry. ---
  auto& events = scratch.events;
  events.resize(total_events);
  if (scratch.slot_of.size() < schedule.flat_size()) {
    scratch.slot_of.resize(schedule.flat_size());
  }
  {
    auto& cursor = scratch.bucket_cursor;
    cursor.assign(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t a = 0; a < k; ++a) {
      for (NodeId v = 0; v < n; ++v) {
        const auto slots = schedule.row(a, v);
        for (std::uint32_t r = 1; r <= slots.size(); ++r) {
          const std::uint32_t t = slots[r - 1];
          if (t != kNeverScheduled) {
            scratch.slot_of[schedule.slot_index(a, v, r)] =
                static_cast<std::uint32_t>(cursor[t] - bucket_start[t]);
            events[cursor[t]++] = {static_cast<std::uint32_t>(a), v, r};
          }
        }
      }
    }
  }

  // --- Per (alg, node) state. ---
  std::vector<std::vector<std::unique_ptr<NodeProgram>>> programs(k);
  std::vector<std::vector<Rng>> rngs(k);
  std::vector<std::vector<std::uint32_t>> progress(k);  // last executed vround
  for (std::size_t a = 0; a < k; ++a) {
    programs[a].reserve(n);
    rngs[a].reserve(n);
    progress[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      programs[a].push_back(algorithms[a]->make_program(v));
      rngs[a].emplace_back(seed_combine(algorithms[a]->base_seed(), v));
    }
  }

  ExecutionResult result;
  result.outputs.assign(k, {});
  result.completed.assign(k, {});
  if (cfg_.record_patterns) {
    result.patterns.assign(k, CommunicationPattern(graph_.num_directed_edges()));
  }
  result.num_big_rounds = num_big_rounds;
  result.max_load_per_big_round.assign(num_big_rounds, 0);

  // --- Size the delivery arenas (no allocation inside the loop: segs and
  // arenas below only grow to warm-up high-water marks). ---
  scratch.inbox_offset.reserve(max_bucket_size + 1);
  scratch.inbox_cursor.reserve(max_bucket_size + 1);
  scratch.inbox_present.reserve(max_bucket_size / 64 + 1);
  scratch.finish_pending.clear();
  scratch.edge_count.assign(graph_.num_directed_edges(), 0);
  scratch.touched_edges.clear();
  scratch.touched_edges.reserve(graph_.num_directed_edges());

  auto& edge_count = scratch.edge_count;
  auto& touched_edges = scratch.touched_edges;

  // --- Fault injection and reliable delivery (docs/FAULTS.md). All fault
  // decisions run at the delivery barrier below, which processes messages in
  // shard-merged (== serial) order, and are pure functions of the plan seed
  // and message identity -- so faulty runs are bit-identical across thread
  // counts. With `faults` null none of this is touched. ---
  const FaultInjector* const faults = cfg_.faults;
  const std::uint32_t max_retries = faults != nullptr ? cfg_.retry.max_retries : 0;
  RetryQueue<StagedMessage> retry_queue;
  // Retransmissions may land past the last scheduled big-round (they still
  // matter: tag-T messages are consumed by on_finish after the loop); the
  // horizon grows to cover them.
  std::uint32_t horizon = num_big_rounds;

  // --- Worker pool and per-worker staging. Workers persist across runs:
  // slot_used is zeroed once at creation (the send loop restores it to zero
  // after every event) and staged/sends keep their warmed-up capacity. ---
  const std::uint32_t num_workers = std::max<std::uint32_t>(1, cfg_.num_threads);
  if (num_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  if (scratch.workers.size() != num_workers) {
    scratch.workers.resize(num_workers);
    for (auto& ws : scratch.workers) ws.slot_used.assign(graph_.max_degree(), 0);
  }
  std::vector<WorkerState>& workers = scratch.workers;
  for (auto& ws : workers) {
    ws.delivered = 0;
    ws.skipped = 0;
    ws.max_load_partial = 0;
    ws.violations = 0;
    ws.staged.clear();
    ws.staged.reserve(scratch.staged_high_water);
    ws.staged_edge.clear();
    ws.staged_edge.reserve(scratch.staged_high_water);
    ws.staged_round.clear();
    ws.staged_round.reserve(scratch.staged_high_water);
    ws.staged_slot.clear();
    ws.staged_slot.reserve(scratch.staged_high_water);
    ws.sends.clear();
    ws.sends.reserve(graph_.max_degree());  // sends per event <= degree
    ws.pend_round.assign(std::size_t{num_big_rounds} + 1, kNoBucket);
    ws.pend_free.clear();
    for (std::uint32_t b = 0; b < ws.pend_pool.size(); ++b) {
      ws.pend_pool[b].slot.clear();
      ws.pend_pool[b].msg.clear();
      ws.pend_free.push_back(b);
    }
    ws.touched.clear();
    ws.touched.reserve(graph_.num_directed_edges() / num_workers + 1);
  }
  std::uint64_t rounds_parallel = 0;
  std::uint64_t rounds_serial = 0;
  // The tiled parallel barrier engages only on unobserved clean runs: every
  // observer (telemetry, profiler, recorder, patterns) and the fault layer
  // is specified in serial shard-merged delivery order, which the serial
  // barrier provides directly. Results are bit-identical either way; only
  // who does the routing differs.
  const bool barrier_observed = cfg_.faults != nullptr ||
                                cfg_.telemetry != nullptr ||
                                cfg_.recorder != nullptr ||
                                cfg_.profiler != nullptr || cfg_.record_patterns;

  // --- Tile geometry and static ownership (docs/PERFORMANCE.md). Round t's
  // bucket of B events splits into T = ceil(B / tile_events) tiles of
  // tile_events consecutive consumer slots; worker w owns the tile range
  // [ceil(w*T/W), ceil((w+1)*T/W)), recorded as consumer-slot boundaries.
  // Tile boundaries are multiples of tile_events (itself a multiple of 64),
  // so owners never share an inbox_present word; the last non-empty range is
  // clamped to B and absorbs the ragged tail. ---
  const std::uint32_t tile_events = tile_events_for_bytes(cfg_.tile_bytes);
  auto& slot_bound = scratch.slot_bound;
  slot_bound.assign(std::size_t{num_big_rounds} * (num_workers + 1), 0);
  for (std::uint32_t t = 0; t < num_big_rounds; ++t) {
    const std::size_t bsize = bucket_start[t + 1] - bucket_start[t];
    const std::size_t tiles = (bsize + tile_events - 1) / tile_events;
    auto* row = slot_bound.data() + std::size_t{t} * (num_workers + 1);
    for (std::uint32_t w = 0; w <= num_workers; ++w) {
      const std::size_t lo_tile =
          (std::size_t{w} * tiles + num_workers - 1) / num_workers;
      row[w] = static_cast<std::uint32_t>(std::min(bsize, lo_tile * tile_events));
    }
  }
  // Owner of a consumer slot: the inverse of the tile ranges above
  // (w = floor(tile * W / T) is exactly the w with lo_tile(w) <= tile <
  // lo_tile(w + 1)).
  auto owner_of = [&](std::uint32_t dest, std::uint32_t slot) -> std::uint32_t {
    if (num_workers == 1) return 0;
    const std::size_t bsize = bucket_start[dest + 1] - bucket_start[dest];
    const std::size_t tiles = (bsize + tile_events - 1) / tile_events;
    return static_cast<std::uint32_t>(std::size_t{slot / tile_events} *
                                      num_workers / tiles);
  };
  const auto sched_flat = schedule.flat();

  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "executor", "run");
  if (telemetry != nullptr) {
    telemetry->add_counter("executor.events_executed", total_events);
    telemetry->add_counter("executor.big_rounds", num_big_rounds);
    run_span.arg("algorithms", static_cast<double>(k));
    run_span.arg("big_rounds", static_cast<double>(num_big_rounds));
    run_span.arg("events", static_cast<double>(total_events));
  }

  // --- Congestion profiler + flight recorder (docs/OBSERVABILITY.md). Both
  // are sized HERE, before the steady-state window opens: chained
  // retransmissions extend the horizon by at most sum_{i<R} 2^i = 2^R - 1
  // big-rounds, so the profiler's per-round accumulators never resize inside
  // the loop even on faulty runs. Null pointers keep the engine byte-for-byte
  // the uninstrumented executor. ---
  ExecProfiler* const profiler = cfg_.profiler;
  FlightRecorder* const recorder = cfg_.recorder;
  const std::uint32_t round_headroom =
      max_retries > 0 ? (1u << max_retries) - 1 : 0;
  if (profiler != nullptr) {
    profiler->begin_run(graph_.num_directed_edges(), num_big_rounds, num_workers,
                        round_headroom, tile_events);
  }
  if (recorder != nullptr) recorder->begin_run(num_workers);

  // Whether the current big-round has a populated CSR inbox arena; false for
  // rounds with no consumable messages, where every event's inbox is empty.
  bool round_has_inbox = false;
  std::size_t round_begin = 0;

  // The per-event body shared by the serial and parallel paths. Everything it
  // mutates is either owned by the event's (alg, node) -- programs, rngs,
  // progress -- or by the executing shard's WorkerState; the round arena and
  // its offsets are read-only during execution, so shards are data-race free.
  auto execute_event = [&](const ExecEvent& ev, std::size_t event_index,
                           WorkerState& ws, std::uint32_t t) {
    if (faults != nullptr && faults->node_crashed(ev.node, t)) {
      // Crash-stop: the node executes nothing from its crash round on. Its
      // progress freezes, so it is never marked completed.
      ++ws.skipped;
      if (recorder != nullptr) {
        recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                         FlightRecorder::Kind::kCrashSkip, t,
                         (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
      }
      return;
    }
    auto& prog_progress = progress[ev.alg][ev.node];
    DASCHED_CHECK_EQ(prog_progress + 1, ev.vround,
                     "executor: out-of-order virtual round");
    prog_progress = ev.vround;

    // This event's inbox: its contiguous slice of the round arena. Messages
    // bound to this round were counting-sorted into per-event slices at the
    // top of the round; events without messages (vround 1, quiet rounds) get
    // a zero-length slice -- detected by one presence-bitset bit instead of
    // two offset loads.
    std::span<const VMessage> in;
    if (round_has_inbox) {
      const std::size_t li = event_index - round_begin;
      if ((scratch.inbox_present[li >> 6] >> (li & 63)) & 1) {
        in = {scratch.round_arena.data() + scratch.inbox_offset[li],
              scratch.inbox_offset[li + 1] - scratch.inbox_offset[li]};
      }
    }
    ws.delivered += in.size();
    if (profiler != nullptr) {
      // Shard-local bumps (no sharing, no atomics): this worker owns its
      // shard; end_round() folds the shards in shard order at the barrier.
      auto& shard = profiler->shards()[&ws - workers.data()];
      ++shard.events;
      shard.inbox += in.size();
    }
    if (recorder != nullptr) {
      recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                       FlightRecorder::Kind::kEvent, t,
                       (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
    }

    const auto nbrs = graph_.neighbors(ev.node);
    const auto directed = graph_.directed_ids(ev.node);
    ws.sends.clear();
    SendSink sink{nbrs, cfg_.max_payload_words, ws.slot_used.data(), &ws.sends};
    VirtualContext ctx;
    ctx.self_ = ev.node;
    ctx.num_nodes_ = n;
    ctx.vround_ = ev.vround;
    ctx.inbox_ = in;
    ctx.neighbors_ = nbrs;
    ctx.send_fn_ = &SendSink::send;
    ctx.sink_ = &sink;
    ctx.rng_ = &rngs[ev.alg][ev.node];

    programs[ev.alg][ev.node]->on_round(ctx);

    const std::uint32_t alg_rounds = schedule.rounds(ev.alg);
    for (const auto& [slot, payload] : ws.sends) {
      ws.slot_used[slot] = 0;
      const NodeId to = nbrs[slot].neighbor;
      ws.staged.push_back(
          {ev.alg, ev.vround, to, directed[slot], VMessage{ev.node, payload}});
      ws.staged_edge.push_back(directed[slot]);
      // Route at staging time, inside the (possibly parallel) execution
      // phase: the consumer of a tag-r message is (alg, to, vround r + 1),
      // whose big-round and bucket slot are two indexed loads off the flat
      // schedule. The barrier then never touches the schedule at all.
      if (ev.vround == alg_rounds) {
        ws.staged_round.push_back(kFinishDest);
        ws.staged_slot.push_back(0);
      } else {
        const std::size_t si = schedule.slot_index(ev.alg, to, ev.vround + 1);
        const std::uint32_t dest = sched_flat[si];
        const bool never = dest == kNeverScheduled;
        ws.staged_round.push_back(never ? kNeverDest : dest);
        ws.staged_slot.push_back(never ? 0 : scratch.slot_of[si]);
      }
    }
  };

  // --- Steady-state window: everything from here to the end of the loop is
  // allocation-free once arenas are warm; hot_path_allocs measures it. ---
  const std::uint64_t allocs_before = alloc_count();

  // --- Main loop over big-rounds. Rounds >= num_big_rounds exist only when
  // retransmissions extended the horizon; they have no scheduled events. ---
  std::uint64_t delivered_before = 0;
  for (std::uint32_t t = 0; t < horizon; ++t) {
    const std::size_t begin = t < num_big_rounds ? bucket_start[t] : events.size();
    const std::size_t end = t < num_big_rounds ? bucket_start[t + 1] : events.size();
    const std::size_t bucket_size = end - begin;
    round_begin = begin;
    // Telemetry is batched per big-round: the per-event/per-message path
    // below only bumps locals, so a null sink costs nothing and a live sink
    // costs O(1) virtual calls per big-round (plus one histogram sample per
    // touched edge).
    const std::uint64_t violations_before = result.causality_violations;
    TimedSpan round_span(telemetry, "executor", "big_round");

    // --- Gather this round's inboxes from the owners' pending segs:
    // counting-sort them (stably -- seg order is delivery order) into one
    // contiguous arena slice per event. Every pending message's consumer
    // provably executes in this round, and its slot lies in its owner's tile
    // range, so owners histogram and scatter only slots (and 64-event
    // presence words) they own: the whole gather runs on the pool with no
    // atomics, and a serial sweep over the same segs builds the identical
    // arena. Exact per-slot offsets come from one serial prefix-sum between
    // the two phases. ---
    round_has_inbox = false;
    std::size_t pend_total = 0;
    for (auto& ws : workers) {
      if (t < ws.pend_round.size() && ws.pend_round[t] != kNoBucket) {
        pend_total += ws.pend_pool[ws.pend_round[t]].slot.size();
      }
    }
    const std::uint32_t* sb =
        t < num_big_rounds
            ? slot_bound.data() + std::size_t{t} * (num_workers + 1)
            : nullptr;
    if (pend_total > 0) {
      round_has_inbox = true;
      const std::size_t present_words = (bucket_size + 63) / 64;
      scratch.inbox_offset.resize(bucket_size + 1);
      scratch.inbox_cursor.resize(bucket_size);
      scratch.inbox_present.resize(present_words);
      scratch.round_arena.resize(pend_total);
      scratch.inbox_offset[0] = 0;
      // A worker's presence-word range: exact when its slot bounds are
      // tile-aligned; the owner whose upper bound was clamped to the bucket
      // size takes the ragged tail word (later workers' ranges are empty).
      auto word_range = [&](std::uint32_t w, std::size_t& wlo, std::size_t& whi) {
        wlo = sb[w] == bucket_size ? present_words : sb[w] / 64;
        whi = sb[w + 1] == bucket_size ? present_words : sb[w + 1] / 64;
      };
      const bool parallel_gather =
          num_workers > 1 && pend_total >= kMinMessagesParallelBarrier;
      auto histogram_body = [&](std::uint32_t w) {
        const std::uint32_t lo = sb[w];
        const std::uint32_t hi = sb[w + 1];
        if (lo < hi) {
          std::fill(scratch.inbox_offset.begin() + lo + 1,
                    scratch.inbox_offset.begin() + hi + 1, 0u);
          std::size_t wlo, whi;
          word_range(w, wlo, whi);
          std::fill(scratch.inbox_present.begin() + wlo,
                    scratch.inbox_present.begin() + whi, std::uint64_t{0});
        }
        auto& ws = workers[w];
        const std::uint32_t seg_idx =
            t < ws.pend_round.size() ? ws.pend_round[t] : kNoBucket;
        if (seg_idx == kNoBucket) return;
        for (const auto s : ws.pend_pool[seg_idx].slot) {
          ++scratch.inbox_offset[s + 1];
          scratch.inbox_present[s >> 6] |= std::uint64_t{1} << (s & 63);
        }
      };
      auto scatter_body = [&](std::uint32_t w) {
        // Cursor init touches only populated slots: countr_zero walks the
        // set bits of this owner's presence words.
        std::size_t wlo, whi;
        word_range(w, wlo, whi);
        for (std::size_t wi = wlo; wi < whi; ++wi) {
          std::uint64_t bits = scratch.inbox_present[wi];
          while (bits != 0) {
            const std::size_t s = (wi << 6) + std::countr_zero(bits);
            bits &= bits - 1;
            scratch.inbox_cursor[s] = scratch.inbox_offset[s];
          }
        }
        auto& ws = workers[w];
        const std::uint32_t seg_idx =
            t < ws.pend_round.size() ? ws.pend_round[t] : kNoBucket;
        if (seg_idx == kNoBucket) return;
        auto& seg = ws.pend_pool[seg_idx];
        for (std::size_t i = 0; i < seg.slot.size(); ++i) {
          scratch.round_arena[scratch.inbox_cursor[seg.slot[i]]++] = seg.msg[i];
        }
        seg.slot.clear();
        seg.msg.clear();
        ws.pend_free.push_back(seg_idx);
        ws.pend_round[t] = kNoBucket;
      };
      if (parallel_gather) {
        pool_->run_static_ctx(num_workers, histogram_body);
      } else {
        for (std::uint32_t w = 0; w < num_workers; ++w) histogram_body(w);
      }
      for (std::size_t s = 1; s <= bucket_size; ++s) {
        scratch.inbox_offset[s] += scratch.inbox_offset[s - 1];
      }
      if (parallel_gather) {
        pool_->run_static_ctx(num_workers, scatter_body);
      } else {
        for (std::uint32_t w = 0; w < num_workers; ++w) scatter_body(w);
      }
    }

    // --- Execute the bucket: statically sharded when large enough. When the
    // bucket has at least one tile per worker, shards are the workers' own
    // tile ranges -- the worker that scattered a tile's inboxes moments ago
    // executes that tile's events while they are still cache-resident.
    // Smaller buckets fall back to evenly-balanced shards (tile granularity
    // would idle workers); either way results are bit-identical. ---
    std::uint32_t shards = 1;
    if (num_workers > 1 && bucket_size >= 2 * kMinEventsPerShard) {
      shards = static_cast<std::uint32_t>(std::min<std::size_t>(
          num_workers, bucket_size / kMinEventsPerShard));
    }
    if (shards <= 1) {
      for (std::size_t i = begin; i < end; ++i) {
        execute_event(events[i], i, workers[0], t);
      }
      ++rounds_serial;
    } else if ((bucket_size + tile_events - 1) / tile_events >= num_workers) {
      auto shard_body = [&](std::uint32_t w) {
        const std::size_t lo = begin + sb[w];
        const std::size_t hi = begin + sb[w + 1];
        auto& ws = workers[w];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], i, ws, t);
      };
      pool_->run_static_ctx(num_workers, shard_body);
      ++rounds_parallel;
    } else {
      auto shard_body = [&](std::uint32_t s) {
        const std::size_t lo = begin + bucket_size * s / shards;
        const std::size_t hi = begin + bucket_size * (s + 1) / shards;
        auto& ws = workers[s];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], i, ws, t);
      };
      // run_ctx dispatches through one reference capture, so the pool's
      // std::function stays in its small-object buffer: no allocation.
      pool_->run_ctx(shards, shard_body);
      ++rounds_parallel;
    }

    // --- Barrier: deliver staged messages in shard order (this reproduces
    // the serial staging order exactly), account loads, detect violations. ---
    auto account_edge = [&](std::uint32_t d) {
      if (edge_count[d] == 0) touched_edges.push_back(d);
      ++edge_count[d];
    };
    // Bind each delivered message to the big-round in which its consumer
    // executes. Messages whose consumer already ran (a causality violation)
    // or is never scheduled would sit unread in any inbox; they are counted
    // and dropped, which is observationally identical. tag == T messages are
    // consumed by on_finish after the loop and so can never be violated.
    auto acquire_seg = [&](WorkerState& ow, std::uint32_t dest) -> PendingSeg& {
      std::uint32_t idx = ow.pend_round[dest];
      if (idx == kNoBucket) {
        if (!ow.pend_free.empty()) {
          idx = ow.pend_free.back();
          ow.pend_free.pop_back();
        } else {
          idx = static_cast<std::uint32_t>(ow.pend_pool.size());
          ow.pend_pool.emplace_back();
        }
        ow.pend_round[dest] = idx;
      }
      return ow.pend_pool[idx];
    };
    // Serial routing of one message by its precomputed destination. Parked
    // messages go to the seg of the worker that OWNS the consumer's tile --
    // not the worker that staged them -- so the serial barrier builds exactly
    // the per-owner structure the parallel barrier builds, and gathers see
    // one seg order regardless of thread count.
    auto route_one = [&](std::uint32_t dest, std::uint32_t slot,
                         std::uint32_t alg, NodeId to, const VMessage& msg) {
      if (dest == kFinishDest) {
        scratch.finish_pending.push_back({alg, to, msg});
        return;
      }
      if (dest == kNeverDest) return;  // consumer never runs
      if (dest <= t) {
        ++result.causality_violations;
        return;
      }
      auto& seg = acquire_seg(workers[owner_of(dest, slot)], dest);
      seg.slot.push_back(slot);
      seg.msg.push_back(msg);
    };
    // Destination lookup for messages without precomputed lanes (retries on
    // the faulty path re-enter the barrier from the retry queue).
    auto deliver = [&](std::uint32_t alg, std::uint32_t tag, NodeId to,
                       const VMessage& msg) {
      if (tag == schedule.rounds(alg)) {
        route_one(kFinishDest, 0, alg, to, msg);
        return;
      }
      const std::size_t si = schedule.slot_index(alg, to, tag + 1);
      const std::uint32_t dest = sched_flat[si];
      const bool never = dest == kNeverScheduled;
      route_one(never ? kNeverDest : dest, never ? 0 : scratch.slot_of[si], alg,
                to, msg);
    };
    // Faulty-path transmission: one bandwidth slot in this big-round, fate
    // from the injector (pure in the message identity and t), retransmission
    // bookkeeping for the reliable layer.
    auto transmit_faulty = [&](const StagedMessage& sm, std::uint32_t attempt) {
      auto& fs = result.faults;
      ++fs.attempts;
      account_edge(sm.directed_edge);
      ++result.total_messages;
      // Flight-recorder fate entries go to the barrier ring (index
      // num_workers): fates are decided here, serially, in shard-merged order.
      const std::uint64_t fr_key = (std::uint64_t{sm.alg} << 32) | sm.tag;
      bool dropped = false;
      if (faults->link_down(sm.directed_edge / 2, t)) {
        ++fs.dropped_outage;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropOutage, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->node_crashed(sm.to, t)) {
        // A crashed receiver neither stores nor acks the message.
        ++fs.dropped_crash;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropCrash, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->drop(sm.alg, sm.directed_edge, sm.tag, attempt)) {
        ++fs.dropped_random;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropRandom, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      }
      if (!dropped) {
        ++fs.delivered;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                           fr_key, sm.directed_edge);
        }
        if (faults->duplicate(sm.alg, sm.directed_edge, sm.tag, attempt)) {
          if (max_retries > 0) {
            // The reliable layer's per-edge bookkeeping recognizes the copy.
            ++fs.duplicates_suppressed;
          } else {
            ++fs.duplicated;
            ++fs.delivered;
            if (recorder != nullptr) {
              recorder->record(num_workers, FlightRecorder::Kind::kDuplicate, t,
                               fr_key, sm.directed_edge);
            }
            deliver(sm.alg, sm.tag, sm.to, sm.msg);
          }
        }
        deliver(sm.alg, sm.tag, sm.to, sm.msg);
        return;
      }
      // Dropped. Retransmit with exponential backoff (gap 2^attempt after
      // failed attempt `attempt`) while the sender is alive and budget lasts.
      if (attempt < max_retries) {
        const std::uint32_t retry_round = t + (1u << attempt);
        if (!faults->node_crashed(sm.msg.from, retry_round)) {
          ++fs.retransmissions;
          if (recorder != nullptr) {
            recorder->record(num_workers, FlightRecorder::Kind::kRetry, t,
                             (std::uint64_t{attempt + 1} << 32) | sm.tag,
                             sm.directed_edge);
          }
          if (retry_round >= horizon) {
            horizon = retry_round + 1;
            result.max_load_per_big_round.resize(horizon, 0);
          }
          retry_queue.schedule(retry_round, sm, attempt + 1);
          return;
        }
      }
      ++fs.lost;
      if (recorder != nullptr) {
        recorder->record(num_workers, FlightRecorder::Kind::kLost, t, fr_key,
                         sm.directed_edge);
      }
    };

    std::uint64_t messages_this_round = 0;
    std::uint64_t retries_this_round = 0;
    // Retransmissions due this round go first: they are older than this
    // round's fresh sends, and their queue order is deterministic (scheduled
    // at earlier barriers in shard-merged order).
    if (max_retries > 0) {
      retry_queue.drain_into(t, scratch.retry_due);
      retries_this_round = scratch.retry_due.size();
      messages_this_round += retries_this_round;
      for (const auto& entry : scratch.retry_due) {
        transmit_faulty(entry.msg, entry.attempt);
      }
    }
    std::uint64_t fresh_this_round = 0;
    for (auto& ws : workers) {
      scratch.staged_high_water =
          std::max(scratch.staged_high_water, ws.staged.size());
      fresh_this_round += ws.staged.size();
    }
    messages_this_round += fresh_this_round;

    std::uint32_t max_load = 0;
    if (barrier_observed || num_workers == 1 ||
        fresh_this_round < kMinMessagesParallelBarrier) {
      // --- Serial barrier: one thread walks the shards in order. ---
      for (std::uint32_t w = 0; w < num_workers; ++w) {
        auto& ws = workers[w];
        const std::size_t staged_count = ws.staged.size();
        for (std::size_t i = 0; i < staged_count; ++i) {
          const auto& sm = ws.staged[i];
          if (cfg_.record_patterns) {
            // Patterns describe what the algorithm sent; retries are excluded.
            result.patterns[sm.alg].record(sm.tag, sm.directed_edge);
          }
          if (faults == nullptr) {
            account_edge(sm.directed_edge);
            ++result.total_messages;
            if (recorder != nullptr) {
              recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                               (std::uint64_t{sm.alg} << 32) | sm.tag,
                               sm.directed_edge);
            }
            route_one(ws.staged_round[i], ws.staged_slot[i], sm.alg, sm.to,
                      sm.msg);
          } else {
            transmit_faulty(sm, 0);
          }
        }
        ws.staged.clear();
        ws.staged_edge.clear();
        ws.staged_round.clear();
        ws.staged_slot.clear();
      }

      for (const auto d : touched_edges) {
        max_load = std::max(max_load, edge_count[d]);
        if (cfg_.enforce_unit_capacity && edge_count[d] > 1) {
          // Post-mortem before the hard failure: the rings hold the
          // deliveries leading up to the overflow.
          if (recorder != nullptr) recorder->dump_on("unit_capacity_overflow");
          DASCHED_CHECK_LE(edge_count[d], 1u,
                           "CONGEST bandwidth violated: >1 message per edge per round");
        }
        if (profiler != nullptr) {
          // Touched cells are visited in first-touch order, which is the
          // shard-merged (== serial) staging order: deterministic across
          // thread counts.
          profiler->record_cell(t, d, edge_count[d]);
        }
        if (telemetry != nullptr) {
          telemetry->record_value("executor.edge_load", edge_count[d]);
        }
        edge_count[d] = 0;
      }
      touched_edges.clear();
    } else {
      // --- Tiled parallel barrier: one static pool dispatch, every worker
      // scanning all shards' dense destination lanes in shard order but
      // acting only on what it owns. Phase E folds edge loads over a static
      // partition of the directed-edge space (self-zeroing, like the serial
      // touched_edges sweep). Phase R appends each parked message to its
      // owner's seg -- the exact structure route_one builds serially,
      // because source order (shard-merged) and the slot -> owner map are
      // thread-count independent. Worker 0 additionally takes the tag == T
      // stream (no consumer slot) and the violation count. No atomics
      // anywhere: every written cell has exactly one owner. ---
      const std::uint64_t num_dir_edges = graph_.num_directed_edges();
      auto barrier_body = [&](std::uint32_t w) {
        auto& ow = workers[w];
        const auto elo =
            static_cast<std::uint32_t>(num_dir_edges * w / num_workers);
        const auto ehi =
            static_cast<std::uint32_t>(num_dir_edges * (w + 1) / num_workers);
        std::uint32_t local_max = 0;
        for (std::uint32_t v = 0; v < num_workers; ++v) {
          for (const auto d : workers[v].staged_edge) {
            if (d >= elo && d < ehi) {
              if (edge_count[d]++ == 0) ow.touched.push_back(d);
            }
          }
        }
        for (const auto d : ow.touched) {
          local_max = std::max(local_max, edge_count[d]);
          if (cfg_.enforce_unit_capacity && edge_count[d] > 1) {
            DASCHED_CHECK_LE(edge_count[d], 1u,
                             "CONGEST bandwidth violated: >1 message per edge per round");
          }
          edge_count[d] = 0;
        }
        ow.touched.clear();
        ow.max_load_partial = local_max;
        for (std::uint32_t v = 0; v < num_workers; ++v) {
          auto& src = workers[v];
          const std::size_t m = src.staged.size();
          for (std::size_t i = 0; i < m; ++i) {
            const std::uint32_t dest = src.staged_round[i];
            if (dest >= kNeverDest) {
              if (dest == kFinishDest && w == 0) {
                const auto& sm = src.staged[i];
                scratch.finish_pending.push_back({sm.alg, sm.to, sm.msg});
              }
              continue;
            }
            if (dest <= t) {
              if (w == 0) ++ow.violations;
              continue;
            }
            const std::uint32_t slot = src.staged_slot[i];
            const auto* bound =
                slot_bound.data() + std::size_t{dest} * (num_workers + 1);
            if (slot < bound[w] || slot >= bound[w + 1]) continue;
            auto& seg = acquire_seg(ow, dest);
            seg.slot.push_back(slot);
            seg.msg.push_back(src.staged[i].msg);
          }
        }
      };
      pool_->run_static_ctx(num_workers, barrier_body);
      for (auto& ws : workers) {
        max_load = std::max(max_load, ws.max_load_partial);
        ws.max_load_partial = 0;
        ws.staged.clear();
        ws.staged_edge.clear();
        ws.staged_round.clear();
        ws.staged_slot.clear();
      }
      result.causality_violations += workers[0].violations;
      workers[0].violations = 0;
      result.total_messages += fresh_this_round;
    }
    result.max_load_per_big_round[t] = max_load;
    result.max_edge_load = std::max(result.max_edge_load, max_load);

    if (profiler != nullptr) {
      profiler->end_round(t, messages_this_round, max_load, retries_this_round);
    }
    if (recorder != nullptr) {
      recorder->record_barrier(t, messages_this_round, max_load);
    }

    if (telemetry != nullptr) {
      std::uint64_t delivered_now = 0;
      for (const auto& ws : workers) delivered_now += ws.delivered;
      telemetry->add_counter("executor.messages_sent", messages_this_round);
      telemetry->add_counter("executor.messages_delivered",
                             delivered_now - delivered_before);
      telemetry->add_counter("executor.causality_violations",
                             result.causality_violations - violations_before);
      telemetry->record_value("executor.max_load_per_big_round", max_load);
      delivered_before = delivered_now;
      round_span.arg("t", t);
      round_span.arg("events", static_cast<double>(bucket_size));
      round_span.arg("messages", static_cast<double>(messages_this_round));
      round_span.arg("max_load", max_load);
    }
  }

  result.hot_path_allocs = alloc_count() - allocs_before;

  // Retransmissions may have extended the run past the scheduled horizon.
  result.num_big_rounds = horizon;
  for (const auto& ws : workers) result.faults.skipped_events += ws.skipped;

  if (profiler != nullptr) profiler->end_run();
  if (recorder != nullptr && faults != nullptr && faults->num_crashes() > 0) {
    // Crash-stop faults fired: leave a post-mortem of the run's last events.
    recorder->dump_on("crash_stop_faults");
  }

  // --- Finish and collect outputs. The tag == T messages accumulated in
  // finish_pending are counting-sorted (stably: delivery order is preserved
  // within each node's slice) into one arena indexed by (alg, node). A
  // crash-stopped node never runs on_finish and is never marked completed,
  // even if it crashed after its last scheduled event. ---
  auto& finish_offset = scratch.finish_offset;
  finish_offset.assign(k * n + 1, 0);
  for (const auto& pm : scratch.finish_pending) {
    ++finish_offset[std::size_t{pm.alg} * n + pm.to + 1];
  }
  for (std::size_t i = 1; i <= k * n; ++i) finish_offset[i] += finish_offset[i - 1];
  scratch.finish_arena.resize(scratch.finish_pending.size());
  {
    auto& cursor = scratch.bucket_cursor;  // reuse: events array is flattened
    cursor.assign(finish_offset.begin(), finish_offset.end() - 1);
    for (const auto& pm : scratch.finish_pending) {
      scratch.finish_arena[cursor[std::size_t{pm.alg} * n + pm.to]++] = pm.msg;
    }
  }

  std::uint64_t delivered_at_finish = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    result.outputs[a].resize(n);
    result.completed[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (progress[a][v] != rounds) continue;
      if (faults != nullptr && faults->crash_round(v) < horizon) continue;
      const std::size_t key = a * n + v;
      const std::span<const VMessage> in{
          scratch.finish_arena.data() + finish_offset[key],
          finish_offset[key + 1] - finish_offset[key]};
      delivered_at_finish += in.size();
      VirtualContext ctx;
      ctx.self_ = v;
      ctx.num_nodes_ = n;
      ctx.vround_ = rounds + 1;
      ctx.inbox_ = in;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.send_fn_ = nullptr;
      ctx.sink_ = nullptr;
      ctx.rng_ = &rngs[a][v];
      programs[a][v]->on_finish(ctx);
      result.completed[a][v] = 1;
      result.outputs[a][v] = programs[a][v]->output();
    }
  }

  if (telemetry != nullptr) {
    telemetry->add_counter("executor.messages_delivered", delivered_at_finish);
    telemetry->set_gauge("executor.max_edge_load", result.max_edge_load);
    telemetry->set_gauge("executor.parallel.num_threads", num_workers);
    telemetry->add_counter("executor.parallel.rounds_parallel", rounds_parallel);
    telemetry->add_counter("executor.parallel.rounds_serial", rounds_serial);
    run_span.arg("total_messages", static_cast<double>(result.total_messages));
    if (faults != nullptr) {
      // fault.* names are emitted only on faulty runs, so a null injector
      // leaves the telemetry stream byte-identical to the reliable engine.
      const auto& fs = result.faults;
      // Keep big_rounds == rounds_serial + rounds_parallel when retries
      // extended the horizon past the scheduled rounds counted up front.
      telemetry->add_counter("executor.big_rounds", horizon - num_big_rounds);
      telemetry->add_counter("fault.attempts", fs.attempts);
      telemetry->add_counter("fault.delivered", fs.delivered);
      telemetry->add_counter("fault.dropped.random", fs.dropped_random);
      telemetry->add_counter("fault.dropped.outage", fs.dropped_outage);
      telemetry->add_counter("fault.dropped.crash", fs.dropped_crash);
      telemetry->add_counter("fault.duplicates.delivered", fs.duplicated);
      telemetry->add_counter("fault.duplicates.suppressed", fs.duplicates_suppressed);
      telemetry->add_counter("fault.retransmissions", fs.retransmissions);
      telemetry->add_counter("fault.lost", fs.lost);
      telemetry->add_counter("fault.skipped_events", fs.skipped_events);
      telemetry->set_gauge("fault.crashed_nodes", faults->num_crashes());
      telemetry->set_gauge("fault.retry_budget", max_retries);
    }
  }

  return result;
}

std::uint64_t result_fingerprint(const ExecutionResult& result) {
  Fingerprint fp;
  for (const auto& per_alg : result.outputs) {
    for (const auto& out : per_alg) {
      fp.mix(out.size());
      for (const auto w : out) fp.mix(w);
    }
  }
  for (const auto& per_alg : result.completed) {
    for (const auto c : per_alg) fp.mix(c);
  }
  for (const auto l : result.max_load_per_big_round) fp.mix(l);
  return fp.digest();
}

}  // namespace dasched
