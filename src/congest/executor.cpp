#include "congest/executor.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "util/alloc_counter.hpp"
#include "util/check.hpp"
#include "util/fingerprint.hpp"

namespace dasched {

std::uint64_t ExecutionResult::adaptive_physical_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_big_round) {
    rounds += std::max<std::uint32_t>(1, load);
  }
  return rounds;
}

ExecutionResult::FixedPhase ExecutionResult::fixed_phase(std::uint32_t phase_len) const {
  DASCHED_CHECK_GE(phase_len, 1u);
  FixedPhase result{0, 0};
  result.physical_rounds =
      static_cast<std::uint64_t>(num_big_rounds) * phase_len;
  for (const auto load : max_load_per_big_round) {
    if (load > phase_len) ++result.overflowing_phases;
  }
  return result;
}

bool ExecutionResult::all_completed() const {
  for (const auto& per_alg : completed) {
    for (const auto c : per_alg) {
      if (!c) return false;
    }
  }
  return true;
}

// The message-path structs live at namespace scope (not in an anonymous
// namespace) because ExecScratch -- declared in the header -- holds arenas of
// them; this TU is the only one that defines or uses them.
//
// Message layout (the width-dispatch layer, congest/message.hpp): the engine
// never moves an owning VMessage. A staged or delivered message is one packed
// u32 header (sender + payload length) in a header lane plus W u64 words in a
// W-strided payload lane, where W is the run width run() derived. Everything
// below that stores "a message" stores those two lanes. perf-ok:
// sizeof(VMessage) appears nowhere in this engine; lane strides come from the
// run width alone.

/// One scheduled execution event.
struct ExecEvent {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

/// Logical identity of a staged message, parallel to the staged header lane.
/// Filled only when an observer or the fault layer consumes identities
/// (patterns, flight recorder, fault injection); the clean unobserved path
/// never writes or reads it -- routing needs only the precomputed
/// staged_round/staged_slot lanes.
struct StagedMeta {
  std::uint32_t alg;
  std::uint32_t tag;  // sender's virtual round
  NodeId to;
};

/// A retransmission-path message: identity plus the compact lane record,
/// inlined at the engine's instantiation width so RetryQueue entries stay
/// trivially copyable PODs.
template <std::uint32_t W>
struct RetryMessage {
  StagedMeta meta;
  std::uint32_t directed_edge;
  std::uint32_t hdr;  // packed sender + length (congest/message.hpp)
  std::uint64_t pay[W];
};

static_assert(std::is_trivially_copyable_v<ExecEvent>);
static_assert(std::is_trivially_copyable_v<StagedMeta>);
static_assert(std::is_trivially_copyable_v<RetryMessage<1>>);
static_assert(std::is_trivially_copyable_v<RetryMessage<InlinePayload::kInlineCapacity>>);

/// A minimal growable POD lane. The staging and parked-delivery lanes below
/// append tens of millions of fixed-size records per run; std::vector's
/// iterator-range insert machinery (range length, exception paths, memmove
/// dispatch) dominates the profile at that rate. A Lane is the subset the
/// engine needs: trivially-copyable elements, amortized-doubling growth that
/// only ever happens during warm-up (steady state is allocation-free, like
/// every other arena here), and an uninitialized bulk append that compiles
/// to one fixed-size copy.
template <typename T>
struct Lane {
  static_assert(std::is_trivially_copyable_v<T>);
  std::unique_ptr<T[]> store;
  std::size_t len = 0;
  std::size_t cap = 0;

  void clear() { len = 0; }
  bool empty() const { return len == 0; }
  std::size_t size() const { return len; }
  T* data() { return store.get(); }
  const T* data() const { return store.get(); }
  T& operator[](std::size_t i) { return store[i]; }
  const T& operator[](std::size_t i) const { return store[i]; }
  T* begin() { return store.get(); }
  T* end() { return store.get() + len; }
  const T* begin() const { return store.get(); }
  const T* end() const { return store.get() + len; }
  void reserve(std::size_t n) {
    if (n > cap) regrow(n);
  }
  void push(T v) {
    if (len == cap) [[unlikely]] regrow(cap != 0 ? cap * 2 : 64);
    store[len++] = v;
  }
  /// Uninitialized append of n elements; the caller fills them.
  T* append_n(std::size_t n) {
    if (len + n > cap) [[unlikely]] {
      regrow(std::max(cap != 0 ? cap * 2 : std::size_t{64}, len + n));
    }
    T* p = store.get() + len;
    len += n;
    return p;
  }
  void regrow(std::size_t n) {
    std::unique_ptr<T[]> grown(new T[n]);
    if (len != 0) std::memcpy(grown.get(), store.get(), len * sizeof(T));
    store = std::move(grown);
    cap = n;
  }
};

/// One owner-worker's parked deliveries bound to a future big-round: the
/// consumer-slot lane, the header lane, and the W-strided payload lane kept
/// parallel (SoA), so the gather histogram at that round streams a dense u32
/// lane and only the final scatter moves payload words.
struct PendingSeg {
  Lane<std::uint32_t> slot;  // perf-ok: recycled via the owner's free list
  Lane<std::uint32_t> hdr;   // perf-ok: recycled via the owner's free list
  Lane<std::uint64_t> pay;   // perf-ok: recycled via the owner's free list
};

/// Per-worker staging plus reusable scratch. Within one big-round every event
/// touches only its own (alg, node) state, so shards race only if they shared
/// scratch -- they don't; and because each shard appends to its own staging
/// lanes and shards are contiguous slices of the bucket, concatenating the
/// lanes in shard order reproduces the serial staging order bit for bit.
struct WorkerState {
  // Compact SoA staging lanes, all parallel (entry i of each lane describes
  // staged message i). The payload lane is W-strided: message i's words live
  // at [i*W, i*W + W). staged_dest packs (consumer big-round << 32) | bucket
  // slot -- or a sentinel round (kFinishDest with the packed finish key,
  // kNeverDest) -- into one word so the send path and barrier move one lane
  // instead of two.
  Lane<std::uint32_t> staged_hdr;   // perf-ok: cleared per round, capacity retained
  Lane<std::uint64_t> staged_pay;   // perf-ok: W-strided payload lane
  Lane<StagedMeta> staged_meta;     // perf-ok: only filled for observed/faulty runs
  Lane<std::uint32_t> staged_edge;  // perf-ok: directed edge per message
  Lane<std::uint64_t> staged_dest;  // perf-ok: (round << 32) | slot per message
  // Duplicate-send detection without any clearing: slot s was used by the
  // current event iff slot_stamp[s] == event_serial. The serial is bumped
  // before every event and never reset (a u64 cannot realistically wrap), so
  // stale stamps from any earlier event, round, or run can never collide.
  std::vector<std::uint64_t> slot_stamp;  // perf-ok: size max_degree, never cleared
  std::uint64_t event_serial = 0;
  // --- Tile ownership (the tiled delivery barrier, docs/PERFORMANCE.md).
  // Each worker statically owns a contiguous range of consumer tiles per
  // round; everything below is written only by its owner during parallel
  // phases. The serial barrier writes the same structures owner-correctly,
  // so their contents are bit-identical across thread counts. ---
  std::vector<std::uint32_t> pend_round;  // perf-ok: big-round -> own seg index or kNoBucket
  std::vector<PendingSeg> pend_pool;      // perf-ok: recycled via pend_free
  std::vector<std::uint32_t> pend_free;   // perf-ok: drained-seg free list
  std::vector<std::uint32_t> touched;     // perf-ok: touched edges of this worker's edge range
  // Inbox-presence words this owner set during the current round's gather;
  // the post-execution clear walks exactly these instead of memsetting the
  // whole bitset (the bitset is all-zero outside the round window).
  std::vector<std::uint32_t> touched_words;  // perf-ok: scoped presence clears
  std::uint32_t max_load_partial = 0;  // max edge load over this worker's edge range
  std::uint64_t violations = 0;  // causality violations counted at the parallel barrier (worker 0)
  std::uint64_t delivered = 0;  // cumulative messages consumed by this worker
  std::uint64_t skipped = 0;    // events skipped because the node crash-stopped
};

namespace {

/// Minimum events per shard before a big-round is farmed out to the pool:
/// below this, waking the workers costs more than the bucket. The cutoff is
/// invisible in results -- serial and parallel execution are bit-identical.
constexpr std::size_t kMinEventsPerShard = 16;

constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

/// staged_dest round-half sentinels. kFinishDest marks tag == T messages
/// (consumed by on_finish after the loop); kNeverDest marks messages whose
/// consumer is never scheduled (counted nowhere, dropped). Real destinations
/// are big-rounds < num_big_rounds, far below both. `dest >= kNeverDest`
/// tests for either sentinel in one compare.
constexpr std::uint32_t kNeverDest = ~std::uint32_t{0} - 1;
constexpr std::uint32_t kFinishDest = ~std::uint32_t{0};

/// Minimum staged messages in a big-round before the delivery barrier itself
/// runs tiled-parallel; below this the serial barrier wins (one pool dispatch
/// costs two condition-variable sweeps). Invisible in results: the parallel
/// barrier reproduces the serial routing bit for bit.
constexpr std::uint64_t kMinMessagesParallelBarrier = 256;

/// Per-event send path, width-specialized: stages straight into the
/// executing worker's compact lanes with no intermediate send buffer. One
/// binary search over the (sorted) adjacency validates the neighbor and
/// yields its adjacency slot; the per-slot epoch stamp flags duplicate sends
/// in O(1) with no clearing; the directed edge id is one indexed load off
/// the slot; and the consumer's (big-round, bucket slot) coordinate is
/// resolved right here from the flat schedule -- the delivery barrier never
/// touches the schedule at all.
template <std::uint32_t W>
struct SendSink {
  // Per-run bindings.
  WorkerState* ws;
  const std::uint32_t* sched_flat;
  const std::uint32_t* slot_of;
  std::uint32_t max_payload_words;
  NodeId num_nodes;
  bool need_meta;
  // Per-event bindings. The consumer's flat-schedule slot for a send to node
  // v is si_base + v * si_stride (ScheduleTable row layout), hoisted here so
  // the per-send cost is one multiply-add.
  std::span<const HalfEdge> neighbors;
  const std::uint32_t* directed;  // directed edge id per adjacency slot
  std::size_t si_base;            // slot_index(alg, 0, vround + 1)
  std::size_t si_stride;          // rounds(alg)
  std::uint32_t alg;
  std::uint32_t vround;
  std::uint32_t from;       // sender id == low header bits
  bool finishing;           // vround == rounds(alg): messages go to on_finish
  std::uint32_t slot_hint;  // next adjacency slot if sends come in order

  static void send(void* raw, NodeId neighbor, const Payload& payload) {
    auto* sink = static_cast<SendSink*>(raw);
    WorkerState& ws = *sink->ws;
    const auto nbrs = sink->neighbors;
    // Nearly every program iterates ctx.neighbors() (sorted) when sending,
    // so the next send's slot is almost always the hint; the binary search
    // only runs for out-of-order senders.
    std::uint32_t slot = sink->slot_hint;
    if (slot >= nbrs.size() || nbrs[slot].neighbor != neighbor) [[unlikely]] {
      const auto it = std::lower_bound(
          nbrs.begin(), nbrs.end(), neighbor,
          [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
      DASCHED_CHECK_MSG(it != nbrs.end() && it->neighbor == neighbor,
                        "send to non-neighbor");
      slot = static_cast<std::uint32_t>(it - nbrs.begin());
    }
    sink->slot_hint = slot + 1;
    DASCHED_CHECK_MSG(payload.size() <= sink->max_payload_words,
                      "message exceeds CONGEST word budget");
    // A declared-width run sizes its lanes below the config cap; an algorithm
    // whose footprint under-declared its payload width is a contract bug, not
    // a silent truncation.
    DASCHED_CHECK_MSG(payload.size() <= W,
                      "message wider than the declared footprint payload width");
    DASCHED_CHECK_MSG(ws.slot_stamp[slot] != ws.event_serial,
                      "two messages to one neighbor in one round");
    ws.slot_stamp[slot] = ws.event_serial;
    // Compact lane staging: one packed header word plus a fixed W-word
    // payload copy (InlinePayload zero-fills its tail, so copying W words
    // never reads indeterminate bytes and the compiler emits one straight
    // vector move).
    ws.staged_hdr.push(sink->from | (payload.size() << kMsgHeaderFromBits));
    std::memcpy(ws.staged_pay.append_n(W), payload.data(),
                W * sizeof(std::uint64_t));
    if (sink->need_meta) ws.staged_meta.push({sink->alg, sink->vround, neighbor});
    ws.staged_edge.push(sink->directed[slot]);
    if (sink->finishing) {
      // tag == T: the slot half carries the packed finish key alg*n + to.
      ws.staged_dest.push(
          (std::uint64_t{kFinishDest} << 32) |
          static_cast<std::uint32_t>(std::size_t{sink->alg} * sink->num_nodes +
                                     neighbor));
    } else {
      const std::size_t si =
          sink->si_base + std::size_t{neighbor} * sink->si_stride;
      const std::uint32_t dest = sink->sched_flat[si];
      ws.staged_dest.push(dest == kNeverScheduled
                              ? std::uint64_t{kNeverDest} << 32
                              : (std::uint64_t{dest} << 32) | sink->slot_of[si]);
    }
  }
};

/// Software prefetch distance (messages ahead) on the scatter's CSR targets:
/// far enough to cover a cache miss on the arena line, near enough that the
/// line is still resident when the copy reaches it.
constexpr std::size_t kScatterPrefetchDist = 8;

inline void prefetch_for_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

/// Visited-marker bit for the in-place stable finish permutation below; the
/// finish arena is checked to stay under 2^31 messages so the bit is free.
constexpr std::uint32_t kPlaced = 0x80000000u;

}  // namespace

/// Everything the engine reuses across big-rounds and runs. First run of a
/// workload grows each buffer to its high-water mark; from then on the
/// message path performs no heap allocation (ExecutionResult::hot_path_allocs
/// measures exactly this window). All lanes are width-agnostic storage: the
/// payload lanes are raw u64 vectors whose stride is whatever run width the
/// current run_impl<W> instantiation uses, so one scratch serves runs of any
/// width.
struct ExecScratch {
  // perf-ok: all members below are arenas/scratch -- sized once per run (or
  // grown to a high-water mark during warm-up) and recycled, never allocated
  // per message.

  // --- Schedule flattening (rebuilt per run, capacity retained). ---
  std::vector<ExecEvent> events;          // perf-ok: per-run arena
  std::vector<std::size_t> bucket_start;  // perf-ok: CSR offsets per big-round
  std::vector<std::size_t> bucket_cursor;  // perf-ok: counting-sort scratch

  // --- Worker staging (persistent; slot_used zeroed once at creation and
  // kept all-zero between events by the senders themselves). ---
  std::vector<WorkerState> workers;  // perf-ok: persistent across runs
  std::size_t staged_high_water = 0;  // max staged per worker per big-round

  // --- Tiled delivery barrier (docs/PERFORMANCE.md). Pending deliveries
  // live in per-worker PendingSegs keyed by the consumer's big-round (see
  // WorkerState); the lanes below are the shared, statically-partitioned
  // coordinate system the owners operate in.
  //
  // slot_of is the lane parallel to ScheduleTable::flat(): for every
  // scheduled (alg, node, vround) slot, that event's index within its
  // big-round bucket, filled during the counting sort. It is never reset:
  // any entry the barrier reads belongs to a scheduled slot, which was
  // freshly written this run.
  //
  // slot_bound is the static tile-ownership table, num_big_rounds rows of
  // (num_workers + 1) consumer-slot boundaries: worker w owns slots
  // [row[w], row[w + 1]) of round t's bucket -- whole tiles, 64-event
  // aligned so one inbox_present word never spans two owners.
  //
  // inbox_present is maintained all-zero outside a round's gather/execute
  // window: the gather's first-touch histogram sets bits and records the
  // touched words, and the post-execution sweep clears exactly those words.
  // That invariant is what lets the per-slot count lane skip zeroing
  // entirely -- a count cell is only ever read behind a presence bit set
  // this round, and the first touch *assigns* 1 instead of incrementing. ---
  std::vector<std::uint32_t> slot_of;      // perf-ok: lane of schedule.flat(), rebuilt per run
  std::vector<std::uint32_t> slot_bound;   // perf-ok: tile ownership, rebuilt per run
  std::vector<std::uint64_t> inbox_present;  // perf-ok: 1 bit per event of the bucket

  // --- Per-big-round CSR inbox arena lanes: this round's consumable
  // messages, counting-sorted into contiguous per-event slices. ---
  std::vector<std::uint32_t> arena_hdr;     // perf-ok: reused every big-round
  std::vector<std::uint64_t> arena_pay;     // perf-ok: W-strided, reused every big-round
  std::vector<std::uint32_t> inbox_offset;  // perf-ok: per populated event slot
  std::vector<std::uint32_t> inbox_cursor;  // perf-ok: counting-sort scratch
  std::vector<std::uint32_t> inbox_count;   // perf-ok: never zeroed (presence-guarded)

  // --- tag == T messages, consumed by on_finish after the loop. Kept as
  // compact lanes keyed by the packed finish key alg*n + to (fits u32,
  // checked per run) and stably sorted IN PLACE by one cycle-following
  // permutation after the loop -- there is no second arena copy. ---
  std::vector<std::uint32_t> finish_key;   // perf-ok: appended across the run
  std::vector<std::uint32_t> finish_hdr;   // perf-ok: appended across the run
  std::vector<std::uint64_t> finish_pay;   // perf-ok: W-strided, appended across the run
  std::vector<std::uint32_t> finish_target;  // perf-ok: permutation scratch, one u32 per message
  std::vector<std::size_t> finish_offset;  // perf-ok: per (alg, node), size k*n + 1

  // --- Edge-load accounting (self-zeroing between rounds). ---
  std::vector<std::uint32_t> edge_count;     // perf-ok: zeroed via touched_edges
  std::vector<std::uint32_t> touched_edges;  // perf-ok: reserved to num_directed_edges
};

Executor::Executor(const Graph& g, ExecConfig cfg)
    : graph_(g), cfg_(cfg), scratch_(std::make_unique<ExecScratch>()) {
  DASCHED_CHECK_LE(cfg_.max_payload_words, InlinePayload::kInlineCapacity,
                   "max_payload_words exceeds the inline payload capacity; "
                   "recompile with -DDASCHED_PAYLOAD_INLINE_WORDS=<n> to spill "
                   "to a larger inline message");
  DASCHED_CHECK_GE(cfg_.max_payload_words, 1u,
                   "max_payload_words must be at least one word");
  // Reject geometry that cannot hold even one max-width message per tile --
  // tile_events_for_bytes used to silently floor such budgets to 64 events,
  // i.e. hand back 64x the requested bytes (see its contract).
  DASCHED_CHECK_MSG(cfg_.tile_bytes >= arena_message_bytes(cfg_.max_payload_words),
                    "tile_bytes smaller than one max-width arena message");
}

Executor::~Executor() = default;

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ExecTimeFn& exec_time) {
  return run(algorithms,
             ScheduleTable::from_fn(algorithms, graph_.num_nodes(), exec_time));
}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ScheduleTable& schedule) {
  // --- Derive the run width: the payload-word stride of every staging and
  // delivery lane for this run. When every admitted algorithm bounds its
  // payload via StaticFootprint::max_payload_words, the lanes shrink to the
  // largest declared width; any undeclared algorithm forces the config cap.
  // The clamp keeps the width a valid lane stride (>= 1) and never above the
  // cap the SendSink enforces. ---
  std::uint32_t width = 0;
  bool all_declared = !algorithms.empty();
  for (const auto* alg : algorithms) {
    const std::uint32_t w = alg->static_footprint().max_payload_words;
    if (w == StaticFootprint::kUndeclaredWidth) {
      all_declared = false;
      break;
    }
    width = std::max(width, w);
  }
  if (!all_declared) width = cfg_.max_payload_words;
  width = std::clamp<std::uint32_t>(width, 1, cfg_.max_payload_words);

  // Dispatch to the width-specialized engine: one instantiation per
  // supported width, selected once per run, so every per-message copy inside
  // is a fixed-size move.
  ExecutionResult out;
  bool dispatched = false;
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (void)(((I + 1 == width)
                ? (out = run_impl<static_cast<std::uint32_t>(I + 1)>(algorithms, schedule),
                   dispatched = true)
                : false) ||
           ...);
  }(std::make_index_sequence<InlinePayload::kInlineCapacity>{});
  DASCHED_CHECK_MSG(dispatched, "run width outside the inline payload capacity");
  return out;
}

template <std::uint32_t W>
ExecutionResult Executor::run_impl(std::span<const DistributedAlgorithm* const> algorithms,
                                   const ScheduleTable& schedule) {
  const std::size_t k = algorithms.size();
  const NodeId n = graph_.num_nodes();
  DASCHED_CHECK_EQ(schedule.num_algorithms(), k,
                   "schedule table does not match the problem dimensions");
  DASCHED_CHECK_EQ(schedule.num_nodes(), n,
                   "schedule table does not match the problem dimensions");
  // Packed-header capacity: the sender id must fit the header's from-field
  // (32 bits minus the length bits; congest/message.hpp).
  DASCHED_CHECK_MSG(std::uint64_t{n} <= kMaxPackedHeaderNodes,
                    "graph too large for packed 32-bit message headers");
  // Packed finish keys alg*n + to must fit u32 (see finish lanes below).
  DASCHED_CHECK_MSG(static_cast<std::uint64_t>(k) * n <= (std::uint64_t{1} << 32),
                    "k*n exceeds the packed finish-key range");

  // --- Admission gate: consulted once, before any event executes. A null
  // gate costs nothing; a rejection is a hard contract failure. ---
  if (cfg_.admission != nullptr && !cfg_.admission->admit(algorithms, schedule)) {
    // Post-mortem before aborting: with a recorder attached the rejection
    // leaves a dump (rings from any previous run of this recorder, or empty).
    if (cfg_.recorder != nullptr) cfg_.recorder->dump_on("admission_rejected");
    DASCHED_CHECK_MSG(false, "schedule rejected by the admission gate");
  }

  ExecScratch& scratch = *scratch_;

  // --- One pass over the schedule: validate (gap-free prefix, strictly
  // increasing big-rounds), count events per big-round, and record
  // max_big_round together. bucket_start[t + 1] accumulates the bucket sizes
  // and is prefix-summed into CSR offsets below. ---
  std::uint32_t max_big_round = 0;
  std::uint64_t total_events = 0;
  auto& bucket_start = scratch.bucket_start;
  bucket_start.clear();
  for (std::size_t a = 0; a < k; ++a) {
    DASCHED_CHECK_EQ(schedule.rounds(a), algorithms[a]->rounds(),
                     "schedule table does not match the algorithm round counts");
    for (NodeId v = 0; v < n; ++v) {
      const auto slots = schedule.row(a, v);
      std::uint32_t prev = 0;
      bool ended = false;
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        const std::uint32_t t = slots[r - 1];
        if (t == kNeverScheduled) {
          ended = true;
          continue;
        }
        DASCHED_CHECK_MSG(!ended, "schedule has a gap: round scheduled after a skipped one");
        DASCHED_CHECK_MSG(r == 1 || t > prev,
                          "schedule must be strictly increasing per (alg, node)");
        prev = t;
        max_big_round = std::max(max_big_round, t);
        if (std::size_t{t} + 2 > bucket_start.size()) bucket_start.resize(std::size_t{t} + 2, 0);
        ++bucket_start[std::size_t{t} + 1];
        ++total_events;
      }
    }
  }

  const std::uint32_t num_big_rounds = total_events == 0 ? 0 : max_big_round + 1;
  bucket_start.resize(std::size_t{num_big_rounds} + 1, 0);
  std::size_t max_bucket_size = 0;
  for (std::uint32_t t = 1; t <= num_big_rounds; ++t) {
    max_bucket_size = std::max(max_bucket_size, bucket_start[t]);
    bucket_start[t] += bucket_start[t - 1];
  }

  // --- Bucket events by big-round: one flat array plus the CSR offsets. The
  // counting sort preserves (alg, node, round) order within each bucket,
  // which is the canonical serial execution order. The same pass fills the
  // slot_of lane: each scheduled slot's event index within its bucket, i.e.
  // the consumer-side coordinate every staged message will carry. ---
  auto& events = scratch.events;
  events.resize(total_events);
  if (scratch.slot_of.size() < schedule.flat_size()) {
    scratch.slot_of.resize(schedule.flat_size());
  }
  {
    auto& cursor = scratch.bucket_cursor;
    cursor.assign(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t a = 0; a < k; ++a) {
      for (NodeId v = 0; v < n; ++v) {
        const auto slots = schedule.row(a, v);
        for (std::uint32_t r = 1; r <= slots.size(); ++r) {
          const std::uint32_t t = slots[r - 1];
          if (t != kNeverScheduled) {
            scratch.slot_of[schedule.slot_index(a, v, r)] =
                static_cast<std::uint32_t>(cursor[t] - bucket_start[t]);
            events[cursor[t]++] = {static_cast<std::uint32_t>(a), v, r};
          }
        }
      }
    }
  }

  // --- Per (alg, node) state. ---
  std::vector<std::vector<std::unique_ptr<NodeProgram>>> programs(k);
  std::vector<std::vector<Rng>> rngs(k);
  std::vector<std::vector<std::uint32_t>> progress(k);  // last executed vround
  for (std::size_t a = 0; a < k; ++a) {
    programs[a].reserve(n);
    rngs[a].reserve(n);
    progress[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      programs[a].push_back(algorithms[a]->make_program(v));
      rngs[a].emplace_back(seed_combine(algorithms[a]->base_seed(), v));
    }
  }

  ExecutionResult result;
  result.outputs.assign(k, {});
  result.completed.assign(k, {});
  if (cfg_.record_patterns) {
    result.patterns.assign(k, CommunicationPattern(graph_.num_directed_edges()));
  }
  result.num_big_rounds = num_big_rounds;
  result.max_load_per_big_round.assign(num_big_rounds, 0);

  // --- Size the delivery arenas (no allocation inside the loop: segs and
  // arenas below only grow to warm-up high-water marks). ---
  scratch.inbox_offset.reserve(max_bucket_size);
  scratch.inbox_cursor.reserve(max_bucket_size);
  scratch.inbox_count.reserve(max_bucket_size);
  scratch.inbox_present.reserve(max_bucket_size / 64 + 1);
  scratch.finish_key.clear();
  scratch.finish_hdr.clear();
  scratch.finish_pay.clear();
  scratch.edge_count.assign(graph_.num_directed_edges(), 0);
  scratch.touched_edges.clear();
  scratch.touched_edges.reserve(graph_.num_directed_edges());

  auto& edge_count = scratch.edge_count;
  auto& touched_edges = scratch.touched_edges;

  // --- Fault injection and reliable delivery (docs/FAULTS.md). All fault
  // decisions run at the delivery barrier below, which processes messages in
  // shard-merged (== serial) order, and are pure functions of the plan seed
  // and message identity -- so faulty runs are bit-identical across thread
  // counts. With `faults` null none of this is touched. ---
  const FaultInjector* const faults = cfg_.faults;
  const std::uint32_t max_retries = faults != nullptr ? cfg_.retry.max_retries : 0;
  RetryQueue<RetryMessage<W>> retry_queue;
  std::vector<typename RetryQueue<RetryMessage<W>>::Entry> retry_due;
  // Retransmissions may land past the last scheduled big-round (they still
  // matter: tag-T messages are consumed by on_finish after the loop); the
  // horizon grows to cover them.
  std::uint32_t horizon = num_big_rounds;

  // --- Worker pool and per-worker staging. Workers persist across runs:
  // slot_used is zeroed once at creation (the send loop restores it to zero
  // after every event) and the staging lanes keep their warmed-up capacity. ---
  const std::uint32_t num_workers = std::max<std::uint32_t>(1, cfg_.num_threads);
  if (num_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  if (scratch.workers.size() != num_workers) {
    scratch.workers.resize(num_workers);
    for (auto& ws : scratch.workers) ws.slot_stamp.assign(graph_.max_degree(), 0);
  }
  // Identity lanes are needed only when someone consumes message identities
  // at the barrier; the clean unobserved path skips the lane entirely.
  const bool need_meta = faults != nullptr || cfg_.recorder != nullptr ||
                         cfg_.record_patterns;
  std::vector<WorkerState>& workers = scratch.workers;
  for (auto& ws : workers) {
    ws.delivered = 0;
    ws.skipped = 0;
    ws.max_load_partial = 0;
    ws.violations = 0;
    ws.staged_hdr.clear();
    ws.staged_hdr.reserve(scratch.staged_high_water);
    ws.staged_pay.clear();
    ws.staged_pay.reserve(scratch.staged_high_water * W);
    ws.staged_meta.clear();
    if (need_meta) ws.staged_meta.reserve(scratch.staged_high_water);
    ws.staged_edge.clear();
    ws.staged_edge.reserve(scratch.staged_high_water);
    ws.staged_dest.clear();
    ws.staged_dest.reserve(scratch.staged_high_water);
    ws.pend_round.assign(std::size_t{num_big_rounds} + 1, kNoBucket);
    ws.pend_free.clear();
    for (std::uint32_t b = 0; b < ws.pend_pool.size(); ++b) {
      ws.pend_pool[b].slot.clear();
      ws.pend_pool[b].hdr.clear();
      ws.pend_pool[b].pay.clear();
      ws.pend_free.push_back(b);
    }
    ws.touched.clear();
    ws.touched.reserve(graph_.num_directed_edges() / num_workers + 1);
    ws.touched_words.clear();
  }
  std::uint64_t rounds_parallel = 0;
  std::uint64_t rounds_serial = 0;
  // The tiled parallel barrier engages only on unobserved clean runs: every
  // observer (telemetry, profiler, recorder, patterns) and the fault layer
  // is specified in serial shard-merged delivery order, which the serial
  // barrier provides directly. Results are bit-identical either way; only
  // who does the routing differs.
  const bool barrier_observed = cfg_.faults != nullptr ||
                                cfg_.telemetry != nullptr ||
                                cfg_.recorder != nullptr ||
                                cfg_.profiler != nullptr || cfg_.record_patterns;

  // --- Tile geometry and static ownership (docs/PERFORMANCE.md). Round t's
  // bucket of B events splits into T = ceil(B / tile_events) tiles of
  // tile_events consecutive consumer slots; worker w owns the tile range
  // [ceil(w*T/W), ceil((w+1)*T/W)), recorded as consumer-slot boundaries.
  // Tile boundaries are multiples of tile_events (itself a multiple of 64),
  // so owners never share an inbox_present word; the last non-empty range is
  // clamped to B and absorbs the ragged tail. The byte budget is spent at
  // the *run width*: narrower runs pack more events into the same tile
  // bytes. ---
  const std::uint32_t tile_events = tile_events_for_bytes(cfg_.tile_bytes, W);
  auto& slot_bound = scratch.slot_bound;
  slot_bound.assign(std::size_t{num_big_rounds} * (num_workers + 1), 0);
  for (std::uint32_t t = 0; t < num_big_rounds; ++t) {
    const std::size_t bsize = bucket_start[t + 1] - bucket_start[t];
    const std::size_t tiles = (bsize + tile_events - 1) / tile_events;
    auto* row = slot_bound.data() + std::size_t{t} * (num_workers + 1);
    for (std::uint32_t w = 0; w <= num_workers; ++w) {
      const std::size_t lo_tile =
          (std::size_t{w} * tiles + num_workers - 1) / num_workers;
      row[w] = static_cast<std::uint32_t>(std::min(bsize, lo_tile * tile_events));
    }
  }
  // Owner of a consumer slot: the inverse of the tile ranges above
  // (w = floor(tile * W / T) is exactly the w with lo_tile(w) <= tile <
  // lo_tile(w + 1)).
  auto owner_of = [&](std::uint32_t dest, std::uint32_t slot) -> std::uint32_t {
    if (num_workers == 1) return 0;
    const std::size_t bsize = bucket_start[dest + 1] - bucket_start[dest];
    const std::size_t tiles = (bsize + tile_events - 1) / tile_events;
    return static_cast<std::uint32_t>(std::size_t{slot / tile_events} *
                                      num_workers / tiles);
  };
  const auto sched_flat = schedule.flat();

  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "executor", "run");
  if (telemetry != nullptr) {
    telemetry->add_counter("executor.events_executed", total_events);
    telemetry->add_counter("executor.big_rounds", num_big_rounds);
    run_span.arg("algorithms", static_cast<double>(k));
    run_span.arg("big_rounds", static_cast<double>(num_big_rounds));
    run_span.arg("events", static_cast<double>(total_events));
  }

  // --- Congestion profiler + flight recorder (docs/OBSERVABILITY.md). Both
  // are sized HERE, before the steady-state window opens: chained
  // retransmissions extend the horizon by at most sum_{i<R} 2^i = 2^R - 1
  // big-rounds, so the profiler's per-round accumulators never resize inside
  // the loop even on faulty runs. Null pointers keep the engine byte-for-byte
  // the uninstrumented executor. ---
  ExecProfiler* const profiler = cfg_.profiler;
  FlightRecorder* const recorder = cfg_.recorder;
  const std::uint32_t round_headroom =
      max_retries > 0 ? (1u << max_retries) - 1 : 0;
  if (profiler != nullptr) {
    profiler->begin_run(graph_.num_directed_edges(), num_big_rounds, num_workers,
                        round_headroom, tile_events);
  }
  if (recorder != nullptr) recorder->begin_run(num_workers);

  // Whether the current big-round has a populated CSR inbox arena; false for
  // rounds with no consumable messages, where every event's inbox is empty.
  bool round_has_inbox = false;
  std::size_t round_begin = 0;

  // The per-event body shared by the serial and parallel paths. Everything it
  // mutates is either owned by the event's (alg, node) -- programs, rngs,
  // progress -- or by the executing shard's WorkerState; the round arena and
  // its offsets are read-only during execution, so shards are data-race free.
  auto execute_event = [&](const ExecEvent& ev, std::size_t event_index,
                           WorkerState& ws, std::uint32_t t) {
    if (faults != nullptr && faults->node_crashed(ev.node, t)) {
      // Crash-stop: the node executes nothing from its crash round on. Its
      // progress freezes, so it is never marked completed.
      ++ws.skipped;
      if (recorder != nullptr) {
        recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                         FlightRecorder::Kind::kCrashSkip, t,
                         (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
      }
      return;
    }
    auto& prog_progress = progress[ev.alg][ev.node];
    DASCHED_CHECK_EQ(prog_progress + 1, ev.vround,
                     "executor: out-of-order virtual round");
    prog_progress = ev.vround;

    // This event's inbox: its contiguous slice of the round arena lanes.
    // Messages bound to this round were counting-sorted into per-event
    // slices at the top of the round; events without messages (vround 1,
    // quiet rounds) get an empty view -- detected by one presence-bitset bit
    // instead of two offset loads.
    InboxView in;
    std::uint32_t in_count = 0;
    if (round_has_inbox) {
      const std::size_t li = event_index - round_begin;
      if ((scratch.inbox_present[li >> 6] >> (li & 63)) & 1) {
        const std::uint32_t off = scratch.inbox_offset[li];
        in_count = scratch.inbox_count[li];
        in = InboxView(scratch.arena_hdr.data() + off,
                       scratch.arena_pay.data() + std::size_t{off} * W, W,
                       in_count);
      }
    }
    ws.delivered += in_count;
    if (profiler != nullptr) {
      // Shard-local bumps (no sharing, no atomics): this worker owns its
      // shard; end_round() folds the shards in shard order at the barrier.
      auto& shard = profiler->shards()[&ws - workers.data()];
      ++shard.events;
      shard.inbox += in_count;
    }
    if (recorder != nullptr) {
      recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                       FlightRecorder::Kind::kEvent, t,
                       (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
    }

    const auto nbrs = graph_.neighbors(ev.node);
    const auto directed = graph_.directed_ids(ev.node);
    // Every send of this event stages directly into ws's compact lanes,
    // routed against the flat schedule as it lands (see SendSink).
    ++ws.event_serial;
    const bool finishing = ev.vround == schedule.rounds(ev.alg);
    SendSink<W> sink{&ws,
                     sched_flat.data(),
                     scratch.slot_of.data(),
                     cfg_.max_payload_words,
                     n,
                     need_meta,
                     nbrs,
                     directed.data(),
                     finishing ? 0 : schedule.slot_index(ev.alg, 0, ev.vround + 1),
                     schedule.rounds(ev.alg),
                     ev.alg,
                     ev.vround,
                     ev.node,
                     finishing};
    VirtualContext ctx;
    ctx.self_ = ev.node;
    ctx.num_nodes_ = n;
    ctx.vround_ = ev.vround;
    ctx.inbox_ = in;
    ctx.neighbors_ = nbrs;
    ctx.send_fn_ = &SendSink<W>::send;
    ctx.sink_ = &sink;
    ctx.rng_ = &rngs[ev.alg][ev.node];

    programs[ev.alg][ev.node]->on_round(ctx);
  };

  // --- Steady-state window: everything from here to the end of the loop is
  // allocation-free once arenas are warm; hot_path_allocs measures it. ---
  const std::uint64_t allocs_before = alloc_count();

  // --- Main loop over big-rounds. Rounds >= num_big_rounds exist only when
  // retransmissions extended the horizon; they have no scheduled events. ---
  std::uint64_t delivered_before = 0;
  for (std::uint32_t t = 0; t < horizon; ++t) {
    const std::size_t begin = t < num_big_rounds ? bucket_start[t] : events.size();
    const std::size_t end = t < num_big_rounds ? bucket_start[t + 1] : events.size();
    const std::size_t bucket_size = end - begin;
    round_begin = begin;
    // Telemetry is batched per big-round: the per-event/per-message path
    // below only bumps locals, so a null sink costs nothing and a live sink
    // costs O(1) virtual calls per big-round (plus one histogram sample per
    // touched edge).
    const std::uint64_t violations_before = result.causality_violations;
    TimedSpan round_span(telemetry, "executor", "big_round");

    // --- Gather this round's inboxes from the owners' pending segs:
    // counting-sort them (stably -- seg order is delivery order) into
    // contiguous arena-lane slices per event. Every pending message's
    // consumer provably executes in this round, and its slot lies in its
    // owner's tile range, so owners histogram and scatter only slots (and
    // 64-event presence words) they own: the whole gather runs on the pool
    // with no atomics, and a serial sweep over the same segs builds the
    // identical arena. Exact per-slot offsets come from one serial
    // prefix-walk over the populated presence bits between the two phases --
    // O(messages + bucket/64), with no per-slot zeroing anywhere: the
    // presence bitset is all-zero on entry (the previous round cleared
    // exactly the words it touched) and the first touch of a slot *assigns*
    // its count. ---
    round_has_inbox = false;
    std::size_t pend_total = 0;
    for (auto& ws : workers) {
      if (t < ws.pend_round.size() && ws.pend_round[t] != kNoBucket) {
        pend_total += ws.pend_pool[ws.pend_round[t]].slot.size();
      }
    }
    const std::uint32_t* sb =
        t < num_big_rounds
            ? slot_bound.data() + std::size_t{t} * (num_workers + 1)
            : nullptr;
    if (pend_total > 0) {
      round_has_inbox = true;
      const std::size_t present_words = (bucket_size + 63) / 64;
      // Grow-only sizing: shrinking would churn the zero-page invariant of
      // inbox_present and the warm capacity of the lanes.
      if (scratch.inbox_offset.size() < bucket_size) {
        scratch.inbox_offset.resize(bucket_size);
        scratch.inbox_cursor.resize(bucket_size);
        scratch.inbox_count.resize(bucket_size);
      }
      if (scratch.inbox_present.size() < present_words) {
        scratch.inbox_present.resize(present_words, 0);
      }
      if (scratch.arena_hdr.size() < pend_total) scratch.arena_hdr.resize(pend_total);
      if (scratch.arena_pay.size() < pend_total * W) {
        scratch.arena_pay.resize(pend_total * W);
      }
      const bool parallel_gather =
          num_workers > 1 && pend_total >= kMinMessagesParallelBarrier;
      auto histogram_body = [&](std::uint32_t w) {
        auto& ws = workers[w];
        const std::uint32_t seg_idx =
            t < ws.pend_round.size() ? ws.pend_round[t] : kNoBucket;
        if (seg_idx == kNoBucket) return;
        std::uint64_t* const present = scratch.inbox_present.data();
        std::uint32_t* const count = scratch.inbox_count.data();
        // First-touch histogram over this owner's dense slot lane: presence
        // bits double as the "count is live" guard, so count cells need no
        // pre-zeroing and the touched-word list scopes the post-round clear.
        for (const auto s : ws.pend_pool[seg_idx].slot) {
          const std::size_t word = s >> 6;
          const std::uint64_t bit = std::uint64_t{1} << (s & 63);
          const std::uint64_t wv = present[word];
          if ((wv & bit) != 0) {
            ++count[s];
          } else {
            if (wv == 0) ws.touched_words.push_back(static_cast<std::uint32_t>(word));
            present[word] = wv | bit;
            count[s] = 1;
          }
        }
      };
      auto scatter_body = [&](std::uint32_t w) {
        auto& ws = workers[w];
        const std::uint32_t seg_idx =
            t < ws.pend_round.size() ? ws.pend_round[t] : kNoBucket;
        if (seg_idx == kNoBucket) return;
        auto& seg = ws.pend_pool[seg_idx];
        const std::size_t m = seg.slot.size();
        const std::uint32_t* const sl = seg.slot.data();
        const std::uint32_t* const sh = seg.hdr.data();
        const std::uint64_t* const sp = seg.pay.data();
        const std::uint32_t* const offset = scratch.inbox_offset.data();
        std::uint32_t* const cursor = scratch.inbox_cursor.data();
        std::uint32_t* const ah = scratch.arena_hdr.data();
        std::uint64_t* const ap = scratch.arena_pay.data();
        // Width-specialized scatter: the W-word copy is a compile-time-sized
        // move; the prefetch hides the CSR target's first-touch miss (the
        // slot's base offset approximates the cursor well enough for a cache
        // line).
        for (std::size_t i = 0; i < m; ++i) {
          if (i + kScatterPrefetchDist < m) {
            prefetch_for_write(ap + std::size_t{offset[sl[i + kScatterPrefetchDist]]} * W);
          }
          const std::uint32_t at = cursor[sl[i]]++;
          ah[at] = sh[i];
          std::memcpy(ap + std::size_t{at} * W, sp + i * W,
                      W * sizeof(std::uint64_t));
        }
        seg.slot.clear();
        seg.hdr.clear();
        seg.pay.clear();
        ws.pend_free.push_back(seg_idx);
        ws.pend_round[t] = kNoBucket;
      };
      if (parallel_gather) {
        pool_->run_static_ctx(num_workers, histogram_body);
      } else {
        for (std::uint32_t w = 0; w < num_workers; ++w) histogram_body(w);
      }
      // Serial prefix over the populated slots only, in slot order (the
      // presence bits are walked word by word via countr_zero); doubles as
      // the cursor init, so the scatter needs no bit-walk of its own.
      {
        std::uint32_t running = 0;
        for (std::size_t wi = 0; wi < present_words; ++wi) {
          std::uint64_t bits = scratch.inbox_present[wi];
          while (bits != 0) {
            const std::size_t s = (wi << 6) + std::countr_zero(bits);
            bits &= bits - 1;
            scratch.inbox_offset[s] = running;
            scratch.inbox_cursor[s] = running;
            running += scratch.inbox_count[s];
          }
        }
      }
      if (parallel_gather) {
        pool_->run_static_ctx(num_workers, scatter_body);
      } else {
        for (std::uint32_t w = 0; w < num_workers; ++w) scatter_body(w);
      }
    }

    // --- Execute the bucket: statically sharded when large enough. When the
    // bucket has at least one tile per worker, shards are the workers' own
    // tile ranges -- the worker that scattered a tile's inboxes moments ago
    // executes that tile's events while they are still cache-resident.
    // Smaller buckets fall back to evenly-balanced shards (tile granularity
    // would idle workers); either way results are bit-identical. ---
    std::uint32_t shards = 1;
    if (num_workers > 1 && bucket_size >= 2 * kMinEventsPerShard) {
      shards = static_cast<std::uint32_t>(std::min<std::size_t>(
          num_workers, bucket_size / kMinEventsPerShard));
    }
    if (shards <= 1) {
      for (std::size_t i = begin; i < end; ++i) {
        execute_event(events[i], i, workers[0], t);
      }
      ++rounds_serial;
    } else if ((bucket_size + tile_events - 1) / tile_events >= num_workers) {
      auto shard_body = [&](std::uint32_t w) {
        const std::size_t lo = begin + sb[w];
        const std::size_t hi = begin + sb[w + 1];
        auto& ws = workers[w];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], i, ws, t);
      };
      pool_->run_static_ctx(num_workers, shard_body);
      ++rounds_parallel;
    } else {
      auto shard_body = [&](std::uint32_t s) {
        const std::size_t lo = begin + bucket_size * s / shards;
        const std::size_t hi = begin + bucket_size * (s + 1) / shards;
        auto& ws = workers[s];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], i, ws, t);
      };
      // run_ctx dispatches through one reference capture, so the pool's
      // std::function stays in its small-object buffer: no allocation.
      pool_->run_ctx(shards, shard_body);
      ++rounds_parallel;
    }

    // --- Restore the presence-bitset invariant (all-zero between rounds):
    // clear exactly the words this round's gather touched. O(touched words),
    // not O(bucket). ---
    if (round_has_inbox) {
      for (auto& ws : workers) {
        for (const auto word : ws.touched_words) scratch.inbox_present[word] = 0;
        ws.touched_words.clear();
      }
    }

    // --- Barrier: deliver staged messages in shard order (this reproduces
    // the serial staging order exactly), account loads, detect violations. ---
    auto account_edge = [&](std::uint32_t d) {
      if (edge_count[d] == 0) touched_edges.push_back(d);
      ++edge_count[d];
    };
    // Bind each delivered message to the big-round in which its consumer
    // executes. Messages whose consumer already ran (a causality violation)
    // or is never scheduled would sit unread in any inbox; they are counted
    // and dropped, which is observationally identical. tag == T messages are
    // consumed by on_finish after the loop and so can never be violated.
    auto acquire_seg = [&](WorkerState& ow, std::uint32_t dest) -> PendingSeg& {
      std::uint32_t idx = ow.pend_round[dest];
      if (idx == kNoBucket) {
        if (!ow.pend_free.empty()) {
          idx = ow.pend_free.back();
          ow.pend_free.pop_back();
        } else {
          idx = static_cast<std::uint32_t>(ow.pend_pool.size());
          ow.pend_pool.emplace_back();
        }
        ow.pend_round[dest] = idx;
      }
      return ow.pend_pool[idx];
    };
    // Serial routing of one message by its precomputed destination: the lane
    // record is (packed header, W payload words); `slot` is the consumer's
    // bucket slot, or the packed finish key for dest == kFinishDest. Parked
    // messages go to the seg of the worker that OWNS the consumer's tile --
    // not the worker that staged them -- so the serial barrier builds exactly
    // the per-owner structure the parallel barrier builds, and gathers see
    // one seg order regardless of thread count.
    auto route_one = [&](std::uint32_t dest, std::uint32_t slot,
                         std::uint32_t hdr, const std::uint64_t* pay) {
      if (dest == kFinishDest) {
        scratch.finish_key.push_back(slot);
        scratch.finish_hdr.push_back(hdr);
        scratch.finish_pay.insert(scratch.finish_pay.end(), pay, pay + W);
        return;
      }
      if (dest == kNeverDest) return;  // consumer never runs
      if (dest <= t) {
        ++result.causality_violations;
        return;
      }
      auto& seg = acquire_seg(workers[owner_of(dest, slot)], dest);
      seg.slot.push(slot);
      seg.hdr.push(hdr);
      std::memcpy(seg.pay.append_n(W), pay, W * sizeof(std::uint64_t));
    };
    // Destination lookup for messages without precomputed lanes (retries on
    // the faulty path re-enter the barrier from the retry queue).
    auto deliver = [&](const RetryMessage<W>& sm) {
      if (sm.meta.tag == schedule.rounds(sm.meta.alg)) {
        route_one(kFinishDest,
                  static_cast<std::uint32_t>(std::size_t{sm.meta.alg} * n + sm.meta.to),
                  sm.hdr, sm.pay);
        return;
      }
      const std::size_t si =
          schedule.slot_index(sm.meta.alg, sm.meta.to, sm.meta.tag + 1);
      const std::uint32_t dest = sched_flat[si];
      const bool never = dest == kNeverScheduled;
      route_one(never ? kNeverDest : dest, never ? 0 : scratch.slot_of[si],
                sm.hdr, sm.pay);
    };
    // Faulty-path transmission: one bandwidth slot in this big-round, fate
    // from the injector (pure in the message identity and t), retransmission
    // bookkeeping for the reliable layer.
    auto transmit_faulty = [&](const RetryMessage<W>& sm, std::uint32_t attempt) {
      auto& fs = result.faults;
      ++fs.attempts;
      account_edge(sm.directed_edge);
      ++result.total_messages;
      // Flight-recorder fate entries go to the barrier ring (index
      // num_workers): fates are decided here, serially, in shard-merged order.
      const std::uint64_t fr_key = (std::uint64_t{sm.meta.alg} << 32) | sm.meta.tag;
      bool dropped = false;
      if (faults->link_down(sm.directed_edge / 2, t)) {
        ++fs.dropped_outage;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropOutage, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->node_crashed(sm.meta.to, t)) {
        // A crashed receiver neither stores nor acks the message.
        ++fs.dropped_crash;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropCrash, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->drop(sm.meta.alg, sm.directed_edge, sm.meta.tag, attempt)) {
        ++fs.dropped_random;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropRandom, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      }
      if (!dropped) {
        ++fs.delivered;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                           fr_key, sm.directed_edge);
        }
        if (faults->duplicate(sm.meta.alg, sm.directed_edge, sm.meta.tag, attempt)) {
          if (max_retries > 0) {
            // The reliable layer's per-edge bookkeeping recognizes the copy.
            ++fs.duplicates_suppressed;
          } else {
            ++fs.duplicated;
            ++fs.delivered;
            if (recorder != nullptr) {
              recorder->record(num_workers, FlightRecorder::Kind::kDuplicate, t,
                               fr_key, sm.directed_edge);
            }
            deliver(sm);
          }
        }
        deliver(sm);
        return;
      }
      // Dropped. Retransmit with exponential backoff (gap 2^attempt after
      // failed attempt `attempt`) while the sender is alive and budget lasts.
      if (attempt < max_retries) {
        const std::uint32_t retry_round = t + (1u << attempt);
        if (!faults->node_crashed(msg_header_from(sm.hdr), retry_round)) {
          ++fs.retransmissions;
          if (recorder != nullptr) {
            recorder->record(num_workers, FlightRecorder::Kind::kRetry, t,
                             (std::uint64_t{attempt + 1} << 32) | sm.meta.tag,
                             sm.directed_edge);
          }
          if (retry_round >= horizon) {
            horizon = retry_round + 1;
            result.max_load_per_big_round.resize(horizon, 0);
          }
          retry_queue.schedule(retry_round, sm, attempt + 1);
          return;
        }
      }
      ++fs.lost;
      if (recorder != nullptr) {
        recorder->record(num_workers, FlightRecorder::Kind::kLost, t, fr_key,
                         sm.directed_edge);
      }
    };

    std::uint64_t messages_this_round = 0;
    std::uint64_t retries_this_round = 0;
    // Retransmissions due this round go first: they are older than this
    // round's fresh sends, and their queue order is deterministic (scheduled
    // at earlier barriers in shard-merged order).
    if (max_retries > 0) {
      retry_queue.drain_into(t, retry_due);
      retries_this_round = retry_due.size();
      messages_this_round += retries_this_round;
      for (const auto& entry : retry_due) {
        transmit_faulty(entry.msg, entry.attempt);
      }
    }
    std::uint64_t fresh_this_round = 0;
    for (auto& ws : workers) {
      scratch.staged_high_water =
          std::max(scratch.staged_high_water, ws.staged_hdr.size());
      fresh_this_round += ws.staged_hdr.size();
    }
    messages_this_round += fresh_this_round;

    std::uint32_t max_load = 0;
    if (barrier_observed || num_workers == 1 ||
        fresh_this_round < kMinMessagesParallelBarrier) {
      // --- Serial barrier: one thread walks the shards' lanes in order. ---
      for (std::uint32_t w = 0; w < num_workers; ++w) {
        auto& ws = workers[w];
        const std::size_t staged_count = ws.staged_hdr.size();
        for (std::size_t i = 0; i < staged_count; ++i) {
          if (cfg_.record_patterns) {
            // Patterns describe what the algorithm sent; retries are excluded.
            const auto& meta = ws.staged_meta[i];
            result.patterns[meta.alg].record(meta.tag, ws.staged_edge[i]);
          }
          if (faults == nullptr) {
            account_edge(ws.staged_edge[i]);
            ++result.total_messages;
            if (recorder != nullptr) {
              const auto& meta = ws.staged_meta[i];
              recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                               (std::uint64_t{meta.alg} << 32) | meta.tag,
                               ws.staged_edge[i]);
            }
            const std::uint64_t ds = ws.staged_dest[i];
            route_one(static_cast<std::uint32_t>(ds >> 32),
                      static_cast<std::uint32_t>(ds), ws.staged_hdr[i],
                      ws.staged_pay.data() + i * W);
          } else {
            RetryMessage<W> rm;
            rm.meta = ws.staged_meta[i];
            rm.directed_edge = ws.staged_edge[i];
            rm.hdr = ws.staged_hdr[i];
            std::memcpy(rm.pay, ws.staged_pay.data() + i * W,
                        W * sizeof(std::uint64_t));
            transmit_faulty(rm, 0);
          }
        }
        ws.staged_hdr.clear();
        ws.staged_pay.clear();
        ws.staged_meta.clear();
        ws.staged_edge.clear();
        ws.staged_dest.clear();
      }

      for (const auto d : touched_edges) {
        max_load = std::max(max_load, edge_count[d]);
        if (cfg_.enforce_unit_capacity && edge_count[d] > 1) {
          // Post-mortem before the hard failure: the rings hold the
          // deliveries leading up to the overflow.
          if (recorder != nullptr) recorder->dump_on("unit_capacity_overflow");
          DASCHED_CHECK_LE(edge_count[d], 1u,
                           "CONGEST bandwidth violated: >1 message per edge per round");
        }
        if (profiler != nullptr) {
          // Touched cells are visited in first-touch order, which is the
          // shard-merged (== serial) staging order: deterministic across
          // thread counts.
          profiler->record_cell(t, d, edge_count[d]);
        }
        if (telemetry != nullptr) {
          telemetry->record_value("executor.edge_load", edge_count[d]);
        }
        edge_count[d] = 0;
      }
      touched_edges.clear();
    } else {
      // --- Tiled parallel barrier: one static pool dispatch, every worker
      // scanning all shards' dense destination lanes in shard order but
      // acting only on what it owns. Phase E folds edge loads over a static
      // partition of the directed-edge space (self-zeroing, like the serial
      // touched_edges sweep). Phase R appends each parked message's lane
      // record to its owner's seg -- the exact structure route_one builds
      // serially, because source order (shard-merged) and the slot -> owner
      // map are thread-count independent. Worker 0 additionally takes the
      // tag == T stream (routed by its packed finish key) and the violation
      // count. No atomics anywhere: every written cell has exactly one
      // owner. ---
      const std::uint64_t num_dir_edges = graph_.num_directed_edges();
      auto barrier_body = [&](std::uint32_t w) {
        auto& ow = workers[w];
        const auto elo =
            static_cast<std::uint32_t>(num_dir_edges * w / num_workers);
        const auto ehi =
            static_cast<std::uint32_t>(num_dir_edges * (w + 1) / num_workers);
        std::uint32_t local_max = 0;
        for (std::uint32_t v = 0; v < num_workers; ++v) {
          for (const auto d : workers[v].staged_edge) {
            if (d >= elo && d < ehi) {
              if (edge_count[d]++ == 0) ow.touched.push_back(d);
            }
          }
        }
        for (const auto d : ow.touched) {
          local_max = std::max(local_max, edge_count[d]);
          if (cfg_.enforce_unit_capacity && edge_count[d] > 1) {
            DASCHED_CHECK_LE(edge_count[d], 1u,
                             "CONGEST bandwidth violated: >1 message per edge per round");
          }
          edge_count[d] = 0;
        }
        ow.touched.clear();
        ow.max_load_partial = local_max;
        for (std::uint32_t v = 0; v < num_workers; ++v) {
          auto& src = workers[v];
          const std::size_t m = src.staged_hdr.size();
          for (std::size_t i = 0; i < m; ++i) {
            const std::uint64_t ds = src.staged_dest[i];
            const auto dest = static_cast<std::uint32_t>(ds >> 32);
            if (dest >= kNeverDest) {
              if (dest == kFinishDest && w == 0) {
                scratch.finish_key.push_back(static_cast<std::uint32_t>(ds));
                scratch.finish_hdr.push_back(src.staged_hdr[i]);
                scratch.finish_pay.insert(scratch.finish_pay.end(),
                                          src.staged_pay.data() + i * W,
                                          src.staged_pay.data() + (i + 1) * W);
              }
              continue;
            }
            if (dest <= t) {
              if (w == 0) ++ow.violations;
              continue;
            }
            const auto slot = static_cast<std::uint32_t>(ds);
            const auto* bound =
                slot_bound.data() + std::size_t{dest} * (num_workers + 1);
            if (slot < bound[w] || slot >= bound[w + 1]) continue;
            auto& seg = acquire_seg(ow, dest);
            seg.slot.push(slot);
            seg.hdr.push(src.staged_hdr[i]);
            std::memcpy(seg.pay.append_n(W), src.staged_pay.data() + i * W,
                        W * sizeof(std::uint64_t));
          }
        }
      };
      pool_->run_static_ctx(num_workers, barrier_body);
      for (auto& ws : workers) {
        max_load = std::max(max_load, ws.max_load_partial);
        ws.max_load_partial = 0;
        ws.staged_hdr.clear();
        ws.staged_pay.clear();
        ws.staged_meta.clear();
        ws.staged_edge.clear();
        ws.staged_dest.clear();
      }
      result.causality_violations += workers[0].violations;
      workers[0].violations = 0;
      result.total_messages += fresh_this_round;
    }
    result.max_load_per_big_round[t] = max_load;
    result.max_edge_load = std::max(result.max_edge_load, max_load);

    if (profiler != nullptr) {
      profiler->end_round(t, messages_this_round, max_load, retries_this_round);
    }
    if (recorder != nullptr) {
      recorder->record_barrier(t, messages_this_round, max_load);
    }

    if (telemetry != nullptr) {
      std::uint64_t delivered_now = 0;
      for (const auto& ws : workers) delivered_now += ws.delivered;
      telemetry->add_counter("executor.messages_sent", messages_this_round);
      telemetry->add_counter("executor.messages_delivered",
                             delivered_now - delivered_before);
      telemetry->add_counter("executor.causality_violations",
                             result.causality_violations - violations_before);
      telemetry->record_value("executor.max_load_per_big_round", max_load);
      delivered_before = delivered_now;
      round_span.arg("t", t);
      round_span.arg("events", static_cast<double>(bucket_size));
      round_span.arg("messages", static_cast<double>(messages_this_round));
      round_span.arg("max_load", max_load);
    }
  }

  result.hot_path_allocs = alloc_count() - allocs_before;

  // Retransmissions may have extended the run past the scheduled horizon.
  result.num_big_rounds = horizon;
  for (const auto& ws : workers) result.faults.skipped_events += ws.skipped;

  if (profiler != nullptr) profiler->end_run();
  if (recorder != nullptr && faults != nullptr && faults->num_crashes() > 0) {
    // Crash-stop faults fired: leave a post-mortem of the run's last events.
    recorder->dump_on("crash_stop_faults");
  }

  // --- Finish and collect outputs. The tag == T lanes accumulated across
  // the run are counting-sorted by their packed keys (stably: delivery order
  // is preserved within each node's slice) IN PLACE: compute each message's
  // final position, then realize the permutation by following its cycles,
  // swapping one header word and W payload words at a time. No second arena
  // exists -- at the million-node scale the old out-of-place copy doubled
  // the largest allocation of the whole run. A crash-stopped node never runs
  // on_finish and is never marked completed, even if it crashed after its
  // last scheduled event. ---
  auto& finish_offset = scratch.finish_offset;
  const std::size_t fcount = scratch.finish_key.size();
  DASCHED_CHECK_MSG(fcount < std::size_t{kPlaced},
                    "finish arena exceeds the in-place permutation index range");
  finish_offset.assign(k * n + 1, 0);
  for (const auto key : scratch.finish_key) {
    ++finish_offset[std::size_t{key} + 1];
  }
  for (std::size_t i = 1; i <= k * n; ++i) finish_offset[i] += finish_offset[i - 1];
  scratch.finish_target.resize(fcount);
  {
    auto& cursor = scratch.bucket_cursor;  // reuse: events array is flattened
    cursor.assign(finish_offset.begin(), finish_offset.end() - 1);
    for (std::size_t i = 0; i < fcount; ++i) {
      scratch.finish_target[i] =
          static_cast<std::uint32_t>(cursor[scratch.finish_key[i]]++);
    }
  }
  {
    std::uint32_t* const target = scratch.finish_target.data();
    std::uint32_t* const fh = scratch.finish_hdr.data();
    std::uint64_t* const fpay = scratch.finish_pay.data();
    for (std::size_t i = 0; i < fcount; ++i) {
      if ((target[i] & kPlaced) != 0) continue;
      if (target[i] == static_cast<std::uint32_t>(i)) {
        target[i] |= kPlaced;
        continue;
      }
      std::uint32_t tmp_hdr = fh[i];
      std::uint64_t tmp_pay[W];
      std::memcpy(tmp_pay, fpay + i * W, W * sizeof(std::uint64_t));
      std::uint32_t j = target[i];
      while (j != static_cast<std::uint32_t>(i)) {
        std::swap(tmp_hdr, fh[j]);
        for (std::uint32_t q = 0; q < W; ++q) {
          std::swap(tmp_pay[q], fpay[std::size_t{j} * W + q]);
        }
        const std::uint32_t nxt = target[j] & ~kPlaced;
        target[j] |= kPlaced;
        j = nxt;
      }
      fh[i] = tmp_hdr;
      std::memcpy(fpay + i * W, tmp_pay, W * sizeof(std::uint64_t));
      target[i] |= kPlaced;
    }
  }

  std::uint64_t delivered_at_finish = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    result.outputs[a].resize(n);
    result.completed[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (progress[a][v] != rounds) continue;
      if (faults != nullptr && faults->crash_round(v) < horizon) continue;
      const std::size_t key = a * n + v;
      const std::size_t off = finish_offset[key];
      const auto cnt = static_cast<std::uint32_t>(finish_offset[key + 1] - off);
      const InboxView in(scratch.finish_hdr.data() + off,
                         scratch.finish_pay.data() + off * W, W, cnt);
      delivered_at_finish += cnt;
      VirtualContext ctx;
      ctx.self_ = v;
      ctx.num_nodes_ = n;
      ctx.vround_ = rounds + 1;
      ctx.inbox_ = in;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.send_fn_ = nullptr;
      ctx.sink_ = nullptr;
      ctx.rng_ = &rngs[a][v];
      programs[a][v]->on_finish(ctx);
      result.completed[a][v] = 1;
      result.outputs[a][v] = programs[a][v]->output();
    }
  }

  if (telemetry != nullptr) {
    telemetry->add_counter("executor.messages_delivered", delivered_at_finish);
    telemetry->set_gauge("executor.max_edge_load", result.max_edge_load);
    telemetry->set_gauge("executor.parallel.num_threads", num_workers);
    telemetry->add_counter("executor.parallel.rounds_parallel", rounds_parallel);
    telemetry->add_counter("executor.parallel.rounds_serial", rounds_serial);
    run_span.arg("total_messages", static_cast<double>(result.total_messages));
    if (faults != nullptr) {
      // fault.* names are emitted only on faulty runs, so a null injector
      // leaves the telemetry stream byte-identical to the reliable engine.
      const auto& fs = result.faults;
      // Keep big_rounds == rounds_serial + rounds_parallel when retries
      // extended the horizon past the scheduled rounds counted up front.
      telemetry->add_counter("executor.big_rounds", horizon - num_big_rounds);
      telemetry->add_counter("fault.attempts", fs.attempts);
      telemetry->add_counter("fault.delivered", fs.delivered);
      telemetry->add_counter("fault.dropped.random", fs.dropped_random);
      telemetry->add_counter("fault.dropped.outage", fs.dropped_outage);
      telemetry->add_counter("fault.dropped.crash", fs.dropped_crash);
      telemetry->add_counter("fault.duplicates.delivered", fs.duplicated);
      telemetry->add_counter("fault.duplicates.suppressed", fs.duplicates_suppressed);
      telemetry->add_counter("fault.retransmissions", fs.retransmissions);
      telemetry->add_counter("fault.lost", fs.lost);
      telemetry->add_counter("fault.skipped_events", fs.skipped_events);
      telemetry->set_gauge("fault.crashed_nodes", faults->num_crashes());
      telemetry->set_gauge("fault.retry_budget", max_retries);
    }
  }

  return result;
}

std::uint64_t result_fingerprint(const ExecutionResult& result) {
  Fingerprint fp;
  for (const auto& per_alg : result.outputs) {
    for (const auto& out : per_alg) {
      fp.mix(out.size());
      for (const auto w : out) fp.mix(w);
    }
  }
  for (const auto& per_alg : result.completed) {
    for (const auto c : per_alg) fp.mix(c);
  }
  for (const auto l : result.max_load_per_big_round) fp.mix(l);
  return fp.digest();
}

}  // namespace dasched
