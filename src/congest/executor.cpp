#include "congest/executor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dasched {

std::uint64_t ExecutionResult::adaptive_physical_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_big_round) {
    rounds += std::max<std::uint32_t>(1, load);
  }
  return rounds;
}

ExecutionResult::FixedPhase ExecutionResult::fixed_phase(std::uint32_t phase_len) const {
  DASCHED_CHECK(phase_len >= 1);
  FixedPhase result{0, 0};
  result.physical_rounds =
      static_cast<std::uint64_t>(num_big_rounds) * phase_len;
  for (const auto load : max_load_per_big_round) {
    if (load > phase_len) ++result.overflowing_phases;
  }
  return result;
}

bool ExecutionResult::all_completed() const {
  for (const auto& per_alg : completed) {
    for (const auto c : per_alg) {
      if (!c) return false;
    }
  }
  return true;
}

namespace {

/// A message in flight, tagged with the virtual round it was sent in.
struct TaggedMessage {
  std::uint32_t tag;  // sender's virtual round
  VMessage msg;
};

/// Staged transmission awaiting end-of-big-round delivery.
struct StagedMessage {
  std::uint32_t alg;
  std::uint32_t tag;
  NodeId to;
  std::uint32_t directed_edge;
  VMessage msg;
};

/// One scheduled execution event.
struct ExecEvent {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

struct SendSink {
  const Graph* graph;
  std::uint32_t max_payload_words;
  NodeId from;
  std::vector<std::pair<NodeId, Payload>> sends;

  static void send(void* raw, NodeId neighbor, Payload payload) {
    auto* sink = static_cast<SendSink*>(raw);
    DASCHED_CHECK_MSG(sink->graph->find_edge(sink->from, neighbor) != kInvalidEdge,
                      "send to non-neighbor");
    DASCHED_CHECK_MSG(payload.size() <= sink->max_payload_words,
                      "message exceeds CONGEST word budget");
    for (const auto& [to, _] : sink->sends) {
      DASCHED_CHECK_MSG(to != neighbor, "two messages to one neighbor in one round");
    }
    sink->sends.emplace_back(neighbor, std::move(payload));
  }
};

}  // namespace

Executor::Executor(const Graph& g, ExecConfig cfg) : graph_(g), cfg_(cfg) {}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ExecTimeFn& exec_time) {
  const std::size_t k = algorithms.size();
  const NodeId n = graph_.num_nodes();

  // --- Build and validate the schedule table. ---
  // time[a][v] holds big-rounds for vrounds 1..T_a at indices 0..T_a-1.
  std::vector<std::vector<std::vector<std::uint32_t>>> time(k);
  std::uint32_t max_big_round = 0;
  std::uint64_t total_events = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    time[a].assign(n, {});
    for (NodeId v = 0; v < n; ++v) {
      auto& slots = time[a][v];
      slots.resize(rounds, kNeverScheduled);
      std::uint32_t prev = 0;
      bool ended = false;
      for (std::uint32_t r = 1; r <= rounds; ++r) {
        const std::uint32_t t = exec_time(a, v, r);
        if (t == kNeverScheduled) {
          ended = true;
          continue;
        }
        DASCHED_CHECK_MSG(!ended, "schedule has a gap: round scheduled after a skipped one");
        DASCHED_CHECK_MSG(r == 1 || t > prev,
                          "schedule must be strictly increasing per (alg, node)");
        slots[r - 1] = t;
        prev = t;
        max_big_round = std::max(max_big_round, t);
        ++total_events;
      }
    }
  }

  // --- Bucket events by big-round. ---
  std::vector<std::vector<ExecEvent>> bucket(max_big_round + 1);
  (void)total_events;
  for (std::size_t a = 0; a < k; ++a) {
    for (NodeId v = 0; v < n; ++v) {
      const auto& slots = time[a][v];
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        if (slots[r - 1] != kNeverScheduled) {
          bucket[slots[r - 1]].push_back(
              {static_cast<std::uint32_t>(a), v, r});
        }
      }
    }
  }

  // --- Per (alg, node) state. ---
  std::vector<std::vector<std::unique_ptr<NodeProgram>>> programs(k);
  std::vector<std::vector<Rng>> rngs(k);
  std::vector<std::vector<std::uint32_t>> progress(k);  // last executed vround
  std::vector<std::vector<std::vector<TaggedMessage>>> pending(k);
  for (std::size_t a = 0; a < k; ++a) {
    programs[a].reserve(n);
    rngs[a].reserve(n);
    progress[a].assign(n, 0);
    pending[a].resize(n);
    for (NodeId v = 0; v < n; ++v) {
      programs[a].push_back(algorithms[a]->make_program(v));
      rngs[a].emplace_back(seed_combine(algorithms[a]->base_seed(), v));
    }
  }

  ExecutionResult result;
  result.outputs.assign(k, {});
  result.completed.assign(k, {});
  if (cfg_.record_patterns) {
    result.patterns.assign(k, CommunicationPattern(graph_.num_directed_edges()));
  }

  std::vector<std::uint32_t> edge_count(graph_.num_directed_edges(), 0);
  std::vector<std::uint32_t> touched_edges;
  std::vector<StagedMessage> staged;
  std::vector<VMessage> inbox_scratch;
  if (total_events == 0) {
    result.num_big_rounds = 0;
  } else {
    result.num_big_rounds = max_big_round + 1;
    result.max_load_per_big_round.assign(result.num_big_rounds, 0);
  }

  auto take_tag = [&](std::vector<TaggedMessage>& buf, std::uint32_t tag,
                      std::vector<VMessage>& out) {
    out.clear();
    std::size_t write = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (buf[i].tag == tag) {
        out.push_back(std::move(buf[i].msg));
      } else {
        if (write != i) buf[write] = std::move(buf[i]);
        ++write;
      }
    }
    buf.resize(write);
  };

  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "executor", "run");
  if (telemetry != nullptr) {
    telemetry->add_counter("executor.events_executed", total_events);
    telemetry->add_counter("executor.big_rounds", result.num_big_rounds);
    run_span.arg("algorithms", static_cast<double>(k));
    run_span.arg("big_rounds", static_cast<double>(result.num_big_rounds));
    run_span.arg("events", static_cast<double>(total_events));
  }

  // --- Main loop over big-rounds. ---
  for (std::uint32_t t = 0; t <= max_big_round; ++t) {
    staged.clear();
    // Telemetry is batched per big-round: the per-event/per-message path
    // below only bumps these locals, so a null sink costs nothing and a live
    // sink costs O(1) virtual calls per big-round (plus one histogram sample
    // per touched edge).
    const std::uint64_t violations_before = result.causality_violations;
    std::uint64_t delivered_this_round = 0;
    TimedSpan round_span(telemetry, "executor", "big_round");

    for (const auto& ev : bucket[t]) {
      auto& prog_progress = progress[ev.alg][ev.node];
      DASCHED_CHECK_MSG(prog_progress + 1 == ev.vround,
                        "executor: out-of-order virtual round");
      prog_progress = ev.vround;

      take_tag(pending[ev.alg][ev.node], ev.vround - 1, inbox_scratch);
      delivered_this_round += inbox_scratch.size();

      SendSink sink{&graph_, cfg_.max_payload_words, ev.node, {}};
      VirtualContext ctx;
      ctx.self_ = ev.node;
      ctx.num_nodes_ = n;
      ctx.vround_ = ev.vround;
      ctx.inbox_ = inbox_scratch;
      ctx.neighbors_ = graph_.neighbors(ev.node);
      ctx.send_fn_ = &SendSink::send;
      ctx.sink_ = &sink;
      ctx.rng_ = &rngs[ev.alg][ev.node];

      programs[ev.alg][ev.node]->on_round(ctx);

      for (auto& [to, payload] : sink.sends) {
        const EdgeId e = graph_.find_edge(ev.node, to);
        const std::uint32_t d = graph_.directed_id(e, ev.node);
        staged.push_back({ev.alg, ev.vround, to, d,
                          VMessage{ev.node, std::move(payload)}});
      }
    }

    // Deliver staged messages: account loads, detect violations, enqueue.
    for (auto& sm : staged) {
      if (edge_count[sm.directed_edge] == 0) touched_edges.push_back(sm.directed_edge);
      ++edge_count[sm.directed_edge];
      ++result.total_messages;
      if (cfg_.record_patterns) {
        result.patterns[sm.alg].record(sm.tag, sm.directed_edge);
      }
      // The consumer executes vround tag+1 (or on_finish if tag == T, which
      // always happens after the loop and so cannot be violated).
      const auto& consumer_slots = time[sm.alg][sm.to];
      if (sm.tag < consumer_slots.size()) {
        const std::uint32_t consumer_time = consumer_slots[sm.tag];  // vround tag+1
        if (consumer_time != kNeverScheduled && consumer_time <= t) {
          ++result.causality_violations;
        }
      }
      pending[sm.alg][sm.to].push_back({sm.tag, std::move(sm.msg)});
    }

    std::uint32_t max_load = 0;
    for (const auto d : touched_edges) {
      max_load = std::max(max_load, edge_count[d]);
      if (cfg_.enforce_unit_capacity) {
        DASCHED_CHECK_MSG(edge_count[d] <= 1,
                          "CONGEST bandwidth violated: >1 message per edge per round");
      }
      if (telemetry != nullptr) {
        telemetry->record_value("executor.edge_load", edge_count[d]);
      }
      edge_count[d] = 0;
    }
    touched_edges.clear();
    if (t < result.max_load_per_big_round.size()) {
      result.max_load_per_big_round[t] = max_load;
    }
    result.max_edge_load = std::max(result.max_edge_load, max_load);

    if (telemetry != nullptr) {
      telemetry->add_counter("executor.messages_sent", staged.size());
      telemetry->add_counter("executor.messages_delivered", delivered_this_round);
      telemetry->add_counter("executor.causality_violations",
                             result.causality_violations - violations_before);
      telemetry->record_value("executor.max_load_per_big_round", max_load);
      round_span.arg("t", t);
      round_span.arg("events", static_cast<double>(bucket[t].size()));
      round_span.arg("messages", static_cast<double>(staged.size()));
      round_span.arg("max_load", max_load);
    }
  }

  // --- Finish and collect outputs. ---
  std::uint64_t delivered_at_finish = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    result.outputs[a].resize(n);
    result.completed[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (progress[a][v] != rounds) continue;
      take_tag(pending[a][v], rounds, inbox_scratch);
      delivered_at_finish += inbox_scratch.size();
      VirtualContext ctx;
      ctx.self_ = v;
      ctx.num_nodes_ = n;
      ctx.vround_ = rounds + 1;
      ctx.inbox_ = inbox_scratch;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.send_fn_ = nullptr;
      ctx.sink_ = nullptr;
      ctx.rng_ = &rngs[a][v];
      programs[a][v]->on_finish(ctx);
      result.completed[a][v] = 1;
      result.outputs[a][v] = programs[a][v]->output();
    }
  }

  if (telemetry != nullptr) {
    telemetry->add_counter("executor.messages_delivered", delivered_at_finish);
    telemetry->set_gauge("executor.max_edge_load", result.max_edge_load);
    run_span.arg("total_messages", static_cast<double>(result.total_messages));
  }

  return result;
}

}  // namespace dasched
