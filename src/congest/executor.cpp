#include "congest/executor.hpp"

#include <algorithm>

#include "util/alloc_counter.hpp"
#include "util/check.hpp"

namespace dasched {

std::uint64_t ExecutionResult::adaptive_physical_rounds() const {
  std::uint64_t rounds = 0;
  for (const auto load : max_load_per_big_round) {
    rounds += std::max<std::uint32_t>(1, load);
  }
  return rounds;
}

ExecutionResult::FixedPhase ExecutionResult::fixed_phase(std::uint32_t phase_len) const {
  DASCHED_CHECK_GE(phase_len, 1u);
  FixedPhase result{0, 0};
  result.physical_rounds =
      static_cast<std::uint64_t>(num_big_rounds) * phase_len;
  for (const auto load : max_load_per_big_round) {
    if (load > phase_len) ++result.overflowing_phases;
  }
  return result;
}

bool ExecutionResult::all_completed() const {
  for (const auto& per_alg : completed) {
    for (const auto c : per_alg) {
      if (!c) return false;
    }
  }
  return true;
}

// The message-path structs live at namespace scope (not in an anonymous
// namespace) because ExecScratch -- declared in the header -- holds arenas of
// them; this TU is the only one that defines or uses them.

/// Staged transmission awaiting end-of-big-round delivery. Trivially
/// copyable: staging, retry queues, and delivery arenas move these as raw
/// bytes (the static_asserts below pin that property).
struct StagedMessage {
  std::uint32_t alg;
  std::uint32_t tag;  // sender's virtual round
  NodeId to;
  std::uint32_t directed_edge;
  VMessage msg;
};

/// One scheduled execution event.
struct ExecEvent {
  std::uint32_t alg;
  NodeId node;
  std::uint32_t vround;
};

/// A delivered message parked until the big-round in which its consumer
/// executes (or until on_finish for tag == T messages).
struct PendingMessage {
  std::uint32_t alg;
  NodeId to;
  VMessage msg;
};

static_assert(std::is_trivially_copyable_v<StagedMessage>);
static_assert(std::is_trivially_copyable_v<ExecEvent>);
static_assert(std::is_trivially_copyable_v<PendingMessage>);

/// Per-worker staging plus reusable scratch. Within one big-round every event
/// touches only its own (alg, node) state, so shards race only if they shared
/// scratch -- they don't; and because each shard appends to its own `staged`
/// and shards are contiguous slices of the bucket, concatenating the buffers
/// in shard order reproduces the serial staging order bit for bit.
struct WorkerState {
  std::vector<StagedMessage> staged;  // perf-ok: cleared per round, capacity retained
  std::vector<std::pair<std::uint32_t, Payload>> sends;  // perf-ok: per-event scratch, reserved to max_degree
  std::vector<std::uint8_t> slot_used;  // perf-ok: size max_degree, zeroed once
  std::uint64_t delivered = 0;  // cumulative messages consumed by this worker
  std::uint64_t skipped = 0;    // events skipped because the node crash-stopped
};

namespace {

/// Per-event send collector. One binary search over the (sorted) adjacency
/// validates the neighbor and yields its adjacency slot; the per-slot bitmap
/// flags duplicate sends in O(1); the caller resolves the directed edge id
/// from the slot with a single indexed load -- no find_edge and no linear
/// duplicate scan anywhere on the send path.
struct SendSink {
  std::span<const HalfEdge> neighbors;
  std::uint32_t max_payload_words;
  std::uint8_t* slot_used;  // worker scratch sized max_degree, all zero between events
  std::vector<std::pair<std::uint32_t, Payload>>* sends;  // borrowed worker scratch

  static void send(void* raw, NodeId neighbor, Payload payload) {
    auto* sink = static_cast<SendSink*>(raw);
    const auto nbrs = sink->neighbors;
    const auto it = std::lower_bound(
        nbrs.begin(), nbrs.end(), neighbor,
        [](const HalfEdge& h, NodeId x) { return h.neighbor < x; });
    DASCHED_CHECK_MSG(it != nbrs.end() && it->neighbor == neighbor,
                      "send to non-neighbor");
    DASCHED_CHECK_MSG(payload.size() <= sink->max_payload_words,
                      "message exceeds CONGEST word budget");
    const auto slot = static_cast<std::uint32_t>(it - nbrs.begin());
    DASCHED_CHECK_MSG(!sink->slot_used[slot],
                      "two messages to one neighbor in one round");
    sink->slot_used[slot] = 1;
    sink->sends->emplace_back(slot, payload);
  }
};

/// Minimum events per shard before a big-round is farmed out to the pool:
/// below this, waking the workers costs more than the bucket. The cutoff is
/// invisible in results -- serial and parallel execution are bit-identical.
constexpr std::size_t kMinEventsPerShard = 16;

constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

}  // namespace

/// Everything the engine reuses across big-rounds and runs. First run of a
/// workload grows each buffer to its high-water mark; from then on the
/// message path performs no heap allocation (ExecutionResult::hot_path_allocs
/// measures exactly this window).
struct ExecScratch {
  // perf-ok: all members below are arenas/scratch -- sized once per run (or
  // grown to a high-water mark during warm-up) and recycled, never allocated
  // per message.

  // --- Schedule flattening (rebuilt per run, capacity retained). ---
  std::vector<ExecEvent> events;          // perf-ok: per-run arena
  std::vector<std::size_t> bucket_start;  // perf-ok: CSR offsets per big-round
  std::vector<std::size_t> bucket_cursor;  // perf-ok: counting-sort scratch

  // --- Worker staging (persistent; slot_used zeroed once at creation and
  // kept all-zero between events by the senders themselves). ---
  std::vector<WorkerState> workers;  // perf-ok: persistent across runs
  std::size_t staged_high_water = 0;  // max staged per worker per big-round

  // --- Pending deliveries, bucketed by the consumer's big-round. Buckets
  // are drained at the start of their round and their storage recycled via
  // the free list, so the number of live buckets is the number of rounds
  // with in-flight messages, not the number of (alg, node, tag) triples. ---
  std::vector<std::uint32_t> round_bucket;  // perf-ok: big-round -> pool index or kNoBucket
  std::vector<std::vector<PendingMessage>> bucket_pool;  // perf-ok: recycled via free_buckets
  std::vector<std::uint32_t> free_buckets;  // perf-ok: drained-bucket free list

  // --- Per-big-round CSR inbox arena: this round's consumable messages,
  // counting-sorted into one contiguous slice per event. ---
  std::vector<VMessage> round_arena;        // perf-ok: reused every big-round
  std::vector<std::uint32_t> inbox_offset;  // perf-ok: per event in bucket, size + 1
  std::vector<std::uint32_t> inbox_cursor;  // perf-ok: counting-sort scratch
  /// (alg * n + node) -> event index within the current bucket. Never reset:
  /// every pending message's consumer provably has an event in the round the
  /// message was bound to, so only freshly-written entries are ever read.
  std::vector<std::uint32_t> consumer_slot;  // perf-ok: sized k*n once

  // --- tag == T messages, consumed by on_finish after the loop. ---
  std::vector<PendingMessage> finish_pending;  // perf-ok: appended across the run
  std::vector<VMessage> finish_arena;      // perf-ok: sorted once after the loop
  std::vector<std::size_t> finish_offset;  // perf-ok: per (alg, node), size k*n + 1

  // --- Edge-load accounting (self-zeroing between rounds). ---
  std::vector<std::uint32_t> edge_count;     // perf-ok: zeroed via touched_edges
  std::vector<std::uint32_t> touched_edges;  // perf-ok: reserved to num_directed_edges

  // --- Reliable-delivery drain buffer (faulty runs only). ---
  std::vector<RetryQueue<StagedMessage>::Entry> retry_due;  // perf-ok: drain_into reuses capacity
};

Executor::Executor(const Graph& g, ExecConfig cfg)
    : graph_(g), cfg_(cfg), scratch_(std::make_unique<ExecScratch>()) {
  DASCHED_CHECK_LE(cfg_.max_payload_words, InlinePayload::kInlineCapacity,
                   "max_payload_words exceeds the inline payload capacity; "
                   "recompile with -DDASCHED_PAYLOAD_INLINE_WORDS=<n> to spill "
                   "to a larger inline message");
}

Executor::~Executor() = default;

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ExecTimeFn& exec_time) {
  return run(algorithms,
             ScheduleTable::from_fn(algorithms, graph_.num_nodes(), exec_time));
}

ExecutionResult Executor::run(std::span<const DistributedAlgorithm* const> algorithms,
                              const ScheduleTable& schedule) {
  const std::size_t k = algorithms.size();
  const NodeId n = graph_.num_nodes();
  DASCHED_CHECK_EQ(schedule.num_algorithms(), k,
                   "schedule table does not match the problem dimensions");
  DASCHED_CHECK_EQ(schedule.num_nodes(), n,
                   "schedule table does not match the problem dimensions");

  // --- Admission gate: consulted once, before any event executes. A null
  // gate costs nothing; a rejection is a hard contract failure. ---
  if (cfg_.admission != nullptr && !cfg_.admission->admit(algorithms, schedule)) {
    // Post-mortem before aborting: with a recorder attached the rejection
    // leaves a dump (rings from any previous run of this recorder, or empty).
    if (cfg_.recorder != nullptr) cfg_.recorder->dump_on("admission_rejected");
    DASCHED_CHECK_MSG(false, "schedule rejected by the admission gate");
  }

  ExecScratch& scratch = *scratch_;

  // --- One pass over the schedule: validate (gap-free prefix, strictly
  // increasing big-rounds), count events per big-round, and record
  // max_big_round together. bucket_start[t + 1] accumulates the bucket sizes
  // and is prefix-summed into CSR offsets below. ---
  std::uint32_t max_big_round = 0;
  std::uint64_t total_events = 0;
  auto& bucket_start = scratch.bucket_start;
  bucket_start.clear();
  for (std::size_t a = 0; a < k; ++a) {
    DASCHED_CHECK_EQ(schedule.rounds(a), algorithms[a]->rounds(),
                     "schedule table does not match the algorithm round counts");
    for (NodeId v = 0; v < n; ++v) {
      const auto slots = schedule.row(a, v);
      std::uint32_t prev = 0;
      bool ended = false;
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        const std::uint32_t t = slots[r - 1];
        if (t == kNeverScheduled) {
          ended = true;
          continue;
        }
        DASCHED_CHECK_MSG(!ended, "schedule has a gap: round scheduled after a skipped one");
        DASCHED_CHECK_MSG(r == 1 || t > prev,
                          "schedule must be strictly increasing per (alg, node)");
        prev = t;
        max_big_round = std::max(max_big_round, t);
        if (std::size_t{t} + 2 > bucket_start.size()) bucket_start.resize(std::size_t{t} + 2, 0);
        ++bucket_start[std::size_t{t} + 1];
        ++total_events;
      }
    }
  }

  const std::uint32_t num_big_rounds = total_events == 0 ? 0 : max_big_round + 1;
  bucket_start.resize(std::size_t{num_big_rounds} + 1, 0);
  std::size_t max_bucket_size = 0;
  for (std::uint32_t t = 1; t <= num_big_rounds; ++t) {
    max_bucket_size = std::max(max_bucket_size, bucket_start[t]);
    bucket_start[t] += bucket_start[t - 1];
  }

  // --- Bucket events by big-round: one flat array plus the CSR offsets. The
  // counting sort preserves (alg, node, round) order within each bucket,
  // which is the canonical serial execution order. ---
  auto& events = scratch.events;
  events.resize(total_events);
  {
    auto& cursor = scratch.bucket_cursor;
    cursor.assign(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t a = 0; a < k; ++a) {
      for (NodeId v = 0; v < n; ++v) {
        const auto slots = schedule.row(a, v);
        for (std::uint32_t r = 1; r <= slots.size(); ++r) {
          const std::uint32_t t = slots[r - 1];
          if (t != kNeverScheduled) {
            events[cursor[t]++] = {static_cast<std::uint32_t>(a), v, r};
          }
        }
      }
    }
  }

  // --- Per (alg, node) state. ---
  std::vector<std::vector<std::unique_ptr<NodeProgram>>> programs(k);
  std::vector<std::vector<Rng>> rngs(k);
  std::vector<std::vector<std::uint32_t>> progress(k);  // last executed vround
  for (std::size_t a = 0; a < k; ++a) {
    programs[a].reserve(n);
    rngs[a].reserve(n);
    progress[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      programs[a].push_back(algorithms[a]->make_program(v));
      rngs[a].emplace_back(seed_combine(algorithms[a]->base_seed(), v));
    }
  }

  ExecutionResult result;
  result.outputs.assign(k, {});
  result.completed.assign(k, {});
  if (cfg_.record_patterns) {
    result.patterns.assign(k, CommunicationPattern(graph_.num_directed_edges()));
  }
  result.num_big_rounds = num_big_rounds;
  result.max_load_per_big_round.assign(num_big_rounds, 0);

  // --- Size the delivery arenas (no allocation inside the loop: buckets and
  // arenas below only grow to warm-up high-water marks). ---
  scratch.round_bucket.assign(std::size_t{num_big_rounds} + 1, kNoBucket);
  scratch.free_buckets.clear();
  for (std::uint32_t b = 0; b < scratch.bucket_pool.size(); ++b) {
    scratch.bucket_pool[b].clear();
    scratch.free_buckets.push_back(b);
  }
  scratch.inbox_offset.reserve(max_bucket_size + 1);
  scratch.inbox_cursor.reserve(max_bucket_size + 1);
  if (scratch.consumer_slot.size() < k * n) scratch.consumer_slot.resize(k * n);
  scratch.finish_pending.clear();
  scratch.edge_count.assign(graph_.num_directed_edges(), 0);
  scratch.touched_edges.clear();
  scratch.touched_edges.reserve(graph_.num_directed_edges());

  auto& edge_count = scratch.edge_count;
  auto& touched_edges = scratch.touched_edges;

  // --- Fault injection and reliable delivery (docs/FAULTS.md). All fault
  // decisions run at the delivery barrier below, which processes messages in
  // shard-merged (== serial) order, and are pure functions of the plan seed
  // and message identity -- so faulty runs are bit-identical across thread
  // counts. With `faults` null none of this is touched. ---
  const FaultInjector* const faults = cfg_.faults;
  const std::uint32_t max_retries = faults != nullptr ? cfg_.retry.max_retries : 0;
  RetryQueue<StagedMessage> retry_queue;
  // Retransmissions may land past the last scheduled big-round (they still
  // matter: tag-T messages are consumed by on_finish after the loop); the
  // horizon grows to cover them.
  std::uint32_t horizon = num_big_rounds;

  // --- Worker pool and per-worker staging. Workers persist across runs:
  // slot_used is zeroed once at creation (the send loop restores it to zero
  // after every event) and staged/sends keep their warmed-up capacity. ---
  const std::uint32_t num_workers = std::max<std::uint32_t>(1, cfg_.num_threads);
  if (num_workers > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_workers);
  }
  if (scratch.workers.size() != num_workers) {
    scratch.workers.resize(num_workers);
    for (auto& ws : scratch.workers) ws.slot_used.assign(graph_.max_degree(), 0);
  }
  std::vector<WorkerState>& workers = scratch.workers;
  for (auto& ws : workers) {
    ws.delivered = 0;
    ws.skipped = 0;
    ws.staged.clear();
    ws.staged.reserve(scratch.staged_high_water);
    ws.sends.clear();
    ws.sends.reserve(graph_.max_degree());  // sends per event <= degree
  }
  std::uint64_t rounds_parallel = 0;
  std::uint64_t rounds_serial = 0;

  TelemetrySink* const telemetry = cfg_.telemetry;
  TimedSpan run_span(telemetry, "executor", "run");
  if (telemetry != nullptr) {
    telemetry->add_counter("executor.events_executed", total_events);
    telemetry->add_counter("executor.big_rounds", num_big_rounds);
    run_span.arg("algorithms", static_cast<double>(k));
    run_span.arg("big_rounds", static_cast<double>(num_big_rounds));
    run_span.arg("events", static_cast<double>(total_events));
  }

  // --- Congestion profiler + flight recorder (docs/OBSERVABILITY.md). Both
  // are sized HERE, before the steady-state window opens: chained
  // retransmissions extend the horizon by at most sum_{i<R} 2^i = 2^R - 1
  // big-rounds, so the profiler's per-round accumulators never resize inside
  // the loop even on faulty runs. Null pointers keep the engine byte-for-byte
  // the uninstrumented executor. ---
  ExecProfiler* const profiler = cfg_.profiler;
  FlightRecorder* const recorder = cfg_.recorder;
  const std::uint32_t round_headroom =
      max_retries > 0 ? (1u << max_retries) - 1 : 0;
  if (profiler != nullptr) {
    profiler->begin_run(graph_.num_directed_edges(), num_big_rounds, num_workers,
                        round_headroom);
  }
  if (recorder != nullptr) recorder->begin_run(num_workers);

  // Whether the current big-round has a populated CSR inbox arena; false for
  // rounds with no consumable messages, where every event's inbox is empty.
  bool round_has_inbox = false;
  std::size_t round_begin = 0;

  // The per-event body shared by the serial and parallel paths. Everything it
  // mutates is either owned by the event's (alg, node) -- programs, rngs,
  // progress -- or by the executing shard's WorkerState; the round arena and
  // its offsets are read-only during execution, so shards are data-race free.
  auto execute_event = [&](const ExecEvent& ev, std::size_t event_index,
                           WorkerState& ws, std::uint32_t t) {
    if (faults != nullptr && faults->node_crashed(ev.node, t)) {
      // Crash-stop: the node executes nothing from its crash round on. Its
      // progress freezes, so it is never marked completed.
      ++ws.skipped;
      if (recorder != nullptr) {
        recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                         FlightRecorder::Kind::kCrashSkip, t,
                         (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
      }
      return;
    }
    auto& prog_progress = progress[ev.alg][ev.node];
    DASCHED_CHECK_EQ(prog_progress + 1, ev.vround,
                     "executor: out-of-order virtual round");
    prog_progress = ev.vround;

    // This event's inbox: its contiguous slice of the round arena. Messages
    // bound to this round were counting-sorted into per-event slices at the
    // top of the round; events without messages (vround 1, quiet rounds) get
    // a zero-length slice.
    std::span<const VMessage> in;
    if (round_has_inbox) {
      const std::size_t li = event_index - round_begin;
      in = {scratch.round_arena.data() + scratch.inbox_offset[li],
            scratch.inbox_offset[li + 1] - scratch.inbox_offset[li]};
    }
    ws.delivered += in.size();
    if (profiler != nullptr) {
      // Shard-local bumps (no sharing, no atomics): this worker owns its
      // shard; end_round() folds the shards in shard order at the barrier.
      auto& shard = profiler->shards()[&ws - workers.data()];
      ++shard.events;
      shard.inbox += in.size();
    }
    if (recorder != nullptr) {
      recorder->record(static_cast<std::uint32_t>(&ws - workers.data()),
                       FlightRecorder::Kind::kEvent, t,
                       (std::uint64_t{ev.alg} << 32) | ev.vround, ev.node);
    }

    const auto nbrs = graph_.neighbors(ev.node);
    const auto directed = graph_.directed_ids(ev.node);
    ws.sends.clear();
    SendSink sink{nbrs, cfg_.max_payload_words, ws.slot_used.data(), &ws.sends};
    VirtualContext ctx;
    ctx.self_ = ev.node;
    ctx.num_nodes_ = n;
    ctx.vround_ = ev.vround;
    ctx.inbox_ = in;
    ctx.neighbors_ = nbrs;
    ctx.send_fn_ = &SendSink::send;
    ctx.sink_ = &sink;
    ctx.rng_ = &rngs[ev.alg][ev.node];

    programs[ev.alg][ev.node]->on_round(ctx);

    for (const auto& [slot, payload] : ws.sends) {
      ws.slot_used[slot] = 0;
      ws.staged.push_back({ev.alg, ev.vround, nbrs[slot].neighbor, directed[slot],
                           VMessage{ev.node, payload}});
    }
  };

  // --- Steady-state window: everything from here to the end of the loop is
  // allocation-free once arenas are warm; hot_path_allocs measures it. ---
  const std::uint64_t allocs_before = alloc_count();

  // --- Main loop over big-rounds. Rounds >= num_big_rounds exist only when
  // retransmissions extended the horizon; they have no scheduled events. ---
  std::uint64_t delivered_before = 0;
  for (std::uint32_t t = 0; t < horizon; ++t) {
    const std::size_t begin = t < num_big_rounds ? bucket_start[t] : events.size();
    const std::size_t end = t < num_big_rounds ? bucket_start[t + 1] : events.size();
    const std::size_t bucket_size = end - begin;
    round_begin = begin;
    // Telemetry is batched per big-round: the per-event/per-message path
    // below only bumps locals, so a null sink costs nothing and a live sink
    // costs O(1) virtual calls per big-round (plus one histogram sample per
    // touched edge).
    const std::uint64_t violations_before = result.causality_violations;
    TimedSpan round_span(telemetry, "executor", "big_round");

    // --- Gather this round's inboxes: drain the pending bucket bound to t
    // and counting-sort it (stably, preserving delivery order) into one
    // contiguous arena slice per event. Each pending message's consumer
    // executes in this round by construction, so consumer_slot lookups always
    // hit an event of this bucket and stale entries are never read. ---
    round_has_inbox = false;
    const std::uint32_t pend_idx =
        t < scratch.round_bucket.size() ? scratch.round_bucket[t] : kNoBucket;
    if (pend_idx != kNoBucket) {
      auto& pend = scratch.bucket_pool[pend_idx];
      if (!pend.empty()) {
        round_has_inbox = true;
        for (std::size_t i = begin; i < end; ++i) {
          const auto& ev = events[i];
          scratch.consumer_slot[std::size_t{ev.alg} * n + ev.node] =
              static_cast<std::uint32_t>(i - begin);
        }
        scratch.inbox_offset.assign(bucket_size + 1, 0);
        for (const auto& pm : scratch.bucket_pool[pend_idx]) {
          ++scratch.inbox_offset[scratch.consumer_slot[std::size_t{pm.alg} * n + pm.to] + 1];
        }
        for (std::size_t s = 1; s <= bucket_size; ++s) {
          scratch.inbox_offset[s] += scratch.inbox_offset[s - 1];
        }
        scratch.inbox_cursor.assign(scratch.inbox_offset.begin(),
                                    scratch.inbox_offset.end() - 1);
        scratch.round_arena.resize(pend.size());
        for (const auto& pm : pend) {
          const std::uint32_t slot =
              scratch.consumer_slot[std::size_t{pm.alg} * n + pm.to];
          scratch.round_arena[scratch.inbox_cursor[slot]++] = pm.msg;
        }
      }
      pend.clear();
      scratch.free_buckets.push_back(pend_idx);
      scratch.round_bucket[t] = kNoBucket;
    }

    // --- Execute the bucket: statically sharded when large enough. ---
    std::uint32_t shards = 1;
    if (num_workers > 1 && bucket_size >= 2 * kMinEventsPerShard) {
      shards = static_cast<std::uint32_t>(std::min<std::size_t>(
          num_workers, bucket_size / kMinEventsPerShard));
    }
    if (shards <= 1) {
      for (std::size_t i = begin; i < end; ++i) {
        execute_event(events[i], i, workers[0], t);
      }
      ++rounds_serial;
    } else {
      auto shard_body = [&](std::uint32_t s) {
        const std::size_t lo = begin + bucket_size * s / shards;
        const std::size_t hi = begin + bucket_size * (s + 1) / shards;
        auto& ws = workers[s];
        for (std::size_t i = lo; i < hi; ++i) execute_event(events[i], i, ws, t);
      };
      // run_ctx dispatches through one reference capture, so the pool's
      // std::function stays in its small-object buffer: no allocation.
      pool_->run_ctx(shards, shard_body);
      ++rounds_parallel;
    }

    // --- Barrier: deliver staged messages in shard order (this reproduces
    // the serial staging order exactly), account loads, detect violations. ---
    auto account_edge = [&](std::uint32_t d) {
      if (edge_count[d] == 0) touched_edges.push_back(d);
      ++edge_count[d];
    };
    // Bind each delivered message to the big-round in which its consumer
    // executes. Messages whose consumer already ran (a causality violation)
    // or is never scheduled would sit unread in any inbox; they are counted
    // and dropped, which is observationally identical. tag == T messages are
    // consumed by on_finish after the loop and so can never be violated.
    auto deliver = [&](std::uint32_t alg, std::uint32_t tag, NodeId to,
                       const VMessage& msg) {
      if (tag == schedule.rounds(alg)) {
        scratch.finish_pending.push_back({alg, to, msg});
        return;
      }
      const std::uint32_t consumer_time = schedule.row(alg, to)[tag];  // vround tag+1
      if (consumer_time == kNeverScheduled) return;  // consumer never runs
      if (consumer_time <= t) {
        ++result.causality_violations;
        return;
      }
      std::uint32_t idx = scratch.round_bucket[consumer_time];
      if (idx == kNoBucket) {
        if (!scratch.free_buckets.empty()) {
          idx = scratch.free_buckets.back();
          scratch.free_buckets.pop_back();
        } else {
          idx = static_cast<std::uint32_t>(scratch.bucket_pool.size());
          scratch.bucket_pool.emplace_back();
        }
        scratch.round_bucket[consumer_time] = idx;
      }
      scratch.bucket_pool[idx].push_back({alg, to, msg});
    };
    // Faulty-path transmission: one bandwidth slot in this big-round, fate
    // from the injector (pure in the message identity and t), retransmission
    // bookkeeping for the reliable layer.
    auto transmit_faulty = [&](const StagedMessage& sm, std::uint32_t attempt) {
      auto& fs = result.faults;
      ++fs.attempts;
      account_edge(sm.directed_edge);
      ++result.total_messages;
      // Flight-recorder fate entries go to the barrier ring (index
      // num_workers): fates are decided here, serially, in shard-merged order.
      const std::uint64_t fr_key = (std::uint64_t{sm.alg} << 32) | sm.tag;
      bool dropped = false;
      if (faults->link_down(sm.directed_edge / 2, t)) {
        ++fs.dropped_outage;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropOutage, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->node_crashed(sm.to, t)) {
        // A crashed receiver neither stores nor acks the message.
        ++fs.dropped_crash;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropCrash, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      } else if (faults->drop(sm.alg, sm.directed_edge, sm.tag, attempt)) {
        ++fs.dropped_random;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDropRandom, t,
                           fr_key, sm.directed_edge);
        }
        dropped = true;
      }
      if (!dropped) {
        ++fs.delivered;
        if (recorder != nullptr) {
          recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                           fr_key, sm.directed_edge);
        }
        if (faults->duplicate(sm.alg, sm.directed_edge, sm.tag, attempt)) {
          if (max_retries > 0) {
            // The reliable layer's per-edge bookkeeping recognizes the copy.
            ++fs.duplicates_suppressed;
          } else {
            ++fs.duplicated;
            ++fs.delivered;
            if (recorder != nullptr) {
              recorder->record(num_workers, FlightRecorder::Kind::kDuplicate, t,
                               fr_key, sm.directed_edge);
            }
            deliver(sm.alg, sm.tag, sm.to, sm.msg);
          }
        }
        deliver(sm.alg, sm.tag, sm.to, sm.msg);
        return;
      }
      // Dropped. Retransmit with exponential backoff (gap 2^attempt after
      // failed attempt `attempt`) while the sender is alive and budget lasts.
      if (attempt < max_retries) {
        const std::uint32_t retry_round = t + (1u << attempt);
        if (!faults->node_crashed(sm.msg.from, retry_round)) {
          ++fs.retransmissions;
          if (recorder != nullptr) {
            recorder->record(num_workers, FlightRecorder::Kind::kRetry, t,
                             (std::uint64_t{attempt + 1} << 32) | sm.tag,
                             sm.directed_edge);
          }
          if (retry_round >= horizon) {
            horizon = retry_round + 1;
            result.max_load_per_big_round.resize(horizon, 0);
          }
          retry_queue.schedule(retry_round, sm, attempt + 1);
          return;
        }
      }
      ++fs.lost;
      if (recorder != nullptr) {
        recorder->record(num_workers, FlightRecorder::Kind::kLost, t, fr_key,
                         sm.directed_edge);
      }
    };

    std::uint64_t messages_this_round = 0;
    std::uint64_t retries_this_round = 0;
    // Retransmissions due this round go first: they are older than this
    // round's fresh sends, and their queue order is deterministic (scheduled
    // at earlier barriers in shard-merged order).
    if (max_retries > 0) {
      retry_queue.drain_into(t, scratch.retry_due);
      retries_this_round = scratch.retry_due.size();
      messages_this_round += retries_this_round;
      for (const auto& entry : scratch.retry_due) {
        transmit_faulty(entry.msg, entry.attempt);
      }
    }
    for (std::uint32_t w = 0; w < num_workers; ++w) {
      auto& staged = workers[w].staged;
      scratch.staged_high_water = std::max(scratch.staged_high_water, staged.size());
      messages_this_round += staged.size();
      for (const auto& sm : staged) {
        if (cfg_.record_patterns) {
          // Patterns describe what the algorithm sent; retries are excluded.
          result.patterns[sm.alg].record(sm.tag, sm.directed_edge);
        }
        if (faults == nullptr) {
          account_edge(sm.directed_edge);
          ++result.total_messages;
          if (recorder != nullptr) {
            recorder->record(num_workers, FlightRecorder::Kind::kDeliver, t,
                             (std::uint64_t{sm.alg} << 32) | sm.tag,
                             sm.directed_edge);
          }
          deliver(sm.alg, sm.tag, sm.to, sm.msg);
        } else {
          transmit_faulty(sm, 0);
        }
      }
      staged.clear();
    }

    std::uint32_t max_load = 0;
    for (const auto d : touched_edges) {
      max_load = std::max(max_load, edge_count[d]);
      if (cfg_.enforce_unit_capacity && edge_count[d] > 1) {
        // Post-mortem before the hard failure: the rings hold the deliveries
        // leading up to the overflow.
        if (recorder != nullptr) recorder->dump_on("unit_capacity_overflow");
        DASCHED_CHECK_LE(edge_count[d], 1u,
                         "CONGEST bandwidth violated: >1 message per edge per round");
      }
      if (profiler != nullptr) {
        // Touched cells are visited in first-touch order, which is the
        // shard-merged (== serial) staging order: deterministic across
        // thread counts.
        profiler->record_cell(t, d, edge_count[d]);
      }
      if (telemetry != nullptr) {
        telemetry->record_value("executor.edge_load", edge_count[d]);
      }
      edge_count[d] = 0;
    }
    touched_edges.clear();
    result.max_load_per_big_round[t] = max_load;
    result.max_edge_load = std::max(result.max_edge_load, max_load);

    if (profiler != nullptr) {
      profiler->end_round(t, messages_this_round, max_load, retries_this_round);
    }
    if (recorder != nullptr) {
      recorder->record_barrier(t, messages_this_round, max_load);
    }

    if (telemetry != nullptr) {
      std::uint64_t delivered_now = 0;
      for (const auto& ws : workers) delivered_now += ws.delivered;
      telemetry->add_counter("executor.messages_sent", messages_this_round);
      telemetry->add_counter("executor.messages_delivered",
                             delivered_now - delivered_before);
      telemetry->add_counter("executor.causality_violations",
                             result.causality_violations - violations_before);
      telemetry->record_value("executor.max_load_per_big_round", max_load);
      delivered_before = delivered_now;
      round_span.arg("t", t);
      round_span.arg("events", static_cast<double>(bucket_size));
      round_span.arg("messages", static_cast<double>(messages_this_round));
      round_span.arg("max_load", max_load);
    }
  }

  result.hot_path_allocs = alloc_count() - allocs_before;

  // Retransmissions may have extended the run past the scheduled horizon.
  result.num_big_rounds = horizon;
  for (const auto& ws : workers) result.faults.skipped_events += ws.skipped;

  if (profiler != nullptr) profiler->end_run();
  if (recorder != nullptr && faults != nullptr && faults->num_crashes() > 0) {
    // Crash-stop faults fired: leave a post-mortem of the run's last events.
    recorder->dump_on("crash_stop_faults");
  }

  // --- Finish and collect outputs. The tag == T messages accumulated in
  // finish_pending are counting-sorted (stably: delivery order is preserved
  // within each node's slice) into one arena indexed by (alg, node). A
  // crash-stopped node never runs on_finish and is never marked completed,
  // even if it crashed after its last scheduled event. ---
  auto& finish_offset = scratch.finish_offset;
  finish_offset.assign(k * n + 1, 0);
  for (const auto& pm : scratch.finish_pending) {
    ++finish_offset[std::size_t{pm.alg} * n + pm.to + 1];
  }
  for (std::size_t i = 1; i <= k * n; ++i) finish_offset[i] += finish_offset[i - 1];
  scratch.finish_arena.resize(scratch.finish_pending.size());
  {
    auto& cursor = scratch.bucket_cursor;  // reuse: events array is flattened
    cursor.assign(finish_offset.begin(), finish_offset.end() - 1);
    for (const auto& pm : scratch.finish_pending) {
      scratch.finish_arena[cursor[std::size_t{pm.alg} * n + pm.to]++] = pm.msg;
    }
  }

  std::uint64_t delivered_at_finish = 0;
  for (std::size_t a = 0; a < k; ++a) {
    const std::uint32_t rounds = algorithms[a]->rounds();
    result.outputs[a].resize(n);
    result.completed[a].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (progress[a][v] != rounds) continue;
      if (faults != nullptr && faults->crash_round(v) < horizon) continue;
      const std::size_t key = a * n + v;
      const std::span<const VMessage> in{
          scratch.finish_arena.data() + finish_offset[key],
          finish_offset[key + 1] - finish_offset[key]};
      delivered_at_finish += in.size();
      VirtualContext ctx;
      ctx.self_ = v;
      ctx.num_nodes_ = n;
      ctx.vround_ = rounds + 1;
      ctx.inbox_ = in;
      ctx.neighbors_ = graph_.neighbors(v);
      ctx.send_fn_ = nullptr;
      ctx.sink_ = nullptr;
      ctx.rng_ = &rngs[a][v];
      programs[a][v]->on_finish(ctx);
      result.completed[a][v] = 1;
      result.outputs[a][v] = programs[a][v]->output();
    }
  }

  if (telemetry != nullptr) {
    telemetry->add_counter("executor.messages_delivered", delivered_at_finish);
    telemetry->set_gauge("executor.max_edge_load", result.max_edge_load);
    telemetry->set_gauge("executor.parallel.num_threads", num_workers);
    telemetry->add_counter("executor.parallel.rounds_parallel", rounds_parallel);
    telemetry->add_counter("executor.parallel.rounds_serial", rounds_serial);
    run_span.arg("total_messages", static_cast<double>(result.total_messages));
    if (faults != nullptr) {
      // fault.* names are emitted only on faulty runs, so a null injector
      // leaves the telemetry stream byte-identical to the reliable engine.
      const auto& fs = result.faults;
      // Keep big_rounds == rounds_serial + rounds_parallel when retries
      // extended the horizon past the scheduled rounds counted up front.
      telemetry->add_counter("executor.big_rounds", horizon - num_big_rounds);
      telemetry->add_counter("fault.attempts", fs.attempts);
      telemetry->add_counter("fault.delivered", fs.delivered);
      telemetry->add_counter("fault.dropped.random", fs.dropped_random);
      telemetry->add_counter("fault.dropped.outage", fs.dropped_outage);
      telemetry->add_counter("fault.dropped.crash", fs.dropped_crash);
      telemetry->add_counter("fault.duplicates.delivered", fs.duplicated);
      telemetry->add_counter("fault.duplicates.suppressed", fs.duplicates_suppressed);
      telemetry->add_counter("fault.retransmissions", fs.retransmissions);
      telemetry->add_counter("fault.lost", fs.lost);
      telemetry->add_counter("fault.skipped_events", fs.skipped_events);
      telemetry->set_gauge("fault.crashed_nodes", faults->num_crashes());
      telemetry->set_gauge("fault.retry_budget", max_retries);
    }
  }

  return result;
}

}  // namespace dasched
