#include "congest/schedule_table.hpp"

namespace dasched {

ScheduleTable::ScheduleTable(std::span<const DistributedAlgorithm* const> algos,
                             NodeId n)
    : n_(n) {
  rounds_.reserve(algos.size());
  base_.reserve(algos.size());
  std::size_t total = 0;
  for (const auto* algo : algos) {
    rounds_.push_back(algo->rounds());
    base_.push_back(total);
    total += std::size_t{n} * algo->rounds();
  }
  table_.assign(total, kNeverScheduled);
}

ScheduleTable ScheduleTable::from_fn(std::span<const DistributedAlgorithm* const> algos,
                                     NodeId n, const ExecTimeFn& fn) {
  ScheduleTable t(algos, n);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    for (NodeId v = 0; v < n; ++v) {
      auto slots = t.row_mut(a, v);
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        slots[r - 1] = fn(a, v, r);
      }
    }
  }
  return t;
}

ScheduleTable ScheduleTable::from_delays(
    std::span<const DistributedAlgorithm* const> algos, NodeId n,
    std::span<const std::uint32_t> delays) {
  DASCHED_CHECK(delays.size() == algos.size());
  ScheduleTable t(algos, n);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    for (NodeId v = 0; v < n; ++v) {
      auto slots = t.row_mut(a, v);
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        slots[r - 1] = delays[a] + (r - 1);
      }
    }
  }
  return t;
}

ScheduleTable ScheduleTable::lockstep(std::span<const DistributedAlgorithm* const> algos,
                                      NodeId n) {
  std::vector<std::uint32_t> zeros(algos.size(), 0);
  return from_delays(algos, n, zeros);
}

ScheduleTable ScheduleTable::scaled(std::uint32_t factor) const {
  DASCHED_CHECK(factor >= 1);
  ScheduleTable t(*this);
  if (factor == 1) return t;
  for (auto& slot : t.table_) {
    if (slot == kNeverScheduled) continue;
    DASCHED_CHECK_MSG(slot <= (kNeverScheduled - 1) / factor,
                      "scaled schedule overflows the big-round range");
    slot *= factor;
  }
  return t;
}

}  // namespace dasched
