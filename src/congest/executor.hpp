// The scheduled-execution engine.
//
// Everything in this repo -- solo runs, the Theorem 1.1 shared-randomness
// scheduler, and the Theorem 4.1 private-randomness scheduler -- is a special
// case of one operation: run k black-box algorithms where each (algorithm,
// node, virtual round) triple is assigned a *big-round* (the paper's phase) in
// which that node executes that round and transmits its messages. The engine:
//
//  * drives every NodeProgram forward with the exact inbox semantics of a solo
//    execution (messages sent in virtual round r are consumed by the
//    receiver's round r+1),
//  * records per-(big-round, directed-edge) message loads, from which the two
//    schedule-length measures are derived: the adaptive measure
//    sum_t max(1, max_e load(e,t)) and the fixed-phase measure (phases of P
//    physical rounds, overflowing phases counted),
//  * detects causality violations: a message whose consumer was scheduled to
//    run before the message was transmitted. A correct schedule (what the
//    paper's w.h.p. analysis guarantees) has zero violations; the counter
//    exists so experiments can *measure* failures instead of crashing.
//
// De-duplication from Lemma 4.4 ("if a copy of a message has been sent
// before, this message gets dropped ... a node creating a round-j message
// takes into account all messages received about rounds up to j-1") is
// realized structurally: the engine keeps ONE canonical execution per
// (algorithm, node), and the schedule passed in by the private-randomness
// scheduler is the earliest big-round over all clustering layers -- the fixed
// point of the paper's first-copy-wins rule.
//
// Parallel execution: within one big-round every scheduled event is
// independent (each (alg, node) executes at most one event per big-round and
// messages are staged until the round barrier), so the event bucket is
// statically sharded across `ExecConfig::num_threads` pool workers with
// per-shard staging buffers that are merged in shard order at the barrier.
// The result is bit-identical to the serial path for every thread count; see
// docs/PERFORMANCE.md for the argument and the measured scaling curve.
//
// Memory discipline: the message path is allocation-free in steady state.
// Messages travel as compact SoA lanes sized to the *run width* W (see run()):
// a packed u32 header lane (sender + length, congest/message.hpp) and a
// W-strided u64 payload lane, so a message costs 4 + 8*W bytes in staging and
// in the CSR inbox arena instead of a fixed worst-case record. Inboxes are
// not per-(alg, node, tag) vectors but flat arenas: at the delivery barrier
// each message is bound to the big-round in which its consumer executes, and
// at the start of that big-round all of its messages are counting-sorted once
// into contiguous lane slices per event -- each event's inbox is an InboxView
// over those slices. All buffers (worker staging lanes, pending-round
// buckets, the round arena lanes) live in an ExecScratch owned by the
// Executor and are recycled across big-rounds and across runs, so a warmed-up
// run performs zero heap allocations per message;
// ExecutionResult::hot_path_allocs measures this (see docs/PERFORMANCE.md,
// "Memory layout & allocation budget").
//
// Fault injection: an optional `ExecConfig::faults` hook models an unreliable
// network (message drops/duplicates, link outages, crash-stop nodes). All
// fault decisions happen at the (serial, shard-order-merged) delivery barrier
// and are pure functions of the plan seed and the message identity, so faulty
// runs stay bit-identical across thread counts; with the hook null the
// executor is byte-for-byte the reliable engine above. `ExecConfig::retry`
// layers reliable delivery on top: dropped transmissions are re-sent with
// exponential slot backoff (bounded attempts), consuming bandwidth in the
// big-round of each retry; run the schedule through stretch_for_retries so
// the retry slots exist. See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "congest/admission.hpp"
#include "congest/message.hpp"
#include "congest/pattern.hpp"
#include "congest/program.hpp"
#include "congest/schedule_table.hpp"
#include "fault/fault_injector.hpp"
#include "fault/reliable.hpp"
#include "graph/graph.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace dasched {

/// Default byte budget per delivery tile (see ExecConfig::tile_bytes): half
/// an L1 data cache's worth of arena, which keeps one tile's scatter
/// resident while its owner streams messages into it.
inline constexpr std::size_t kDefaultTileBytes = 32 * 1024;

/// Events per delivery tile for a byte budget at a payload width: the largest
/// power of two with tile_events * arena_message_bytes(width) <= tile_bytes,
/// clamped to >= 64 so one inbox-presence bitset word (64 events) never
/// straddles two tiles -- the word-disjointness is what lets tile owners
/// write the bitset without atomics. Narrower run widths therefore get more
/// events per tile out of the same byte budget. Benches report this value
/// next to their --tile-bytes flag.
///
/// Contract: tile_bytes must hold at least one max-width message at the given
/// width -- a budget below arena_message_bytes(width) used to be silently
/// floored to 64 events (i.e. 64x the requested bytes), which hid
/// misconfigured geometry; it is now a hard CHECK (tests/test_tiled_barrier.cpp
/// pins the death).
constexpr std::uint32_t tile_events_for_bytes(std::size_t tile_bytes,
                                              std::uint32_t width = kDefaultMaxPayloadWords) {
  DASCHED_CHECK_MSG(width >= 1 && width <= InlinePayload::kInlineCapacity,
                    "tile geometry width outside the inline payload capacity");
  DASCHED_CHECK_MSG(tile_bytes >= arena_message_bytes(width),
                    "tile_bytes smaller than one max-width arena message");
  const std::size_t budget = tile_bytes / arena_message_bytes(width);
  std::uint32_t events = 64;
  while (std::size_t{events} * 2 <= budget) events *= 2;
  return events;
}

struct ExecConfig {
  std::uint32_t max_payload_words = kDefaultMaxPayloadWords;
  /// Tile geometry of the delivery barrier. Each big-round bucket's
  /// (alg, node) consumer space is split into tiles of
  /// tile_events_for_bytes(tile_bytes) consecutive events; contiguous tile
  /// ranges are statically owned by pool workers, which histogram and
  /// scatter only tiles they own (no atomics) and execute the same tiles'
  /// events the next round (temporal locality across the barrier). Purely a
  /// cache tuning knob: every value produces bit-identical ExecutionResults
  /// (docs/PERFORMANCE.md, "Memory layout & allocation budget").
  std::size_t tile_bytes = kDefaultTileBytes;
  /// Record per-algorithm communication patterns (indexed by virtual round).
  bool record_patterns = false;
  /// Enforce the raw CONGEST bound of one message per directed edge per
  /// big-round -- used by the solo Simulator where big-round == round.
  bool enforce_unit_capacity = false;
  /// Worker threads for big-round execution. 0 and 1 both mean serial; N >= 2
  /// spawns a pool of N workers (N - 1 threads plus the calling thread) that
  /// is reused across big-rounds and runs. Every value produces bit-identical
  /// ExecutionResults (asserted by tests/test_parallel_executor.cpp); pick
  /// hardware concurrency for throughput (docs/PERFORMANCE.md).
  std::uint32_t num_threads = 0;
  /// Optional telemetry sink (borrowed; must outlive the Executor). Null --
  /// the default -- disables all instrumentation: the message hot path then
  /// performs no telemetry calls and no telemetry allocations. When set, the
  /// executor emits (see docs/OBSERVABILITY.md for the full name list):
  ///   spans      executor/run, executor/big_round (one per big-round, with
  ///              events/messages/max_load args)
  ///   counters   executor.events_executed, executor.messages_sent,
  ///              executor.messages_delivered, executor.causality_violations,
  ///              executor.big_rounds, executor.parallel.rounds_parallel,
  ///              executor.parallel.rounds_serial
  ///   gauges     executor.max_edge_load, executor.parallel.num_threads
  ///   histograms executor.edge_load (per touched directed edge per
  ///              big-round), executor.max_load_per_big_round
  TelemetrySink* telemetry = nullptr;
  /// Optional fault injector (borrowed; must outlive the run). Null -- the
  /// default -- models the paper's perfectly reliable network; results are
  /// then bit-identical to a build without the fault subsystem, and no
  /// fault.* telemetry is emitted. When set, every transmission attempt
  /// consults the injector at the delivery barrier (drops, duplicates, link
  /// outages) and crash-stopped nodes skip their scheduled events; the run
  /// additionally fills ExecutionResult::faults and emits fault.* counters
  /// (docs/FAULTS.md lists them).
  const FaultInjector* faults = nullptr;
  /// Reliable-delivery retransmission policy; consulted only when `faults`
  /// is set. With max_retries > 0, run the schedule through
  /// stretch_for_retries(schedule, retry) so retry slots exist between
  /// original big-rounds -- then every retransmission lands strictly before
  /// the consumers that depend on it (fault/reliable.hpp).
  RetryPolicy retry;
  /// Optional pre-execution admission gate (borrowed; must outlive the run).
  /// Null -- the default -- skips the gate entirely and the engine is
  /// byte-for-byte the ungated executor. When set, `admit()` is consulted
  /// once before any event executes; a rejection is a hard contract failure
  /// (the executor aborts). Pass a verify::VerifyingAdmission to statically
  /// prove the paper's schedule invariants at admission time
  /// (docs/VERIFICATION.md).
  const ScheduleAdmission* admission = nullptr;
  /// Optional congestion profiler (borrowed; must outlive the run). Null --
  /// the default -- leaves the engine byte-for-byte unprofiled. When set, the
  /// executor sizes the profiler once per run (begin_run, with retry
  /// headroom), bumps per-worker shard counters during event execution, and
  /// records every touched (directed edge, big-round) load cell at the serial
  /// delivery barrier -- so profiled runs stay bit-identical across thread
  /// counts and allocation-free in steady state. The profiler only observes;
  /// ExecutionResults are unchanged (tests/test_profiler.cpp pins both).
  ExecProfiler* profiler = nullptr;
  /// Optional flight recorder (borrowed; must outlive the run). Null -- the
  /// default -- records nothing. When set, each worker logs its executions
  /// and crash skips to its own bounded ring and the delivery barrier logs
  /// per-message fates and per-round summaries; the executor dumps a
  /// post-mortem JSON document (FlightRecorderConfig::dump_path) when the
  /// admission gate rejects a schedule, a unit-capacity round overflows, or
  /// crash-stop faults fired during the run. See docs/OBSERVABILITY.md.
  FlightRecorder* recorder = nullptr;
};

struct ExecutionResult {
  /// outputs[alg][node]; meaningful only where completed[alg][node] is true.
  std::vector<std::vector<std::vector<std::uint64_t>>> outputs;  // perf-ok: filled once per run
  /// completed[alg][node]: node executed all rounds() rounds plus on_finish.
  std::vector<std::vector<std::uint8_t>> completed;  // perf-ok: filled once per run

  std::uint64_t causality_violations = 0;
  std::uint64_t total_messages = 0;
  std::uint32_t num_big_rounds = 0;
  /// max over directed edges of the message load, per big-round.
  std::vector<std::uint32_t> max_load_per_big_round;  // perf-ok: one entry per big-round
  std::uint32_t max_edge_load = 0;

  /// Per-algorithm patterns (virtual-round indexed); only if record_patterns.
  std::vector<CommunicationPattern> patterns;  // perf-ok: opt-in recording, per run

  /// Heap allocations observed during the big-round loop (event execution
  /// plus delivery barriers) -- the steady-state message path. Non-zero only
  /// in binaries that link util/alloc_hooks.cpp (bench_e13_message_hotpath,
  /// test_hotpath); 0 everywhere else. With telemetry off and allocation-free
  /// programs this is 0 from the second run of an Executor onwards (the first
  /// run warms the arenas up to their high-water marks).
  std::uint64_t hot_path_allocs = 0;

  /// Fault accounting; all-zero unless ExecConfig::faults was set.
  struct FaultStats {
    std::uint64_t attempts = 0;        // transmissions incl. retransmissions
    std::uint64_t delivered = 0;       // copies appended to an inbox
    std::uint64_t dropped_random = 0;  // lost to Bernoulli(drop_rate)
    std::uint64_t dropped_outage = 0;  // lost to a link outage
    std::uint64_t dropped_crash = 0;   // receiver already crashed (never acks)
    std::uint64_t duplicated = 0;      // extra copies delivered (no reliable layer)
    std::uint64_t duplicates_suppressed = 0;  // deduped by the reliable layer
    std::uint64_t retransmissions = 0;
    std::uint64_t lost = 0;            // budget exhausted or sender crashed
    std::uint64_t skipped_events = 0;  // events not executed: crash-stop
    std::uint64_t dropped() const {
      return dropped_random + dropped_outage + dropped_crash;
    }
    friend bool operator==(const FaultStats&, const FaultStats&) = default;
  };
  FaultStats faults;

  /// Realized schedule length if every big-round lasts exactly as many
  /// physical rounds as its busiest edge needs (>= 1).
  std::uint64_t adaptive_physical_rounds() const;

  struct FixedPhase {
    std::uint64_t physical_rounds;
    std::uint64_t overflowing_phases;  // phases whose max load exceeded the length
  };
  /// Realized length with fixed phases of `phase_len` physical rounds (the
  /// paper's w.h.p. regime); overflows indicate the schedule failed.
  FixedPhase fixed_phase(std::uint32_t phase_len) const;

  bool all_completed() const;
};

/// Canonical fingerprint of an ExecutionResult: FNV-1a (util/fingerprint.hpp)
/// over the per-(alg, node) outputs (size then words), the completion flags,
/// and the per-big-round max loads -- exactly the fields the bit-identity
/// contract pins across thread counts, tile sizes, and observer attachments.
/// The golden constants in tests/test_fault.cpp and tests/test_profiler.cpp
/// are digests of this function; the service layer folds it into its own
/// end-to-end fingerprint (src/service/daemon.hpp).
std::uint64_t result_fingerprint(const ExecutionResult& result);

/// Reusable execution buffers (worker staging, pending-round delivery
/// buckets, the CSR inbox arena); owned by the Executor so repeated runs
/// reuse warmed-up capacity. Defined in executor.cpp.
struct ExecScratch;

class Executor {
 public:
  /// Aborts if cfg.max_payload_words exceeds the compile-time inline payload
  /// capacity (InlinePayload::kInlineCapacity): there is deliberately no heap
  /// spill path on the message hot path -- raise
  /// -DDASCHED_PAYLOAD_INLINE_WORDS instead. Also aborts if cfg.tile_bytes
  /// cannot hold even one max-width arena message (see tile_events_for_bytes).
  explicit Executor(const Graph& g, ExecConfig cfg = {});
  ~Executor();

  /// Runs all algorithms under the given schedule. Algorithms are borrowed
  /// (must outlive the call). The schedule is validated (gap-free prefix,
  /// strictly increasing big-rounds per (alg, node)) before execution.
  ///
  /// The *run width* -- the payload-word stride of every staging and delivery
  /// lane -- is derived here, once per run: the maximum declared
  /// StaticFootprint::max_payload_words when every admitted algorithm
  /// declares one, else cfg.max_payload_words (always clamped to
  /// [1, cfg.max_payload_words]). Execution then dispatches to a
  /// width-specialized instantiation of the engine, so every per-message copy
  /// is a fixed-size move the compiler vectorizes. Results are bit-identical
  /// across widths >= what the algorithms actually send.
  ExecutionResult run(std::span<const DistributedAlgorithm* const> algorithms,
                      const ScheduleTable& schedule);

  /// Convenience overload: materializes the callback into a ScheduleTable
  /// (one call per slot) and runs it.
  ExecutionResult run(std::span<const DistributedAlgorithm* const> algorithms,
                      const ExecTimeFn& exec_time);

 private:
  /// The width-specialized engine body; W is the run width in payload words
  /// (1..InlinePayload::kInlineCapacity). Instantiated in executor.cpp for
  /// every supported width by run()'s dispatch.
  template <std::uint32_t W>
  ExecutionResult run_impl(std::span<const DistributedAlgorithm* const> algorithms,
                           const ScheduleTable& schedule);

  const Graph& graph_;
  ExecConfig cfg_;
  /// Lazily created on the first parallel run; reused across runs.
  std::unique_ptr<ThreadPool> pool_;
  /// Arena-backed scratch recycled across big-rounds and runs.
  std::unique_ptr<ExecScratch> scratch_;
};

}  // namespace dasched
