// Dense materialized big-round schedules.
//
// A schedule assigns every (algorithm, node, virtual round) triple the
// big-round in which that node executes the round, or kNeverScheduled. The
// executor used to consume schedules as a `std::function` callback, which put
// a type-erased indirect call on the hottest loop in the repo (once per slot
// at table-build time *and* once per delivered message for the causality
// check). ScheduleTable stores the same mapping as one contiguous
// `std::uint32_t` array -- row (alg, node) lives at
// `base[alg] + node * rounds[alg]` -- so every schedule lookup is a single
// indexed load, and the per-(alg, node) row is a span the executor can walk.
//
// Schedulers build tables directly (from per-algorithm delays, or slot by
// slot), and the callback form survives as `ScheduleTable::from_fn` plus a
// convenience `Executor::run` overload. Validation (gap-free round prefix per
// (alg, node), strictly increasing big-rounds) stays in the executor, which
// checks whatever table it is handed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "congest/program.hpp"
#include "graph/graph.hpp"

namespace dasched {

/// Returned by a schedule for rounds a node never executes (e.g. truncated by
/// its clustering radius, Lemma 4.4).
inline constexpr std::uint32_t kNeverScheduled = ~std::uint32_t{0};

/// Big-round (0-based) at which node `v` executes virtual round `r` (1-based)
/// of algorithm `alg`, or kNeverScheduled. For every (alg, v) the scheduled
/// rounds must be a gap-free prefix 1..p with strictly increasing big-rounds
/// (checked by the executor).
using ExecTimeFn =
    std::function<std::uint32_t(std::size_t alg, NodeId v, std::uint32_t r)>;

class ScheduleTable {
 public:
  ScheduleTable() = default;

  /// An all-kNeverScheduled table for `algos.size()` algorithms over `n`
  /// nodes, sized from each algorithm's rounds(). Fill via row_mut()/set().
  ScheduleTable(std::span<const DistributedAlgorithm* const> algos, NodeId n);

  /// Materializes a callback schedule (one call per slot, never again).
  static ScheduleTable from_fn(std::span<const DistributedAlgorithm* const> algos,
                               NodeId n, const ExecTimeFn& fn);

  /// Delay schedule: round r of algorithm a runs in big-round delays[a] + r - 1
  /// at every node (Theorem 1.1 / sequential offsets / Moser-Tardos frames).
  static ScheduleTable from_delays(std::span<const DistributedAlgorithm* const> algos,
                                   NodeId n, std::span<const std::uint32_t> delays);

  /// Solo lockstep: virtual round r runs in big-round r - 1.
  static ScheduleTable lockstep(std::span<const DistributedAlgorithm* const> algos,
                                NodeId n);

  /// A copy with every scheduled slot multiplied by `factor` (kNeverScheduled
  /// preserved). This is the retry-slot stretch of the reliable-delivery
  /// layer (fault/reliable.hpp): factor - 1 empty big-rounds open up after
  /// each original one, preserving validity (gap-free prefixes stay gap-free,
  /// strictly increasing stays strictly increasing) and relative order.
  ScheduleTable scaled(std::uint32_t factor) const;

  std::size_t num_algorithms() const { return rounds_.size(); }
  NodeId num_nodes() const { return n_; }
  std::uint32_t rounds(std::size_t a) const { return rounds_[a]; }

  /// Big-round of (a, v, r), r 1-based; kNeverScheduled if never executed.
  std::uint32_t at(std::size_t a, NodeId v, std::uint32_t r) const {
    return table_[index(a, v, r)];
  }
  void set(std::size_t a, NodeId v, std::uint32_t r, std::uint32_t big_round) {
    table_[index(a, v, r)] = big_round;
  }

  /// Row of (a, v): big-rounds of virtual rounds 1..rounds(a), index r-1.
  std::span<const std::uint32_t> row(std::size_t a, NodeId v) const {
    return {table_.data() + base_[a] + std::size_t{v} * rounds_[a], rounds_[a]};
  }
  std::span<std::uint32_t> row_mut(std::size_t a, NodeId v) {
    return {table_.data() + base_[a] + std::size_t{v} * rounds_[a], rounds_[a]};
  }

  // --- Flat structure-of-arrays view (the executor's delivery barrier). ---
  // The table is one dense u32 lane; exposing its layout lets the executor
  // keep *parallel* per-slot lanes (e.g. the consumer-slot index of every
  // (alg, node, vround) within its big-round bucket) and turn a delivery
  // lookup into two indexed loads with no per-message row-span arithmetic.

  /// Total number of (alg, node, vround) slots in the dense table.
  std::size_t flat_size() const { return table_.size(); }

  /// Position of (a, v, r) in flat(); the same index is valid into any lane
  /// an engine keeps parallel to the table.
  std::size_t slot_index(std::size_t a, NodeId v, std::uint32_t r) const {
    return index(a, v, r);
  }

  /// The dense big-round lane itself: flat()[slot_index(a, v, r)] == at(a, v, r).
  std::span<const std::uint32_t> flat() const { return table_; }

 private:
  std::size_t index(std::size_t a, NodeId v, std::uint32_t r) const {
    DASCHED_DCHECK(a < rounds_.size() && v < n_ && r >= 1 && r <= rounds_[a]);
    return base_[a] + std::size_t{v} * rounds_[a] + (r - 1);
  }

  NodeId n_ = 0;
  std::vector<std::uint32_t> rounds_;  // perf-ok: per algorithm, built once
  std::vector<std::size_t> base_;      // perf-ok: per algorithm offset into table_
  std::vector<std::uint32_t> table_;   // perf-ok: big-rounds, built once per schedule
};

}  // namespace dasched
