// Communication patterns (Section 2, Figure 1 of the paper).
//
// The communication pattern of a T-round algorithm is the subgraph of the
// time-expanded graph G x [T] consisting of the (round, directed edge) pairs
// on which the algorithm sends a message. Patterns capture the *footprint*
// of an algorithm, not message content; `congestion` and `dilation` -- the
// two parameters every bound in the paper is stated in -- are functions of
// the patterns alone.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dasched {

class CommunicationPattern {
 public:
  CommunicationPattern() = default;
  explicit CommunicationPattern(std::uint32_t num_directed_edges)
      : edge_load_(num_directed_edges, 0) {}

  /// Records a message sent in virtual round `round` (1-based) over directed
  /// edge `directed_edge`.
  void record(std::uint32_t round, std::uint32_t directed_edge);

  /// Largest round containing a message (0 if the pattern is empty).
  std::uint32_t last_message_round() const {
    return static_cast<std::uint32_t>(by_round_.size());
  }

  std::uint64_t total_messages() const { return total_; }

  std::uint32_t edge_load(std::uint32_t directed_edge) const {
    return edge_load_[directed_edge];
  }

  /// Max load over directed edges: this pattern's contribution to congestion.
  std::uint32_t max_edge_load() const;

  std::uint32_t num_directed_edges() const {
    return static_cast<std::uint32_t>(edge_load_.size());
  }

  /// Directed edges used in round r (1-based); empty span past the last round.
  std::span<const std::uint32_t> edges_in_round(std::uint32_t round) const;

 private:
  std::vector<std::vector<std::uint32_t>> by_round_;  // perf-ok: index r-1 -> edges, opt-in recording
  std::vector<std::uint32_t> edge_load_;  // perf-ok: per directed edge, sized once
  std::uint64_t total_ = 0;
};

/// congestion of a problem instance: max over directed edges of the summed
/// load of all patterns (the paper's `congestion = max_e sum_i c_i(e)`).
std::uint32_t combined_congestion(std::span<const CommunicationPattern> patterns);

/// Per-directed-edge combined load vector.
std::vector<std::uint32_t> combined_edge_load(std::span<const CommunicationPattern> patterns);

/// Big-round assignment for a node's virtual rounds (Section 2's simulation
/// mapping f, restricted to lockstep-per-node schedules): returns the
/// big-round in which node v executes virtual round r, or kNeverScheduled.
using NodeRoundTime =
    std::function<std::uint32_t(NodeId v, std::uint32_t vround)>;

/// Checks that a schedule is a valid *simulation* of the pattern in the
/// paper's Section 2 sense: causal precedence is preserved, i.e. every
/// message (u -> v, sent in round r) is transmitted strictly before the
/// receiver executes round r+1 (where it consumes the message). Returns the
/// number of violated message constraints; 0 means the mapping is a
/// simulation. Never-scheduled consumer rounds impose no constraint (the
/// receiver truncated its execution), matching Lemma 4.4's discard rule.
std::uint64_t simulation_violations(const Graph& g, const CommunicationPattern& pattern,
                                    const NodeRoundTime& time);

}  // namespace dasched
