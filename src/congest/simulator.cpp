#include "congest/simulator.hpp"

#include "util/check.hpp"

namespace dasched {

SoloRunResult Simulator::run(const DistributedAlgorithm& algorithm) const {
  ExecConfig cfg;
  cfg.max_payload_words = max_payload_words_;
  cfg.record_patterns = true;
  cfg.enforce_unit_capacity = true;
  cfg.telemetry = telemetry_;
  Executor executor(graph_, cfg);

  TimedSpan span(telemetry_, "simulator", "run");
  if (telemetry_ != nullptr) {
    telemetry_->add_counter("simulator.runs", 1);
    span.arg("rounds", algorithm.rounds());
  }

  const DistributedAlgorithm* algos[] = {&algorithm};
  // Lockstep: virtual round r runs in big-round r-1.
  auto exec = executor.run(algos, ScheduleTable::lockstep(algos, graph_.num_nodes()));

  DASCHED_CHECK(exec.causality_violations == 0);
  DASCHED_CHECK(exec.all_completed());

  SoloRunResult result;
  result.outputs = std::move(exec.outputs[0]);
  result.pattern = std::move(exec.patterns[0]);
  result.total_messages = exec.total_messages;
  result.last_message_round = result.pattern.last_message_round();
  return result;
}

}  // namespace dasched
