// Messages in the CONGEST model.
//
// The CONGEST model allows one O(log n)-bit message per directed edge per
// round. We represent message content as a small vector of 64-bit words; the
// execution engine enforces a configurable word budget per message
// (conceptually each word is one O(log n)-bit field). Scheduling headers
// (algorithm id, virtual round, clustering layer) are accounted separately --
// the paper explicitly allows "adding a small amount of information to the
// header" of black-box messages.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dasched {

using Payload = std::vector<std::uint64_t>;

/// A message as seen by a NodeProgram: sender plus opaque content.
struct VMessage {
  NodeId from;
  Payload payload;
};

/// Default cap on content words per message. Each word is one O(log n)-bit
/// field (an id, a hop count, a weight); the largest message in this repo is
/// an MST edge record {weight, u, v, fragment(u), fragment(v)} -- five
/// fields, i.e. still a single O(log n)-bit CONGEST message.
inline constexpr std::uint32_t kDefaultMaxPayloadWords = 5;

}  // namespace dasched
