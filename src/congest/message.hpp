// Messages in the CONGEST model.
//
// The CONGEST model allows one O(log n)-bit message per directed edge per
// round. We represent message content as a small fixed-capacity sequence of
// 64-bit words stored *inline* (no heap): conceptually each word is one
// O(log n)-bit field, and the execution engine enforces a configurable word
// budget per message. Scheduling headers (algorithm id, virtual round,
// clustering layer) are accounted separately -- the paper explicitly allows
// "adding a small amount of information to the header" of black-box messages.
//
// Why inline storage matters: the executor moves every message through a
// staging buffer and a delivery arena (congest/executor.cpp). With a
// heap-backed payload each of those hops is an allocator round-trip; with an
// inline payload a message is a trivially-copyable value and the whole
// send/stage/deliver path is allocation-free (docs/PERFORMANCE.md, "Memory
// layout & allocation budget").
#pragma once

#include <cstdint>
#include <initializer_list>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace dasched {

/// Default cap on content words per message. Each word is one O(log n)-bit
/// field (an id, a hop count, a weight); the largest message in this repo is
/// an MST edge record {weight, u, v, fragment(u), fragment(v)} -- five
/// fields, i.e. still a single O(log n)-bit CONGEST message.
inline constexpr std::uint32_t kDefaultMaxPayloadWords = 5;

/// Compile-time inline capacity of a payload, in 64-bit words. Configs may
/// lower ExecConfig::max_payload_words freely; raising it beyond this
/// capacity requires recompiling with -DDASCHED_PAYLOAD_INLINE_WORDS=<n>
/// (the executor checks and aborts otherwise -- there is deliberately no
/// heap spill path on the message hot path).
#ifndef DASCHED_PAYLOAD_INLINE_WORDS
#define DASCHED_PAYLOAD_INLINE_WORDS 5
#endif

/// Fixed-capacity inline message content: up to kInlineCapacity 64-bit words
/// plus a length, no heap. Mirrors the slice of the std::vector interface the
/// algorithms use ({...} construction, at/operator[], iteration, size), so a
/// NodeProgram reads exactly like it did when Payload was a vector -- but the
/// type is trivially copyable, which is what lets the executor treat staged
/// and delivered messages as raw relocatable bytes.
class InlinePayload {
 public:
  using value_type = std::uint64_t;

  static constexpr std::uint32_t kInlineCapacity = DASCHED_PAYLOAD_INLINE_WORDS;
  static_assert(kInlineCapacity >= 1);

  InlinePayload() = default;

  InlinePayload(std::initializer_list<std::uint64_t> words) {
    DASCHED_CHECK_MSG(words.size() <= kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    len_ = static_cast<std::uint32_t>(words.size());
    std::uint32_t i = 0;
    for (const auto w : words) words_[i++] = w;
  }

  /// Fill constructor (vector-compatible): `count` copies of `value`.
  InlinePayload(std::size_t count, std::uint64_t value) {
    DASCHED_CHECK_MSG(count <= kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    len_ = static_cast<std::uint32_t>(count);
    for (std::uint32_t i = 0; i < len_; ++i) words_[i] = value;
  }

  std::uint32_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  static constexpr std::uint32_t capacity() { return kInlineCapacity; }

  /// Bounds-checked access (vector::at without the exception machinery: a
  /// contract failure aborts, matching the repo-wide DASCHED_CHECK style).
  std::uint64_t at(std::uint32_t i) const {
    DASCHED_CHECK_LT(i, len_, "payload index out of range");
    return words_[i];
  }

  std::uint64_t operator[](std::uint32_t i) const {
    DASCHED_DCHECK(i < len_);
    return words_[i];
  }
  std::uint64_t& operator[](std::uint32_t i) {
    DASCHED_DCHECK(i < len_);
    return words_[i];
  }

  std::uint64_t front() const { return at(0); }
  std::uint64_t back() const { return at(len_ - 1); }

  void push_back(std::uint64_t w) {
    DASCHED_CHECK_MSG(len_ < kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    words_[len_++] = w;
  }
  void clear() { len_ = 0; }

  const std::uint64_t* data() const { return words_; }
  const std::uint64_t* begin() const { return words_; }
  const std::uint64_t* end() const { return words_ + len_; }

  friend bool operator==(const InlinePayload& a, const InlinePayload& b) {
    if (a.len_ != b.len_) return false;
    for (std::uint32_t i = 0; i < a.len_; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    return true;
  }

 private:
  std::uint32_t len_ = 0;
  std::uint64_t words_[kInlineCapacity];  // words past len_ are indeterminate
};

using Payload = InlinePayload;

/// A message as seen by a NodeProgram: sender plus opaque content.
struct VMessage {
  NodeId from;
  Payload payload;
};

// The executor's staging buffers and delivery arenas rely on messages being
// raw relocatable bytes; see docs/PERFORMANCE.md.
static_assert(std::is_trivially_copyable_v<InlinePayload>);
static_assert(std::is_trivially_copyable_v<VMessage>);
static_assert(std::is_trivially_destructible_v<VMessage>);

/// Bytes one delivered message occupies in the executor's CSR inbox arena;
/// the delivery barrier's tile geometry (ExecConfig::tile_bytes) is expressed
/// in multiples of this. The alignment assert keeps tile boundaries on the
/// arena's natural 8-byte grid.
inline constexpr std::size_t kArenaMessageBytes = sizeof(VMessage);
static_assert(alignof(VMessage) == alignof(std::uint64_t));

}  // namespace dasched
