// Messages in the CONGEST model.
//
// The CONGEST model allows one O(log n)-bit message per directed edge per
// round. We represent message content as a small fixed-capacity sequence of
// 64-bit words stored *inline* (no heap): conceptually each word is one
// O(log n)-bit field, and the execution engine enforces a configurable word
// budget per message. Scheduling headers (algorithm id, virtual round,
// clustering layer) are accounted separately -- the paper explicitly allows
// "adding a small amount of information to the header" of black-box messages.
//
// Why inline storage matters: the executor moves every message through a
// staging buffer and a delivery arena (congest/executor.cpp). With a
// heap-backed payload each of those hops is an allocator round-trip; with an
// inline payload a message is a trivially-copyable value and the whole
// send/stage/deliver path is allocation-free (docs/PERFORMANCE.md, "Memory
// layout & allocation budget").
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace dasched {

/// Default cap on content words per message. Each word is one O(log n)-bit
/// field (an id, a hop count, a weight); the largest message in this repo is
/// an MST edge record {weight, u, v, fragment(u), fragment(v)} -- five
/// fields, i.e. still a single O(log n)-bit CONGEST message.
inline constexpr std::uint32_t kDefaultMaxPayloadWords = 5;

/// Compile-time inline capacity of a payload, in 64-bit words. Configs may
/// lower ExecConfig::max_payload_words freely; raising it beyond this
/// capacity requires recompiling with -DDASCHED_PAYLOAD_INLINE_WORDS=<n>
/// (the executor checks and aborts otherwise -- there is deliberately no
/// heap spill path on the message hot path).
#ifndef DASCHED_PAYLOAD_INLINE_WORDS
#define DASCHED_PAYLOAD_INLINE_WORDS 5
#endif

/// Fixed-capacity inline message content: up to kInlineCapacity 64-bit words
/// plus a length, no heap. Mirrors the slice of the std::vector interface the
/// algorithms use ({...} construction, at/operator[], iteration, size), so a
/// NodeProgram reads exactly like it did when Payload was a vector -- but the
/// type is trivially copyable, which is what lets the executor treat staged
/// and delivered messages as raw relocatable bytes.
class InlinePayload {
 public:
  using value_type = std::uint64_t;

  static constexpr std::uint32_t kInlineCapacity = DASCHED_PAYLOAD_INLINE_WORDS;
  static_assert(kInlineCapacity >= 1);

  InlinePayload() = default;

  InlinePayload(std::initializer_list<std::uint64_t> words) {
    DASCHED_CHECK_MSG(words.size() <= kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    len_ = static_cast<std::uint32_t>(words.size());
    std::uint32_t i = 0;
    for (const auto w : words) words_[i++] = w;
  }

  /// Fill constructor (vector-compatible): `count` copies of `value`.
  InlinePayload(std::size_t count, std::uint64_t value) {
    DASCHED_CHECK_MSG(count <= kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    len_ = static_cast<std::uint32_t>(count);
    for (std::uint32_t i = 0; i < len_; ++i) words_[i] = value;
  }

  std::uint32_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  static constexpr std::uint32_t capacity() { return kInlineCapacity; }

  /// Bounds-checked access (vector::at without the exception machinery: a
  /// contract failure aborts, matching the repo-wide DASCHED_CHECK style).
  std::uint64_t at(std::uint32_t i) const {
    DASCHED_CHECK_LT(i, len_, "payload index out of range");
    return words_[i];
  }

  std::uint64_t operator[](std::uint32_t i) const {
    DASCHED_DCHECK(i < len_);
    return words_[i];
  }
  std::uint64_t& operator[](std::uint32_t i) {
    DASCHED_DCHECK(i < len_);
    return words_[i];
  }

  std::uint64_t front() const { return at(0); }
  std::uint64_t back() const { return at(len_ - 1); }

  void push_back(std::uint64_t w) {
    DASCHED_CHECK_MSG(len_ < kInlineCapacity,
                      "message exceeds the CONGEST word budget (inline payload capacity)");
    words_[len_++] = w;
  }
  void clear() { len_ = 0; }

  const std::uint64_t* data() const { return words_; }
  const std::uint64_t* begin() const { return words_; }
  const std::uint64_t* end() const { return words_ + len_; }

  friend bool operator==(const InlinePayload& a, const InlinePayload& b) {
    if (a.len_ != b.len_) return false;
    for (std::uint32_t i = 0; i < a.len_; ++i) {
      if (a.words_[i] != b.words_[i]) return false;
    }
    return true;
  }

 private:
  std::uint32_t len_ = 0;
  // Zero-initialized so the executor's width-specialized lane copies may move
  // a fixed W words per message without ever reading indeterminate bytes.
  std::uint64_t words_[kInlineCapacity] = {};
};

using Payload = InlinePayload;

/// A message as one owning value: sender plus full-capacity inline content.
/// This is a *boundary* type (tests, examples, documentation of the logical
/// record) -- the executor's staging and delivery lanes store the compact
/// width-strided layout below instead, and programs read their inbox through
/// MsgView/InboxView.
struct VMessage {
  NodeId from;
  Payload payload;
};

// The executor's staging buffers and delivery arenas rely on messages being
// raw relocatable bytes; see docs/PERFORMANCE.md.
static_assert(std::is_trivially_copyable_v<InlinePayload>);
static_assert(std::is_trivially_copyable_v<VMessage>);
static_assert(std::is_trivially_destructible_v<VMessage>);
static_assert(alignof(VMessage) == alignof(std::uint64_t));

// ---------------------------------------------------------------------------
// Compact lane layout (the width-dispatch layer).
//
// The executor never moves VMessage values through staging or the CSR inbox.
// Messages travel as two parallel lanes sized once per run to the *run width*
// W (the largest payload any admitted algorithm may send):
//
//   header lane : one u32 per message -- sender id and payload length packed
//                 into 32 bits (see pack_msg_header below)
//   payload lane: W u64 words per message, densely strided (message i's words
//                 live at [i*W, i*W + W))
//
// so a delivered message costs 4 + 8*W bytes instead of sizeof(VMessage)
// regardless of what the algorithms actually send. NodePrograms observe the
// lanes through the view types below; nothing outside this layer may reason
// about sizeof(VMessage) (lint_determinism.py enforces this).

/// Bits of the packed header reserved for the payload length. Sized to the
/// compile-time inline capacity so raising DASCHED_PAYLOAD_INLINE_WORDS
/// automatically widens the length field (and narrows the sender field).
inline constexpr std::uint32_t kMsgHeaderLenBits =
    std::uint32_t{std::bit_width(InlinePayload::kInlineCapacity)};
inline constexpr std::uint32_t kMsgHeaderFromBits = 32 - kMsgHeaderLenBits;

/// Largest node count addressable by a packed header's sender field. The
/// executor checks n against this at the start of every run; beyond it the
/// header would need to grow to 64 bits (a deliberate future fork, not a
/// silent truncation).
inline constexpr std::uint64_t kMaxPackedHeaderNodes = std::uint64_t{1}
                                                       << kMsgHeaderFromBits;
static_assert(kMsgHeaderLenBits >= 1 && kMsgHeaderLenBits < 16);

inline constexpr std::uint32_t pack_msg_header(NodeId from, std::uint32_t len) {
  return (len << kMsgHeaderFromBits) | from;
}
inline constexpr NodeId msg_header_from(std::uint32_t header) {
  return header & (static_cast<std::uint32_t>(kMaxPackedHeaderNodes - 1));
}
inline constexpr std::uint32_t msg_header_len(std::uint32_t header) {
  return header >> kMsgHeaderFromBits;
}

/// Bytes one delivered message occupies in the compact CSR inbox arena at a
/// given run width: a packed u32 header plus `width` u64 payload words. The
/// delivery barrier's tile geometry (ExecConfig::tile_bytes) is expressed in
/// multiples of this.
inline constexpr std::size_t arena_message_bytes(std::uint32_t width) {
  return sizeof(std::uint32_t) + std::size_t{width} * sizeof(std::uint64_t);
}

/// Read-only view of one message's payload words inside a lane. Mirrors the
/// const slice of InlinePayload's interface so NodeProgram code reads
/// identically against either; converts implicitly to InlinePayload for the
/// rare consumer that stores a copy.
class PayloadView {
 public:
  using value_type = std::uint64_t;

  PayloadView() = default;
  PayloadView(const std::uint64_t* words, std::uint32_t len) : words_(words), len_(len) {}

  std::uint32_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  std::uint64_t at(std::uint32_t i) const {
    DASCHED_CHECK_LT(i, len_, "payload index out of range");
    return words_[i];
  }
  std::uint64_t operator[](std::uint32_t i) const {
    DASCHED_DCHECK(i < len_);
    return words_[i];
  }

  std::uint64_t front() const { return at(0); }
  std::uint64_t back() const { return at(len_ - 1); }

  const std::uint64_t* data() const { return words_; }
  const std::uint64_t* begin() const { return words_; }
  const std::uint64_t* end() const { return words_ + len_; }

  operator InlinePayload() const {  // NOLINT(google-explicit-constructor)
    InlinePayload p;
    for (std::uint32_t i = 0; i < len_; ++i) p.push_back(words_[i]);
    return p;
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::uint32_t len_ = 0;
};

/// A delivered message as seen by a NodeProgram: sender plus payload view.
/// Structurally identical to VMessage from the program's point of view
/// (`m.from`, `m.payload.at(0)`, ...) but borrows the arena lanes instead of
/// owning 8*kInlineCapacity payload bytes.
struct MsgView {
  NodeId from;
  PayloadView payload;
};

/// One node's inbox for one virtual round: `count` consecutive messages of a
/// single (algorithm, round) bucket inside the compact lanes. Iteration
/// yields MsgView values, so `for (const auto& m : ctx.inbox())` compiles and
/// behaves exactly as it did over std::span<const VMessage>.
class InboxView {
 public:
  InboxView() = default;
  InboxView(const std::uint32_t* headers, const std::uint64_t* payload_words,
            std::uint32_t width, std::uint32_t count)
      : headers_(headers), payload_words_(payload_words), width_(width), count_(count) {}

  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  MsgView operator[](std::uint32_t i) const {
    DASCHED_DCHECK(i < count_);
    const std::uint32_t h = headers_[i];
    return {msg_header_from(h),
            PayloadView(payload_words_ + std::size_t{i} * width_, msg_header_len(h))};
  }

  MsgView front() const {
    DASCHED_CHECK_MSG(count_ > 0, "front() on an empty inbox");
    return (*this)[0];
  }
  MsgView back() const {
    DASCHED_CHECK_MSG(count_ > 0, "back() on an empty inbox");
    return (*this)[count_ - 1];
  }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = MsgView;
    using difference_type = std::ptrdiff_t;

    Iterator() = default;
    Iterator(const InboxView* view, std::uint32_t i) : view_(view), i_(i) {}

    MsgView operator*() const { return (*view_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) { return a.i_ == b.i_; }

   private:
    const InboxView* view_ = nullptr;
    std::uint32_t i_ = 0;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, count_); }

 private:
  const std::uint32_t* headers_ = nullptr;
  const std::uint64_t* payload_words_ = nullptr;
  std::uint32_t width_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace dasched
