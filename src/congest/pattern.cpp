#include "congest/pattern.hpp"

#include <algorithm>

#include "congest/executor.hpp"

#include "util/check.hpp"

namespace dasched {

void CommunicationPattern::record(std::uint32_t round, std::uint32_t directed_edge) {
  DASCHED_CHECK(round >= 1);
  DASCHED_CHECK(directed_edge < edge_load_.size());
  if (round > by_round_.size()) by_round_.resize(round);
  by_round_[round - 1].push_back(directed_edge);
  ++edge_load_[directed_edge];
  ++total_;
}

std::uint32_t CommunicationPattern::max_edge_load() const {
  std::uint32_t max_load = 0;
  for (const auto load : edge_load_) max_load = std::max(max_load, load);
  return max_load;
}

std::span<const std::uint32_t> CommunicationPattern::edges_in_round(
    std::uint32_t round) const {
  DASCHED_CHECK(round >= 1);
  if (round > by_round_.size()) return {};
  return by_round_[round - 1];
}

std::uint32_t combined_congestion(std::span<const CommunicationPattern> patterns) {
  const auto loads = combined_edge_load(patterns);
  std::uint32_t congestion = 0;
  for (const auto load : loads) congestion = std::max(congestion, load);
  return congestion;
}

std::vector<std::uint32_t> combined_edge_load(
    std::span<const CommunicationPattern> patterns) {
  if (patterns.empty()) return {};
  std::vector<std::uint32_t> loads(patterns.front().num_directed_edges(), 0);
  for (const auto& p : patterns) {
    DASCHED_CHECK(p.num_directed_edges() == loads.size());
    for (std::uint32_t d = 0; d < loads.size(); ++d) loads[d] += p.edge_load(d);
  }
  return loads;
}

std::uint64_t simulation_violations(const Graph& g, const CommunicationPattern& pattern,
                                    const NodeRoundTime& time) {
  std::uint64_t violations = 0;
  for (std::uint32_t r = 1; r <= pattern.last_message_round(); ++r) {
    for (const auto d : pattern.edges_in_round(r)) {
      const EdgeId e = d / 2;
      const auto [lo, hi] = g.endpoints(e);
      const NodeId sender = (d % 2 == 0) ? lo : hi;
      const NodeId receiver = (d % 2 == 0) ? hi : lo;
      const std::uint32_t sent = time(sender, r);
      const std::uint32_t consumed = time(receiver, r + 1);
      if (sent == kNeverScheduled) {
        // The sender never transmits a message the pattern requires: if the
        // receiver still executes the consuming round, causality is broken.
        if (consumed != kNeverScheduled) ++violations;
        continue;
      }
      if (consumed != kNeverScheduled && consumed <= sent) ++violations;
    }
  }
  return violations;
}

}  // namespace dasched
