// Solo (stand-alone) execution of a single distributed algorithm.
//
// This is the plain CONGEST model: big-round t is exactly virtual round t+1
// for every node, and the one-message-per-directed-edge-per-round bandwidth
// bound is *enforced* (an algorithm that violates it is not a valid CONGEST
// algorithm). The solo run yields the algorithm's communication pattern
// (Section 2) and per-node outputs, which schedulers use as ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/executor.hpp"
#include "congest/pattern.hpp"
#include "congest/program.hpp"
#include "graph/graph.hpp"

namespace dasched {

struct SoloRunResult {
  std::vector<std::vector<std::uint64_t>> outputs;  // perf-ok: per node, filled once per run
  CommunicationPattern pattern;
  std::uint64_t total_messages = 0;
  /// Last virtual round in which any message was sent (<= algorithm rounds()).
  std::uint32_t last_message_round = 0;
};

class Simulator {
 public:
  /// `telemetry` (optional, borrowed) instruments each solo run: a
  /// simulator/run span plus the executor's own metrics (see executor.hpp).
  explicit Simulator(const Graph& g, std::uint32_t max_payload_words = kDefaultMaxPayloadWords,
                     TelemetrySink* telemetry = nullptr)
      : graph_(g), max_payload_words_(max_payload_words), telemetry_(telemetry) {}

  SoloRunResult run(const DistributedAlgorithm& algorithm) const;

 private:
  const Graph& graph_;
  std::uint32_t max_payload_words_;
  TelemetrySink* telemetry_;
};

}  // namespace dasched
