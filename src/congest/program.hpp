// The black-box algorithm interface (Section 2 of the paper).
//
// A distributed algorithm is, per node, a deterministic state machine driven
// by (the node's input, its private randomness fixed at start, and the
// messages it has received). This matches the paper's format: "when this
// algorithm is run alone, in each round each node knows what to send in the
// next round", and nothing else is assumed -- in particular the communication
// pattern is NOT known a priori, and a node cannot tell whether its inbox for
// a round is complete. Schedulers run these programs without inspecting
// message content.
//
// Round convention
// ----------------
// A T-round algorithm sends messages during virtual rounds 1..T. Messages
// sent in round r are delivered at the start of round r+1 (they appear in the
// receiver's inbox when it executes round r+1). `on_finish` runs after round
// T with the round-T messages; this is where outputs are finalized. Thus a
// node's output depends on initial states within its T-hop ball -- the
// "dilation-neighborhood" of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "congest/footprint.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dasched {

/// Execution context handed to a program each round. Exposes only what a
/// CONGEST node may know: its id, n, its incident edges, its inbox, and its
/// private randomness. Concrete instances are owned by the executor.
class VirtualContext {
 public:
  NodeId self() const { return self_; }
  NodeId num_nodes() const { return num_nodes_; }

  /// Virtual round being executed, 1..T (T+1 during on_finish).
  std::uint32_t vround() const { return vround_; }

  /// Messages sent to this node in round vround()-1. The view borrows the
  /// executor's compact delivery lanes; iteration yields MsgView values with
  /// the same member shape (`m.from`, `m.payload`) the old
  /// std::span<const VMessage> inbox exposed.
  InboxView inbox() const { return inbox_; }

  /// Incident edges (neighbor id + undirected edge id), sorted by neighbor.
  std::span<const HalfEdge> neighbors() const { return neighbors_; }
  std::uint32_t degree() const { return static_cast<std::uint32_t>(neighbors_.size()); }

  /// Sends one message to a neighbor, delivered at round vround()+1.
  /// At most one message per neighbor per round (CONGEST bandwidth);
  /// disallowed during on_finish.
  void send(NodeId neighbor, const Payload& payload) {
    DASCHED_CHECK_MSG(send_fn_ != nullptr, "send() called during on_finish");
    send_fn_(sink_, neighbor, payload);
  }

  /// Private per-node randomness, deterministic per (algorithm, node).
  Rng& rng() { return *rng_; }

 private:
  friend class Executor;
  using SendFn = void (*)(void* sink, NodeId neighbor, const Payload& payload);

  NodeId self_ = 0;
  NodeId num_nodes_ = 0;
  std::uint32_t vround_ = 0;
  InboxView inbox_;
  std::span<const HalfEdge> neighbors_;
  SendFn send_fn_ = nullptr;
  void* sink_ = nullptr;
  Rng* rng_ = nullptr;
};

/// Per-node program: override on_round (rounds 1..T) and optionally
/// on_finish (receives the round-T inbox; may not send). output() is read
/// after on_finish.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_round(VirtualContext& ctx) = 0;
  virtual void on_finish(VirtualContext& ctx) { (void)ctx; }
  virtual std::vector<std::uint64_t> output() const { return {}; }
};

/// An algorithm instance: a program factory plus its round budget T and the
/// base seed from which per-node private randomness is derived. Concrete
/// algorithms bake node inputs into the programs they create.
class DistributedAlgorithm {
 public:
  virtual ~DistributedAlgorithm() = default;

  virtual std::string name() const = 0;

  /// T: the number of communication rounds when run alone -- this instance's
  /// contribution to `dilation`.
  virtual std::uint32_t rounds() const = 0;

  virtual std::unique_ptr<NodeProgram> make_program(NodeId node) const = 0;

  /// Base seed; the executor derives node v's Rng as
  /// Rng(seed_combine(base_seed(), v)), making solo and scheduled executions
  /// byte-identical.
  std::uint64_t base_seed() const { return base_seed_; }

  /// Declarative footprint for the static pattern analyzer (src/analysis):
  /// what this algorithm's communication pattern looks like as a function of
  /// the graph, without executing it. The default is opaque -- the analyzer
  /// then assumes the CONGEST worst case (one message per directed edge per
  /// round for rounds() rounds). Override with an exact shape when the
  /// pattern is a pure function of (graph, parameters, base seed), or with a
  /// sound envelope for randomized algorithms. See congest/footprint.hpp.
  virtual StaticFootprint static_footprint() const { return StaticFootprint::opaque(); }

 protected:
  explicit DistributedAlgorithm(std::uint64_t base_seed) : base_seed_(base_seed) {}

 private:
  std::uint64_t base_seed_;
};

}  // namespace dasched
