// Schedule admission: a pre-execution gate the executor consults before
// running a schedule.
//
// The gate is an abstract interface so the low-level engine (src/congest/)
// does not depend on the static-analysis layer that implements the real
// verifier (src/verify/ -- which in turn needs sched/problem.hpp for solo
// patterns and congestion). Production posture per the ROADMAP: bad schedules
// should be *rejected at admission time*, not discovered mid-run; the
// executor treats a rejection as a hard contract violation and aborts, so a
// gated run either executes a proven schedule or does not execute at all.
//
// The gate only observes the schedule -- it must not mutate anything the
// execution reads -- so a run with a (passing) gate is bit-identical to a run
// without one, and a null ExecConfig::admission leaves the executor
// byte-for-byte the ungated engine (pinned by the golden-fingerprint test in
// tests/test_fault.cpp).
#pragma once

#include <span>

#include "congest/program.hpp"
#include "congest/schedule_table.hpp"

namespace dasched {

class ScheduleAdmission {
 public:
  virtual ~ScheduleAdmission() = default;

  /// Inspects `schedule` for the given algorithms before any event executes.
  /// Returns true to admit; false to reject (the executor then aborts with a
  /// contract failure). Implementations may record diagnostics as a side
  /// effect (see verify::VerifyingAdmission), but must not mutate state the
  /// execution depends on.
  virtual bool admit(std::span<const DistributedAlgorithm* const> algorithms,
                     const ScheduleTable& schedule) const = 0;
};

}  // namespace dasched
