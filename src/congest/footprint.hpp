// Declarative static footprints: what an algorithm is willing to reveal
// about its communication pattern *without being executed*.
//
// Every bound in the paper is a function of congestion and dilation of the
// algorithms' patterns (Section 2, Figure 1), yet the model itself insists
// the pattern is not known a priori -- BFS is the canonical example. This
// struct is the middle ground the repo's static analyzer (src/analysis)
// builds on: an algorithm *declares* the shape of its footprint as data, and
// the analyzer derives the full per-(round, directed-edge) load surface --
// or a sound envelope -- from the declaration plus the graph, by abstract
// interpretation over the time-expanded graph. Three tiers:
//
//   exact      kFlood, kThreePhaseAggregate, kGossipPush, kFixedPath: the
//              pattern (and the per-node outputs) is a pure function of
//              (graph, declaration, base seed). Gossip qualifies because the
//              paper fixes each node's randomness at start ("we consider
//              [it] as a part of the input"), so the random pattern is
//              replayable centrally from the seed.
//   envelope   kEnvelope: randomized algorithms (Luby MIS) whose pattern
//              varies but is bounded: at most one message per (round,
//              directed edge) cell and at most `per_edge_cap` messages per
//              directed edge in total.
//   fallback   kOpaque: nothing declared; the analyzer assumes the CONGEST
//              worst case (every directed edge, every round).
//
// The declaration is pure data -- algorithms carry no derivation logic, and
// the analyzer never constructs programs. docs/ANALYSIS.md is the narrative.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dasched {

struct StaticFootprint {
  enum class Shape : std::uint8_t {
    kOpaque = 0,           // fallback: conservative whole-bandwidth bound
    kFlood,                // broadcast/BFS token flood from `source`
    kThreePhaseAggregate,  // flood + timed convergecast + result flood
    kGossipPush,           // seeded push gossip from `source`
    kFixedPath,            // one packet along `path`
    kEnvelope,             // randomized, bounded by `per_edge_cap`
  };

  /// Which exact per-node output rule accompanies the shape (kNone for
  /// envelope/opaque footprints: outputs stay execution-only).
  enum class Outputs : std::uint8_t {
    kNone = 0,
    kBroadcast,    // {received, value, dist}
    kBfs,          // {reached, dist, min-id parent}
    kAggregate,    // {in-ball, dist, subtree sum, global sum}
    kGossip,       // {informed, rumor, informed round}
    kPathRouting,  // destination {delivered, value}; others {}
  };

  /// Sentinel for max_payload_words: the algorithm declines to bound its
  /// payload width, so the executor must assume ExecConfig::max_payload_words.
  static constexpr std::uint32_t kUndeclaredWidth = ~std::uint32_t{0};

  Shape shape = Shape::kOpaque;
  Outputs outputs = Outputs::kNone;
  NodeId source = kInvalidNode;    // flood / aggregate root / gossip source
  std::uint32_t radius = 0;        // kThreePhaseAggregate: the h in 3h+1 rounds
  std::uint32_t per_edge_cap = 0;  // kEnvelope: per-directed-edge total bound
  std::uint64_t payload = 0;       // broadcast value / rumor / packet value
  /// Upper bound on the payload words any single message of this algorithm
  /// carries, or kUndeclaredWidth. When *every* admitted algorithm declares a
  /// width, the executor sizes its compact delivery lanes to the maximum
  /// declared width instead of ExecConfig::max_payload_words -- bytes moved
  /// per message drop accordingly (docs/PERFORMANCE.md). Independent of
  /// shape: an opaque footprint may still bound its width.
  std::uint32_t max_payload_words = kUndeclaredWidth;
  // kFixedPath: consecutive adjacent nodes.
  // perf-ok: declaration-time descriptor built once per algorithm, not hot.
  std::vector<NodeId> path;

  static StaticFootprint opaque() { return {}; }

  static StaticFootprint flood(NodeId source, Outputs outputs, std::uint64_t payload = 0) {
    StaticFootprint f;
    f.shape = Shape::kFlood;
    f.outputs = outputs;
    f.source = source;
    f.payload = payload;
    f.max_payload_words = 1;  // a flooded token is one word
    return f;
  }

  static StaticFootprint three_phase_aggregate(NodeId root, std::uint32_t radius) {
    StaticFootprint f;
    f.shape = Shape::kThreePhaseAggregate;
    f.outputs = Outputs::kAggregate;
    f.source = root;
    f.radius = radius;
    f.max_payload_words = 2;  // convergecast rows carry {tag, value}
    return f;
  }

  static StaticFootprint gossip_push(NodeId source, std::uint64_t rumor) {
    StaticFootprint f;
    f.shape = Shape::kGossipPush;
    f.outputs = Outputs::kGossip;
    f.source = source;
    f.payload = rumor;
    f.max_payload_words = 1;  // the rumor itself
    return f;
  }

  static StaticFootprint fixed_path(std::vector<NodeId> path, std::uint64_t packet_value) {
    StaticFootprint f;
    f.shape = Shape::kFixedPath;
    f.outputs = Outputs::kPathRouting;
    f.path = std::move(path);
    f.payload = packet_value;
    f.max_payload_words = 1;  // the packet value
    return f;
  }

  static StaticFootprint envelope(std::uint32_t per_edge_cap,
                                  std::uint32_t max_payload_words = kUndeclaredWidth) {
    StaticFootprint f;
    f.shape = Shape::kEnvelope;
    f.per_edge_cap = per_edge_cap;
    f.max_payload_words = max_payload_words;
    return f;
  }
};

}  // namespace dasched
