file(REMOVE_RECURSE
  "libdasched_lowerbound.a"
)
