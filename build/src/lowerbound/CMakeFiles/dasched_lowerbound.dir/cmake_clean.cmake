file(REMOVE_RECURSE
  "CMakeFiles/dasched_lowerbound.dir/hard_instance.cpp.o"
  "CMakeFiles/dasched_lowerbound.dir/hard_instance.cpp.o.d"
  "libdasched_lowerbound.a"
  "libdasched_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
