# Empty dependencies file for dasched_lowerbound.
# This may be replaced when dependencies are built.
