file(REMOVE_RECURSE
  "CMakeFiles/dasched_congest.dir/executor.cpp.o"
  "CMakeFiles/dasched_congest.dir/executor.cpp.o.d"
  "CMakeFiles/dasched_congest.dir/pattern.cpp.o"
  "CMakeFiles/dasched_congest.dir/pattern.cpp.o.d"
  "CMakeFiles/dasched_congest.dir/simulator.cpp.o"
  "CMakeFiles/dasched_congest.dir/simulator.cpp.o.d"
  "libdasched_congest.a"
  "libdasched_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
