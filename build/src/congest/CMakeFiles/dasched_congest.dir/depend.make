# Empty dependencies file for dasched_congest.
# This may be replaced when dependencies are built.
