file(REMOVE_RECURSE
  "libdasched_congest.a"
)
