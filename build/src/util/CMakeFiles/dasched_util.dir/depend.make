# Empty dependencies file for dasched_util.
# This may be replaced when dependencies are built.
