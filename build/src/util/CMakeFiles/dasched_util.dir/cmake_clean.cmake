file(REMOVE_RECURSE
  "CMakeFiles/dasched_util.dir/math.cpp.o"
  "CMakeFiles/dasched_util.dir/math.cpp.o.d"
  "CMakeFiles/dasched_util.dir/stats.cpp.o"
  "CMakeFiles/dasched_util.dir/stats.cpp.o.d"
  "CMakeFiles/dasched_util.dir/table.cpp.o"
  "CMakeFiles/dasched_util.dir/table.cpp.o.d"
  "libdasched_util.a"
  "libdasched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
