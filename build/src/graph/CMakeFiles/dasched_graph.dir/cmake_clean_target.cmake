file(REMOVE_RECURSE
  "libdasched_graph.a"
)
