# Empty compiler generated dependencies file for dasched_graph.
# This may be replaced when dependencies are built.
