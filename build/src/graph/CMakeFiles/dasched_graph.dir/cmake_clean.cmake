file(REMOVE_RECURSE
  "CMakeFiles/dasched_graph.dir/algorithms.cpp.o"
  "CMakeFiles/dasched_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/dasched_graph.dir/generators.cpp.o"
  "CMakeFiles/dasched_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dasched_graph.dir/graph.cpp.o"
  "CMakeFiles/dasched_graph.dir/graph.cpp.o.d"
  "libdasched_graph.a"
  "libdasched_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
