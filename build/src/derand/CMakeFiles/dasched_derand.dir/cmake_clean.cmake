file(REMOVE_RECURSE
  "CMakeFiles/dasched_derand.dir/bellagio.cpp.o"
  "CMakeFiles/dasched_derand.dir/bellagio.cpp.o.d"
  "CMakeFiles/dasched_derand.dir/newman.cpp.o"
  "CMakeFiles/dasched_derand.dir/newman.cpp.o.d"
  "libdasched_derand.a"
  "libdasched_derand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_derand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
