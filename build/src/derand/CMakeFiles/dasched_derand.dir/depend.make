# Empty dependencies file for dasched_derand.
# This may be replaced when dependencies are built.
