file(REMOVE_RECURSE
  "libdasched_derand.a"
)
