file(REMOVE_RECURSE
  "libdasched_algos.a"
)
