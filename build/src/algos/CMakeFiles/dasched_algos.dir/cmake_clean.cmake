file(REMOVE_RECURSE
  "CMakeFiles/dasched_algos.dir/aggregate.cpp.o"
  "CMakeFiles/dasched_algos.dir/aggregate.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/bfs.cpp.o"
  "CMakeFiles/dasched_algos.dir/bfs.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/broadcast.cpp.o"
  "CMakeFiles/dasched_algos.dir/broadcast.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/distinct_elements.cpp.o"
  "CMakeFiles/dasched_algos.dir/distinct_elements.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/gossip.cpp.o"
  "CMakeFiles/dasched_algos.dir/gossip.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/mis.cpp.o"
  "CMakeFiles/dasched_algos.dir/mis.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/mst.cpp.o"
  "CMakeFiles/dasched_algos.dir/mst.cpp.o.d"
  "CMakeFiles/dasched_algos.dir/path_routing.cpp.o"
  "CMakeFiles/dasched_algos.dir/path_routing.cpp.o.d"
  "libdasched_algos.a"
  "libdasched_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
