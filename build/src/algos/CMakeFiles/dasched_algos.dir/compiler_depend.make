# Empty compiler generated dependencies file for dasched_algos.
# This may be replaced when dependencies are built.
