
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/aggregate.cpp" "src/algos/CMakeFiles/dasched_algos.dir/aggregate.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/aggregate.cpp.o.d"
  "/root/repo/src/algos/bfs.cpp" "src/algos/CMakeFiles/dasched_algos.dir/bfs.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/bfs.cpp.o.d"
  "/root/repo/src/algos/broadcast.cpp" "src/algos/CMakeFiles/dasched_algos.dir/broadcast.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/broadcast.cpp.o.d"
  "/root/repo/src/algos/distinct_elements.cpp" "src/algos/CMakeFiles/dasched_algos.dir/distinct_elements.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/distinct_elements.cpp.o.d"
  "/root/repo/src/algos/gossip.cpp" "src/algos/CMakeFiles/dasched_algos.dir/gossip.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/gossip.cpp.o.d"
  "/root/repo/src/algos/mis.cpp" "src/algos/CMakeFiles/dasched_algos.dir/mis.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/mis.cpp.o.d"
  "/root/repo/src/algos/mst.cpp" "src/algos/CMakeFiles/dasched_algos.dir/mst.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/mst.cpp.o.d"
  "/root/repo/src/algos/path_routing.cpp" "src/algos/CMakeFiles/dasched_algos.dir/path_routing.cpp.o" "gcc" "src/algos/CMakeFiles/dasched_algos.dir/path_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/dasched_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dasched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/dasched_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dasched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
