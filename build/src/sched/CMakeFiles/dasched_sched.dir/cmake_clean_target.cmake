file(REMOVE_RECURSE
  "libdasched_sched.a"
)
