file(REMOVE_RECURSE
  "CMakeFiles/dasched_sched.dir/baseline.cpp.o"
  "CMakeFiles/dasched_sched.dir/baseline.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/clustering.cpp.o"
  "CMakeFiles/dasched_sched.dir/clustering.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/delay_schedule.cpp.o"
  "CMakeFiles/dasched_sched.dir/delay_schedule.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/doubling.cpp.o"
  "CMakeFiles/dasched_sched.dir/doubling.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/global_sharing.cpp.o"
  "CMakeFiles/dasched_sched.dir/global_sharing.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/moser_tardos.cpp.o"
  "CMakeFiles/dasched_sched.dir/moser_tardos.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/private_scheduler.cpp.o"
  "CMakeFiles/dasched_sched.dir/private_scheduler.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/problem.cpp.o"
  "CMakeFiles/dasched_sched.dir/problem.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/rand_sharing.cpp.o"
  "CMakeFiles/dasched_sched.dir/rand_sharing.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/shared_scheduler.cpp.o"
  "CMakeFiles/dasched_sched.dir/shared_scheduler.cpp.o.d"
  "CMakeFiles/dasched_sched.dir/workloads.cpp.o"
  "CMakeFiles/dasched_sched.dir/workloads.cpp.o.d"
  "libdasched_sched.a"
  "libdasched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
