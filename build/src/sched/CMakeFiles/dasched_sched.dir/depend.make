# Empty dependencies file for dasched_sched.
# This may be replaced when dependencies are built.
