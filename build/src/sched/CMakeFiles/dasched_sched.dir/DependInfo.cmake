
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baseline.cpp" "src/sched/CMakeFiles/dasched_sched.dir/baseline.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/baseline.cpp.o.d"
  "/root/repo/src/sched/clustering.cpp" "src/sched/CMakeFiles/dasched_sched.dir/clustering.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/clustering.cpp.o.d"
  "/root/repo/src/sched/delay_schedule.cpp" "src/sched/CMakeFiles/dasched_sched.dir/delay_schedule.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/delay_schedule.cpp.o.d"
  "/root/repo/src/sched/doubling.cpp" "src/sched/CMakeFiles/dasched_sched.dir/doubling.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/doubling.cpp.o.d"
  "/root/repo/src/sched/global_sharing.cpp" "src/sched/CMakeFiles/dasched_sched.dir/global_sharing.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/global_sharing.cpp.o.d"
  "/root/repo/src/sched/moser_tardos.cpp" "src/sched/CMakeFiles/dasched_sched.dir/moser_tardos.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/moser_tardos.cpp.o.d"
  "/root/repo/src/sched/private_scheduler.cpp" "src/sched/CMakeFiles/dasched_sched.dir/private_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/private_scheduler.cpp.o.d"
  "/root/repo/src/sched/problem.cpp" "src/sched/CMakeFiles/dasched_sched.dir/problem.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/problem.cpp.o.d"
  "/root/repo/src/sched/rand_sharing.cpp" "src/sched/CMakeFiles/dasched_sched.dir/rand_sharing.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/rand_sharing.cpp.o.d"
  "/root/repo/src/sched/shared_scheduler.cpp" "src/sched/CMakeFiles/dasched_sched.dir/shared_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/shared_scheduler.cpp.o.d"
  "/root/repo/src/sched/workloads.cpp" "src/sched/CMakeFiles/dasched_sched.dir/workloads.cpp.o" "gcc" "src/sched/CMakeFiles/dasched_sched.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/dasched_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/dasched_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dasched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/dasched_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dasched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
