file(REMOVE_RECURSE
  "libdasched_rand.a"
)
