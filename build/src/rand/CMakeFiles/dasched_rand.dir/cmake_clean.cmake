file(REMOVE_RECURSE
  "CMakeFiles/dasched_rand.dir/distributions.cpp.o"
  "CMakeFiles/dasched_rand.dir/distributions.cpp.o.d"
  "CMakeFiles/dasched_rand.dir/kwise.cpp.o"
  "CMakeFiles/dasched_rand.dir/kwise.cpp.o.d"
  "libdasched_rand.a"
  "libdasched_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
