# Empty dependencies file for dasched_rand.
# This may be replaced when dependencies are built.
