# Empty dependencies file for bench_e9_packet_routing.
# This may be replaced when dependencies are built.
