# Empty compiler generated dependencies file for bench_e10_locality_ablation.
# This may be replaced when dependencies are built.
