# Empty compiler generated dependencies file for bench_e5_private_scheduler.
# This may be replaced when dependencies are built.
