file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_clustering.dir/bench_e3_clustering.cpp.o"
  "CMakeFiles/bench_e3_clustering.dir/bench_e3_clustering.cpp.o.d"
  "bench_e3_clustering"
  "bench_e3_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
