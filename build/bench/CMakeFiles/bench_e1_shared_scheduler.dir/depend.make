# Empty dependencies file for bench_e1_shared_scheduler.
# This may be replaced when dependencies are built.
