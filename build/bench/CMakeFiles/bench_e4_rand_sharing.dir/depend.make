# Empty dependencies file for bench_e4_rand_sharing.
# This may be replaced when dependencies are built.
