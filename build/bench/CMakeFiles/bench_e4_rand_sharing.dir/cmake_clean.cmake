file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_rand_sharing.dir/bench_e4_rand_sharing.cpp.o"
  "CMakeFiles/bench_e4_rand_sharing.dir/bench_e4_rand_sharing.cpp.o.d"
  "bench_e4_rand_sharing"
  "bench_e4_rand_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_rand_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
