file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_distinct_elements.dir/bench_e8_distinct_elements.cpp.o"
  "CMakeFiles/bench_e8_distinct_elements.dir/bench_e8_distinct_elements.cpp.o.d"
  "bench_e8_distinct_elements"
  "bench_e8_distinct_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_distinct_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
