# Empty dependencies file for bench_e8_distinct_elements.
# This may be replaced when dependencies are built.
