# Empty compiler generated dependencies file for bench_e7_kshot_mst.
# This may be replaced when dependencies are built.
