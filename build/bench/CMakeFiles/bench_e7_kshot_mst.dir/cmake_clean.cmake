file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_kshot_mst.dir/bench_e7_kshot_mst.cpp.o"
  "CMakeFiles/bench_e7_kshot_mst.dir/bench_e7_kshot_mst.cpp.o.d"
  "bench_e7_kshot_mst"
  "bench_e7_kshot_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_kshot_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
