file(REMOVE_RECURSE
  "CMakeFiles/dasched_cli.dir/dasched_cli.cpp.o"
  "CMakeFiles/dasched_cli.dir/dasched_cli.cpp.o.d"
  "dasched_cli"
  "dasched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
