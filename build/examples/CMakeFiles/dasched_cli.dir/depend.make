# Empty dependencies file for dasched_cli.
# This may be replaced when dependencies are built.
