# Empty dependencies file for kshot_mst.
# This may be replaced when dependencies are built.
