file(REMOVE_RECURSE
  "CMakeFiles/kshot_mst.dir/kshot_mst.cpp.o"
  "CMakeFiles/kshot_mst.dir/kshot_mst.cpp.o.d"
  "kshot_mst"
  "kshot_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshot_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
