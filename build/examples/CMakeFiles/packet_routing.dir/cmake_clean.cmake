file(REMOVE_RECURSE
  "CMakeFiles/packet_routing.dir/packet_routing.cpp.o"
  "CMakeFiles/packet_routing.dir/packet_routing.cpp.o.d"
  "packet_routing"
  "packet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
