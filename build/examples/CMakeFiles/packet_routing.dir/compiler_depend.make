# Empty compiler generated dependencies file for packet_routing.
# This may be replaced when dependencies are built.
