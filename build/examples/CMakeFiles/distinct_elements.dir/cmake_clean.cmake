file(REMOVE_RECURSE
  "CMakeFiles/distinct_elements.dir/distinct_elements.cpp.o"
  "CMakeFiles/distinct_elements.dir/distinct_elements.cpp.o.d"
  "distinct_elements"
  "distinct_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
