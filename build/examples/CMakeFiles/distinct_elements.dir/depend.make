# Empty dependencies file for distinct_elements.
# This may be replaced when dependencies are built.
