file(REMOVE_RECURSE
  "CMakeFiles/test_private_scheduler.dir/test_private_scheduler.cpp.o"
  "CMakeFiles/test_private_scheduler.dir/test_private_scheduler.cpp.o.d"
  "test_private_scheduler"
  "test_private_scheduler.pdb"
  "test_private_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_private_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
