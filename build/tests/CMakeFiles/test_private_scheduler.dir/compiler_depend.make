# Empty compiler generated dependencies file for test_private_scheduler.
# This may be replaced when dependencies are built.
