file(REMOVE_RECURSE
  "CMakeFiles/test_mis.dir/test_mis.cpp.o"
  "CMakeFiles/test_mis.dir/test_mis.cpp.o.d"
  "test_mis"
  "test_mis.pdb"
  "test_mis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
