file(REMOVE_RECURSE
  "CMakeFiles/test_moser_tardos.dir/test_moser_tardos.cpp.o"
  "CMakeFiles/test_moser_tardos.dir/test_moser_tardos.cpp.o.d"
  "test_moser_tardos"
  "test_moser_tardos.pdb"
  "test_moser_tardos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moser_tardos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
