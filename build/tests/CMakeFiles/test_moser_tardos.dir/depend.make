# Empty dependencies file for test_moser_tardos.
# This may be replaced when dependencies are built.
