# Empty dependencies file for test_block_delay_math.
# This may be replaced when dependencies are built.
