file(REMOVE_RECURSE
  "CMakeFiles/test_block_delay_math.dir/test_block_delay_math.cpp.o"
  "CMakeFiles/test_block_delay_math.dir/test_block_delay_math.cpp.o.d"
  "test_block_delay_math"
  "test_block_delay_math.pdb"
  "test_block_delay_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_delay_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
