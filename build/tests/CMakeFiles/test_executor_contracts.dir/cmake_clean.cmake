file(REMOVE_RECURSE
  "CMakeFiles/test_executor_contracts.dir/test_executor_contracts.cpp.o"
  "CMakeFiles/test_executor_contracts.dir/test_executor_contracts.cpp.o.d"
  "test_executor_contracts"
  "test_executor_contracts.pdb"
  "test_executor_contracts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
