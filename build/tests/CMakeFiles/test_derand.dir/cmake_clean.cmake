file(REMOVE_RECURSE
  "CMakeFiles/test_derand.dir/test_derand.cpp.o"
  "CMakeFiles/test_derand.dir/test_derand.cpp.o.d"
  "test_derand"
  "test_derand.pdb"
  "test_derand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
