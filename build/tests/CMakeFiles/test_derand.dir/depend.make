# Empty dependencies file for test_derand.
# This may be replaced when dependencies are built.
