
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gossip.cpp" "tests/CMakeFiles/test_gossip.dir/test_gossip.cpp.o" "gcc" "tests/CMakeFiles/test_gossip.dir/test_gossip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/derand/CMakeFiles/dasched_derand.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/dasched_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dasched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/dasched_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/dasched_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dasched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/dasched_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dasched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
