# Empty compiler generated dependencies file for test_rand_sharing.
# This may be replaced when dependencies are built.
