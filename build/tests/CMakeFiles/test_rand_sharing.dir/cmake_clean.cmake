file(REMOVE_RECURSE
  "CMakeFiles/test_rand_sharing.dir/test_rand_sharing.cpp.o"
  "CMakeFiles/test_rand_sharing.dir/test_rand_sharing.cpp.o.d"
  "test_rand_sharing"
  "test_rand_sharing.pdb"
  "test_rand_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rand_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
