# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_rand[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_problem[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_rand_sharing[1]_include.cmake")
include("/root/repo/build/tests/test_private_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound[1]_include.cmake")
include("/root/repo/build/tests/test_mst[1]_include.cmake")
include("/root/repo/build/tests/test_derand[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_executor_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_gossip[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_mis[1]_include.cmake")
include("/root/repo/build/tests/test_block_delay_math[1]_include.cmake")
include("/root/repo/build/tests/test_moser_tardos[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
