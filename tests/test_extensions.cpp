// Tests for the extension features: the global-sharing baseline (leader
// election + seed broadcast) and the doubling technique for unknown
// congestion.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sched/doubling.hpp"
#include "sched/global_sharing.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

Graph make_gnp_connected_helper() {
  Rng rng(99);
  return make_gnp_connected(200, 0.15, rng);  // diameter ~2-3
}

TEST(GlobalSharing, CorrectOnVariousGraphs) {
  Rng rng(4);
  const Graph graphs[] = {make_path(40), make_grid(6, 6),
                          make_gnp_connected(60, 0.08, rng)};
  for (const auto& g : graphs) {
    auto problem = make_mixed_workload(g, 6, 3, 9);
    GlobalSharingConfig cfg;
    cfg.seed = 5;
    const auto out = GlobalSharingScheduler(cfg).run(*problem);
    EXPECT_TRUE(out.sharing_complete);
    EXPECT_TRUE(problem->verify(out.schedule.exec).ok());
    // Election + broadcast needs at least the diameter.
    EXPECT_GE(out.precomputation_rounds, exact_diameter(g));
  }
}

TEST(GlobalSharing, PrecomputationScalesWithDiameterNotDilation) {
  // On a path, the global approach pays ~2*diameter; Theorem 4.1's local
  // sharing pays O(dilation log^2 n) -- independent of the diameter. This is
  // the motivating comparison of the paper's Section 1 (and bench E10).
  const auto short_diam = make_gnp_connected_helper();
  auto p1 = make_mixed_workload(short_diam, 6, 3, 9);
  const auto low = GlobalSharingScheduler(GlobalSharingConfig{}).run(*p1);

  const auto path = make_path(200);  // diameter 199, same dilation
  auto p2 = make_mixed_workload(path, 6, 3, 9);
  const auto high = GlobalSharingScheduler(GlobalSharingConfig{}).run(*p2);

  EXPECT_GT(high.precomputation_rounds, 3 * low.precomputation_rounds);
}

TEST(Doubling, ConvergesAndVerifies) {
  Rng rng(6);
  const auto g = make_gnp_connected(80, 0.06, rng);
  auto problem = make_mixed_workload(g, 12, 4, 13);
  const auto out = run_with_doubling(*problem);
  EXPECT_TRUE(problem->verify(out.final.exec).ok());
  EXPECT_GE(out.attempts, 1u);
  // Geometric waste: total <= a small multiple of the successful attempt.
  EXPECT_LE(out.total_rounds, 4 * out.final.fixed.physical_rounds + out.wasted_rounds);
  EXPECT_EQ(out.final.fixed.overflowing_phases, 0u);
}

TEST(Doubling, EstimateTracksTrueCongestion) {
  // With a heavy workload the first guesses must fail; the successful guess
  // lands within a constant factor of the true congestion (here: not more
  // than 4x above it, not absurdly below).
  Rng rng(7);
  const auto g = make_gnp_connected(80, 0.06, rng);
  auto problem = make_mixed_workload(g, 32, 4, 14);
  problem->run_solo();
  const auto c = problem->congestion();
  const auto out = run_with_doubling(*problem);
  EXPECT_TRUE(problem->verify(out.final.exec).ok());
  EXPECT_LE(out.successful_estimate, 4 * c);
  EXPECT_GE(out.attempts, 2u);  // c >> 1 here, so guess 1 cannot fit
}

TEST(Doubling, CheapWorkloadSucceedsImmediately) {
  // A single low-congestion algorithm fits at the first guess.
  const auto g = make_grid(6, 6);
  auto problem = make_bfs_workload(g, 1, 3, 5);
  const auto out = run_with_doubling(*problem);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.wasted_rounds, 0u);
  EXPECT_TRUE(problem->verify(out.final.exec).ok());
}

}  // namespace
}  // namespace dasched
