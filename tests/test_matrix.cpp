// The full correctness matrix: every scheduler x every workload family x
// every graph family, each cell verifying bit-exact solo equivalence. This
// is the library's core contract ("each node outputs the same value as if
// that algorithm was run alone", Section 2) swept systematically.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "sched/baseline.hpp"
#include "sched/moser_tardos.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

enum class SchedKind { kSequential, kGreedy, kShared, kPrivate, kMoserTardos };
enum class WorkKind { kBroadcast, kBfs, kRouting, kMixed };
enum class GraphKind { kGnp, kGrid, kTorus, kTree };

const char* name_of(SchedKind s) {
  switch (s) {
    case SchedKind::kSequential: return "sequential";
    case SchedKind::kGreedy: return "greedy";
    case SchedKind::kShared: return "shared";
    case SchedKind::kPrivate: return "private";
    case SchedKind::kMoserTardos: return "mosertardos";
  }
  return "?";
}
const char* name_of(WorkKind w) {
  switch (w) {
    case WorkKind::kBroadcast: return "broadcast";
    case WorkKind::kBfs: return "bfs";
    case WorkKind::kRouting: return "routing";
    case WorkKind::kMixed: return "mixed";
  }
  return "?";
}
const char* name_of(GraphKind g) {
  switch (g) {
    case GraphKind::kGnp: return "gnp";
    case GraphKind::kGrid: return "grid";
    case GraphKind::kTorus: return "torus";
    case GraphKind::kTree: return "tree";
  }
  return "?";
}

Graph make(GraphKind kind) {
  Rng rng(42);
  switch (kind) {
    case GraphKind::kGnp: return make_gnp_connected(64, 0.08, rng);
    case GraphKind::kGrid: return make_grid(8, 8);
    case GraphKind::kTorus: return make_grid(8, 8, true);
    case GraphKind::kTree: return make_binary_tree(63);
  }
  return make_path(2);
}

std::unique_ptr<ScheduleProblem> make(const Graph& g, WorkKind kind) {
  switch (kind) {
    case WorkKind::kBroadcast: return make_broadcast_workload(g, 8, 3, 11);
    case WorkKind::kBfs: return make_bfs_workload(g, 8, 3, 12);
    case WorkKind::kRouting: return make_routing_workload(g, 10, 13);
    case WorkKind::kMixed: return make_mixed_workload(g, 9, 3, 14);
  }
  return nullptr;
}

using MatrixParam = std::tuple<SchedKind, WorkKind, GraphKind>;

class SchedulerMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(SchedulerMatrix, SoloEquivalence) {
  const auto [sched, work, graph_kind] = GetParam();
  const auto g = make(graph_kind);
  auto problem = make(g, work);

  switch (sched) {
    case SchedKind::kSequential: {
      const auto out = SequentialScheduler{}.run(*problem);
      EXPECT_TRUE(problem->verify(out.exec).ok());
      break;
    }
    case SchedKind::kGreedy: {
      const auto out = GreedyScheduler{}.run(*problem);
      EXPECT_TRUE(problem->verify(out.exec).ok());
      EXPECT_GE(out.schedule_rounds, problem->trivial_lower_bound());
      break;
    }
    case SchedKind::kShared: {
      SharedSchedulerConfig cfg;
      cfg.shared_seed = 21;
      const auto out = SharedRandomnessScheduler(cfg).run(*problem);
      EXPECT_TRUE(problem->verify(out.exec).ok());
      break;
    }
    case SchedKind::kPrivate: {
      PrivateSchedulerConfig cfg;
      cfg.seed = 22;
      cfg.clustering.num_layers = 14;
      cfg.central_clustering = true;  // distributed==central verified elsewhere
      cfg.central_sharing = true;
      const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
      EXPECT_EQ(out.exec.causality_violations, 0u);
      if (out.uncovered_nodes == 0) {
        EXPECT_TRUE(problem->verify(out.exec).ok());
      }
      break;
    }
    case SchedKind::kMoserTardos: {
      MoserTardosConfig cfg;
      cfg.seed = 23;
      cfg.frame_factor = 6.0;
      const auto out = MoserTardosScheduler(cfg).run(*problem);
      if (out.converged) {
        EXPECT_TRUE(problem->verify(out.exec).ok());
        EXPECT_LE(out.exec.max_edge_load, 1u);
      }
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SchedulerMatrix,
    ::testing::Combine(::testing::Values(SchedKind::kSequential, SchedKind::kGreedy,
                                         SchedKind::kShared, SchedKind::kPrivate,
                                         SchedKind::kMoserTardos),
                       ::testing::Values(WorkKind::kBroadcast, WorkKind::kBfs,
                                         WorkKind::kRouting, WorkKind::kMixed),
                       ::testing::Values(GraphKind::kGnp, GraphKind::kGrid,
                                         GraphKind::kTorus, GraphKind::kTree)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      // (No structured bindings here: square brackets break macro parsing.)
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             name_of(std::get<1>(info.param)) + "_" + name_of(std::get<2>(info.param));
    });

}  // namespace
}  // namespace dasched
