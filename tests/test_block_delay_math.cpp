// The probabilistic heart of Lemma 4.4, measured directly.
//
// Claim: draw Lambda = Theta(log n) independent delays from the block
// distribution (first block L = Theta(C / log n), beta = Theta(log n) blocks,
// geometric decay alpha = gamma). Then for every big-round t, the probability
// that the *minimum* of the Lambda delays equals t is O(log n / C) --
// equivalently O(1/L). That is exactly the probability that a first
// (non-duplicate) copy of a message crosses an edge in big-round t, which
// bounds per-big-round loads at Theta(log n) and yields the
// O(congestion + dilation log n) schedule.
//
// For the uniform distribution on the same support the minimum concentrates
// in the earliest rounds (P[min = 0] ~ Lambda/support = Theta(log^2 n / C)),
// a log n factor worse -- also measured below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rand/distributions.hpp"
#include "rand/kwise.hpp"
#include "util/rng.hpp"

namespace dasched {
namespace {

/// Empirical pmf of min(Lambda draws) over many trials.
std::vector<double> min_delay_pmf(const DelayDistribution& dist, std::uint32_t lambda,
                                  std::uint64_t trials, std::uint64_t seed) {
  std::vector<std::uint64_t> counts(dist.support_size(), 0);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < trials; ++i) {
    std::uint32_t min_delay = ~0u;
    for (std::uint32_t j = 0; j < lambda; ++j) {
      min_delay = std::min(min_delay, dist.sample(rng));
    }
    ++counts[min_delay];
  }
  std::vector<double> pmf(counts.size());
  for (std::size_t t = 0; t < counts.size(); ++t) {
    pmf[t] = static_cast<double>(counts[t]) / trials;
  }
  return pmf;
}

TEST(BlockDelayMath, FirstCopyProbabilityIsUniformlySmall) {
  // n ~ 2^16 regime: log n = 16, C = 1024 => L = 64, beta = 16,
  // alpha = (1-1/16)^16 ~ 0.36, Lambda = 16 copies.
  const std::uint32_t log_n = 16;
  const std::uint32_t congestion = 1024;
  const std::uint32_t first_block = congestion / log_n;  // L = 64
  const double alpha = std::pow(1.0 - 1.0 / log_n, log_n);
  const BlockDelayDistribution block(first_block, log_n, alpha);

  const auto pmf = min_delay_pmf(block, log_n, 400000, 7);
  // The Lemma 4.4 bound: P[min = t] <= c / L for every t. The proof's
  // constant is 1/(L*alpha) for the block containing t; alpha ~ 0.36 here,
  // so demand c = 3.5 with head-room for sampling noise.
  const double bound = 3.5 / first_block;
  for (std::size_t t = 0; t < pmf.size(); ++t) {
    EXPECT_LE(pmf[t], bound) << "big-round " << t;
  }
}

TEST(BlockDelayMath, UniformMinConcentratesALogFactorHigher) {
  const std::uint32_t log_n = 16;
  const std::uint32_t congestion = 1024;
  const std::uint32_t first_block = congestion / log_n;
  const double alpha = std::pow(1.0 - 1.0 / log_n, log_n);
  const BlockDelayDistribution block(first_block, log_n, alpha);
  const UniformDelay uniform(block.support_size());

  const auto pmf_u = min_delay_pmf(uniform, log_n, 400000, 9);
  const auto pmf_b = min_delay_pmf(block, log_n, 400000, 9);

  // Uniform: P[min = 0] ~ Lambda / support ~ log n / (1.5 L): the early
  // rounds get ~log n times the block distribution's worst round.
  const double uniform_peak = *std::max_element(pmf_u.begin(), pmf_u.end());
  const double block_peak = *std::max_element(pmf_b.begin(), pmf_b.end());
  EXPECT_GT(uniform_peak, 3.0 * block_peak);
}

TEST(BlockDelayMath, MinIsStillSpreadAcrossTheWholeSupportRange) {
  // The block distribution does not buy its flat minimum by shrinking the
  // support below Theta(C / log n): total span stays ~L/(1-alpha).
  const std::uint32_t log_n = 16;
  const std::uint32_t first_block = 64;
  const double alpha = std::pow(1.0 - 1.0 / log_n, log_n);
  const BlockDelayDistribution block(first_block, log_n, alpha);
  EXPECT_GE(block.support_size(), first_block);
  EXPECT_LE(block.support_size(),
            static_cast<std::uint32_t>(first_block / (1.0 - alpha)) + log_n);
}

TEST(BlockDelayMath, KWiseDrivenMinimaMatchIndependentOnes) {
  // The scheduler draws delays via the k-wise family rather than independent
  // samples; with independence parameter >= Lambda the minimum's
  // distribution must match (here: compare coarse statistics).
  const std::uint32_t log_n = 12;
  const BlockDelayDistribution block(32, log_n, 0.4);
  const std::uint32_t lambda = 8;

  Rng seed_rng(3);
  double kwise_mean = 0;
  const int trials = 30000;
  const std::uint64_t prime = 1048583;  // > 2^20
  for (int i = 0; i < trials; ++i) {
    const KWiseFamily family(prime, lambda, seed_rng);
    std::uint32_t min_delay = ~0u;
    for (std::uint32_t j = 0; j < lambda; ++j) {
      min_delay = std::min(min_delay, block.delay_from_unit(family.unit_value(j)));
    }
    kwise_mean += min_delay;
  }
  kwise_mean /= trials;

  Rng rng(4);
  double iid_mean = 0;
  for (int i = 0; i < trials; ++i) {
    std::uint32_t min_delay = ~0u;
    for (std::uint32_t j = 0; j < lambda; ++j) {
      min_delay = std::min(min_delay, block.sample(rng));
    }
    iid_mean += min_delay;
  }
  iid_mean /= trials;

  EXPECT_NEAR(kwise_mean, iid_mean, 0.35);
}

}  // namespace
}  // namespace dasched
