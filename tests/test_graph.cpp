#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace dasched {
namespace {

TEST(Graph, BasicAccessors) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  Graph g(4, edges);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_directed_edges(), 8u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, NeighborsSortedById) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{3, 0}, {0, 2}, {1, 0}};
  Graph g(4, edges);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].neighbor, 1u);
  EXPECT_EQ(nbrs[1].neighbor, 2u);
  EXPECT_EQ(nbrs[2].neighbor, 3u);
}

TEST(Graph, FindEdgeAndDirectedIds) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}};
  Graph g(3, edges);
  const EdgeId e = g.find_edge(2, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.endpoints(e), (std::pair<NodeId, NodeId>{1, 2}));
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  // Directions are distinct and consistent.
  EXPECT_NE(g.directed_id(e, 1), g.directed_id(e, 2));
  EXPECT_EQ(g.directed_id(e, 1), 2 * e);
  EXPECT_EQ(g.directed_id(e, 2), 2 * e + 1);
  EXPECT_EQ(g.other_endpoint(e, 1), 2u);
  EXPECT_EQ(g.other_endpoint(e, 2), 1u);
}

TEST(Graph, DisconnectedDetected) {
  const std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {2, 3}};
  Graph g(4, edges);
  EXPECT_FALSE(g.is_connected());
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(BfsDistances, PathGraph) {
  const auto g = make_path(6);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  const auto from_mid = bfs_distances(g, 3);
  EXPECT_EQ(from_mid[0], 3u);
  EXPECT_EQ(from_mid[5], 2u);
}

TEST(BfsDistances, CappedStopsAtRadius) {
  const auto g = make_path(10);
  const auto dist = bfs_distances_capped(g, 0, 4);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], kUnreachable);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(exact_diameter(make_path(10)), 9u);
  EXPECT_EQ(exact_diameter(make_cycle(10)), 5u);
  EXPECT_EQ(exact_diameter(make_complete(8)), 1u);
  EXPECT_EQ(exact_diameter(make_star(9)), 2u);
  EXPECT_EQ(exact_diameter(make_grid(4, 5)), 7u);
}

TEST(Diameter, DoubleSweepIsLowerBoundAndTightOnTrees) {
  Rng rng(3);
  const auto tree = make_binary_tree(63);
  EXPECT_EQ(double_sweep_diameter_lb(tree), exact_diameter(tree));
  const auto g = make_gnp_connected(60, 0.08, rng);
  EXPECT_LE(double_sweep_diameter_lb(g), exact_diameter(g));
  EXPECT_GE(2 * double_sweep_diameter_lb(g), exact_diameter(g));
}

TEST(Eccentricity, CenterOfPath) {
  const auto g = make_path(9);
  EXPECT_EQ(eccentricity(g, 4), 4u);
  EXPECT_EQ(eccentricity(g, 0), 8u);
}

TEST(Kruskal, MatchesBruteForceOnSmallGraph) {
  // Square with diagonal: 0-1(1) 1-2(2) 2-3(3) 3-0(4) 0-2(5).
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  Graph g(4, edges);
  const std::vector<std::uint64_t> w = {1, 2, 3, 4, 5};
  const auto mst = kruskal_mst(g, w);
  EXPECT_EQ(mst, (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(total_weight(mst, w), 6u);
}

TEST(Kruskal, SpanningTreeProperties) {
  Rng rng(17);
  const auto g = make_random_connected(40, 120, rng);
  std::vector<std::uint64_t> w(g.num_edges());
  std::set<std::uint64_t> used;
  for (auto& x : w) {
    std::uint64_t c;
    do {
      c = rng.next_below(1'000'000);
    } while (!used.insert(c).second);
    x = c;
  }
  const auto mst = kruskal_mst(g, w);
  EXPECT_EQ(mst.size(), g.num_nodes() - 1u);
  // The chosen edges span the graph.
  std::vector<std::pair<NodeId, NodeId>> tree_edges;
  for (const auto e : mst) tree_edges.push_back(g.endpoints(e));
  Graph tree(g.num_nodes(), tree_edges);
  EXPECT_TRUE(tree.is_connected());
}

}  // namespace
}  // namespace dasched
