// Integration tests for the Theorem 1.1 scheduler and both baselines:
// correctness on every workload/graph combination, and the headline length
// bounds (schedule <= O(congestion + dilation log n), sequential == sum of
// dilations, greedy >= max(congestion, dilation)).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "sched/baseline.hpp"
#include "sched/problem.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

struct Scenario {
  std::string name;
  std::function<Graph()> graph;
  std::function<std::unique_ptr<ScheduleProblem>(const Graph&)> workload;
};

std::vector<Scenario>& scenarios() {
  static auto* cases = new std::vector<Scenario>{
      {"bcast_grid",
       [] { return make_grid(7, 7); },
       [](const Graph& g) { return make_broadcast_workload(g, 10, 4, 11); }},
      {"bfs_gnp",
       [] {
         Rng rng(42);
         return make_gnp_connected(80, 0.06, rng);
       },
       [](const Graph& g) { return make_bfs_workload(g, 8, 4, 12); }},
      {"routing_torus",
       [] { return make_grid(6, 6, true); },
       [](const Graph& g) { return make_routing_workload(g, 14, 13); }},
      {"mixed_tree",
       [] { return make_binary_tree(63); },
       [](const Graph& g) { return make_mixed_workload(g, 9, 4, 14); }},
      {"mixed_cycle",
       [] { return make_cycle(40); },
       [](const Graph& g) { return make_mixed_workload(g, 6, 5, 15); }},
  };
  return *cases;
}

class SchedulersOnScenarios : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulersOnScenarios, SequentialIsCorrectAndSumOfDilations) {
  const auto& sc = scenarios()[GetParam()];
  const auto g = sc.graph();
  auto problem = sc.workload(g);
  const auto out = SequentialScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
  std::uint64_t sum = 0;
  for (std::size_t a = 0; a < problem->size(); ++a) sum += problem->algorithm(a).rounds();
  EXPECT_EQ(out.schedule_rounds, sum);
}

TEST_P(SchedulersOnScenarios, GreedyIsCorrectAndAboveTrivialBound) {
  const auto& sc = scenarios()[GetParam()];
  const auto g = sc.graph();
  auto problem = sc.workload(g);
  const auto out = GreedyScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
  // Any correct schedule is at least max(congestion, dilation) rounds; greedy
  // must respect that and beat (or match) sequential.
  EXPECT_GE(out.schedule_rounds, problem->trivial_lower_bound());
  std::uint64_t sum = 0;
  for (std::size_t a = 0; a < problem->size(); ++a) sum += problem->algorithm(a).rounds();
  EXPECT_LE(out.schedule_rounds, sum);
}

TEST_P(SchedulersOnScenarios, SharedRandomnessIsCorrectOverSeeds) {
  const auto& sc = scenarios()[GetParam()];
  const auto g = sc.graph();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto problem = sc.workload(g);
    SharedSchedulerConfig cfg;
    cfg.shared_seed = seed;
    const auto out = SharedRandomnessScheduler(cfg).run(*problem);
    const auto v = problem->verify(out.exec);
    EXPECT_TRUE(v.ok()) << sc.name << " seed " << seed << ": incomplete "
                        << v.incomplete_nodes << ", mismatched "
                        << v.mismatched_outputs << ", violations "
                        << v.causality_violations;
  }
}

TEST_P(SchedulersOnScenarios, SharedRandomnessMeetsTheoremBound) {
  const auto& sc = scenarios()[GetParam()];
  const auto g = sc.graph();
  auto problem = sc.workload(g);
  const auto out = SharedRandomnessScheduler{}.run(*problem);
  const double log_n = std::log2(std::max<NodeId>(2, g.num_nodes()));
  const double bound =
      8.0 * (problem->congestion() + problem->dilation() * log_n) + 8 * log_n;
  EXPECT_LE(static_cast<double>(out.schedule_rounds), bound)
      << "C=" << problem->congestion() << " D=" << problem->dilation();
  // And never better than the trivial lower bound.
  EXPECT_GE(out.schedule_rounds, problem->trivial_lower_bound());
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SchedulersOnScenarios,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return scenarios()[info.param].name;
                         });

TEST(SharedScheduler, DrawDelaysDeterministicAndInRange) {
  const auto a = SharedRandomnessScheduler::draw_delays(7, 20, 13, 8);
  const auto b = SharedRandomnessScheduler::draw_delays(7, 20, 13, 8);
  EXPECT_EQ(a, b);
  for (const auto d : a) EXPECT_LT(d, 13u);
  const auto c = SharedRandomnessScheduler::draw_delays(8, 20, 13, 8);
  EXPECT_NE(a, c);
}

TEST(SharedScheduler, PhaseLoadsStayLogarithmic) {
  // The Chernoff-bound heart of Theorem 1.1: with phases of Theta(log n)
  // rounds and uniform delays over congestion/log n phases, the max per-phase
  // per-edge load is O(log n) w.h.p. We check a generous 6 log n cap.
  Rng rng(21);
  const auto g = make_gnp_connected(100, 0.05, rng);
  auto problem = make_broadcast_workload(g, 24, 4, 99);
  const auto out = SharedRandomnessScheduler{}.run(*problem);
  const double log_n = std::log2(g.num_nodes());
  EXPECT_LE(out.exec.max_edge_load, 6 * log_n);
  EXPECT_TRUE(problem->verify(out.exec).ok());
}

TEST(SharedScheduler, RobustToCongestionMisestimate) {
  // The paper assumes constant-factor estimates of congestion; a 2x-off
  // estimate must still be correct and within a constant of the exact one.
  Rng rng(23);
  const auto g = make_grid(8, 8);
  auto problem = make_mixed_workload(g, 8, 4, 31);
  problem->run_solo();
  const auto exact_c = problem->congestion();

  SharedSchedulerConfig low;
  low.congestion_estimate = std::max<std::uint32_t>(1, exact_c / 2);
  auto problem2 = make_mixed_workload(g, 8, 4, 31);
  const auto out_low = SharedRandomnessScheduler(low).run(*problem2);
  EXPECT_TRUE(problem2->verify(out_low.exec).ok());

  SharedSchedulerConfig high;
  high.congestion_estimate = exact_c * 2;
  auto problem3 = make_mixed_workload(g, 8, 4, 31);
  const auto out_high = SharedRandomnessScheduler(high).run(*problem3);
  EXPECT_TRUE(problem3->verify(out_high.exec).ok());
}

TEST(GreedyScheduler, PipelinesBroadcastsLikeTheClassicBound) {
  // k broadcasts on a path pipeline to O(k + h) (Topkis's classical bound,
  // item (I) of the paper's intro). Greedy should realize that, not k * h.
  const auto g = make_path(30);
  auto problem = make_broadcast_workload(g, 10, 20, 5);
  problem->run_solo();
  const auto out = GreedyScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
  EXPECT_LE(out.schedule_rounds,
            2u * (problem->congestion() + problem->dilation()));
}

}  // namespace
}  // namespace dasched
