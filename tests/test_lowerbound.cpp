// Section 3 hard-instance tests: structure, oracle consistency, scheduling
// behaviour (the load anti-concentration the lower-bound proof exploits).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lowerbound/hard_instance.hpp"
#include "congest/simulator.hpp"
#include "sched/baseline.hpp"
#include "sched/delay_schedule.hpp"
#include "sched/shared_scheduler.hpp"

namespace dasched {
namespace {

TEST(HardInstance, SoloRunMatchesXorOracle) {
  const HardInstanceConfig cfg{.layers = 5, .width = 10, .algorithms = 3,
                               .participation = 0.4, .seed = 3};
  const auto g = make_layered(cfg.layers, cfg.width);
  auto problem = make_hard_instance(g, cfg);
  problem->run_solo();
  for (std::size_t a = 0; a < problem->size(); ++a) {
    const auto& algo = dynamic_cast<const HardInstanceAlgorithm&>(problem->algorithm(a));
    for (NodeId p = 1; p <= cfg.layers; ++p) {
      const auto& out = problem->solo()[a].outputs[layered_spine(p)];
      EXPECT_EQ(out.at(0), algo.expected_spine_state(p)) << "alg " << a << " spine " << p;
      EXPECT_EQ(out.at(1), 1u);
    }
  }
}

TEST(HardInstance, DilationAndCongestionScaleAsDesigned) {
  const HardInstanceConfig cfg{.layers = 6, .width = 40, .algorithms = 24,
                               .participation = 0.25, .seed = 4};
  const auto g = make_layered(cfg.layers, cfg.width);
  auto problem = make_hard_instance(g, cfg);
  problem->run_solo();
  EXPECT_EQ(problem->dilation(), 2u * cfg.layers);
  // E[per-edge load] = k * q = 6; the max over 2*6*40 directed edge pairs
  // should be near the binomial tail but certainly within [mean, 5*mean].
  const double mean = cfg.algorithms * cfg.participation;
  EXPECT_GE(problem->congestion(), static_cast<std::uint32_t>(mean));
  EXPECT_LE(problem->congestion(), static_cast<std::uint32_t>(5 * mean));
}

TEST(HardInstance, SchedulersRemainCorrectOnHardFamily) {
  const HardInstanceConfig cfg{.layers = 4, .width = 12, .algorithms = 8,
                               .participation = 0.3, .seed = 5};
  const auto g = make_layered(cfg.layers, cfg.width);
  {
    auto problem = make_hard_instance(g, cfg);
    const auto seq = SequentialScheduler{}.run(*problem);
    EXPECT_TRUE(problem->verify(seq.exec).ok());
  }
  {
    auto problem = make_hard_instance(g, cfg);
    const auto greedy = GreedyScheduler{}.run(*problem);
    EXPECT_TRUE(problem->verify(greedy.exec).ok());
  }
  {
    auto problem = make_hard_instance(g, cfg);
    const auto shared = SharedRandomnessScheduler{}.run(*problem);
    EXPECT_TRUE(problem->verify(shared.exec).ok());
  }
}

TEST(HardInstance, DelayProfileMatchesExecutorLoads) {
  // The combinatorial analyzer must reproduce the executor's load profile
  // exactly for lockstep-delayed schedules.
  const HardInstanceConfig cfg{.layers = 4, .width = 10, .algorithms = 6,
                               .participation = 0.3, .seed = 6};
  const auto g = make_layered(cfg.layers, cfg.width);
  auto problem = make_hard_instance(g, cfg);
  problem->run_solo();

  const std::vector<std::uint32_t> delays = {0, 3, 1, 4, 2, 0};
  const auto profile = delay_load_profile(*problem, delays);

  Executor executor(g, {});
  const auto algos = problem->algorithm_ptrs();
  const auto exec = executor.run(algos, [&delays](std::size_t a, NodeId, std::uint32_t r) {
    return delays[a] + r - 1;
  });
  ASSERT_EQ(profile.num_phases(), exec.num_big_rounds);
  for (std::uint32_t t = 0; t < profile.num_phases(); ++t) {
    EXPECT_EQ(profile.max_load_per_phase[t], exec.max_load_per_big_round[t]) << t;
  }
  EXPECT_EQ(profile.adaptive_rounds(), exec.adaptive_physical_rounds());
  EXPECT_EQ(profile.total_messages, exec.total_messages);
}

TEST(HardInstance, ScaledConfigKeepsRatios) {
  for (const std::uint64_t n : {256ULL, 1024ULL, 4096ULL}) {
    const auto cfg = scaled_hard_instance_config(n, 7);
    EXPECT_GE(cfg.layers, 3u);
    EXPECT_GE(cfg.width, 8u);
    // k*q ~ 2L keeps congestion ~ dilation.
    const double kq = static_cast<double>(cfg.algorithms) * cfg.participation;
    EXPECT_NEAR(kq, 2.0 * cfg.layers, 0.3 * 2.0 * cfg.layers);
    // Node budget respected within a factor.
    const std::uint64_t nodes = cfg.layers + 1 + std::uint64_t{cfg.layers} * cfg.width;
    EXPECT_GE(nodes, n / 2);
    EXPECT_LE(nodes, 2 * n);
  }
}

TEST(HardInstance, NonMembersStaySilent) {
  const HardInstanceConfig cfg{.layers = 3, .width = 8, .algorithms = 1,
                               .participation = 0.5, .seed = 8};
  const auto g = make_layered(cfg.layers, cfg.width);
  auto problem = make_hard_instance(g, cfg);
  problem->run_solo();
  const auto& algo = dynamic_cast<const HardInstanceAlgorithm&>(problem->algorithm(0));
  for (NodeId i = 1; i <= cfg.layers; ++i) {
    const auto& s = algo.members()[i - 1];
    for (NodeId j = 0; j < cfg.width; ++j) {
      const NodeId u = layered_group_node(cfg.layers, cfg.width, i, j);
      const bool member = std::binary_search(s.begin(), s.end(), u);
      const auto& out = problem->solo()[0].outputs[u];
      if (member) {
        ASSERT_EQ(out.size(), 2u);
        EXPECT_EQ(out[1], 1u);  // received the spine state
      } else {
        EXPECT_TRUE(out.empty());
      }
    }
  }
}

}  // namespace
}  // namespace dasched
