// Tests for the scheduling service (src/service/): the fingerprint utility,
// seeded job streams, the solo-profile cache, the daemon's serve loop
// (fairness, backpressure, verifier gating, thread-count identity), the
// verifier's adopted-profile consistency check, and the service flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "algos/aggregate.hpp"
#include "congest/schedule_table.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "sched/problem.hpp"
#include "service/daemon.hpp"
#include "service/job_stream.hpp"
#include "service/profile_cache.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_report.hpp"
#include "util/fingerprint.hpp"
#include "util/flags.hpp"
#include "verify/schedule_verifier.hpp"

namespace dasched {
namespace {

using service::JobProfile;
using service::JobRequest;
using service::JobSpec;
using service::JobStreamConfig;
using service::ProfileCache;
using service::ProfileKey;
using service::RejectCode;
using service::SchedulerDaemon;
using service::ServiceConfig;
using service::ServiceResult;

Graph test_graph(NodeId n = 80, std::uint64_t seed = 7) {
  Rng rng(seed);
  return make_gnp_connected(n, 6.0 / n, rng);
}

JobStreamConfig stream_config(double rate = 0.5, std::uint64_t seed = 3,
                              std::uint32_t tenants = 3, std::uint64_t duration = 24) {
  JobStreamConfig cfg;
  cfg.arrival_rate = rate;
  cfg.arrival_seed = seed;
  cfg.tenants = tenants;
  cfg.duration = duration;
  return cfg;
}

// ---------------------------------------------------------------------------
// Fingerprint utility (util/fingerprint.hpp)
// ---------------------------------------------------------------------------

TEST(Fingerprint, EmptyDigestIsOffsetBasis) {
  EXPECT_EQ(Fingerprint{}.digest(), kFnvOffsetBasis);
}

TEST(Fingerprint, MixMatchesManualFnv1a) {
  // One 64-bit word, hashed byte-wise little-end first: the exact loop the
  // golden output hashes in test_fault.cpp were computed with.
  const std::uint64_t x = 0x0123456789abcdefULL;
  std::uint64_t h = kFnvOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  EXPECT_EQ(Fingerprint{}.mix(x).digest(), h);
  EXPECT_EQ(fnv1a_mix(kFnvOffsetBasis, x), h);
}

TEST(Fingerprint, MixIsOrderSensitive) {
  EXPECT_NE(Fingerprint{}.mix(1).mix(2).digest(), Fingerprint{}.mix(2).mix(1).digest());
}

TEST(Fingerprint, MixBytesSeparatesConcatenations) {
  // The length prefix keeps ("ab", "c") distinct from ("a", "bc").
  EXPECT_NE(Fingerprint{}.mix_bytes("ab").mix_bytes("c").digest(),
            Fingerprint{}.mix_bytes("a").mix_bytes("bc").digest());
}

TEST(Fingerprint, GraphFingerprintStableAndShapeSensitive) {
  const Graph a = test_graph(60, 11);
  const Graph b = test_graph(60, 11);
  const Graph c = test_graph(60, 12);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(c));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(test_graph(61, 11)));
}

// ---------------------------------------------------------------------------
// Job specs and streams
// ---------------------------------------------------------------------------

TEST(JobStream, SpecRoundsMatchBuiltAlgorithms) {
  for (const auto kind : {JobSpec::Kind::kBroadcast, JobSpec::Kind::kBfs,
                          JobSpec::Kind::kAggregate}) {
    JobSpec spec;
    spec.kind = kind;
    spec.root = 5;
    spec.radius = 4;
    spec.payload_seed = 99;
    EXPECT_EQ(service::make_algorithm(spec)->rounds(), spec.rounds())
        << service::to_string(kind);
  }
}

TEST(JobStream, SpecFingerprintSeparatesEveryField) {
  JobSpec base;
  base.kind = JobSpec::Kind::kBfs;
  base.root = 3;
  base.radius = 2;
  base.payload_seed = 17;
  JobSpec other = base;
  EXPECT_EQ(base.fingerprint(), other.fingerprint());
  other.kind = JobSpec::Kind::kBroadcast;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.root = 4;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.radius = 3;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.payload_seed = 18;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
}

TEST(JobStream, GenerationIsDeterministicAndSeedSensitive) {
  const auto cfg = stream_config();
  const auto a = service::generate_job_stream(cfg, 80);
  const auto b = service::generate_job_stream(cfg, 80);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_tick, b[i].arrival_tick);
    EXPECT_EQ(a[i].spec, b[i].spec);
  }
  auto reseeded = cfg;
  reseeded.arrival_seed = cfg.arrival_seed + 1;
  const auto c = service::generate_job_stream(reseeded, 80);
  EXPECT_TRUE(a.size() != c.size() ||
              !std::equal(a.begin(), a.end(), c.begin(),
                          [](const JobRequest& x, const JobRequest& y) {
                            return x.spec == y.spec && x.tenant == y.tenant &&
                                   x.arrival_tick == y.arrival_tick;
                          }));
}

TEST(JobStream, ShapeInvariants) {
  const auto cfg = stream_config(1.0, 5, 4, 40);
  const auto stream = service::generate_job_stream(cfg, 80);
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].job_id, i);  // dense ids
    if (i > 0) {
      EXPECT_GE(stream[i].arrival_tick, stream[i - 1].arrival_tick);
    }
    EXPECT_LT(stream[i].tenant, cfg.tenants);
    EXPECT_LT(stream[i].arrival_tick, cfg.duration);
    EXPECT_LT(stream[i].spec.root, 80u);
    EXPECT_EQ(stream[i].spec.radius, cfg.radius);
    // Every spec is one of the tenant's recurring pool entries.
    bool in_pool = false;
    for (std::uint32_t slot = 0; slot < cfg.specs_per_tenant; ++slot) {
      in_pool = in_pool ||
                stream[i].spec == service::tenant_spec(cfg, stream[i].tenant, slot, 80);
    }
    EXPECT_TRUE(in_pool) << "job " << i;
  }
}

TEST(JobStream, ArrivalCountScalesWithRate) {
  const auto slow = service::generate_job_stream(stream_config(0.25, 9, 2, 200), 40);
  const auto fast = service::generate_job_stream(stream_config(2.0, 9, 2, 200), 40);
  // Poisson(0.25 * 200) = 50 expected vs Poisson(2 * 200) = 400 expected;
  // even loose bounds separate them decisively.
  EXPECT_GT(fast.size(), 2 * slow.size());
}

TEST(JobStream, RecurringSpecsRepeatAcrossTheStream) {
  const auto stream = service::generate_job_stream(stream_config(1.0, 3, 2, 48), 80);
  std::map<std::uint64_t, int> by_fingerprint;
  for (const auto& job : stream) ++by_fingerprint[job.spec.fingerprint()];
  // 2 tenants x 2 specs = at most 4 distinct programs; with dozens of
  // arrivals every program repeats.
  EXPECT_LE(by_fingerprint.size(), 4u);
  for (const auto& [fp, uses] : by_fingerprint) EXPECT_GT(uses, 1) << fp;
}

TEST(JobStream, InvalidConfigsDie) {
  EXPECT_DEATH((void)service::generate_job_stream(stream_config(0.0), 80), "rate");
  auto no_tenants = stream_config();
  no_tenants.tenants = 0;
  EXPECT_DEATH((void)service::generate_job_stream(no_tenants, 80), "tenant");
  auto no_duration = stream_config();
  no_duration.duration = 0;
  EXPECT_DEATH((void)service::generate_job_stream(no_duration, 80), "duration");
}

// ---------------------------------------------------------------------------
// Profile cache
// ---------------------------------------------------------------------------

JobProfile dummy_profile(std::uint32_t rounds) {
  JobProfile p;
  p.rounds = rounds;
  return p;
}

TEST(ProfileCacheTest, HitAndMissCounting) {
  ProfileCache cache(4);
  const ProfileKey key{1, 2};
  EXPECT_EQ(cache.find(key), nullptr);
  cache.insert(key, dummy_profile(3));
  const JobProfile* hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rounds, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ProfileCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ProfileCache cache(2);
  cache.insert(ProfileKey{1, 0}, dummy_profile(1));
  cache.insert(ProfileKey{2, 0}, dummy_profile(2));
  // Touch key 1 so key 2 is the LRU victim.
  ASSERT_NE(cache.find(ProfileKey{1, 0}), nullptr);
  cache.insert(ProfileKey{3, 0}, dummy_profile(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.find(ProfileKey{1, 0}), nullptr);
  EXPECT_EQ(cache.find(ProfileKey{2, 0}), nullptr);  // evicted
  EXPECT_NE(cache.find(ProfileKey{3, 0}), nullptr);
}

TEST(ProfileCacheTest, EraseCountsInvalidationsOnlyWhenPresent) {
  ProfileCache cache(2);
  cache.insert(ProfileKey{1, 0}, dummy_profile(1));
  cache.erase(ProfileKey{9, 9});
  EXPECT_EQ(cache.stats().invalidations, 0u);
  cache.erase(ProfileKey{1, 0});
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProfileCacheTest, ZeroCapacityDisablesCaching) {
  ProfileCache cache(0);
  cache.insert(ProfileKey{1, 0}, dummy_profile(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(ProfileKey{1, 0}), nullptr);
}

TEST(ProfileCacheTest, InsertReplacesExistingKey) {
  ProfileCache cache(2);
  cache.insert(ProfileKey{1, 0}, dummy_profile(1));
  cache.insert(ProfileKey{1, 0}, dummy_profile(7));
  EXPECT_EQ(cache.size(), 1u);
  const JobProfile* p = cache.find(ProfileKey{1, 0});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->rounds, 7u);
}

// ---------------------------------------------------------------------------
// ScheduleProblem::adopt_solo and the verifier's profile-consistency gate
// ---------------------------------------------------------------------------

TEST(AdoptSolo, AdoptedProfilesServeAsGroundTruth) {
  const Graph g = test_graph();
  const JobSpec spec = service::tenant_spec(stream_config(), 0, 0, g.num_nodes());
  // Profile once, adopt into a fresh problem: run_solo() must be a no-op and
  // the verifier must accept a lockstep schedule.
  const SoloRunResult solo = Simulator(g).run(*service::make_algorithm(spec));
  ScheduleProblem problem(g);
  problem.add(service::make_algorithm(spec));
  problem.adopt_solo({solo});
  EXPECT_TRUE(problem.solo_done());
  problem.run_solo();  // idempotent
  EXPECT_EQ(problem.solo()[0].total_messages, solo.total_messages);
  const auto table = ScheduleTable::lockstep(problem.algorithm_ptrs(), g.num_nodes());
  EXPECT_TRUE(verify::check_schedule(problem, table).ok());
}

TEST(AdoptSoloDeathTest, ContractViolationsDie) {
  const Graph g = test_graph();
  const JobSpec spec = service::tenant_spec(stream_config(), 0, 0, g.num_nodes());
  const SoloRunResult solo = Simulator(g).run(*service::make_algorithm(spec));
  {
    ScheduleProblem problem(g);
    problem.add(service::make_algorithm(spec));
    EXPECT_DEATH(problem.adopt_solo({solo, solo}), "one solo result per algorithm");
  }
  {
    // The empty-set check is reachable only with zero algorithms (otherwise
    // the size check fires first).
    ScheduleProblem problem(g);
    EXPECT_DEATH(problem.adopt_solo({}), "empty");
  }
  {
    ScheduleProblem problem(g);
    problem.add(service::make_algorithm(spec));
    problem.adopt_solo({solo});
    EXPECT_DEATH(problem.adopt_solo({solo}), "already present");
  }
}

TEST(VerifierProfileConsistency, WrongGeometryProfileIsRejectedNotExecuted) {
  const Graph g = test_graph();
  JobSpec broadcast;
  broadcast.kind = JobSpec::Kind::kBroadcast;
  broadcast.root = 0;
  broadcast.radius = 3;
  // A profile recorded for a *different* program: aggregate over the same
  // graph runs 3r + 1 = 10 rounds, far past broadcast's 3.
  const SoloRunResult stale = Simulator(g).run(AggregateAlgorithm(0, 3, 42));
  ScheduleProblem problem(g);
  problem.add(service::make_algorithm(broadcast));
  problem.adopt_solo({stale});
  const auto table = ScheduleTable::lockstep(problem.algorithm_ptrs(), g.num_nodes());
  const auto report = verify::check_schedule(problem, table);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(verify::kCodeDimensionMismatch));
  // The finding names the offending algorithm -- the daemon's re-profile
  // path keys off this attribution.
  bool attributed = false;
  for (const auto& f : report.findings()) {
    attributed = attributed || (f.severity == verify::Severity::kError &&
                                f.location.alg == 0);
  }
  EXPECT_TRUE(attributed);
}

TEST(VerifierProfileConsistency, WrongEdgeCountProfileIsRejectedNotExecuted) {
  const Graph g = test_graph(80, 7);
  const Graph other = test_graph(80, 8);  // same n, different edges
  ASSERT_NE(g.num_directed_edges(), other.num_directed_edges());
  const JobSpec spec = service::tenant_spec(stream_config(), 1, 0, g.num_nodes());
  const SoloRunResult foreign = Simulator(other).run(*service::make_algorithm(spec));
  ScheduleProblem problem(g);
  problem.add(service::make_algorithm(spec));
  problem.adopt_solo({foreign});
  const auto table = ScheduleTable::lockstep(problem.algorithm_ptrs(), g.num_nodes());
  // Must produce a structured finding -- not an out-of-bounds read in the
  // congestion accounting.
  const auto report = verify::check_schedule(problem, table);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(verify::kCodeDimensionMismatch));
}

// ---------------------------------------------------------------------------
// SchedulerDaemon end to end
// ---------------------------------------------------------------------------

TEST(Daemon, ServesAStreamToQuiescence) {
  const Graph g = test_graph();
  const auto stream = service::generate_job_stream(stream_config(), g.num_nodes());
  ASSERT_FALSE(stream.empty());
  SchedulerDaemon daemon(g, {});
  const ServiceResult result = daemon.serve(stream);

  EXPECT_EQ(result.stats.arrived, stream.size());
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
  EXPECT_EQ(result.stats.completed + result.stats.rejected(), stream.size());
  EXPECT_GE(result.stats.gate_runs, result.stats.executions);
  ASSERT_EQ(result.outcomes.size(), stream.size());
  for (const auto& out : result.outcomes) {
    if (out.completed) {
      EXPECT_TRUE(out.admitted);
      EXPECT_EQ(out.rejected, RejectCode::kNone);
      EXPECT_GT(out.finish_tick, out.request.arrival_tick);
      EXPECT_EQ(out.latency_ticks, out.finish_tick - out.request.arrival_tick);
    } else {
      EXPECT_NE(out.rejected, RejectCode::kNone);
    }
  }
  EXPECT_GT(result.latency_p99, 0u);
  EXPECT_GE(result.latency_p99, result.latency_p50);
}

TEST(Daemon, RepeatTenantsHitTheProfileCache) {
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 3, 2, 32), g.num_nodes());
  SchedulerDaemon daemon(g, {});
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.cache.hits, 0u);
  // At most 2 tenants x 2 specs distinct programs ever need profiling.
  EXPECT_LE(result.stats.cache.misses, 4u);
  EXPECT_GT(result.cache_hit_rate(), 0.5);
  bool some_hit_outcome = false;
  for (const auto& out : result.outcomes) some_hit_outcome |= out.cache_hit;
  EXPECT_TRUE(some_hit_outcome);
}

TEST(Daemon, BitIdenticalAcrossThreadCounts) {
  const Graph g = test_graph(100, 5);
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 11, 3, 32), g.num_nodes());
  ServiceResult baseline;
  std::string baseline_json;
  for (const std::uint32_t threads : {0u, 1u, 2u, 4u}) {
    ServiceConfig cfg;
    cfg.num_threads = threads;
    SchedulerDaemon daemon(g, cfg);
    const ServiceResult result = daemon.serve(stream);
    if (threads == 0) {
      baseline = result;
      baseline_json = result.to_json(false);
      continue;
    }
    EXPECT_EQ(result.fingerprint, baseline.fingerprint) << "threads=" << threads;
    EXPECT_EQ(result.to_json(false), baseline_json) << "threads=" << threads;
    ASSERT_EQ(result.outcomes.size(), baseline.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      EXPECT_EQ(result.outcomes[i].completed, baseline.outcomes[i].completed);
      EXPECT_EQ(result.outcomes[i].delay, baseline.outcomes[i].delay);
      EXPECT_EQ(result.outcomes[i].finish_tick, baseline.outcomes[i].finish_tick);
    }
  }
}

TEST(Daemon, StaticAdmissionProfilesEveryMissWithoutExecution) {
  // Every stream spec (broadcast/bfs/aggregate) carries an exact footprint,
  // so with static admission on, no cache miss ever solo-executes.
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 9, 3, 32), g.num_nodes());
  SchedulerDaemon daemon(g, {});  // static_admission defaults to true
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.profiles_static, 0u);
  EXPECT_EQ(result.stats.profiles_executed, 0u);
  EXPECT_EQ(result.stats.profiles_static, result.stats.cache.misses);
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
}

TEST(Daemon, StaticAdmissionOffExecutesEveryMiss) {
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 9, 3, 32), g.num_nodes());
  ServiceConfig cfg;
  cfg.static_admission = false;
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  EXPECT_EQ(result.stats.profiles_static, 0u);
  EXPECT_GT(result.stats.profiles_executed, 0u);
  EXPECT_EQ(result.stats.profiles_executed, result.stats.cache.misses);
}

TEST(Daemon, StaticAdmissionIsBitIdenticalToExecutedProfiling) {
  // Certificates are cell-for-cell equal to solo runs, so how a profile was
  // produced must be invisible: outcomes, stats, and fingerprints agree.
  const Graph g = test_graph(100, 5);
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 11, 3, 32), g.num_nodes());
  ServiceResult results[2];
  for (const bool static_admission : {true, false}) {
    ServiceConfig cfg;
    cfg.static_admission = static_admission;
    SchedulerDaemon daemon(g, cfg);
    results[static_admission ? 0 : 1] = daemon.serve(stream);
  }
  EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
  // The profiling split (static vs executed) is the one stat that legitimately
  // differs between the modes; everything the jobs can observe is identical.
  EXPECT_EQ(results[0].stats.completed, results[1].stats.completed);
  EXPECT_EQ(results[0].stats.deferrals, results[1].stats.deferrals);
  EXPECT_EQ(results[0].stats.total_messages, results[1].stats.total_messages);
  EXPECT_EQ(results[0].latency_p99, results[1].latency_p99);
  ASSERT_EQ(results[0].outcomes.size(), results[1].outcomes.size());
  for (std::size_t i = 0; i < results[0].outcomes.size(); ++i) {
    EXPECT_EQ(results[0].outcomes[i].completed, results[1].outcomes[i].completed);
    EXPECT_EQ(results[0].outcomes[i].delay, results[1].outcomes[i].delay);
    EXPECT_EQ(results[0].outcomes[i].finish_tick, results[1].outcomes[i].finish_tick);
  }
}

TEST(Daemon, CacheKeysAreStableAcrossServesAndSeeds) {
  // The same spec pool served under different delay seeds must rebuild
  // nothing: a second daemon on the same graph re-profiles at most the
  // distinct programs, regardless of scheduling randomness.
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(0.75, 3, 2, 24), g.num_nodes());
  ServiceConfig a;
  a.delay_seed = 1;
  ServiceConfig b;
  b.delay_seed = 999;
  SchedulerDaemon first(g, a);
  SchedulerDaemon second(g, b);
  const auto ra = first.serve(stream);
  const auto rb = second.serve(stream);
  EXPECT_EQ(ra.stats.cache.misses, rb.stats.cache.misses);
  EXPECT_EQ(ra.stats.cache.hits, rb.stats.cache.hits);
  EXPECT_EQ(ra.stats.completed, rb.stats.completed);
}

TEST(Daemon, CacheEvictionUnderTinyCapacity) {
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(1.0, 5, 4, 32), g.num_nodes());
  ServiceConfig cfg;
  cfg.cache_capacity = 1;  // 4 tenants x 2 specs compete for one slot
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.cache.evictions, 0u);
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
  EXPECT_LE(daemon.cache().size(), 1u);
}

TEST(Daemon, QueueFullBackpressure) {
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(2.0, 3, 2, 24), g.num_nodes());
  ServiceConfig cfg;
  cfg.max_queue = 2;
  cfg.epoch_ticks = 16;  // long epochs force the tiny queue to overflow
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.rejected_queue_full, 0u);
  std::uint64_t queue_full = 0;
  for (const auto& out : result.outcomes) {
    if (out.rejected == RejectCode::kQueueFull) {
      ++queue_full;
      EXPECT_FALSE(out.admitted);
      EXPECT_FALSE(out.completed);
    }
  }
  EXPECT_EQ(queue_full, result.stats.rejected_queue_full);
  EXPECT_LE(result.stats.peak_queue_depth, 2u);
}

TEST(Daemon, CongestionBackpressureDefersAndRejects) {
  // A tight budget on a long-epoch daemon: many same-tenant jobs compose at
  // once and their summed loads cross the per-cell budget, so some defer and
  // -- with max_deferrals = 0 -- are rejected with the congestion reason.
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(2.0, 13, 1, 32), g.num_nodes());
  ASSERT_GT(stream.size(), 8u);
  ServiceConfig cfg;
  cfg.phase_len = 1;
  cfg.congestion_budget = 1;
  cfg.max_deferrals = 0;
  cfg.epoch_ticks = 32;
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.deferrals, 0u);
  EXPECT_GT(result.stats.rejected_congestion, 0u);
  for (const auto& out : result.outcomes) {
    if (out.rejected == RejectCode::kCongestionBudget) {
      EXPECT_FALSE(out.admitted);
      EXPECT_GT(out.deferrals, 0u);
    }
  }
  // Everything that was admitted still verified and completed.
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
}

TEST(Daemon, DeferredJobsSurviveToCompletion) {
  // Same overload, but with deferral headroom: jobs wait out the congestion
  // instead of dying. Nonzero deferrals with zero rejections proves the
  // defer-retry path works end to end.
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(2.0, 13, 1, 32), g.num_nodes());
  ServiceConfig cfg;
  cfg.phase_len = 1;
  cfg.congestion_budget = 1;
  cfg.max_deferrals = 64;
  cfg.epoch_ticks = 32;
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  EXPECT_GT(result.stats.deferrals, 0u);
  EXPECT_EQ(result.stats.completed, stream.size());
  bool some_deferred_completed = false;
  for (const auto& out : result.outcomes) {
    some_deferred_completed |= (out.completed && out.deferrals > 0);
  }
  EXPECT_TRUE(some_deferred_completed);
}

TEST(Daemon, TenantFairnessUnderContention) {
  // With per-tenant fairness, no tenant should be starved outright: every
  // tenant with arrivals completes at least one job even under a tight
  // budget that forces rationing.
  const Graph g = test_graph();
  const auto stream =
      service::generate_job_stream(stream_config(1.5, 21, 4, 32), g.num_nodes());
  ServiceConfig cfg;
  cfg.phase_len = 1;
  cfg.congestion_budget = 2;
  cfg.max_deferrals = 2;
  cfg.epoch_ticks = 16;
  SchedulerDaemon daemon(g, cfg);
  const ServiceResult result = daemon.serve(stream);
  std::map<std::uint32_t, std::uint64_t> arrived;
  std::map<std::uint32_t, std::uint64_t> completed;
  for (const auto& out : result.outcomes) {
    ++arrived[out.request.tenant];
    if (out.completed) ++completed[out.request.tenant];
  }
  for (const auto& [tenant, n_arrived] : arrived) {
    EXPECT_GT(completed[tenant], 0u) << "tenant " << tenant << " starved ("
                                     << n_arrived << " arrivals)";
  }
}

TEST(Daemon, StaleCacheEntryIsCaughtByTheGateAndRecovered) {
  // THE divergence scenario: poison the cache with a profile of the wrong
  // program (an aggregate's geometry under a broadcast's key). The daemon
  // must not execute it -- the verifier gate rejects the composed schedule,
  // the entry is invalidated, the job re-profiled and served correctly.
  const Graph g = test_graph();
  const auto cfg_stream = stream_config(0.5, 3, 1, 16);
  const auto stream = service::generate_job_stream(cfg_stream, g.num_nodes());
  ASSERT_FALSE(stream.empty());

  SchedulerDaemon daemon(g, {});
  const JobSpec victim = stream[0].spec;
  JobSpec other = victim;
  other.kind = victim.kind == JobSpec::Kind::kAggregate ? JobSpec::Kind::kBroadcast
                                                        : JobSpec::Kind::kAggregate;
  const SoloRunResult wrong = Simulator(g).run(*service::make_algorithm(other));
  ASSERT_NE(wrong.pattern.last_message_round(),
            Simulator(g).run(*service::make_algorithm(victim)).pattern.last_message_round());
  JobProfile poison;
  poison.rounds = victim.rounds();
  poison.max_edge_load = wrong.pattern.max_edge_load();
  poison.total_messages = wrong.total_messages;
  poison.solo = wrong;
  daemon.mutable_cache().insert(
      ProfileKey{victim.fingerprint(), graph_fingerprint(g)}, poison);

  const ServiceResult result = daemon.serve(stream);
  // The gate fired at least once, the poisoned entry was invalidated, and
  // every job still completed with solo-equal outputs.
  EXPECT_GT(result.stats.gate_rejections, 0u);
  EXPECT_GT(result.stats.requeues_verify, 0u);
  EXPECT_GT(result.stats.cache.invalidations, 0u);
  EXPECT_EQ(result.stats.rejected_verify, 0u);
  EXPECT_EQ(result.stats.completed, stream.size());
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
}

TEST(Daemon, RejectCodeNames) {
  EXPECT_STREQ(service::to_string(RejectCode::kNone), "none");
  EXPECT_STREQ(service::to_string(RejectCode::kQueueFull), "queue-full");
  EXPECT_STREQ(service::to_string(RejectCode::kCongestionBudget), "congestion-budget");
  EXPECT_STREQ(service::to_string(RejectCode::kVerifyFailed), "verify-failed");
}

TEST(DaemonDeathTest, ContractViolationsDie) {
  const Graph g = test_graph();
  {
    ServiceConfig cfg;
    cfg.epoch_ticks = 0;
    EXPECT_DEATH(SchedulerDaemon(g, cfg), "epoch_ticks");
  }
  {
    ServiceConfig cfg;
    cfg.max_queue = 0;
    EXPECT_DEATH(SchedulerDaemon(g, cfg), "max_queue");
  }
  {
    SchedulerDaemon daemon(g, {});
    auto stream = service::generate_job_stream(stream_config(), g.num_nodes());
    if (!stream.empty()) {
      stream[0].job_id = 5;  // non-dense ids violate the serve contract
      EXPECT_DEATH((void)daemon.serve(stream), "dense");
    }
  }
}

// ---------------------------------------------------------------------------
// Service JSON and the RunReport section splice
// ---------------------------------------------------------------------------

TEST(ServiceJson, DocumentParsesAndCarriesTheHeadlines) {
  const Graph g = test_graph();
  const auto stream = service::generate_job_stream(stream_config(), g.num_nodes());
  SchedulerDaemon daemon(g, {});
  const ServiceResult result = daemon.serve(stream);

  std::string error;
  const auto doc = json::parse(result.to_json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get("schema")->string, "dasched.service.v1");
  EXPECT_EQ(doc->get("jobs")->get("arrived")->number,
            static_cast<double>(result.stats.arrived));
  EXPECT_EQ(doc->get("jobs")->get("completed")->number,
            static_cast<double>(result.stats.completed));
  EXPECT_EQ(doc->get("latency_ticks")->get("p50")->number,
            static_cast<double>(result.latency_p50));
  EXPECT_EQ(doc->get("latency_ticks")->get("p99")->number,
            static_cast<double>(result.latency_p99));
  EXPECT_EQ(doc->get("cache")->get("hits")->number,
            static_cast<double>(result.stats.cache.hits));
  EXPECT_GT(doc->get("cache")->get("hit_rate")->number, 0.0);
  EXPECT_EQ(doc->get("verify")->get("gate_runs")->number,
            static_cast<double>(result.stats.gate_runs));
  ASSERT_NE(doc->get("fingerprint"), nullptr);
  EXPECT_TRUE(doc->get("fingerprint")->is_string());
  // Timed variant has throughput rates; the deterministic one must not.
  EXPECT_NE(doc->get("throughput")->get("jobs_per_sec"), nullptr);
  const auto bare = json::parse(result.to_json(false), &error);
  ASSERT_NE(bare, nullptr) << error;
  EXPECT_EQ(bare->get("throughput")->get("jobs_per_sec"), nullptr);
  EXPECT_EQ(bare->get("throughput")->get("wall_seconds"), nullptr);
}

TEST(ServiceJson, DeterministicDocumentIsByteStable) {
  const Graph g = test_graph();
  const auto stream = service::generate_job_stream(stream_config(), g.num_nodes());
  SchedulerDaemon a(g, {});
  SchedulerDaemon b(g, {});
  EXPECT_EQ(a.serve(stream).to_json(false), b.serve(stream).to_json(false));
}

TEST(RunReportSections, ServiceSectionSplicesIntoTheReport) {
  RunReport report;
  report.set_meta("tool", "test");
  report.set_section_json("service", R"({"schema":"dasched.service.v1","x":1})");
  // Same name replaces, different name appends in insertion order.
  report.set_section_json("service", R"({"schema":"dasched.service.v1","x":2})");
  std::ostringstream os;
  report.write(os);
  std::string error;
  const auto doc = json::parse(os.str(), &error);
  ASSERT_NE(doc, nullptr) << error;
  ASSERT_NE(doc->get("service"), nullptr);
  EXPECT_EQ(doc->get("service")->get("x")->number, 2.0);
  EXPECT_EQ(doc->get("service")->get("schema")->string, "dasched.service.v1");
  EXPECT_FALSE(report.empty());
}

TEST(RunReportSectionsDeathTest, ReservedSectionNamesDie) {
  RunReport report;
  EXPECT_DEATH(report.set_section_json("telemetry", "{}"), "reserved");
  EXPECT_DEATH(report.set_section_json("meta", "{}"), "reserved");
}

// ---------------------------------------------------------------------------
// Service flag validation (util/flags.hpp is the single parsing authority)
// ---------------------------------------------------------------------------

TEST(ServiceFlags, U64FlagsRejectGarbage) {
  // --arrival-seed / --duration / --max-queue route through parse_flag_u64.
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_flag_u64("0", &v));
  EXPECT_TRUE(parse_flag_u64("18446744073709551615", &v));
  EXPECT_EQ(v, ~std::uint64_t{0});
  for (const char* bad : {"", " ", "12x", "x12", "-3", "+3", " 12", "12 ",
                          "18446744073709551616", "0x10", "1e3", "3.5"}) {
    EXPECT_FALSE(parse_flag_u64(bad, &v)) << "'" << bad << "'";
  }
}

TEST(ServiceFlags, U32FlagsRejectGarbageAndOverflow) {
  // --tenants / --radius / --max-deferrals / --threads route through
  // parse_flag_u32.
  std::uint32_t v = 0;
  EXPECT_TRUE(parse_flag_u32("4294967295", &v));
  EXPECT_FALSE(parse_flag_u32("4294967296", &v));
  for (const char* bad : {"", "four", "-1", "2 4"}) {
    EXPECT_FALSE(parse_flag_u32(bad, &v)) << "'" << bad << "'";
  }
}

TEST(ServiceFlags, RateFlagParsesDoublesStrictly) {
  // --arrival-rate routes through parse_flag_double plus a > 0 check at the
  // call sites (dasched_serve, bench_e16).
  double v = 0.0;
  EXPECT_TRUE(parse_flag_double("0.25", &v));
  EXPECT_EQ(v, 0.25);
  EXPECT_TRUE(parse_flag_double("2", &v));
  for (const char* bad : {"", "fast", "1.5x", "x1.5", "1.5 ", " 1.5"}) {
    EXPECT_FALSE(parse_flag_double(bad, &v)) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace dasched
