// Execution-observatory tests (docs/OBSERVABILITY.md):
//   * ExecProfiler only observes: attaching it reproduces the pre-profiler
//     golden fingerprint exactly, and profiled runs (reliable and faulty) are
//     bit-identical across thread counts -- including the profiler's own
//     snapshot, cell for cell and byte for byte.
//   * The measured load surface equals the schedule verifier's static
//     prediction on a reliable network (the divergence monitor's zero point),
//     and diverges in the expected directions under drops + retries + crashes
//     (unpredicted retransmission cells, unrealized crashed-sender cells).
//   * The observatory obeys the engine's arena discipline: with profiler AND
//     flight recorder attached, the big-round loop performs zero heap
//     allocations from the second run onward (this binary links
//     util/alloc_hooks.cpp, so that is a measurement).
//   * FlightRecorder: bounded rings keep the newest entries, dumps are
//     byte-stable across identical runs, and an admission rejection writes a
//     post-mortem dump before the engine aborts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "congest/executor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/reliable.hpp"
#include "fault/robustness.hpp"
#include "graph/generators.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/profiler.hpp"
#include "util/alloc_counter.hpp"
#include "verify/divergence.hpp"
#include "verify/schedule_verifier.hpp"

namespace dasched {
namespace {

// --- The fixed instance shared with test_fault / test_parallel_executor. ---

struct Instance {
  Graph g;
  std::unique_ptr<ScheduleProblem> problem;
  std::vector<const DistributedAlgorithm*> algos;
  ScheduleTable schedule;
};

Instance make_instance() {
  Rng rng(11);
  Instance in{make_gnp_connected(150, 6.0 / 150, rng), nullptr, {}, {}};
  in.problem = make_mixed_workload(in.g, 10, 4, 77);
  in.problem->run_solo();
  in.algos = in.problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(77, in.algos.size(), 9, 4);
  in.schedule = ScheduleTable::from_delays(in.algos, in.g.num_nodes(), delays);
  return in;
}

// The canonical digest lives in congest/executor.hpp (result_fingerprint,
// built on util/fingerprint.hpp); the goldens below were recorded with the
// ad-hoc copy this alias replaced and must stay bit-identical under it.
std::uint64_t fingerprint(const ExecutionResult& r) { return result_fingerprint(r); }

// Golden values of the instance above (see test_fault.cpp, which pins the
// same constants and carries the regeneration instructions). A run with the
// profiler attached must reproduce them exactly -- the profiler only
// observes. Regenerated once for the skip-sampling gnp generator (PR 7).
constexpr std::uint64_t kGoldenOutputHash = 7665479431827327277ULL;
constexpr std::uint64_t kGoldenTotalMessages = 9498;
constexpr std::uint32_t kGoldenBigRounds = 17;
constexpr std::uint32_t kGoldenMaxEdgeLoad = 6;
constexpr std::uint64_t kGoldenEvents = 10050;

void expect_identical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.causality_violations, b.causality_violations);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.num_big_rounds, b.num_big_rounds);
  EXPECT_EQ(a.max_load_per_big_round, b.max_load_per_big_round);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_EQ(a.faults, b.faults);
}

/// Everything a profiled run exposes, flattened for equality comparison
/// across thread counts.
struct ProfilerSnapshot {
  std::vector<LoadCell> cells;  // barrier order, not sorted
  std::vector<std::uint64_t> round_messages, round_events, round_inbox,
      round_retries;
  std::vector<std::uint32_t> round_max;
  std::uint64_t messages = 0, events = 0, retries = 0;
  std::uint32_t rounds_used = 0, max_load = 0;
  std::string json;

  friend bool operator==(const ProfilerSnapshot&, const ProfilerSnapshot&) = default;
};

ProfilerSnapshot snapshot(const ExecProfiler& p) {
  ProfilerSnapshot s;
  s.cells = p.cells();
  for (std::uint32_t t = 0; t < p.rounds_used(); ++t) {
    s.round_messages.push_back(p.round_messages(t));
    s.round_events.push_back(p.round_events(t));
    s.round_inbox.push_back(p.round_inbox(t));
    s.round_retries.push_back(p.round_retries(t));
    s.round_max.push_back(p.round_max_load(t));
  }
  s.messages = p.total_messages();
  s.events = p.total_events();
  s.retries = p.total_retries();
  s.rounds_used = p.rounds_used();
  s.max_load = p.max_edge_load();
  s.json = p.to_json();
  return s;
}

// --- The profiler only observes. ---

TEST(Profiler, GoldenFingerprintUnchangedWithProfilerAttached) {
  const auto in = make_instance();
  ExecProfiler profiler;
  ExecConfig cfg;
  cfg.profiler = &profiler;
  const auto r = Executor(in.g, cfg).run(in.algos, in.schedule);

  EXPECT_EQ(fingerprint(r), kGoldenOutputHash);
  EXPECT_EQ(r.total_messages, kGoldenTotalMessages);
  EXPECT_EQ(r.num_big_rounds, kGoldenBigRounds);
  EXPECT_EQ(r.max_edge_load, kGoldenMaxEdgeLoad);

  // The profiler's view agrees with the engine's aggregates.
  EXPECT_EQ(profiler.runs(), 1u);
  EXPECT_EQ(profiler.total_messages(), kGoldenTotalMessages);
  EXPECT_EQ(profiler.total_events(), kGoldenEvents);
  EXPECT_EQ(profiler.rounds_used(), kGoldenBigRounds);
  EXPECT_EQ(profiler.max_edge_load(), kGoldenMaxEdgeLoad);
  EXPECT_EQ(profiler.total_retries(), 0u);
  const auto loads = profiler.round_max_loads();
  ASSERT_EQ(loads.size(), r.max_load_per_big_round.size());
  for (std::size_t t = 0; t < loads.size(); ++t) {
    EXPECT_EQ(loads[t], r.max_load_per_big_round[t]);
  }
  // Every message lands in exactly one cell; the histogram saw every cell.
  std::uint64_t cell_sum = 0;
  for (const auto& c : profiler.cells()) cell_sum += c.load;
  EXPECT_EQ(cell_sum, kGoldenTotalMessages);
  EXPECT_EQ(profiler.cell_load_histogram().count(), profiler.cells().size());
}

TEST(Profiler, TopEdgeAndRoundViewsAreConsistent) {
  const auto in = make_instance();
  ExecProfiler profiler;
  ExecConfig cfg;
  cfg.profiler = &profiler;
  (void)Executor(in.g, cfg).run(in.algos, in.schedule);

  const auto top = profiler.top_edges(5);
  ASSERT_FALSE(top.empty());
  ASSERT_LE(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].total_load, top[i].total_load);
  }
  const auto hottest = profiler.top_cells(1);
  ASSERT_EQ(hottest.size(), 1u);
  EXPECT_EQ(hottest.front().load, kGoldenMaxEdgeLoad);

  EXPECT_EQ(profiler.hot_edges_table(5).data().size(), top.size());
  EXPECT_EQ(profiler.hot_rounds_table(5).data().size(), 5u);

  // The JSON section parses and carries the totals.
  const auto doc = json::parse(profiler.to_json());
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->get("schema")->string, "dasched.profile.v1");
  EXPECT_EQ(doc->get("totals")->get("messages")->number,
            static_cast<double>(kGoldenTotalMessages));
}

// --- Determinism: profiled runs are thread-count invariant, snapshot
// included. ---

TEST(Profiler, ProfiledRunsAreBitIdenticalAcrossThreadCounts) {
  const auto in = make_instance();
  const FaultInjector injector(in.g, [&] {
    FaultPlan plan;
    plan.seed = 2024;
    plan.drop_rate = 0.05;
    add_random_crashes(plan, in.g.num_nodes(), 2, 10);
    return plan;
  }());
  const RetryPolicy retry{2};
  const auto stretched = stretch_for_retries(in.schedule, retry);

  auto run_with = [&](std::uint32_t threads, bool faulty, ExecProfiler* profiler) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.profiler = profiler;
    if (faulty) {
      cfg.faults = &injector;
      cfg.retry = retry;
    }
    return Executor(in.g, cfg).run(in.algos, faulty ? stretched : in.schedule);
  };

  for (const bool faulty : {false, true}) {
    ExecProfiler serial_profiler;
    const auto serial = run_with(0, faulty, &serial_profiler);
    const auto baseline = snapshot(serial_profiler);
    EXPECT_FALSE(baseline.cells.empty());
    for (const std::uint32_t threads : {1u, 2u, 4u, 7u}) {
      ExecProfiler profiler;
      const auto r = run_with(threads, faulty, &profiler);
      expect_identical(serial, r);
      EXPECT_EQ(snapshot(profiler), baseline)
          << "threads=" << threads << " faulty=" << faulty;
    }
  }
}

// --- Measured vs predicted: the divergence monitor's two regimes. ---

TEST(Divergence, MeasuredEqualsPredictedOnReliableRuns) {
  const auto in = make_instance();
  std::vector<LoadCell> predicted;
  const auto vreport = verify::check_schedule(*in.problem, in.schedule, {}, &predicted);
  ASSERT_TRUE(vreport.ok());
  ASSERT_FALSE(predicted.empty());

  ExecProfiler profiler;
  ExecConfig cfg;
  cfg.profiler = &profiler;
  (void)Executor(in.g, cfg).run(in.algos, in.schedule);

  // Exact equality, cell for cell: the static model IS the reliable network.
  EXPECT_TRUE(profiler.sorted_cells() == predicted);

  verify::DivergenceOptions opts;
  opts.scheduled_big_rounds = vreport.measured.big_rounds;
  const auto div = verify::check_divergence(predicted, profiler, opts);
  EXPECT_TRUE(div.ok());
  EXPECT_EQ(div.errors(), 0u);
  EXPECT_EQ(div.warnings(), 0u);  // zero point: no divergence findings at all
  EXPECT_TRUE(div.has(verify::kCodeDivergenceSummary));

  // The slack overload agrees with the span version over the same loads.
  const auto a = analyze_slack(profiler, 8);
  const auto b = analyze_slack(profiler.round_max_loads(), 8);
  EXPECT_EQ(a.slack, b.slack);
  EXPECT_EQ(a.min_slack, b.min_slack);
}

TEST(Divergence, FaultyRunsDivergeInTheExpectedDirections) {
  const auto in = make_instance();
  FaultPlan plan;
  plan.seed = 2024;
  plan.drop_rate = 0.05;
  add_random_crashes(plan, in.g.num_nodes(), 2, 10);
  const FaultInjector injector(in.g, plan);
  const RetryPolicy retry{2};
  const auto stretched = stretch_for_retries(in.schedule, retry);

  std::vector<LoadCell> predicted;
  const auto vreport = verify::check_schedule(*in.problem, stretched, {}, &predicted);
  ASSERT_FALSE(predicted.empty());

  ExecProfiler profiler;
  ExecConfig cfg;
  cfg.faults = &injector;
  cfg.retry = retry;
  cfg.profiler = &profiler;
  const auto r = Executor(in.g, cfg).run(in.algos, stretched);
  EXPECT_GT(r.faults.retransmissions, 0u);
  EXPECT_GT(r.faults.skipped_events, 0u);
  EXPECT_EQ(profiler.total_retries(), r.faults.retransmissions);

  verify::DivergenceOptions opts;
  opts.scheduled_big_rounds = vreport.measured.big_rounds;
  const auto div = verify::check_divergence(predicted, profiler, opts);

  // Divergences diagnose, they do not invalidate: still ok().
  EXPECT_TRUE(div.ok());
  EXPECT_GT(div.warnings(), 0u);
  // Retransmissions land in retry slots the static model left empty.
  EXPECT_TRUE(div.has(verify::kCodeDivergenceUnpredicted));
  // Crash-stopped senders never transmit their predicted cells.
  EXPECT_TRUE(div.has(verify::kCodeDivergenceUnrealized));
  EXPECT_TRUE(div.has(verify::kCodeDivergenceSummary));
}

// --- Steady-state allocation discipline with the observatory attached. ---

TEST(Profiler, ZeroSteadyStateAllocationsWithObservatoryAttached) {
  ASSERT_TRUE(alloc_counting_linked());
  const auto in = make_instance();

  ExecProfiler profiler;
  FlightRecorder recorder(FlightRecorderConfig{});  // rings only, no dump path
  ExecConfig cfg;
  cfg.profiler = &profiler;
  cfg.recorder = &recorder;
  Executor executor(in.g, cfg);

  // Run 1 warms the engine arenas, the profiler's cell list, and the rings to
  // their high-water marks.
  const auto warmup = executor.run(in.algos, in.schedule);
  EXPECT_EQ(fingerprint(warmup), kGoldenOutputHash);
  for (int run = 2; run <= 3; ++run) {
    const auto r = executor.run(in.algos, in.schedule);
    EXPECT_EQ(r.hot_path_allocs, 0u) << "run " << run;
    EXPECT_EQ(fingerprint(r), kGoldenOutputHash);
  }
}

// --- Flight recorder. ---

TEST(FlightRecorder, RingOverflowKeepsTheNewestEntries) {
  FlightRecorderConfig cfg;
  cfg.capacity = 4;
  FlightRecorder rec(cfg);
  rec.begin_run(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    rec.record(0, FlightRecorder::Kind::kEvent, i, std::uint64_t{i} << 32, i);
  }
  const auto doc = json::parse(rec.to_json("test"));
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->get("schema")->string, "dasched.flight_recorder.v1");
  EXPECT_EQ(doc->get("reason")->string, "test");
  const auto& rings = doc->get("rings")->array;
  ASSERT_EQ(rings.size(), 2u);  // worker0 + barrier
  const auto& worker = *rings[0];
  EXPECT_EQ(worker.get("recorded")->number, 10.0);
  EXPECT_EQ(worker.get("dropped")->number, 6.0);
  const auto& entries = worker.get("entries")->array;
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front()->get("round")->number, 6.0);  // oldest retained
  EXPECT_EQ(entries.back()->get("round")->number, 9.0);
}

TEST(FlightRecorder, DumpIsByteStableAcrossIdenticalRuns) {
  const auto in = make_instance();
  FaultPlan plan;
  plan.seed = 2024;
  plan.drop_rate = 0.05;
  add_random_crashes(plan, in.g.num_nodes(), 2, 10);
  const FaultInjector injector(in.g, plan);

  auto dump_of_run = [&](std::uint32_t threads) {
    FlightRecorder recorder(FlightRecorderConfig{});
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.faults = &injector;
    cfg.recorder = &recorder;
    (void)Executor(in.g, cfg).run(in.algos, in.schedule);
    // The executor flags the crash-stop faults automatically (no file was
    // written: the config has no dump path).
    EXPECT_EQ(recorder.last_reason(), "crash_stop_faults");
    return recorder.to_json("post_mortem");
  };

  const auto serial = dump_of_run(0);
  EXPECT_EQ(dump_of_run(0), serial);  // identical run, identical bytes
  EXPECT_NE(serial.find("\"kind\":\"crash-skip\""), std::string::npos);
  EXPECT_NE(serial.find("\"kind\":\"drop-random\""), std::string::npos);
  ASSERT_NE(json::parse(serial), nullptr);
}

TEST(FlightRecorderDeathTest, AdmissionRejectionWritesPostMortemDump) {
  auto in = make_instance();
  verify::VerifyingAdmission gate(*in.problem);
  // Dimensions stay valid (the executor's own shape CHECK runs before the
  // gate); instead invert causality for one receiving node of algorithm 1 so
  // the verifier rejects the table.
  ScheduleTable wrong = in.schedule;
  const auto& pattern = in.problem->solo()[1].pattern;
  std::int64_t victim = -1;
  for (std::uint32_t r = 1; r < in.problem->algorithm(1).rounds() && victim < 0; ++r) {
    const auto edges = pattern.edges_in_round(r);
    if (!edges.empty()) {
      const auto [lo, hi] = in.g.endpoints(edges.front() / 2);
      victim = edges.front() % 2 == 0 ? hi : lo;
    }
  }
  ASSERT_GE(victim, 0);
  const auto row = wrong.row_mut(1, static_cast<NodeId>(victim));
  for (std::uint32_t r = 1; r <= row.size(); ++r) row[r - 1] = r - 1;

  const std::string path = testing::TempDir() + "dasched_admission_dump.json";
  std::remove(path.c_str());
  FlightRecorderConfig fcfg;
  fcfg.dump_path = path;
  FlightRecorder recorder(fcfg);
  ExecConfig cfg;
  cfg.admission = &gate;
  cfg.recorder = &recorder;
  EXPECT_DEATH((void)Executor(in.g, cfg).run(in.algos, wrong),
               "rejected by the admission gate");

  // The child process wrote the post-mortem before aborting.
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const auto doc = json::parse(ss.str());
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->get("reason")->string, "admission_rejected");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dasched
