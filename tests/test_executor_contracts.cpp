// Failure-injection tests: the executor must *reject* invalid algorithms and
// invalid schedules loudly (death tests on the CHECK contracts), and must
// report -- not hide -- semantically broken-but-legal schedules.
#include <gtest/gtest.h>

#include "algos/broadcast.hpp"
#include "congest/executor.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"

namespace dasched {
namespace {

/// An algorithm whose single program misbehaves in a configurable way.
class MisbehavingAlgorithm final : public DistributedAlgorithm {
 public:
  enum class Mode {
    kSendToNonNeighbor,
    kDoubleSendToNeighbor,
    kOversizedPayload,
    kBandwidthHog,  // valid per-program, but two instances collide (solo only)
  };

  MisbehavingAlgorithm(Mode mode, std::uint32_t rounds)
      : DistributedAlgorithm(1), mode_(mode), rounds_(rounds) {}

  std::string name() const override { return "misbehaving"; }
  std::uint32_t rounds() const override { return rounds_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

  Mode mode() const { return mode_; }

 private:
  Mode mode_;
  std::uint32_t rounds_;
};

class MisbehavingProgram final : public NodeProgram {
 public:
  MisbehavingProgram(MisbehavingAlgorithm::Mode mode, NodeId self)
      : mode_(mode), self_(self) {}

  void on_round(VirtualContext& ctx) override {
    using Mode = MisbehavingAlgorithm::Mode;
    if (self_ != 0) return;
    switch (mode_) {
      case Mode::kSendToNonNeighbor:
        ctx.send(ctx.num_nodes() - 1, {1});  // path graph: not adjacent to 0
        break;
      case Mode::kDoubleSendToNeighbor:
        ctx.send(1, {1});
        ctx.send(1, {2});
        break;
      case Mode::kOversizedPayload: {
        Payload big(kDefaultMaxPayloadWords + 1, 7);
        ctx.send(1, std::move(big));
        break;
      }
      case Mode::kBandwidthHog:
        ctx.send(1, {self_});
        break;
    }
  }

 private:
  MisbehavingAlgorithm::Mode mode_;
  NodeId self_;
};

std::unique_ptr<NodeProgram> MisbehavingAlgorithm::make_program(NodeId node) const {
  return std::make_unique<MisbehavingProgram>(mode_, node);
}

using Mode = MisbehavingAlgorithm::Mode;

TEST(ExecutorContracts, RejectsSendToNonNeighbor) {
  const auto g = make_path(4);
  MisbehavingAlgorithm algo(Mode::kSendToNonNeighbor, 2);
  Simulator sim(g);
  EXPECT_DEATH((void)sim.run(algo), "non-neighbor");
}

TEST(ExecutorContracts, RejectsDoubleSendToSameNeighbor) {
  const auto g = make_path(4);
  MisbehavingAlgorithm algo(Mode::kDoubleSendToNeighbor, 2);
  Simulator sim(g);
  EXPECT_DEATH((void)sim.run(algo), "two messages to one neighbor");
}

TEST(ExecutorContracts, RejectsOversizedPayload) {
  const auto g = make_path(4);
  MisbehavingAlgorithm algo(Mode::kOversizedPayload, 2);
  Simulator sim(g);
  EXPECT_DEATH((void)sim.run(algo), "word budget");
}

TEST(ExecutorContracts, SoloEnforcesUnitBandwidth) {
  // Two bandwidth hogs scheduled into the SAME big-round over one edge: the
  // unit-capacity check must fire (this is what makes Simulator a CONGEST
  // simulator rather than a message bus).
  const auto g = make_path(4);
  MisbehavingAlgorithm a(Mode::kBandwidthHog, 2);
  MisbehavingAlgorithm b(Mode::kBandwidthHog, 2);
  ExecConfig cfg;
  cfg.enforce_unit_capacity = true;
  Executor executor(g, cfg);
  const DistributedAlgorithm* algos[] = {&a, &b};
  EXPECT_DEATH(
      (void)executor.run(algos, [](std::size_t, NodeId, std::uint32_t r) { return r - 1; }),
      "bandwidth");
}

TEST(ExecutorContracts, SchedulerBigRoundsMayCarryManyMessages) {
  // Without the solo flag, co-scheduling is legal and the load is recorded.
  const auto g = make_path(4);
  MisbehavingAlgorithm a(Mode::kBandwidthHog, 2);
  MisbehavingAlgorithm b(Mode::kBandwidthHog, 2);
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&a, &b};
  const auto exec =
      executor.run(algos, [](std::size_t, NodeId, std::uint32_t r) { return r - 1; });
  EXPECT_EQ(exec.max_edge_load, 2u);
}

TEST(ExecutorContracts, RejectsNonMonotoneSchedule) {
  const auto g = make_path(3);
  BroadcastAlgorithm algo(0, 3, 1, 1);
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  EXPECT_DEATH((void)executor.run(algos,
                                  [](std::size_t, NodeId, std::uint32_t r) {
                                    return r == 2 ? 0u : r;  // round 2 before round 1
                                  }),
               "strictly increasing");
}

TEST(ExecutorContracts, RejectsGappySchedule) {
  const auto g = make_path(3);
  BroadcastAlgorithm algo(0, 3, 1, 1);
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  EXPECT_DEATH((void)executor.run(algos,
                                  [](std::size_t, NodeId, std::uint32_t r) {
                                    return r == 2 ? kNeverScheduled : r;  // hole at r=2
                                  }),
               "gap");
}

TEST(ExecutorContracts, SendDuringFinishDies) {
  class FinishSender final : public NodeProgram {
   public:
    void on_round(VirtualContext&) override {}
    void on_finish(VirtualContext& ctx) override {
      if (ctx.self() == 0) ctx.send(1, {1});
    }
  };
  class FinishSenderAlgo final : public DistributedAlgorithm {
   public:
    FinishSenderAlgo() : DistributedAlgorithm(1) {}
    std::string name() const override { return "finish-sender"; }
    std::uint32_t rounds() const override { return 1; }
    std::unique_ptr<NodeProgram> make_program(NodeId) const override {
      return std::make_unique<FinishSender>();
    }
  };
  const auto g = make_path(2);
  FinishSenderAlgo algo;
  Simulator sim(g);
  EXPECT_DEATH((void)sim.run(algo), "on_finish");
}

// --- ExecutionResult schedule-length measures, edge cases. ---

TEST(ExecutionResultMeasures, EmptyExecution) {
  ExecutionResult r;
  EXPECT_EQ(r.adaptive_physical_rounds(), 0u);
  const auto fixed = r.fixed_phase(4);
  EXPECT_EQ(fixed.physical_rounds, 0u);
  EXPECT_EQ(fixed.overflowing_phases, 0u);
}

TEST(ExecutionResultMeasures, EmptyBigRoundsCountAsOneAdaptiveRound) {
  ExecutionResult r;
  r.num_big_rounds = 3;
  r.max_load_per_big_round = {0, 0, 0};
  // An empty big-round still takes one physical round (the paper's phases
  // advance in lockstep even when no edge is busy).
  EXPECT_EQ(r.adaptive_physical_rounds(), 3u);
}

TEST(ExecutionResultMeasures, SingleOverflowingPhase) {
  ExecutionResult r;
  r.num_big_rounds = 1;
  r.max_load_per_big_round = {9};
  r.max_edge_load = 9;
  EXPECT_EQ(r.adaptive_physical_rounds(), 9u);
  const auto fixed = r.fixed_phase(4);
  EXPECT_EQ(fixed.physical_rounds, 4u);  // phases are fixed-length...
  EXPECT_EQ(fixed.overflowing_phases, 1u);  // ...and the overflow is counted
}

TEST(ExecutionResultMeasures, PhaseLenOne) {
  ExecutionResult r;
  r.num_big_rounds = 4;
  r.max_load_per_big_round = {1, 0, 2, 1};
  const auto fixed = r.fixed_phase(1);
  EXPECT_EQ(fixed.physical_rounds, 4u);
  EXPECT_EQ(fixed.overflowing_phases, 1u);  // only the load-2 phase overflows
  EXPECT_EQ(r.adaptive_physical_rounds(), 1u + 1u + 2u + 1u);
}

TEST(ExecutionResultMeasures, PhaseLenZeroDies) {
  ExecutionResult r;
  EXPECT_DEATH((void)r.fixed_phase(0), "phase_len");
}

}  // namespace
}  // namespace dasched
