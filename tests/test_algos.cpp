#include <gtest/gtest.h>

#include "algos/aggregate.hpp"
#include "algos/bfs.hpp"
#include "algos/broadcast.hpp"
#include "algos/path_routing.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dasched {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> test_graphs() {
  Rng rng(1234);
  std::vector<GraphCase> cases;
  cases.push_back({"path16", make_path(16)});
  cases.push_back({"cycle17", make_cycle(17)});
  cases.push_back({"grid5x6", make_grid(5, 6)});
  cases.push_back({"tree31", make_binary_tree(31)});
  cases.push_back({"gnp60", make_gnp_connected(60, 0.08, rng)});
  cases.push_back({"lollipop24", make_lollipop(24, 8)});
  return cases;
}

class AlgosOnGraphs : public ::testing::TestWithParam<std::size_t> {
 protected:
  static std::vector<GraphCase>& cases() {
    static auto c = test_graphs();
    return c;
  }
  const Graph& graph() const { return cases()[GetParam()].graph; }
};

TEST_P(AlgosOnGraphs, BroadcastReachesExactlyTheBall) {
  const auto& g = graph();
  const NodeId source = g.num_nodes() / 2;
  const std::uint32_t h = 3;
  const auto dist = bfs_distances(g, source);

  Simulator sim(g);
  BroadcastAlgorithm algo(source, h, 77, 42);
  const auto result = sim.run(algo);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool in_ball = dist[v] <= h;
    EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutReceived], in_ball ? 1u : 0u)
        << "node " << v;
    if (in_ball) {
      EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutValue], 77u);
      EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutDistance], dist[v]);
    }
  }
}

TEST_P(AlgosOnGraphs, BfsDistancesMatchOracle) {
  const auto& g = graph();
  const NodeId source = 0;
  const std::uint32_t h = eccentricity(g, source);
  const auto dist = bfs_distances(g, source);

  Simulator sim(g);
  BfsAlgorithm algo(source, std::max(1u, h), 43);
  const auto result = sim.run(algo);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(result.outputs[v][BfsAlgorithm::kOutReached], 1u) << v;
    EXPECT_EQ(result.outputs[v][BfsAlgorithm::kOutDistance], dist[v]) << v;
    if (v != source) {
      const auto parent = static_cast<NodeId>(result.outputs[v][BfsAlgorithm::kOutParent]);
      // Parent is one hop closer to the source and adjacent.
      EXPECT_EQ(dist[parent] + 1, dist[v]);
      EXPECT_NE(g.find_edge(parent, v), kInvalidEdge);
    }
  }
}

TEST_P(AlgosOnGraphs, AggregateComputesBallSum) {
  const auto& g = graph();
  const NodeId root = g.num_nodes() / 3;
  const std::uint32_t h = 4;
  AggregateAlgorithm algo(root, h, 99);
  const auto dist = bfs_distances(g, root);

  std::uint64_t expected = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] <= h) expected += algo.local_value(v);
  }

  Simulator sim(g);
  const auto result = sim.run(algo);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool in_ball = dist[v] <= h;
    EXPECT_EQ(result.outputs[v][AggregateAlgorithm::kOutInBall], in_ball ? 1u : 0u);
    if (in_ball) {
      EXPECT_EQ(result.outputs[v][AggregateAlgorithm::kOutDistance], dist[v]);
      EXPECT_EQ(result.outputs[v][AggregateAlgorithm::kOutGlobalSum], expected)
          << "node " << v << " dist " << dist[v];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, AlgosOnGraphs,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return test_graphs()[info.param].name;
                         });

TEST(PathRouting, DeliversAlongPath) {
  const auto g = make_grid(4, 4);
  // Path along the top row then down: 0-1-2-3-7-11-15.
  PathRoutingAlgorithm algo({0, 1, 2, 3, 7, 11, 15}, 1234, 5);
  EXPECT_EQ(algo.rounds(), 6u);
  Simulator sim(g);
  const auto result = sim.run(algo);
  EXPECT_EQ(result.outputs[15].at(PathRoutingAlgorithm::kOutDelivered), 1u);
  EXPECT_EQ(result.outputs[15].at(PathRoutingAlgorithm::kOutValue), 1234u);
  // Intermediate nodes output nothing.
  EXPECT_TRUE(result.outputs[7].empty());
  // Exactly one message per path edge.
  EXPECT_EQ(result.total_messages, 6u);
  EXPECT_EQ(result.pattern.max_edge_load(), 1u);
  EXPECT_EQ(result.pattern.last_message_round(), 6u);
}

TEST(PathRouting, RandomInstanceIsConsistent) {
  Rng rng(77);
  const auto g = make_grid(6, 6);
  const auto packets = make_random_routing_instance(g, 12, rng, 1000);
  ASSERT_EQ(packets.size(), 12u);
  Simulator sim(g);
  const auto dist_cache = [&](NodeId a, NodeId b) {
    return bfs_distances(g, a)[b];
  };
  for (const auto& p : packets) {
    const auto& path = p->path();
    // Paths are shortest.
    EXPECT_EQ(path.size() - 1, dist_cache(path.front(), path.back()));
    const auto result = sim.run(*p);
    EXPECT_EQ(result.outputs[path.back()].at(PathRoutingAlgorithm::kOutDelivered), 1u);
  }
}

TEST(Broadcast, SingleHopOnlyNeighborsReached) {
  const auto g = make_star(6);
  Simulator sim(g);
  BroadcastAlgorithm from_leaf(3, 1, 5, 1);
  const auto result = sim.run(from_leaf);
  EXPECT_EQ(result.outputs[0][BroadcastAlgorithm::kOutReceived], 1u);  // hub
  EXPECT_EQ(result.outputs[1][BroadcastAlgorithm::kOutReceived], 0u);  // other leaf
}

TEST(Bfs, CappedRadiusLeavesFarNodesUnreached) {
  const auto g = make_path(10);
  Simulator sim(g);
  BfsAlgorithm algo(0, 4, 2);
  const auto result = sim.run(algo);
  EXPECT_EQ(result.outputs[4][BfsAlgorithm::kOutReached], 1u);
  EXPECT_EQ(result.outputs[5][BfsAlgorithm::kOutReached], 0u);
}

TEST(Aggregate, PatternUsesBothDirectionsOfTreeEdges) {
  const auto g = make_binary_tree(15);
  AggregateAlgorithm algo(0, 3, 7);
  Simulator sim(g);
  const auto result = sim.run(algo);
  // Flood goes down (and across), convergecast goes up: edge (0,1) must carry
  // messages in both directions.
  const EdgeId e = g.find_edge(0, 1);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_GT(result.pattern.edge_load(g.directed_id(e, 0)), 0u);
  EXPECT_GT(result.pattern.edge_load(g.directed_id(e, 1)), 0u);
}

}  // namespace
}  // namespace dasched
