// Fault-injection subsystem tests (docs/FAULTS.md):
//   * FaultPlan / FaultInjector semantics: seeded per-message drop and
//     duplicate decisions, crash-stop rounds, outage intervals, and the
//     random-plan generators.
//   * The executor's two hard contracts under faults:
//       - a null injector is byte-for-byte the pre-fault engine (asserted
//         against a golden fingerprint recorded before the subsystem existed),
//       - faulty runs are bit-identical for every thread count (same outputs,
//         fault accounting, telemetry counters, and RunReport JSON).
//   * Reliable delivery: bounded retransmissions on a retry-stretched schedule
//     recover correctness with zero causality violations by construction.
//   * Robustness analysis: slack arithmetic and the seeded survival curve.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "congest/executor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/reliable.hpp"
#include "fault/robustness.hpp"
#include "graph/generators.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_report.hpp"
#include "verify/schedule_verifier.hpp"

namespace dasched {
namespace {

// --- The fixed instance behind the golden-fingerprint and determinism
// tests: identical to test_parallel_executor's shared-scheduler instance. ---

struct Instance {
  Graph g;
  std::unique_ptr<ScheduleProblem> problem;
  std::vector<const DistributedAlgorithm*> algos;
  ScheduleTable schedule;
};

Instance make_instance() {
  Rng rng(11);
  Instance in{make_gnp_connected(150, 6.0 / 150, rng), nullptr, {}, {}};
  in.problem = make_mixed_workload(in.g, 10, 4, 77);
  in.problem->run_solo();
  in.algos = in.problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(77, in.algos.size(), 9, 4);
  in.schedule = ScheduleTable::from_delays(in.algos, in.g.num_nodes(), delays);
  return in;
}

// The canonical digest lives in congest/executor.hpp (result_fingerprint,
// built on util/fingerprint.hpp); the goldens below were recorded with the
// ad-hoc copy this alias replaced and must stay bit-identical under it.
std::uint64_t fingerprint(const ExecutionResult& r) { return result_fingerprint(r); }

// Golden values of the instance above, recorded from the serial executor.
// A null FaultInjector* must reproduce them exactly, at every thread count.
// Regenerated ONCE when make_gnp_connected switched to geometric
// skip-sampling (PR 7), which redraws the fixture graph. To regenerate after
// an intentional topology change (and only then), run
//   ./build/tests/test_fault --gtest_filter='FaultExecutor.NullInjector*'
// and copy the "Which is:" actual values from the failure output here and
// into tests/test_profiler.cpp (same instance, same constants).
constexpr std::uint64_t kGoldenOutputHash = 7665479431827327277ULL;
constexpr std::uint64_t kGoldenTotalMessages = 9498;
constexpr std::uint64_t kGoldenViolations = 0;
constexpr std::uint32_t kGoldenBigRounds = 17;
constexpr std::uint32_t kGoldenMaxEdgeLoad = 6;
constexpr std::uint64_t kGoldenEvents = 10050;

void expect_identical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.causality_violations, b.causality_violations);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.num_big_rounds, b.num_big_rounds);
  EXPECT_EQ(a.max_load_per_big_round, b.max_load_per_big_round);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_EQ(a.faults, b.faults);
}

// --- FaultInjector decision semantics. ---

TEST(FaultInjector, DropIsDeterministicAndCalibrated) {
  const auto g = make_path(4);
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.2;
  const FaultInjector inj(g, plan);

  std::uint64_t drops = 0;
  constexpr std::uint32_t kKeys = 50000;
  for (std::uint32_t tag = 0; tag < kKeys; ++tag) {
    const bool d = inj.drop(0, 1, tag, 0);
    EXPECT_EQ(d, inj.drop(0, 1, tag, 0));  // pure in its arguments
    drops += d ? 1 : 0;
  }
  const double rate = static_cast<double>(drops) / kKeys;
  EXPECT_NEAR(rate, 0.2, 0.01);

  // Distinct attempt indices redraw independently: a dropped first attempt
  // does not doom the retries.
  std::uint64_t both = 0;
  for (std::uint32_t tag = 0; tag < kKeys; ++tag) {
    if (inj.drop(0, 1, tag, 0) && inj.drop(0, 1, tag, 1)) ++both;
  }
  EXPECT_NEAR(static_cast<double>(both) / kKeys, 0.04, 0.005);
}

TEST(FaultInjector, DegenerateRates) {
  const auto g = make_path(3);
  FaultPlan always;
  always.drop_rate = 1.0;
  always.duplicate_rate = 1.0;
  const FaultInjector all(g, always);
  const FaultInjector none(g, FaultPlan{});
  for (std::uint32_t tag = 0; tag < 100; ++tag) {
    EXPECT_TRUE(all.drop(1, 2, tag, 0));
    EXPECT_TRUE(all.duplicate(1, 2, tag, 0));
    EXPECT_FALSE(none.drop(1, 2, tag, 0));
    EXPECT_FALSE(none.duplicate(1, 2, tag, 0));
  }
}

TEST(FaultInjector, CrashRounds) {
  const auto g = make_path(5);
  FaultPlan plan;
  plan.crashes.push_back({2, 3});
  const FaultInjector inj(g, plan);
  EXPECT_EQ(inj.crash_round(0), kNoCrash);
  EXPECT_EQ(inj.crash_round(2), 3u);
  EXPECT_FALSE(inj.node_crashed(2, 2));
  EXPECT_TRUE(inj.node_crashed(2, 3));
  EXPECT_TRUE(inj.node_crashed(2, 100));
  EXPECT_FALSE(inj.node_crashed(0, 1000));
  EXPECT_EQ(inj.num_crashes(), 1u);
}

TEST(FaultInjector, LinkOutageIntervalIsHalfOpen) {
  const auto g = make_path(5);  // edges 0..3
  FaultPlan plan;
  plan.outages.push_back({1, 2, 5});
  plan.outages.push_back({1, 7, 8});  // second interval on the same edge
  const FaultInjector inj(g, plan);
  EXPECT_FALSE(inj.link_down(1, 1));
  EXPECT_TRUE(inj.link_down(1, 2));
  EXPECT_TRUE(inj.link_down(1, 4));
  EXPECT_FALSE(inj.link_down(1, 5));
  EXPECT_TRUE(inj.link_down(1, 7));
  EXPECT_FALSE(inj.link_down(1, 8));
  EXPECT_FALSE(inj.link_down(0, 3));  // other edges unaffected
}

// --- Random plan generators. ---

TEST(FaultPlan, RandomCrashesAreDistinctSeededAndClamped) {
  FaultPlan a, b;
  a.seed = b.seed = 9;
  add_random_crashes(a, 50, 8, 12);
  add_random_crashes(b, 50, 8, 12);
  ASSERT_EQ(a.crashes.size(), 8u);
  std::set<NodeId> nodes;
  for (const auto& c : a.crashes) {
    EXPECT_LT(c.node, 50u);
    EXPECT_LE(c.at_round, 12u);
    nodes.insert(c.node);
  }
  EXPECT_EQ(nodes.size(), 8u);  // distinct
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {  // deterministic
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_EQ(a.crashes[i].at_round, b.crashes[i].at_round);
  }

  FaultPlan clamped;
  add_random_crashes(clamped, 3, 100, 5);
  EXPECT_EQ(clamped.crashes.size(), 3u);
}

TEST(FaultPlan, RandomOutagesAreDistinctAndInRange) {
  Rng rng(5);
  const auto g = make_gnp_connected(30, 0.2, rng);
  FaultPlan plan;
  plan.seed = 123;
  add_random_outages(plan, g, 6, 10, 4);
  ASSERT_EQ(plan.outages.size(), 6u);
  std::set<EdgeId> edges;
  for (const auto& o : plan.outages) {
    EXPECT_LT(o.edge, g.num_edges());
    EXPECT_LE(o.from_round, 10u);
    EXPECT_GT(o.until_round, o.from_round);
    EXPECT_LE(o.until_round - o.from_round, 4u);
    edges.insert(o.edge);
  }
  EXPECT_EQ(edges.size(), 6u);
}

// --- Reliable-delivery building blocks. ---

TEST(RetryPolicy, BackoffAndStretch) {
  EXPECT_EQ(RetryPolicy{}.stretch_factor(), 1u);
  const RetryPolicy r3{3};
  EXPECT_EQ(r3.stretch_factor(), 8u);
  EXPECT_EQ(r3.backoff_offset(1), 1u);
  EXPECT_EQ(r3.backoff_offset(2), 3u);
  EXPECT_EQ(r3.backoff_offset(3), 7u);
  // The proof's inequality: the last retry offset is < the stretch factor,
  // so retries land strictly before the next original big-round.
  for (std::uint32_t budget = 1; budget <= 10; ++budget) {
    const RetryPolicy p{budget};
    EXPECT_LT(p.backoff_offset(budget), p.stretch_factor());
  }
}

TEST(RetryQueue, FifoPerRoundAndAccounting) {
  RetryQueue<int> q;
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.take(3).empty());
  q.schedule(2, 10, 1);
  q.schedule(5, 20, 2);
  q.schedule(2, 30, 1);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(q.last_round(), 5u);
  const auto due = q.take(2);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].msg, 10);
  EXPECT_EQ(due[1].msg, 30);
  EXPECT_EQ(due[1].attempt, 1u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.take(2).empty());  // drained
  EXPECT_EQ(q.take(5).size(), 1u);
  EXPECT_EQ(q.pending(), 0u);
}

// --- Contract 1: null injector == the pre-subsystem executor (golden). ---

TEST(FaultExecutor, NullInjectorMatchesGoldenFingerprint) {
  const auto in = make_instance();
  for (const std::uint32_t threads : {0u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MetricsRegistry metrics;
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.telemetry = &metrics;
    cfg.faults = nullptr;     // explicit: the paper's reliable network
    cfg.admission = nullptr;  // explicit: no pre-execution gate
    const auto r = Executor(in.g, cfg).run(in.algos, in.schedule);

    EXPECT_EQ(fingerprint(r), kGoldenOutputHash);
    EXPECT_EQ(r.total_messages, kGoldenTotalMessages);
    EXPECT_EQ(r.causality_violations, kGoldenViolations);
    EXPECT_EQ(r.num_big_rounds, kGoldenBigRounds);
    EXPECT_EQ(r.max_edge_load, kGoldenMaxEdgeLoad);
    EXPECT_EQ(r.faults, ExecutionResult::FaultStats{});  // untouched
    EXPECT_EQ(metrics.counter("executor.events_executed"), kGoldenEvents);
    EXPECT_EQ(metrics.counter("executor.messages_sent"), kGoldenTotalMessages);
    EXPECT_EQ(metrics.counter("executor.messages_delivered"), kGoldenTotalMessages);
    EXPECT_EQ(metrics.counter("fault.attempts"), 0u);  // no fault.* emitted
  }
}

// A *passing* admission gate must be invisible: verification only observes
// the schedule, so the gated run reproduces the same golden fingerprint the
// ungated engine recorded before the verifier (or the gate hook) existed.
TEST(FaultExecutor, AdmissionGateMatchesGoldenFingerprint) {
  const auto in = make_instance();
  verify::VerifyingAdmission gate(*in.problem);
  for (const std::uint32_t threads : {0u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.admission = &gate;
    const auto r = Executor(in.g, cfg).run(in.algos, in.schedule);

    EXPECT_TRUE(gate.last_report().ok());
    EXPECT_EQ(fingerprint(r), kGoldenOutputHash);
    EXPECT_EQ(r.total_messages, kGoldenTotalMessages);
    EXPECT_EQ(r.causality_violations, kGoldenViolations);
    EXPECT_EQ(r.num_big_rounds, kGoldenBigRounds);
    EXPECT_EQ(r.max_edge_load, kGoldenMaxEdgeLoad);
    // The verifier's static load accounting agrees with the golden dynamics.
    EXPECT_EQ(gate.last_report().measured.max_edge_load, kGoldenMaxEdgeLoad);
    EXPECT_EQ(gate.last_report().measured.big_rounds, kGoldenBigRounds);
  }
}

// --- Contract 2: faulty runs are thread-count invariant. ---

constexpr const char* kFaultCounters[] = {
    "fault.attempts",
    "fault.delivered",
    "fault.dropped.random",
    "fault.dropped.outage",
    "fault.dropped.crash",
    "fault.duplicates.delivered",
    "fault.duplicates.suppressed",
    "fault.retransmissions",
    "fault.lost",
    "fault.skipped_events",
};

FaultPlan messy_plan(const Graph& g) {
  FaultPlan plan;
  plan.seed = 2024;
  plan.drop_rate = 0.05;
  plan.duplicate_rate = 0.03;
  add_random_crashes(plan, g.num_nodes(), 2, 10);
  add_random_outages(plan, g, 3, 12, 4);
  return plan;
}

TEST(FaultExecutor, FaultyRunIsThreadCountInvariant) {
  const auto in = make_instance();
  const FaultInjector injector(in.g, messy_plan(in.g));
  const RetryPolicy retry{2};
  const auto stretched = stretch_for_retries(in.schedule, retry);

  auto run_with = [&](std::uint32_t threads, MetricsRegistry* metrics) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.telemetry = metrics;
    cfg.faults = &injector;
    cfg.retry = retry;
    return Executor(in.g, cfg).run(in.algos, stretched);
  };

  MetricsRegistry serial_metrics;
  const auto serial = run_with(0, &serial_metrics);
  EXPECT_GT(serial.faults.dropped(), 0u);
  EXPECT_GT(serial.faults.retransmissions, 0u);
  EXPECT_GT(serial.faults.skipped_events, 0u);

  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MetricsRegistry metrics;
    const auto r = run_with(threads, &metrics);
    expect_identical(serial, r);
    for (const char* name : kFaultCounters) {
      EXPECT_EQ(metrics.counter(name), serial_metrics.counter(name)) << name;
    }
  }
}

TEST(FaultExecutor, ReportJsonIsByteIdenticalAcrossThreadCounts) {
  const auto in = make_instance();
  const FaultInjector injector(in.g, messy_plan(in.g));

  auto render = [&](std::uint32_t threads) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.faults = &injector;
    const auto r = Executor(in.g, cfg).run(in.algos, in.schedule);
    const auto slack = analyze_slack(r.max_load_per_big_round, 8);

    RunReport report;
    report.set_meta("fault_seed", injector.plan().seed);
    report.set_meta("drop_rate", injector.plan().drop_rate);
    Table t("faulty execution");
    t.set_header({"attempts", "dropped", "lost", "violations"});
    t.add_row({Table::fmt(r.faults.attempts), Table::fmt(r.faults.dropped()),
               Table::fmt(r.faults.lost), Table::fmt(r.causality_violations)});
    report.add_table(t);
    report.add_table(slack.to_table("slack"));
    RunReport::Series s;
    s.name = "fingerprint";
    s.columns = {"hash_lo"};
    s.points.push_back({static_cast<double>(fingerprint(r) & 0xffffffff)});
    report.add_series(std::move(s));

    std::ostringstream os;
    report.write(os);
    return os.str();
  };

  const std::string golden = render(0);
  EXPECT_NE(golden.find("\"series\""), std::string::npos);
  for (const std::uint32_t threads : {2u, 4u}) {
    EXPECT_EQ(render(threads), golden) << "threads=" << threads;
  }
}

// --- Fault semantics through the executor. ---

TEST(FaultExecutor, RetriesRecoverCorrectnessWithZeroViolations) {
  const auto in = make_instance();
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.1;
  const FaultInjector injector(in.g, plan);

  ExecConfig raw_cfg;
  raw_cfg.faults = &injector;
  const auto raw = Executor(in.g, raw_cfg).run(in.algos, in.schedule);
  EXPECT_GT(raw.faults.lost, 0u);
  EXPECT_FALSE(in.problem->verify(raw).ok());  // drops break the outputs

  const RetryPolicy retry{5};
  ExecConfig cfg;
  cfg.faults = &injector;
  cfg.retry = retry;
  const auto r =
      Executor(in.g, cfg).run(in.algos, stretch_for_retries(in.schedule, retry));
  EXPECT_EQ(r.causality_violations, 0u);  // by construction (reliable.hpp)
  EXPECT_EQ(r.faults.lost, 0u);
  EXPECT_GT(r.faults.retransmissions, 0u);
  // With zero losses the run behaves exactly like the reliable network, so
  // every fault-free message arrives exactly once (raw attempts differ:
  // dropped messages change what nodes send afterwards).
  EXPECT_EQ(r.faults.delivered, kGoldenTotalMessages);
  EXPECT_EQ(r.faults.attempts, kGoldenTotalMessages + r.faults.retransmissions);
  EXPECT_TRUE(in.problem->verify(r).ok());
}

TEST(FaultExecutor, CrashStopNodesSkipEventsAndNeverComplete) {
  Rng rng(3);
  const auto g = make_gnp_connected(40, 0.15, rng);
  auto problem = make_broadcast_workload(g, 3, 3, 5);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto schedule = ScheduleTable::lockstep(algos, g.num_nodes());

  FaultPlan plan;
  plan.crashes.push_back({7, 0});  // crashed from the very first big-round
  const FaultInjector injector(g, plan);
  ExecConfig cfg;
  cfg.faults = &injector;
  const auto r = Executor(g, cfg).run(algos, schedule);

  EXPECT_GT(r.faults.skipped_events, 0u);
  EXPECT_GT(r.faults.dropped_crash, 0u);  // neighbors still send to it
  for (std::size_t a = 0; a < algos.size(); ++a) {
    EXPECT_FALSE(r.completed[a][7]) << "algorithm " << a;
  }
  // Only the crashed node is affected at drop_rate 0.
  EXPECT_EQ(r.faults.dropped_random, 0u);
  EXPECT_EQ(r.faults.dropped_outage, 0u);
}

TEST(FaultExecutor, OutageDropsEveryMessageOnTheDarkLink) {
  const auto g = make_path(6);
  auto problem = make_broadcast_workload(g, 2, 5, 9);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto schedule = ScheduleTable::lockstep(algos, g.num_nodes());

  FaultPlan plan;
  plan.outages.push_back({2, 0, 1000});  // edge 2 dark for the whole run
  const FaultInjector injector(g, plan);
  ExecConfig cfg;
  cfg.faults = &injector;
  const auto r = Executor(g, cfg).run(algos, schedule);
  EXPECT_GT(r.faults.dropped_outage, 0u);
  EXPECT_EQ(r.faults.dropped_random, 0u);
  EXPECT_EQ(r.faults.attempts, r.faults.delivered + r.faults.dropped_outage);
}

TEST(FaultExecutor, DuplicatesDeliveredRawButSuppressedByReliableLayer) {
  const auto in = make_instance();
  FaultPlan plan;
  plan.seed = 13;
  plan.duplicate_rate = 1.0;  // every delivery duplicated
  const FaultInjector injector(in.g, plan);

  ExecConfig raw_cfg;
  raw_cfg.faults = &injector;
  const auto raw = Executor(in.g, raw_cfg).run(in.algos, in.schedule);
  EXPECT_EQ(raw.faults.duplicated, raw.faults.attempts);
  EXPECT_EQ(raw.faults.delivered, 2 * raw.faults.attempts);
  EXPECT_EQ(raw.faults.duplicates_suppressed, 0u);

  const RetryPolicy retry{1};
  ExecConfig rel_cfg;
  rel_cfg.faults = &injector;
  rel_cfg.retry = retry;
  const auto rel = Executor(in.g, rel_cfg)
                       .run(in.algos, stretch_for_retries(in.schedule, retry));
  EXPECT_EQ(rel.faults.duplicates_suppressed, rel.faults.attempts);
  EXPECT_EQ(rel.faults.delivered, rel.faults.attempts);  // exactly-once
  EXPECT_TRUE(in.problem->verify(rel).ok());
}

// --- Robustness analysis. ---

TEST(Robustness, SlackArithmetic) {
  const std::uint32_t loads[] = {3, 8, 10};
  const auto report = analyze_slack(loads, 8);
  EXPECT_EQ(report.phase_len, 8u);
  ASSERT_EQ(report.slack.size(), 3u);
  EXPECT_EQ(report.slack[0], 5);
  EXPECT_EQ(report.slack[1], 0);
  EXPECT_EQ(report.slack[2], -2);
  EXPECT_EQ(report.min_slack, -2);
  EXPECT_DOUBLE_EQ(report.mean_slack, 1.0);
  EXPECT_EQ(report.negative_rounds, 1u);

  MetricsRegistry metrics;
  (void)analyze_slack(loads, 8, &metrics);
  EXPECT_EQ(metrics.counter("fault.slack.negative_rounds"), 1u);
}

TEST(Robustness, SurvivalCurveIsSeededAndCountsCorrectRuns) {
  const std::vector<double> rates = {0.0, 0.5};
  std::vector<std::uint64_t> seen_seeds;
  auto trial = [&](double drop_rate, std::uint64_t fault_seed) {
    seen_seeds.push_back(fault_seed);
    return drop_rate == 0.0;  // "survives" only the fault-free point
  };
  const auto curve = survival_curve(rates, 4, 99, trial);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_EQ(curve.points[0].survived, 4u);
  EXPECT_DOUBLE_EQ(curve.points[0].survival_fraction(), 1.0);
  EXPECT_EQ(curve.points[1].survived, 0u);
  EXPECT_EQ(curve.points[1].trials, 4u);

  const auto seeds_first = seen_seeds;
  seen_seeds.clear();
  (void)survival_curve(rates, 4, 99, trial);
  EXPECT_EQ(seen_seeds, seeds_first);  // reproducible seed derivation
  EXPECT_EQ(std::set<std::uint64_t>(seeds_first.begin(), seeds_first.end()).size(),
            seeds_first.size());  // distinct across points and trials
}

}  // namespace
}  // namespace dasched
