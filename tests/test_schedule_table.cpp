// ScheduleTable edge cases: the degenerate instances every scheduler may hand
// the executor -- zero algorithms, zero-round programs, single-node graphs --
// plus the retry-slot stretch (scaled) used by the reliable-delivery layer
// (fault/reliable.hpp).
#include <gtest/gtest.h>

#include "algos/broadcast.hpp"
#include "congest/executor.hpp"
#include "fault/reliable.hpp"
#include "graph/generators.hpp"

namespace dasched {
namespace {

/// A T-round algorithm whose nodes do nothing (but still execute every round
/// and finish). rounds() == 0 is allowed: only on_finish runs.
class NoopAlgorithm final : public DistributedAlgorithm {
 public:
  explicit NoopAlgorithm(std::uint32_t rounds, std::uint64_t seed = 1)
      : DistributedAlgorithm(seed), rounds_(rounds) {}
  std::string name() const override { return "noop"; }
  std::uint32_t rounds() const override { return rounds_; }
  std::unique_ptr<NodeProgram> make_program(NodeId) const override {
    class P final : public NodeProgram {
      void on_round(VirtualContext&) override {}
      std::vector<std::uint64_t> output() const override { return {7}; }
    };
    return std::make_unique<P>();
  }

 private:
  std::uint32_t rounds_;
};

// --- k = 0: no algorithms at all. ---

TEST(ScheduleTableEdge, NoAlgorithms) {
  const auto g = make_path(4);
  const std::vector<const DistributedAlgorithm*> algos;
  const auto lockstep = ScheduleTable::lockstep(algos, g.num_nodes());
  EXPECT_EQ(lockstep.num_algorithms(), 0u);
  EXPECT_EQ(lockstep.num_nodes(), 4u);

  const std::vector<std::uint32_t> delays;
  const auto delayed = ScheduleTable::from_delays(algos, g.num_nodes(), delays);
  EXPECT_EQ(delayed.num_algorithms(), 0u);

  const auto r = Executor(g).run(algos, delayed);
  EXPECT_EQ(r.num_big_rounds, 0u);
  EXPECT_EQ(r.total_messages, 0u);
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_TRUE(r.all_completed());  // vacuously
}

// --- Zero-round programs: only on_finish executes. ---

TEST(ScheduleTableEdge, ZeroRoundProgram) {
  const auto g = make_path(3);
  const NoopAlgorithm zero(0);
  const NoopAlgorithm two(2);
  const std::vector<const DistributedAlgorithm*> algos = {&zero, &two};

  const auto lockstep = ScheduleTable::lockstep(algos, g.num_nodes());
  EXPECT_EQ(lockstep.rounds(0), 0u);
  EXPECT_EQ(lockstep.row(0, 0).size(), 0u);  // empty row, no slots
  EXPECT_EQ(lockstep.at(1, 2, 2), 1u);       // round r at big-round r-1

  const std::vector<std::uint32_t> delays = {5, 1};
  const auto delayed = ScheduleTable::from_delays(algos, g.num_nodes(), delays);
  EXPECT_EQ(delayed.row(0, 1).size(), 0u);
  EXPECT_EQ(delayed.at(1, 1, 1), 1u);

  const auto r = Executor(g).run(algos, delayed);
  EXPECT_TRUE(r.all_completed());  // zero-round algorithm still finishes
  EXPECT_EQ(r.outputs[0][0], (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(r.causality_violations, 0u);
}

// --- Single-node graph: no edges, nothing to send. ---

TEST(ScheduleTableEdge, SingleNodeGraph) {
  const Graph g(1, {});
  const NoopAlgorithm noop(3);
  const BroadcastAlgorithm bcast(0, 2, 99, 2);
  const std::vector<const DistributedAlgorithm*> algos = {&noop, &bcast};

  const auto lockstep = ScheduleTable::lockstep(algos, 1);
  EXPECT_EQ(lockstep.num_nodes(), 1u);
  const auto r = Executor(g).run(algos, lockstep);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_messages, 0u);
  EXPECT_EQ(r.max_edge_load, 0u);
}

// --- scaled(): the reliable-delivery stretch. ---

TEST(ScheduleTableEdge, ScaledMultipliesSlotsAndKeepsHoles) {
  const NoopAlgorithm a(3);
  const std::vector<const DistributedAlgorithm*> algos = {&a};
  auto table = ScheduleTable::lockstep(algos, 2);
  table.set(0, 1, 3, kNeverScheduled);  // truncated row: rounds 1..2 only

  const auto scaled = table.scaled(4);
  EXPECT_EQ(scaled.at(0, 0, 1), 0u);
  EXPECT_EQ(scaled.at(0, 0, 2), 4u);
  EXPECT_EQ(scaled.at(0, 0, 3), 8u);
  EXPECT_EQ(scaled.at(0, 1, 2), 4u);
  EXPECT_EQ(scaled.at(0, 1, 3), kNeverScheduled);  // holes preserved

  // Factor 1 is the identity (RetryPolicy{} never stretches).
  const auto same = table.scaled(1);
  EXPECT_EQ(same.at(0, 0, 2), 1u);
  EXPECT_EQ(stretch_for_retries(table, RetryPolicy{}).at(0, 0, 2), 1u);

  // A scaled schedule still executes with identical results, later.
  const Graph g(2, std::vector<std::pair<NodeId, NodeId>>{{0, 1}});
  const auto base = Executor(g).run(algos, table);
  const auto stretched = Executor(g).run(algos, scaled);
  EXPECT_EQ(stretched.outputs, base.outputs);
  EXPECT_EQ(stretched.completed, base.completed);
  EXPECT_EQ(stretched.causality_violations, 0u);
}

}  // namespace
}  // namespace dasched
