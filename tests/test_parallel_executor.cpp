// The parallel big-round execution engine's determinism contract: for every
// thread count, Executor::run must produce ExecutionResults that are
// bit-identical to the serial path -- outputs, loads, violation counts, and
// telemetry counters. The per-(alg, node) RNG streams and the shard-order
// merge of staged messages make this possible; these tests assert it holds
// across shared- and private-scheduler schedules, plus a stress test on a
// large random graph. Also covers the ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "congest/executor.hpp"
#include "graph/generators.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/parallel.hpp"

namespace dasched {
namespace {

constexpr std::uint32_t kThreadCounts[] = {0, 1, 2, 4, 7};

/// Core counters that must not depend on the thread count. (The
/// executor.parallel.* counters legitimately vary: they describe how the
/// work was farmed out, not what was computed.)
constexpr const char* kInvariantCounters[] = {
    "executor.events_executed", "executor.big_rounds",
    "executor.messages_sent",   "executor.messages_delivered",
    "executor.causality_violations",
};

void expect_identical(const ExecutionResult& a, const ExecutionResult& b,
                      std::uint32_t num_threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.causality_violations, b.causality_violations);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.num_big_rounds, b.num_big_rounds);
  EXPECT_EQ(a.max_load_per_big_round, b.max_load_per_big_round);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
}

void expect_identical_patterns(const CommunicationPattern& a,
                               const CommunicationPattern& b) {
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  EXPECT_EQ(a.total_messages(), b.total_messages());
  ASSERT_EQ(a.last_message_round(), b.last_message_round());
  for (std::uint32_t d = 0; d < a.num_directed_edges(); ++d) {
    EXPECT_EQ(a.edge_load(d), b.edge_load(d)) << "directed edge " << d;
  }
  for (std::uint32_t r = 1; r <= a.last_message_round(); ++r) {
    const auto ea = a.edges_in_round(r);
    const auto eb = b.edges_in_round(r);
    EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin(), eb.end()))
        << "round " << r;
  }
}

// --- ThreadPool primitive. ---

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(97);
  pool.run(97, [&](std::uint32_t s) { ++hits[s]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::vector<std::uint64_t> sums(3, 0);
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(3, [&](std::uint32_t s) { sums[s] += s + 1; });
  }
  EXPECT_EQ(sums, (std::vector<std::uint64_t>{50, 100, 150}));
}

TEST(ThreadPool, SingleWorkerRunsOnCaller) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.run(5, [&](std::uint32_t s) { order.push_back(static_cast<int>(s)); });
  // One worker (the caller) claims shards in order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroShardsIsANoop) {
  ThreadPool pool(2);
  pool.run(0, [&](std::uint32_t) { FAIL() << "no shard should run"; });
}

TEST(ThreadPool, MoreShardsThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  pool.run(1000, [&](std::uint32_t s) { total += s; });
  EXPECT_EQ(total.load(), 1000ull * 999 / 2);
}

// --- Executor determinism across thread counts. ---

TEST(ParallelExecutor, SharedSchedulerScheduleIsThreadCountInvariant) {
  Rng rng(11);
  const auto g = make_gnp_connected(150, 6.0 / 150, rng);
  auto problem = make_mixed_workload(g, 10, 4, 77);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(77, algos.size(), 9, 4);
  const auto schedule = ScheduleTable::from_delays(algos, g.num_nodes(), delays);

  ExecConfig serial_cfg;
  serial_cfg.record_patterns = true;
  const auto baseline = Executor(g, serial_cfg).run(algos, schedule);
  EXPECT_TRUE(problem->verify(baseline).ok());

  for (const auto threads : kThreadCounts) {
    ExecConfig cfg;
    cfg.record_patterns = true;
    cfg.num_threads = threads;
    const auto result = Executor(g, cfg).run(algos, schedule);
    expect_identical(baseline, result, threads);
    ASSERT_EQ(baseline.patterns.size(), result.patterns.size());
    for (std::size_t a = 0; a < algos.size(); ++a) {
      SCOPED_TRACE("algorithm " + std::to_string(a) + " at " +
                   std::to_string(threads) + " threads");
      expect_identical_patterns(baseline.patterns[a], result.patterns[a]);
    }
  }
}

TEST(ParallelExecutor, SharedSchedulerEndToEnd) {
  Rng rng(5);
  const auto g = make_gnp_connected(120, 6.0 / 120, rng);
  SharedSchedulerConfig base_cfg;
  base_cfg.shared_seed = 42;
  auto p0 = make_mixed_workload(g, 8, 3, 9);
  const auto baseline = SharedRandomnessScheduler(base_cfg).run(*p0);

  for (const auto threads : kThreadCounts) {
    auto p = make_mixed_workload(g, 8, 3, 9);
    SharedSchedulerConfig cfg = base_cfg;
    cfg.num_threads = threads;
    const auto out = SharedRandomnessScheduler(cfg).run(*p);
    expect_identical(baseline.exec, out.exec, threads);
    EXPECT_EQ(baseline.schedule_rounds, out.schedule_rounds);
    EXPECT_TRUE(p->verify(out.exec).ok());
  }
}

TEST(ParallelExecutor, PrivateSchedulerEndToEnd) {
  Rng rng(3);
  const auto g = make_gnp_connected(100, 6.0 / 100, rng);
  PrivateSchedulerConfig base_cfg;
  base_cfg.seed = 21;
  base_cfg.central_clustering = true;
  base_cfg.central_sharing = true;
  auto p0 = make_mixed_workload(g, 6, 3, 13);
  const auto baseline = PrivateRandomnessScheduler(base_cfg).run(*p0);

  for (const auto threads : kThreadCounts) {
    auto p = make_mixed_workload(g, 6, 3, 13);
    PrivateSchedulerConfig cfg = base_cfg;
    cfg.num_threads = threads;
    const auto out = PrivateRandomnessScheduler(cfg).run(*p);
    expect_identical(baseline.exec, out.exec, threads);
    EXPECT_EQ(baseline.schedule_rounds, out.schedule_rounds);
    EXPECT_TRUE(p->verify(out.exec).ok());
  }
}

TEST(ParallelExecutor, TelemetryCountersAreThreadCountInvariant) {
  Rng rng(17);
  const auto g = make_gnp_connected(130, 6.0 / 130, rng);
  auto problem = make_mixed_workload(g, 8, 4, 31);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(31, algos.size(), 7, 4);
  const auto schedule = ScheduleTable::from_delays(algos, g.num_nodes(), delays);

  MetricsRegistry serial_metrics;
  {
    ExecConfig cfg;
    cfg.telemetry = &serial_metrics;
    (void)Executor(g, cfg).run(algos, schedule);
  }
  for (const auto threads : kThreadCounts) {
    MetricsRegistry metrics;
    ExecConfig cfg;
    cfg.telemetry = &metrics;
    cfg.num_threads = threads;
    (void)Executor(g, cfg).run(algos, schedule);
    for (const auto* name : kInvariantCounters) {
      EXPECT_EQ(serial_metrics.counter(name), metrics.counter(name))
          << name << " at " << threads << " threads";
    }
    EXPECT_EQ(serial_metrics.gauge("executor.max_edge_load"),
              metrics.gauge("executor.max_edge_load"));
    // The split between serial and parallel rounds varies with the thread
    // count, but every big-round is accounted exactly once.
    EXPECT_EQ(metrics.counter("executor.parallel.rounds_serial") +
                  metrics.counter("executor.parallel.rounds_parallel"),
              metrics.counter("executor.big_rounds"));
  }
}

TEST(ParallelExecutor, CausalityViolationCountsAreThreadCountInvariant) {
  // An intentionally broken schedule must report the same violation count at
  // every thread count. Even nodes run round r at big-round r + 4 (delayed
  // senders) while odd nodes run lockstep at r - 1, so an odd node consumes
  // tag r at big-round r but its even neighbors only transmit it at r + 4.
  Rng rng(23);
  const auto g = make_gnp_connected(90, 6.0 / 90, rng);
  auto problem = make_broadcast_workload(g, 6, 4, 47);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  auto schedule = ScheduleTable(algos, g.num_nodes());
  for (std::size_t a = 0; a < algos.size(); ++a) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto slots = schedule.row_mut(a, v);
      for (std::uint32_t r = 1; r <= slots.size(); ++r) {
        slots[r - 1] = (v % 2 == 0) ? (r - 1 + 5) : (r - 1);
      }
    }
  }

  const auto baseline = Executor(g, {}).run(algos, schedule);
  EXPECT_GT(baseline.causality_violations, 0u)
      << "the schedule is constructed to violate causality";
  for (const auto threads : kThreadCounts) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    const auto result = Executor(g, cfg).run(algos, schedule);
    expect_identical(baseline, result, threads);
  }
}

TEST(ParallelExecutor, StressLargeRandomGraph) {
  Rng rng(41);
  const auto g = make_gnp_connected(1200, 5.0 / 1200, rng);
  auto problem = make_mixed_workload(g, 12, 5, 97);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(97, algos.size(), 6, 5);
  const auto schedule = ScheduleTable::from_delays(algos, g.num_nodes(), delays);

  const auto baseline = Executor(g, {}).run(algos, schedule);
  EXPECT_TRUE(problem->verify(baseline).ok());
  for (const std::uint32_t threads : {2u, 4u}) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    const auto result = Executor(g, cfg).run(algos, schedule);
    expect_identical(baseline, result, threads);
  }
}

TEST(ParallelExecutor, ExecutorReusedAcrossRuns) {
  // The pool is created lazily and reused; back-to-back runs on one Executor
  // must stay deterministic.
  Rng rng(8);
  const auto g = make_gnp_connected(100, 6.0 / 100, rng);
  auto problem = make_bfs_workload(g, 6, 4, 3);
  problem->run_solo();
  const auto algos = problem->algorithm_ptrs();
  const auto delays = SharedRandomnessScheduler::draw_delays(3, algos.size(), 5, 4);
  const auto schedule = ScheduleTable::from_delays(algos, g.num_nodes(), delays);

  ExecConfig cfg;
  cfg.num_threads = 4;
  Executor executor(g, cfg);
  const auto first = executor.run(algos, schedule);
  const auto second = executor.run(algos, schedule);
  expect_identical(first, second, 4);
}

}  // namespace
}  // namespace dasched
