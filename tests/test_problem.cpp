#include <gtest/gtest.h>

#include "algos/broadcast.hpp"
#include "algos/path_routing.hpp"
#include "graph/generators.hpp"
#include "sched/baseline.hpp"
#include "sched/problem.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

TEST(ScheduleProblem, DilationIsMaxRounds) {
  const auto g = make_path(8);
  ScheduleProblem problem(g);
  problem.add(std::make_unique<BroadcastAlgorithm>(0, 3, 1, 1));
  problem.add(std::make_unique<BroadcastAlgorithm>(7, 6, 2, 2));
  EXPECT_EQ(problem.dilation(), 6u);
}

TEST(ScheduleProblem, CongestionOnSharedEdge) {
  // Two packets routed over the same directed path edges: congestion 2 on
  // shared edges.
  const auto g = make_path(5);
  ScheduleProblem problem(g);
  problem.add(std::make_unique<PathRoutingAlgorithm>(
      std::vector<NodeId>{0, 1, 2, 3}, 10, 1));
  problem.add(std::make_unique<PathRoutingAlgorithm>(
      std::vector<NodeId>{1, 2, 3, 4}, 20, 2));
  problem.run_solo();
  EXPECT_EQ(problem.congestion(), 2u);
  EXPECT_EQ(problem.dilation(), 3u);
  EXPECT_EQ(problem.trivial_lower_bound(), 3u);
  EXPECT_EQ(problem.total_messages(), 6u);
}

TEST(ScheduleProblem, OppositeDirectionsDoNotCongest) {
  // CONGEST allows one message per *direction*: two packets crossing the same
  // edge in opposite directions have congestion 1.
  const auto g = make_path(3);
  ScheduleProblem problem(g);
  problem.add(std::make_unique<PathRoutingAlgorithm>(std::vector<NodeId>{0, 1, 2}, 1, 1));
  problem.add(std::make_unique<PathRoutingAlgorithm>(std::vector<NodeId>{2, 1, 0}, 2, 2));
  problem.run_solo();
  EXPECT_EQ(problem.congestion(), 1u);
}

TEST(ScheduleProblem, VerifyAcceptsSoloReplay) {
  Rng rng(5);
  const auto g = make_gnp_connected(40, 0.1, rng);
  auto problem = make_mixed_workload(g, 6, 3, 77);
  problem->run_solo();

  // Replay sequentially (always correct).
  Executor executor(g, {});
  const auto algos = problem->algorithm_ptrs();
  std::vector<std::uint32_t> offsets(algos.size(), 0);
  for (std::size_t a = 1; a < algos.size(); ++a) {
    offsets[a] = offsets[a - 1] + algos[a - 1]->rounds();
  }
  const auto exec =
      executor.run(algos, [&offsets](std::size_t a, NodeId, std::uint32_t r) {
        return offsets[a] + r - 1;
      });
  const auto v = problem->verify(exec);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.incomplete_nodes, 0u);
  EXPECT_EQ(v.mismatched_outputs, 0u);
}

TEST(ScheduleProblem, VerifyCountsBrokenSchedules) {
  const auto g = make_path(6);
  ScheduleProblem problem(g);
  problem.add(std::make_unique<BroadcastAlgorithm>(0, 5, 9, 3));
  problem.run_solo();

  // Everyone runs rounds 1..5 at once-ish but node 0 runs last: downstream
  // nodes never see the token.
  Executor executor(g, {});
  const auto algos = problem.algorithm_ptrs();
  const auto exec = executor.run(algos, [](std::size_t, NodeId v, std::uint32_t r) {
    return (v == 0 ? 100u : 0u) + r - 1;
  });
  const auto v = problem.verify(exec);
  EXPECT_FALSE(v.ok());
  EXPECT_GT(v.mismatched_outputs, 0u);
  EXPECT_GT(v.causality_violations, 0u);
}

TEST(Workloads, SizesAndSoloAreConsistent) {
  Rng rng(8);
  const auto g = make_gnp_connected(50, 0.1, rng);
  const auto bcast = make_broadcast_workload(g, 5, 3, 1);
  EXPECT_EQ(bcast->size(), 5u);
  const auto bfs = make_bfs_workload(g, 4, 3, 2);
  EXPECT_EQ(bfs->size(), 4u);
  const auto routing = make_routing_workload(g, 7, 3);
  EXPECT_EQ(routing->size(), 7u);
  auto mixed = make_mixed_workload(g, 9, 3, 4);
  EXPECT_EQ(mixed->size(), 9u);
  mixed->run_solo();
  EXPECT_GT(mixed->congestion(), 0u);
  EXPECT_GE(mixed->dilation(), 3u);
}

TEST(ScheduleProblem, MessageComplexityDoesNotDetermineCongestion) {
  // Section 5's side note: "an algorithm with message complexity O(m) can
  // have congestion anywhere between O(1) to O(m)". Two routing workloads
  // with the SAME total message count: one spreads packets over disjoint
  // path segments (congestion 1), the other funnels them all through one
  // edge (congestion k).
  const auto g = make_path(17);
  const std::size_t k = 8;

  ScheduleProblem spread(g);
  for (std::size_t i = 0; i < k; ++i) {
    // Disjoint 2-edge segments: 0-1-2, 2-3-4, ... (consecutive packets share
    // only endpoints, never a directed edge in the same direction).
    const NodeId s = static_cast<NodeId>(2 * i);
    spread.add(std::make_unique<PathRoutingAlgorithm>(
        std::vector<NodeId>{s, s + 1, s + 2}, i, i + 1));
  }
  spread.run_solo();

  ScheduleProblem funneled(g);
  for (std::size_t i = 0; i < k; ++i) {
    // Every packet crosses the same two edges 0-1-2.
    funneled.add(std::make_unique<PathRoutingAlgorithm>(
        std::vector<NodeId>{0, 1, 2}, i, 100 + i));
  }
  funneled.run_solo();

  EXPECT_EQ(spread.total_messages(), funneled.total_messages());
  EXPECT_EQ(spread.congestion(), 1u);
  EXPECT_EQ(funneled.congestion(), k);
  // And the schedulers feel it: the funneled instance cannot beat congestion.
  const auto out = GreedyScheduler{}.run(funneled);
  EXPECT_TRUE(funneled.verify(out.exec).ok());
  EXPECT_GE(out.schedule_rounds, k);
}

}  // namespace
}  // namespace dasched
