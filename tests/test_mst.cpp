// Section 5 MST tests: the tunable pipeline MST must produce the exact MST
// (vs central Kruskal) for every value of the congestion knob, and its
// congestion/dilation must move along the Kutten-Peleg-style tradeoff.
#include <gtest/gtest.h>

#include "algos/mst.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sched/problem.hpp"
#include "sched/shared_scheduler.hpp"

namespace dasched {
namespace {

/// Per-node incident-MST-edge oracle from central Kruskal.
std::vector<std::vector<std::uint64_t>> kruskal_incident(
    const Graph& g, const std::vector<std::uint64_t>& w) {
  const auto mst = kruskal_mst(g, w);
  std::vector<std::vector<std::uint64_t>> expected(g.num_nodes());
  for (const EdgeId e : mst) {
    const auto [a, b] = g.endpoints(e);
    expected[a].push_back(e);
    expected[b].push_back(e);
  }
  for (auto& v : expected) std::sort(v.begin(), v.end());
  return expected;
}

struct MstCase {
  std::string name;
  Graph graph;
};

std::vector<MstCase>& mst_cases() {
  static auto* cases = [] {
    Rng rng(1000);
    auto* v = new std::vector<MstCase>;
    v->push_back({"path20", make_path(20)});
    v->push_back({"cycle24", make_cycle(24)});
    v->push_back({"grid6x6", make_grid(6, 6)});
    v->push_back({"gnp50", make_gnp_connected(50, 0.1, rng)});
    v->push_back({"random80", make_random_connected(80, 200, rng)});
    v->push_back({"lollipop30", make_lollipop(30, 10)});
    v->push_back({"complete12", make_complete(12)});
    return v;
  }();
  return *cases;
}

class MstOnGraphs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MstOnGraphs, MatchesKruskalForEveryKnobValue) {
  const auto& c = mst_cases()[GetParam()];
  const auto w = make_mst_weights(c.graph, 77);
  const auto expected = kruskal_incident(c.graph, w);
  Simulator sim(c.graph);
  for (const std::uint32_t target :
       {1u, 2u, 4u, 8u, c.graph.num_nodes() / 2, c.graph.num_nodes()}) {
    if (target < 1) continue;
    PipelineMstAlgorithm algo(c.graph, w, target, 5);
    const auto result = sim.run(algo);
    for (NodeId v = 0; v < c.graph.num_nodes(); ++v) {
      EXPECT_EQ(result.outputs[v], expected[v])
          << c.name << " target=" << target << " node " << v;
    }
  }
}

TEST_P(MstOnGraphs, DifferentWeightSeedsGiveDifferentTreesButAlwaysCorrect) {
  const auto& c = mst_cases()[GetParam()];
  Simulator sim(c.graph);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto w = make_mst_weights(c.graph, seed);
    const auto expected = kruskal_incident(c.graph, w);
    PipelineMstAlgorithm algo(c.graph, w, 4, seed);
    const auto result = sim.run(algo);
    for (NodeId v = 0; v < c.graph.num_nodes(); ++v) {
      EXPECT_EQ(result.outputs[v], expected[v]) << c.name << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, MstOnGraphs,
                         ::testing::Range<std::size_t>(0, 7),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return mst_cases()[info.param].name;
                         });

TEST(Mst, WeightsAreDistinct) {
  const auto g = make_complete(20);
  const auto w = make_mst_weights(g, 9);
  std::set<std::uint64_t> s(w.begin(), w.end());
  EXPECT_EQ(s.size(), w.size());
}

TEST(Mst, PlanFragmentsRespectTarget) {
  Rng rng(4);
  const auto g = make_random_connected(100, 300, rng);
  const auto w = make_mst_weights(g, 11);
  std::uint32_t prev_fragments = 0;
  for (const std::uint32_t target : {1u, 5u, 20u, 100u}) {
    const auto plan = plan_mst(g, w, target);
    EXPECT_GE(plan.num_fragments, 1u);
    if (target == 100) {
      EXPECT_EQ(plan.num_fragments, 100u);  // no phases run
    }
    if (target == 1) {
      EXPECT_EQ(plan.num_fragments, 1u);
    }
    // Fewer target fragments => more Boruvka phases => not fewer fragments
    // than a smaller target produced.
    EXPECT_GE(plan.num_fragments, prev_fragments);
    prev_fragments = plan.num_fragments;
  }
}

TEST(Mst, TradeoffMovesCongestionAndDilation) {
  // The Section 5 tradeoff: small target_fragments (the paper's congestion
  // knob L) => low congestion, high dilation; large => the reverse.
  Rng rng(5);
  const auto g = make_random_connected(120, 360, rng);
  const auto w = make_mst_weights(g, 13);

  auto measure = [&](std::uint32_t target) {
    ScheduleProblem problem(g);
    problem.add(std::make_unique<PipelineMstAlgorithm>(g, w, target, 3));
    problem.run_solo();
    return std::pair<std::uint32_t, std::uint32_t>{problem.congestion(),
                                                   problem.dilation()};
  };
  const auto [c_low, d_low] = measure(4);      // few fragments
  const auto [c_high, d_high] = measure(120);  // singletons (pure pipeline)
  EXPECT_LT(c_low, c_high);
  EXPECT_GT(d_low, d_high);
}

TEST(Mst, KShotSchedulingStaysCorrect) {
  // k MST instances (different weights) scheduled together under Theorem 1.1
  // must all deliver the exact per-instance MST.
  Rng rng(6);
  const auto g = make_random_connected(60, 150, rng);
  ScheduleProblem problem(g);
  const std::size_t k = 4;
  std::vector<std::vector<std::vector<std::uint64_t>>> expected;
  for (std::size_t i = 0; i < k; ++i) {
    auto w = make_mst_weights(g, 100 + i);
    expected.push_back(kruskal_incident(g, w));
    problem.add(std::make_unique<PipelineMstAlgorithm>(g, std::move(w), 8, 100 + i));
  }
  const auto out = SharedRandomnessScheduler{}.run(problem);
  ASSERT_TRUE(problem.verify(out.exec).ok());
  for (std::size_t i = 0; i < k; ++i) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(out.exec.outputs[i][v], expected[i][v]);
    }
  }
}

TEST(Mst, SingleNodeAndSingleEdge) {
  {
    const auto g = make_path(1);
    PipelineMstAlgorithm algo(g, {}, 1, 1);
    Simulator sim(g);
    const auto r = sim.run(algo);
    EXPECT_TRUE(r.outputs[0].empty());
  }
  {
    const auto g = make_path(2);
    const auto w = make_mst_weights(g, 2);
    PipelineMstAlgorithm algo(g, w, 1, 1);
    Simulator sim(g);
    const auto r = sim.run(algo);
    EXPECT_EQ(r.outputs[0], (std::vector<std::uint64_t>{0}));
    EXPECT_EQ(r.outputs[1], (std::vector<std::uint64_t>{0}));
  }
}

}  // namespace
}  // namespace dasched
