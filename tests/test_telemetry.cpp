// Telemetry subsystem tests: sink semantics (counters, gauges, histograms,
// spans), JSON snapshot round-trip through the bundled parser, Chrome trace
// output shape, RunReport documents, and -- the acceptance criterion of the
// instrumentation -- that the metrics an instrumented scheduler run emits
// match the scalars on its ExecutionResult exactly, while a null sink leaves
// the execution bit-for-bit unchanged.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace dasched {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry semantics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("x"), 0u);
  m.add_counter("x", 2);
  m.add_counter("x", 3);
  m.add_counter("y", 1);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("y"), 1u);
  EXPECT_EQ(m.counter("absent"), 0u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  MetricsRegistry m;
  m.set_gauge("g", 1.5);
  m.set_gauge("g", -2.0);
  EXPECT_DOUBLE_EQ(m.gauge("g"), -2.0);
  EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, HistogramsAggregate) {
  MetricsRegistry m;
  for (const double x : {3.0, 1.0, 2.0, 2.0}) m.record_value("h", x);
  const Histogram* h = m.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 3.0);
  EXPECT_DOUBLE_EQ(h->mean(), 2.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 2.0);
  EXPECT_EQ(m.histogram("absent"), nullptr);
}

TEST(MetricsRegistry, SampleRetentionIsCapped) {
  MetricsRegistry m;
  m.set_sample_cap(8);
  for (int i = 0; i < 100; ++i) m.record_value("h", i);
  const Histogram* h = m.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 100u);
  EXPECT_EQ(h->retained(), 8u);
  EXPECT_FALSE(h->complete());
  // Exact moments survive the cap; quantiles fall back to the log buckets
  // but stay clamped to the observed range.
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 99.0);
  EXPECT_DOUBLE_EQ(h->mean(), 49.5);
  EXPECT_GE(h->quantile(0.5), 0.0);
  EXPECT_LE(h->quantile(0.5), 99.0);

  // The JSON snapshot reports how many samples the cap dropped.
  const auto doc = json::parse(m.to_json(true));
  ASSERT_NE(doc, nullptr);
  EXPECT_DOUBLE_EQ(
      doc->get("histograms")->get("h")->get("samples_dropped")->number, 92.0);

  // Opting back into full retention is explicit.
  MetricsRegistry full;
  full.keep_all_samples();
  for (int i = 0; i < 100; ++i) full.record_value("h", i);
  EXPECT_TRUE(full.histogram("h")->complete());
  EXPECT_DOUBLE_EQ(full.histogram("h")->quantile(0.5), 50.0);
}

TEST(MetricsRegistry, SpansKeyedByCategorySlashName) {
  MetricsRegistry m;
  m.record_span("cat", "op", 100, 40, {});
  m.record_span("cat", "op", 200, 10, {});
  const auto* s = m.span("cat/op");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_EQ(s->total_us, 50u);
  EXPECT_EQ(s->max_us, 40u);
  EXPECT_EQ(m.span("cat/other"), nullptr);
}

TEST(MetricsRegistry, ClearEmptiesEverything) {
  MetricsRegistry m;
  m.add_counter("c", 1);
  m.set_gauge("g", 1);
  m.record_value("h", 1);
  m.record_span("s", "p", 0, 1, {});
  EXPECT_FALSE(m.empty());
  m.clear();
  EXPECT_TRUE(m.empty());
}

// ---------------------------------------------------------------------------
// TimedSpan / TeeSink.
// ---------------------------------------------------------------------------

TEST(TimedSpan, RecordsOnceWithArgs) {
  MetricsRegistry m;
  {
    TimedSpan span(&m, "test", "work");
    span.arg("items", 7);
    span.finish();
    span.finish();  // idempotent
  }  // destructor after finish: no double record
  const auto* s = m.span("test/work");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
}

TEST(TimedSpan, NullSinkIsNoOp) {
  TimedSpan span(nullptr, "test", "work");
  span.arg("x", 1);
  span.finish();  // must not crash
}

TEST(TeeSink, FansOutToAllSinks) {
  MetricsRegistry a;
  MetricsRegistry b;
  TeeSink tee({&a, nullptr, &b});
  tee.add_counter("c", 2);
  tee.set_gauge("g", 3.0);
  tee.record_value("h", 4.0);
  tee.record_span("s", "p", 0, 5, {});
  for (const auto* m : {&a, &b}) {
    EXPECT_EQ(m->counter("c"), 2u);
    EXPECT_DOUBLE_EQ(m->gauge("g"), 3.0);
    EXPECT_EQ(m->histogram("h")->count(), 1u);
    EXPECT_EQ(m->span("s/p")->count, 1u);
  }
}

// ---------------------------------------------------------------------------
// SampleSet lazy-sort regression (the double-mutation subtlety).
// ---------------------------------------------------------------------------

TEST(SampleSet, SortedAccessorIsAscendingAndTracksAdds) {
  SampleSet s;
  s.add(3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);  // triggers the lazy sort
  s.add(0.5);                              // must invalidate the sorted state
  const auto& sorted = s.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

// ---------------------------------------------------------------------------
// JSON writer/parser round-trip.
// ---------------------------------------------------------------------------

TEST(Json, WriterEscapesAndParserUnescapes) {
  std::ostringstream oss;
  json::Writer w(oss);
  w.begin_object();
  w.kv("text", "line\n\"quoted\"\\x");
  w.kv("num", 1.25);
  w.key("arr");
  w.begin_array();
  w.value(std::uint64_t{7});
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();

  const auto doc = json::parse(oss.str());
  ASSERT_NE(doc, nullptr) << oss.str();
  EXPECT_EQ(doc->get("text")->string, "line\n\"quoted\"\\x");
  EXPECT_DOUBLE_EQ(doc->get("num")->number, 1.25);
  ASSERT_EQ(doc->get("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc->get("arr")->array[0]->number, 7.0);
  EXPECT_TRUE(doc->get("arr")->array[1]->boolean);
  EXPECT_EQ(doc->get("arr")->array[2]->kind, json::Value::Kind::kNull);
}

TEST(Json, ParserRejectsMalformedInput) {
  std::string err;
  EXPECT_EQ(json::parse("{\"a\": }", &err), nullptr);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(json::parse("[1, 2", nullptr), nullptr);
  EXPECT_EQ(json::parse("{} trailing", nullptr), nullptr);
  EXPECT_EQ(json::parse("", nullptr), nullptr);
}

TEST(MetricsRegistry, JsonSnapshotRoundTrip) {
  MetricsRegistry m;
  m.add_counter("runs", 3);
  m.set_gauge("phase_len", 8.0);
  for (const double x : {5.0, 1.0, 3.0}) m.record_value("load", x);
  m.record_span("exec", "run", 10, 250, {});

  const auto doc = json::parse(m.to_json(/*include_samples=*/true));
  ASSERT_NE(doc, nullptr);
  EXPECT_DOUBLE_EQ(doc->get("counters")->get("runs")->number, 3.0);
  EXPECT_DOUBLE_EQ(doc->get("gauges")->get("phase_len")->number, 8.0);

  const auto* h = doc->get("histograms")->get("load");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->get("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(h->get("min")->number, 1.0);
  EXPECT_DOUBLE_EQ(h->get("max")->number, 5.0);
  EXPECT_DOUBLE_EQ(h->get("mean")->number, 3.0);
  const auto* samples = h->get("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 3u);
  EXPECT_DOUBLE_EQ(samples->array[0]->number, 1.0);  // exported ascending
  EXPECT_DOUBLE_EQ(samples->array[2]->number, 5.0);

  const auto* span = doc->get("spans")->get("exec/run");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->get("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(span->get("total_us")->number, 250.0);
}

// ---------------------------------------------------------------------------
// ChromeTraceSink.
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmitsParsableTraceEventsDocument) {
  ChromeTraceSink trace("unit-test");
  const SpanArg args[] = {{"load", 3.0}};
  trace.record_span("executor", "big_round", 1000, 50, args);
  trace.add_counter("messages", 2);
  trace.add_counter("messages", 3);
  trace.record_value("max_load", 7.0);  // samples are counter-track points too

  std::ostringstream oss;
  trace.write(oss);
  const auto doc = json::parse(oss.str());
  ASSERT_NE(doc, nullptr) << oss.str();
  const auto* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  // metadata + 1 span + 2 counter samples + 1 histogram sample.
  ASSERT_EQ(events->array.size(), 5u);

  const auto& span = *events->array[1];
  EXPECT_EQ(span.get("ph")->string, "X");
  EXPECT_EQ(span.get("name")->string, "big_round");
  EXPECT_EQ(span.get("cat")->string, "executor");
  EXPECT_DOUBLE_EQ(span.get("dur")->number, 50.0);
  EXPECT_DOUBLE_EQ(span.get("args")->get("load")->number, 3.0);

  // Counter samples carry the cumulative value.
  EXPECT_DOUBLE_EQ(events->array[2]->get("args")->get("value")->number, 2.0);
  EXPECT_DOUBLE_EQ(events->array[3]->get("args")->get("value")->number, 5.0);

  // record_value samples carry the emitted value, not a running total.
  EXPECT_EQ(events->array[4]->get("ph")->string, "C");
  EXPECT_EQ(events->array[4]->get("name")->string, "max_load");
  EXPECT_DOUBLE_EQ(events->array[4]->get("args")->get("value")->number, 7.0);
}

// ---------------------------------------------------------------------------
// RunReport.
// ---------------------------------------------------------------------------

TEST(RunReport, WritesSchemaMetaTablesAndTelemetry) {
  Table table("demo");
  table.set_header({"a", "b"});
  table.add_row({"1", "x"});
  table.add_row({"2", "y"});

  MetricsRegistry metrics;
  metrics.add_counter("c", 9);

  RunReport report;
  report.set_meta("graph", "gnp");
  report.set_meta("n", std::uint64_t{100});
  report.set_meta("n", std::uint64_t{150});  // overwrite, no duplicate key
  report.add_table(table);
  report.attach_metrics(metrics);

  std::ostringstream oss;
  report.write(oss);
  const auto doc = json::parse(oss.str());
  ASSERT_NE(doc, nullptr) << oss.str();
  EXPECT_EQ(doc->get("schema")->string, "dasched.run_report.v1");
  EXPECT_EQ(doc->get("meta")->get("graph")->string, "gnp");
  EXPECT_DOUBLE_EQ(doc->get("meta")->get("n")->number, 150.0);

  const auto* tables = doc->get("tables");
  ASSERT_EQ(tables->array.size(), 1u);
  EXPECT_EQ(tables->array[0]->get("title")->string, "demo");
  EXPECT_EQ(tables->array[0]->get("columns")->array.size(), 2u);
  const auto* rows = tables->array[0]->get("rows");
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_EQ(rows->array[1]->array[1]->string, "y");

  EXPECT_DOUBLE_EQ(doc->get("telemetry")->get("counters")->get("c")->number, 9.0);
}

TEST(RunReport, SeriesRoundTripsThroughJson) {
  RunReport report;
  EXPECT_EQ(report.num_series(), 0u);

  RunReport::Series s;
  s.name = "e12.fault_sweep";
  s.columns = {"drop_rate", "lost"};
  s.points = {{0.01, 3.0}, {0.05, 17.0}};
  report.add_series(std::move(s));
  EXPECT_EQ(report.num_series(), 1u);
  EXPECT_FALSE(report.empty());

  std::ostringstream oss;
  report.write(oss);
  const auto doc = json::parse(oss.str());
  ASSERT_NE(doc, nullptr) << oss.str();
  const auto* series = doc->get("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0]->get("name")->string, "e12.fault_sweep");
  EXPECT_EQ(series->array[0]->get("columns")->array[1]->string, "lost");
  const auto* points = series->array[0]->get("points");
  ASSERT_EQ(points->array.size(), 2u);
  EXPECT_DOUBLE_EQ(points->array[1]->array[0]->number, 0.05);
  EXPECT_DOUBLE_EQ(points->array[1]->array[1]->number, 17.0);

  // A report without series omits the key entirely (schema stability).
  RunReport bare;
  bare.set_meta("x", std::uint64_t{1});
  std::ostringstream bare_os;
  bare.write(bare_os);
  EXPECT_EQ(bare_os.str().find("\"series\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Instrumented executions: metrics must match ExecutionResult exactly, and a
// null sink must not change the execution.
// ---------------------------------------------------------------------------

TEST(InstrumentedExecution, SharedSchedulerMetricsMatchExecutionResult) {
  Rng rng(11);
  const auto g = make_gnp_connected(60, 0.08, rng);
  auto problem = make_mixed_workload(g, 6, 3, 11);

  MetricsRegistry metrics;
  SharedSchedulerConfig cfg;
  cfg.shared_seed = 11;
  cfg.telemetry = &metrics;
  const auto out = SharedRandomnessScheduler(cfg).run(*problem);
  ASSERT_TRUE(problem->verify(out.exec).ok());

  EXPECT_EQ(metrics.counter("executor.messages_sent"), out.exec.total_messages);
  EXPECT_EQ(metrics.counter("executor.messages_delivered"), out.exec.total_messages);
  EXPECT_EQ(metrics.counter("executor.causality_violations"),
            out.exec.causality_violations);
  EXPECT_EQ(metrics.counter("executor.big_rounds"), out.exec.num_big_rounds);
  EXPECT_EQ(metrics.counter("sched.shared.fixed_phase_overflows"),
            out.fixed.overflowing_phases);
  EXPECT_DOUBLE_EQ(metrics.gauge("executor.max_edge_load"), out.exec.max_edge_load);
  EXPECT_DOUBLE_EQ(metrics.gauge("sched.shared.phase_len"), out.phase_len);
  EXPECT_DOUBLE_EQ(metrics.gauge("sched.shared.schedule_rounds"),
                   static_cast<double>(out.schedule_rounds));

  // The per-big-round max-load histogram is the ExecutionResult vector.
  const Histogram* loads = metrics.histogram("executor.max_load_per_big_round");
  ASSERT_NE(loads, nullptr);
  ASSERT_EQ(loads->count(), out.exec.max_load_per_big_round.size());
  auto expected = out.exec.max_load_per_big_round;
  std::sort(expected.begin(), expected.end());
  const auto& got = loads->sorted();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], static_cast<double>(expected[i])) << "index " << i;
  }

  // Delay histogram: one sample per algorithm.
  ASSERT_NE(metrics.histogram("sched.shared.delay"), nullptr);
  EXPECT_EQ(metrics.histogram("sched.shared.delay")->count(), problem->size());

  // Pipeline spans were recorded.
  ASSERT_NE(metrics.span("sched.shared/run"), nullptr);
  ASSERT_NE(metrics.span("sched.shared/execute"), nullptr);
  ASSERT_NE(metrics.span("executor/run"), nullptr);
  EXPECT_EQ(metrics.span("executor/big_round")->count, out.exec.num_big_rounds);
}

TEST(InstrumentedExecution, PrivateSchedulerEmitsPipelineMetrics) {
  Rng rng(7);
  const auto g = make_gnp_connected(50, 0.1, rng);
  auto problem = make_mixed_workload(g, 4, 2, 7);

  MetricsRegistry metrics;
  PrivateSchedulerConfig cfg;
  cfg.seed = 7;
  cfg.telemetry = &metrics;
  const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
  ASSERT_TRUE(problem->verify(out.exec).ok());

  EXPECT_EQ(metrics.counter("sched.private.precomputation_rounds"),
            out.precomputation_rounds);
  EXPECT_EQ(metrics.counter("clustering.rounds") + metrics.counter("rand_sharing.rounds"),
            out.precomputation_rounds);
  EXPECT_EQ(metrics.counter("sched.private.uncovered_nodes"), out.uncovered_nodes);
  EXPECT_DOUBLE_EQ(metrics.gauge("sched.private.num_layers"), out.num_layers);
  EXPECT_DOUBLE_EQ(metrics.gauge("sched.private.mean_coverage"), out.mean_coverage);

  // Lemma 4.4 accounting: every scheduled slot had >= 1 eligible layer copy.
  EXPECT_GT(metrics.counter("sched.private.scheduled_slots"), 0u);
  EXPECT_GE(metrics.counter("sched.private.dedup_suppressed"), 0u);

  // Clustering diagnostics: one cluster-count sample per layer, one h' sample
  // per (layer, node), one coverage sample per node.
  ASSERT_NE(metrics.histogram("clustering.clusters_per_layer"), nullptr);
  EXPECT_EQ(metrics.histogram("clustering.clusters_per_layer")->count(), out.num_layers);
  ASSERT_NE(metrics.histogram("clustering.h_prime"), nullptr);
  EXPECT_EQ(metrics.histogram("clustering.h_prime")->count(),
            static_cast<std::size_t>(out.num_layers) * g.num_nodes());
  ASSERT_NE(metrics.histogram("sched.private.coverage"), nullptr);
  EXPECT_EQ(metrics.histogram("sched.private.coverage")->count(), g.num_nodes());

  // Every pipeline stage span exists.
  for (const char* key : {"sched.private/run", "sched.private/clustering",
                          "sched.private/rand_sharing", "sched.private/compute_delays",
                          "sched.private/build_schedule", "sched.private/execute"}) {
    EXPECT_NE(metrics.span(key), nullptr) << key;
  }
}

TEST(InstrumentedExecution, NullSinkLeavesExecutionUnchanged) {
  Rng rng(3);
  const auto g = make_gnp_connected(40, 0.1, rng);

  auto run_once = [&](TelemetrySink* sink) {
    auto problem = make_mixed_workload(g, 5, 3, 3);
    SharedSchedulerConfig cfg;
    cfg.shared_seed = 3;
    cfg.telemetry = sink;
    return SharedRandomnessScheduler(cfg).run(*problem);
  };

  MetricsRegistry metrics;
  const auto with = run_once(&metrics);
  const auto without = run_once(nullptr);

  EXPECT_EQ(with.exec.total_messages, without.exec.total_messages);
  EXPECT_EQ(with.exec.num_big_rounds, without.exec.num_big_rounds);
  EXPECT_EQ(with.exec.max_load_per_big_round, without.exec.max_load_per_big_round);
  EXPECT_EQ(with.exec.outputs, without.exec.outputs);
  EXPECT_EQ(with.delays, without.delays);
  EXPECT_FALSE(metrics.empty());
}

}  // namespace
}  // namespace dasched