// Lemma 4.3 tests: the pipelined dissemination must deliver every node all
// Theta(log n) seed words of its own cluster center within H + Theta(log n)
// rounds per layer, and must agree with the central oracle.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sched/clustering.hpp"
#include "sched/rand_sharing.hpp"

namespace dasched {
namespace {

struct SharingFixture {
  Graph graph;
  Clustering clustering;
  std::uint64_t seed;
};

SharingFixture make_fixture(Graph g, std::uint32_t dilation, std::uint64_t seed,
                            std::uint32_t layers) {
  ClusteringConfig cfg;
  cfg.seed = seed;
  cfg.dilation = dilation;
  cfg.num_layers = layers;
  auto clustering = ClusteringBuilder(cfg).build_distributed(g);
  return {std::move(g), std::move(clustering), seed};
}

TEST(RandSharing, EveryNodeReceivesItsCenterSeed) {
  Rng rng(1);  // seed re-picked when make_gnp_connected moved to skip-sampling (PR 7)
  auto fx = make_fixture(make_gnp_connected(60, 0.08, rng), 2, 5, 5);
  RandSharingConfig cfg;
  cfg.seed = fx.seed;
  cfg.words_per_seed = 6;
  const RandomnessSharing sharing(cfg);
  const auto seeds = sharing.run_distributed(fx.graph, fx.clustering);
  EXPECT_TRUE(seeds.all_complete());
  ASSERT_EQ(seeds.layers.size(), fx.clustering.num_layers());
  for (std::size_t l = 0; l < seeds.layers.size(); ++l) {
    for (NodeId v = 0; v < fx.graph.num_nodes(); ++v) {
      EXPECT_EQ(seeds.layers[l].center_label[v], fx.clustering.layers[l].label[v])
          << "layer " << l << " node " << v;
      EXPECT_EQ(seeds.layers[l].words[v].size(), cfg.words_per_seed);
    }
  }
}

TEST(RandSharing, DistributedMatchesCentralOracle) {
  auto fx = make_fixture(make_grid(6, 6), 2, 9, 4);
  RandSharingConfig cfg;
  cfg.seed = fx.seed;
  cfg.words_per_seed = 5;
  const RandomnessSharing sharing(cfg);
  const auto dist = sharing.run_distributed(fx.graph, fx.clustering);
  const auto central = sharing.run_central(fx.graph, fx.clustering);
  ASSERT_TRUE(dist.all_complete());
  for (std::size_t l = 0; l < dist.layers.size(); ++l) {
    for (NodeId v = 0; v < fx.graph.num_nodes(); ++v) {
      EXPECT_EQ(dist.layers[l].words[v], central.layers[l].words[v])
          << "layer " << l << " node " << v;
    }
  }
}

TEST(RandSharing, ClusterMembersHoldIdenticalSeeds) {
  Rng rng(4);
  auto fx = make_fixture(make_gnp_connected(50, 0.1, rng), 2, 11, 4);
  RandSharingConfig cfg;
  cfg.seed = fx.seed;
  cfg.words_per_seed = 4;
  const auto seeds = RandomnessSharing(cfg).run_distributed(fx.graph, fx.clustering);
  ASSERT_TRUE(seeds.all_complete());
  for (std::size_t l = 0; l < seeds.layers.size(); ++l) {
    for (NodeId u = 0; u < fx.graph.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < fx.graph.num_nodes(); ++v) {
        if (fx.clustering.layers[l].center[u] == fx.clustering.layers[l].center[v]) {
          EXPECT_EQ(seeds.layers[l].words[u], seeds.layers[l].words[v]);
        }
      }
    }
  }
}

TEST(RandSharing, RoundBudgetIsPipelined) {
  // Per layer: H + s + slack rounds -- *not* the naive H * s.
  auto fx = make_fixture(make_path(30), 3, 13, 3);
  RandSharingConfig cfg;
  cfg.seed = fx.seed;
  cfg.words_per_seed = 8;
  cfg.slack_rounds = 4;
  const auto seeds = RandomnessSharing(cfg).run_distributed(fx.graph, fx.clustering);
  const std::uint64_t per_layer = fx.clustering.hop_cap + 3 * 8 + 4;
  EXPECT_EQ(seeds.rounds, per_layer * fx.clustering.num_layers());
  EXPECT_TRUE(seeds.all_complete());
}

TEST(RandSharing, WordsDifferAcrossLayersAndCenters) {
  auto fx = make_fixture(make_grid(5, 5), 2, 21, 3);
  RandSharingConfig cfg;
  cfg.seed = fx.seed;
  cfg.words_per_seed = 4;
  const auto seeds = RandomnessSharing(cfg).run_central(fx.graph, fx.clustering);
  // Different layers' seeds for the same node should differ (independent
  // layer randomness).
  bool differs = false;
  for (NodeId v = 0; v < fx.graph.num_nodes() && !differs; ++v) {
    differs = seeds.layers[0].words[v] != seeds.layers[1].words[v];
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace dasched
