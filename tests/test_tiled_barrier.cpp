// The tiled parallel delivery barrier (congest/executor.cpp,
// docs/PERFORMANCE.md): end-of-big-round delivery runs as a tiled counting
// sort -- per-worker histograms over statically owned consumer tiles, exact
// CSR offsets from a deterministic prefix-sum, parallel scatter with no
// atomics -- and must stay bit-identical to the serial delivery order in
// every geometry. These tests drive the barrier's edge cases:
//   * big-rounds with no messages at all (scaled schedules interleave empty
//     rounds between populated ones),
//   * tile_bytes as a pure tuning knob: tiny tiles (every tile over-full,
//     many more tiles than workers) through giant tiles (one tile for the
//     whole bucket, fewer tiles than workers),
//   * a unit-capacity overflow detected inside the parallel barrier (death
//     test on a round provably routed through the tiled path),
//   * retries on faulty runs landing in their owner's tile deterministically
//     across thread counts,
//   * zero steady-state allocations through the tiled path.
#include <gtest/gtest.h>

#include "congest/executor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/reliable.hpp"
#include "graph/generators.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

constexpr std::uint32_t kThreadCounts[] = {0, 1, 2, 4, 7};

struct Instance {
  Graph g;
  std::unique_ptr<ScheduleProblem> problem;
  std::vector<const DistributedAlgorithm*> algos;
  ScheduleTable schedule;
};

/// The shared fixture of test_fault / test_parallel_executor: dense enough
/// that populated big-rounds carry well over kMinMessagesParallelBarrier
/// messages, so multi-thread runs exercise the tiled barrier.
Instance make_instance() {
  Rng rng(11);
  Instance in{make_gnp_connected(150, 6.0 / 150, rng), nullptr, {}, {}};
  in.problem = make_mixed_workload(in.g, 10, 4, 77);
  in.problem->run_solo();
  in.algos = in.problem->algorithm_ptrs();
  const auto delays =
      SharedRandomnessScheduler::draw_delays(77, in.algos.size(), 9, 4);
  in.schedule = ScheduleTable::from_delays(in.algos, in.g.num_nodes(), delays);
  return in;
}

void expect_identical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.causality_violations, b.causality_violations);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.num_big_rounds, b.num_big_rounds);
  EXPECT_EQ(a.max_load_per_big_round, b.max_load_per_big_round);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
}

// --- Tile geometry derivation. ---

TEST(TileGeometry, EventsPerTileIsAPowerOfTwoMultipleOf64) {
  // Small (but legal) budgets clamp to the 64-event floor (one presence word).
  EXPECT_EQ(tile_events_for_bytes(arena_message_bytes(kDefaultMaxPayloadWords)), 64u);
  EXPECT_EQ(tile_events_for_bytes(64 * arena_message_bytes(3) - 1, 3), 64u);
  // Powers of two: never mid-word tile boundaries. Narrower widths pack more
  // events into the same budget, never fewer.
  for (std::uint32_t width = 1; width <= InlinePayload::kInlineCapacity; ++width) {
    std::uint32_t prev = ~0u;
    for (const std::size_t bytes : {std::size_t{1} << 12, std::size_t{1} << 15,
                                    std::size_t{1} << 20, std::size_t{1} << 30}) {
      const auto ev = tile_events_for_bytes(bytes, width);
      EXPECT_GE(ev, 64u);
      EXPECT_EQ(ev & (ev - 1), 0u)
          << "not a power of two at " << bytes << " width " << width;
      EXPECT_LE(std::size_t{ev} * arena_message_bytes(width),
                std::max(bytes, 64 * arena_message_bytes(width)));
    }
    const auto at_default = tile_events_for_bytes(kDefaultTileBytes, width);
    EXPECT_LE(at_default, prev == ~0u ? at_default : prev)
        << "wider messages cannot mean bigger tiles";
    prev = at_default;
  }
  // The default at the default width: half an L1's worth of arena.
  EXPECT_EQ(tile_events_for_bytes(kDefaultTileBytes), 512u);
}

// --- Degenerate budgets are rejected, not silently floored: a tile_bytes
// below one max-width arena message used to clamp to 64 events and hand back
// 64x the requested bytes. Both the free function and the executor
// constructor must refuse such geometry outright. ---

TEST(TileGeometryDeathTest, RejectsBudgetsBelowOneMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)tile_events_for_bytes(0),
               "tile_bytes smaller than one max-width arena message");
  EXPECT_DEATH((void)tile_events_for_bytes(arena_message_bytes(3) - 1, 3),
               "tile_bytes smaller than one max-width arena message");
  EXPECT_DEATH((void)tile_events_for_bytes(kDefaultTileBytes, 0),
               "tile geometry width outside the inline payload capacity");
  EXPECT_DEATH(
      (void)tile_events_for_bytes(kDefaultTileBytes,
                                  InlinePayload::kInlineCapacity + 1),
      "tile geometry width outside the inline payload capacity");
  Rng rng(3);
  const auto g = make_gnp_connected(20, 0.3, rng);
  ExecConfig cfg;
  cfg.tile_bytes = arena_message_bytes(cfg.max_payload_words) - 1;
  EXPECT_DEATH((void)Executor(g, cfg),
               "tile_bytes smaller than one max-width arena message");
}

// --- tile_bytes is pure tuning: every geometry, every thread count,
// bit-identical results. Covers over-full tiles (64-event tiles receiving
// arbitrarily many messages), tile count >> workers, and workers > tile
// count (a 1 GiB tile swallows every bucket whole). ---

TEST(TiledBarrier, TileBytesIsInvisibleInResults) {
  const auto in = make_instance();
  const auto baseline = Executor(in.g, {}).run(in.algos, in.schedule);
  EXPECT_TRUE(in.problem->verify(baseline).ok());

  // The smallest legal budget (one max-width message) clamps to 64-event
  // tiles: maximum tile count, every tile over-full.
  for (const std::size_t tile_bytes :
       {arena_message_bytes(kDefaultMaxPayloadWords), std::size_t{1} << 12,
        std::size_t{1} << 20, std::size_t{1} << 30}) {
    for (const auto threads : kThreadCounts) {
      SCOPED_TRACE("tile_bytes=" + std::to_string(tile_bytes) +
                   " threads=" + std::to_string(threads));
      ExecConfig cfg;
      cfg.tile_bytes = tile_bytes;
      cfg.num_threads = threads;
      const auto r = Executor(in.g, cfg).run(in.algos, in.schedule);
      expect_identical(baseline, r);
    }
  }
}

// --- Empty big-rounds: a retry-stretched schedule opens 3 message-free
// big-rounds after every populated one; the barrier and the gather must
// flow through them untouched at every thread count. ---

TEST(TiledBarrier, EmptyBigRoundsBetweenPopulatedOnes) {
  const auto in = make_instance();
  const auto sparse = in.schedule.scaled(4);

  const auto baseline = Executor(in.g, {}).run(in.algos, sparse);
  EXPECT_TRUE(in.problem->verify(baseline).ok());
  // Same outputs as the dense schedule: stretching is pure scheduling.
  const auto dense = Executor(in.g, {}).run(in.algos, in.schedule);
  EXPECT_EQ(baseline.outputs, dense.outputs);

  for (const auto threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecConfig cfg;
    cfg.num_threads = threads;
    // Smallest legal budget -> 64-event tiles: maximum tile count.
    cfg.tile_bytes = arena_message_bytes(kDefaultMaxPayloadWords);
    const auto r = Executor(in.g, cfg).run(in.algos, sparse);
    expect_identical(baseline, r);
  }
}

// --- A schedule with no events at all. ---

TEST(TiledBarrier, AllNeverScheduledIsANoop) {
  const auto in = make_instance();
  ScheduleTable empty(std::span<const DistributedAlgorithm* const>(in.algos),
                      in.g.num_nodes());
  for (const auto threads : kThreadCounts) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    const auto r = Executor(in.g, cfg).run(in.algos, empty);
    EXPECT_EQ(r.num_big_rounds, 0u);
    EXPECT_EQ(r.total_messages, 0u);
    EXPECT_EQ(r.max_load_per_big_round.size(), 0u);
  }
}

// --- Unit-capacity overflow inside the parallel barrier. Two chatter
// algorithms (every node floods every neighbor every round) scheduled in
// lockstep put load 2 on every directed edge of every big-round, and
// big-round 0 already carries 2 * num_directed_edges messages -- far past
// the parallel-barrier threshold -- so the overflow CHECK fires from a
// worker thread during the parallel edge-accounting phase. ---

class ChatterProgram final : public NodeProgram {
 public:
  void on_round(VirtualContext& ctx) override {
    for (const auto& h : ctx.neighbors()) ctx.send(h.neighbor, {ctx.vround()});
  }
};

class ChatterAlgorithm final : public DistributedAlgorithm {
 public:
  ChatterAlgorithm() : DistributedAlgorithm(1) {}
  std::string name() const override { return "chatter"; }
  std::uint32_t rounds() const override { return 4; }
  std::unique_ptr<NodeProgram> make_program(NodeId) const override {
    return std::make_unique<ChatterProgram>();
  }
};

TEST(TiledBarrierDeathTest, UnitCapacityOverflowDiesOnTheParallelPath) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(11);
  const auto g = make_gnp_connected(150, 6.0 / 150, rng);
  // Big-round 0 must engage the tiled barrier: every node sends to every
  // neighbor for both algorithms at once.
  ASSERT_GE(2u * g.num_directed_edges(), 256u);

  const ChatterAlgorithm a0, a1;
  const DistributedAlgorithm* algos[] = {&a0, &a1};
  const auto lockstep = ScheduleTable::lockstep(algos, g.num_nodes());

  ExecConfig cfg;
  cfg.enforce_unit_capacity = true;
  cfg.num_threads = 4;
  EXPECT_DEATH((void)Executor(g, cfg).run(algos, lockstep),
               "CONGEST bandwidth violated");
}

// --- Faulty runs: retransmissions re-enter the barrier rounds later and must
// land in the seg of whichever worker owns the consumer's tile -- including
// tiles owned by a different worker than the one that staged the original
// send. Tiny tiles maximize cross-tile traffic; results must match the
// serial run bit for bit, and bounded retries must recover correctness. ---

TEST(TiledBarrier, RetriesCrossTileBoundariesDeterministically) {
  const auto in = make_instance();
  const FaultInjector injector(in.g, [&] {
    FaultPlan plan;
    plan.seed = 4242;
    plan.drop_rate = 0.12;
    return plan;
  }());
  const RetryPolicy retry{3};
  const auto stretched = stretch_for_retries(in.schedule, retry);

  auto run_with = [&](std::uint32_t threads, std::size_t tile_bytes) {
    ExecConfig cfg;
    cfg.num_threads = threads;
    cfg.tile_bytes = tile_bytes;
    cfg.faults = &injector;
    cfg.retry = retry;
    return Executor(in.g, cfg).run(in.algos, stretched);
  };

  const auto baseline = run_with(0, kDefaultTileBytes);
  EXPECT_GT(baseline.faults.retransmissions, 0u);
  EXPECT_EQ(baseline.causality_violations, 0u)
      << "the retry-stretched schedule absorbs every retransmission";
  for (const auto threads : kThreadCounts) {
    for (const std::size_t tile_bytes :
         {arena_message_bytes(kDefaultMaxPayloadWords), std::size_t{1} << 30}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " tile_bytes=" + std::to_string(tile_bytes));
      const auto r = run_with(threads, tile_bytes);
      expect_identical(baseline, r);
      EXPECT_EQ(baseline.faults.retransmissions, r.faults.retransmissions);
      EXPECT_EQ(baseline.faults.delivered, r.faults.delivered);
      EXPECT_EQ(baseline.faults.lost, r.faults.lost);
    }
  }
}

// --- Zero steady-state allocations through the tiled parallel barrier: the
// second run of a warmed executor must not allocate, tiny tiles included. ---

TEST(TiledBarrier, ZeroSteadyStateAllocationsThroughTheTiledPath) {
  const auto in = make_instance();
  for (const std::size_t tile_bytes :
       {arena_message_bytes(kDefaultMaxPayloadWords), kDefaultTileBytes}) {
    SCOPED_TRACE("tile_bytes=" + std::to_string(tile_bytes));
    ExecConfig cfg;
    cfg.num_threads = 4;
    cfg.tile_bytes = tile_bytes;
    Executor executor(in.g, cfg);
    const auto first = executor.run(in.algos, in.schedule);
    const auto second = executor.run(in.algos, in.schedule);
    expect_identical(first, second);
    EXPECT_EQ(second.hot_path_allocs, 0u)
        << "warmed tiled runs must stay off the allocator";
  }
}

}  // namespace
}  // namespace dasched
