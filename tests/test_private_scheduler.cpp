// Theorem 4.1 end-to-end tests: with only private randomness, the full
// pipeline (clustering -> local randomness sharing -> block delays -> dedup
// execution) must reproduce every node's solo outputs, with zero causality
// violations, within the paper's length budgets.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/problem.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

PrivateSchedulerConfig test_config(std::uint64_t seed, std::uint32_t layers = 12) {
  PrivateSchedulerConfig cfg;
  cfg.seed = seed;
  cfg.clustering.num_layers = layers;
  return cfg;
}

struct PScenario {
  std::string name;
  std::function<Graph()> graph;
  std::function<std::unique_ptr<ScheduleProblem>(const Graph&)> workload;
};

std::vector<PScenario>& pscenarios() {
  static auto* cases = new std::vector<PScenario>{
      {"bcast_grid",
       [] { return make_grid(6, 6); },
       [](const Graph& g) { return make_broadcast_workload(g, 8, 3, 51); }},
      {"bfs_gnp",
       [] {
         Rng rng(52);
         return make_gnp_connected(60, 0.08, rng);
       },
       [](const Graph& g) { return make_bfs_workload(g, 6, 3, 52); }},
      {"mixed_cycle",
       [] { return make_cycle(36); },
       [](const Graph& g) { return make_mixed_workload(g, 6, 3, 53); }},
      {"routing_grid",
       [] { return make_grid(5, 6); },
       [](const Graph& g) { return make_routing_workload(g, 10, 54); }},
  };
  return *cases;
}

class PrivateSchedulerOnScenarios : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrivateSchedulerOnScenarios, FullyDistributedPipelineIsCorrect) {
  const auto& sc = pscenarios()[GetParam()];
  const auto g = sc.graph();
  auto problem = sc.workload(g);
  const auto out = PrivateRandomnessScheduler(test_config(1)).run(*problem);

  // Theory: with Theta(log n) layers every node's dilation-ball is covered
  // w.h.p.; with these test sizes and 12 layers this always holds for the
  // fixed seeds used.
  EXPECT_EQ(out.uncovered_nodes, 0u) << sc.name;
  EXPECT_EQ(out.incomplete_seed_nodes, 0u) << sc.name;
  EXPECT_EQ(out.exec.causality_violations, 0u) << sc.name;
  const auto v = problem->verify(out.exec);
  EXPECT_TRUE(v.ok()) << sc.name << ": incomplete " << v.incomplete_nodes
                      << " mismatched " << v.mismatched_outputs;
}

TEST_P(PrivateSchedulerOnScenarios, CentralShortcutsAgreeWithDistributed) {
  const auto& sc = pscenarios()[GetParam()];
  const auto g = sc.graph();

  auto p1 = sc.workload(g);
  auto cfg = test_config(2);
  const auto distributed = PrivateRandomnessScheduler(cfg).run(*p1);

  auto p2 = sc.workload(g);
  cfg.central_clustering = true;
  cfg.central_sharing = true;
  const auto central = PrivateRandomnessScheduler(cfg).run(*p2);

  // Identical randomness derivations => identical schedules and loads.
  EXPECT_EQ(distributed.exec.num_big_rounds, central.exec.num_big_rounds);
  EXPECT_EQ(distributed.exec.total_messages, central.exec.total_messages);
  EXPECT_EQ(distributed.exec.max_load_per_big_round, central.exec.max_load_per_big_round);
  EXPECT_EQ(distributed.schedule_rounds, central.schedule_rounds);
  // Only the precomputation cost differs (central oracles are free).
  EXPECT_GT(distributed.precomputation_rounds, 0u);
  EXPECT_EQ(central.precomputation_rounds, 0u);
}

TEST_P(PrivateSchedulerOnScenarios, CorrectAcrossSeeds) {
  const auto& sc = pscenarios()[GetParam()];
  const auto g = sc.graph();
  for (std::uint64_t seed : {3ULL, 4ULL, 5ULL}) {
    auto problem = sc.workload(g);
    auto cfg = test_config(seed);
    cfg.central_clustering = true;  // keep runtime low; equivalence tested above
    cfg.central_sharing = true;
    const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
    if (out.uncovered_nodes == 0) {
      EXPECT_TRUE(problem->verify(out.exec).ok()) << sc.name << " seed " << seed;
    }
    EXPECT_EQ(out.exec.causality_violations, 0u) << sc.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, PrivateSchedulerOnScenarios,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return pscenarios()[info.param].name;
                         });

TEST(PrivateScheduler, PrecomputationBudgetMatchesLemmas) {
  // Pre-computation = layers * (H + 1 + dilation)   [Lemma 4.2]
  //                 + layers * (H + 3s + slack)     [Lemma 4.3]
  const auto g = make_grid(6, 6);
  auto problem = make_broadcast_workload(g, 6, 3, 61);
  problem->run_solo();
  auto cfg = test_config(6, 8);
  cfg.sharing.words_per_seed = 5;
  cfg.sharing.slack_rounds = 4;
  const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
  const std::uint64_t d = problem->dilation();
  const std::uint64_t expected =
      8ULL * (out.hop_cap + 1 + d) + 8ULL * (out.hop_cap + 3 * 5 + 4);
  EXPECT_EQ(out.precomputation_rounds, expected);
}

TEST(PrivateScheduler, DelaysAreClusterConsistent) {
  const auto g = make_grid(6, 6);
  auto problem = make_mixed_workload(g, 6, 3, 62);
  problem->run_solo();

  ClusteringConfig ccfg;
  ccfg.seed = 7;
  ccfg.dilation = problem->dilation();
  ccfg.num_layers = 6;
  const auto clustering = ClusteringBuilder(ccfg).build_central(g);
  RandSharingConfig scfg;
  scfg.seed = 7;
  const auto seeds = RandomnessSharing(scfg).run_central(g, clustering);

  auto cfg = test_config(7, 6);
  std::uint32_t support = 0;
  const auto delay =
      PrivateRandomnessScheduler(cfg).compute_delays(*problem, clustering, seeds, &support);
  EXPECT_GE(support, 1u);
  for (std::size_t l = 0; l < clustering.num_layers(); ++l) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        if (clustering.layers[l].center[u] == clustering.layers[l].center[v]) {
          EXPECT_EQ(delay[l][u], delay[l][v]) << "layer " << l;
        }
      }
      for (std::size_t a = 0; a < problem->size(); ++a) {
        EXPECT_LT(delay[l][u][a], support);
      }
    }
  }
}

TEST(PrivateScheduler, UniformFullDelaysAlsoCorrectButLonger) {
  // The paper's "simpler solution" (uniform delays over [congestion]
  // big-rounds) is correct too; the block distribution should not lose to it.
  const auto g = make_grid(6, 6);

  auto p_block = make_broadcast_workload(g, 10, 3, 63);
  auto cfg = test_config(8);
  cfg.central_clustering = cfg.central_sharing = true;
  const auto block = PrivateRandomnessScheduler(cfg).run(*p_block);
  ASSERT_EQ(block.uncovered_nodes, 0u);
  EXPECT_TRUE(p_block->verify(block.exec).ok());

  auto p_uni = make_broadcast_workload(g, 10, 3, 63);
  cfg.delay_kind = DelayKind::kUniformFull;
  const auto uniform = PrivateRandomnessScheduler(cfg).run(*p_uni);
  EXPECT_TRUE(p_uni->verify(uniform.exec).ok());
}

TEST(PrivateScheduler, NoDedupLoadsDominateDedupLoads) {
  // The E6 ablation invariant: without first-copy-wins dedup, per-big-round
  // loads can only grow.
  const auto g = make_grid(6, 6);
  auto problem = make_broadcast_workload(g, 8, 3, 64);
  problem->run_solo();

  ClusteringConfig ccfg;
  ccfg.seed = 9;
  ccfg.dilation = problem->dilation();
  ccfg.num_layers = 8;
  const auto clustering = ClusteringBuilder(ccfg).build_central(g);
  const auto seeds = RandomnessSharing({.seed = 9}).run_central(g, clustering);

  auto cfg = test_config(9, 8);
  const PrivateRandomnessScheduler sched(cfg);
  std::uint32_t support = 0;
  const auto delay = sched.compute_delays(*problem, clustering, seeds, &support);
  const auto nodedup = PrivateRandomnessScheduler::no_dedup_loads(*problem, clustering, delay);

  std::uint64_t total_nodedup = 0;
  for (const auto x : nodedup) total_nodedup += x;

  // Run the real (dedup) schedule with the same clustering/seeds.
  cfg.central_clustering = cfg.central_sharing = true;
  cfg.seed = 9;
  auto problem2 = make_broadcast_workload(g, 8, 3, 64);
  const auto out = PrivateRandomnessScheduler(cfg).run(*problem2);
  std::uint64_t total_dedup = 0;
  for (const auto x : out.exec.max_load_per_big_round) total_dedup += x;

  EXPECT_GE(total_nodedup, total_dedup);
}

}  // namespace
}  // namespace dasched
