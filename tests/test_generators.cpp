#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dasched {
namespace {

TEST(Generators, PathCycleCompleteStar) {
  EXPECT_EQ(make_path(5).num_edges(), 4u);
  EXPECT_EQ(make_cycle(5).num_edges(), 5u);
  EXPECT_EQ(make_complete(6).num_edges(), 15u);
  EXPECT_EQ(make_star(7).num_edges(), 6u);
  EXPECT_TRUE(make_path(1).is_connected());
}

TEST(Generators, GridShapes) {
  const auto g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_TRUE(g.is_connected());

  const auto t = make_grid(4, 4, /*torus=*/true);
  EXPECT_EQ(t.num_edges(), 32u);
  for (NodeId v = 0; v < t.num_nodes(); ++v) EXPECT_EQ(t.degree(v), 4u);
  EXPECT_EQ(exact_diameter(t), 4u);
}

TEST(Generators, BinaryTree) {
  const auto g = make_binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(7), 1u);   // leaf
  EXPECT_EQ(g.degree(3), 3u);   // internal
}

TEST(Generators, GnpConnectedAlwaysConnected) {
  Rng rng(5);
  for (const double p : {0.0, 0.01, 0.1, 0.5}) {
    const auto g = make_gnp_connected(50, p, rng);
    EXPECT_EQ(g.num_nodes(), 50u);
    EXPECT_TRUE(g.is_connected()) << "p=" << p;
  }
}

TEST(Generators, RandomConnectedExactEdgeCount) {
  Rng rng(6);
  const auto g = make_random_connected(30, 90, rng);
  EXPECT_EQ(g.num_edges(), 90u);
  EXPECT_TRUE(g.is_connected());
  const auto tree = make_random_connected(30, 29, rng);
  EXPECT_EQ(tree.num_edges(), 29u);
  EXPECT_TRUE(tree.is_connected());
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(8);
  const auto g = make_random_regular(40, 4, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_edges(), 80u);
}

TEST(Generators, Lollipop) {
  const auto g = make_lollipop(20, 8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_edges(), 8u * 7 / 2 + 12);
  EXPECT_EQ(exact_diameter(g), 13u);  // across the clique + path tail
}

TEST(Generators, LayeredTopologyStructure) {
  const NodeId layers = 4;
  const NodeId width = 5;
  const auto g = make_layered(layers, width);
  EXPECT_EQ(g.num_nodes(), layers + 1 + layers * width);
  EXPECT_EQ(g.num_edges(), 2u * layers * width);
  EXPECT_TRUE(g.is_connected());
  // Spine degrees: v_0 and v_L touch one group; inner spines touch two.
  EXPECT_EQ(g.degree(layered_spine(0)), width);
  EXPECT_EQ(g.degree(layered_spine(layers)), width);
  EXPECT_EQ(g.degree(layered_spine(1)), 2 * width);
  // Group nodes connect exactly to the two adjacent spine nodes.
  const NodeId u = layered_group_node(layers, width, 2, 3);
  EXPECT_EQ(g.degree(u), 2u);
  EXPECT_NE(g.find_edge(u, layered_spine(1)), kInvalidEdge);
  EXPECT_NE(g.find_edge(u, layered_spine(2)), kInvalidEdge);
  // Spine-to-spine distance is 2 per layer.
  EXPECT_EQ(bfs_distances(g, layered_spine(0))[layered_spine(layers)], 2 * layers);
}

}  // namespace
}  // namespace dasched
