// Luby MIS tests, including the paper's Appendix A negative control: MIS is
// not Bellagio, so the wrapper's per-cluster seeds produce locally-valid but
// globally-inconsistent outputs -- measured as independence violations.
#include <gtest/gtest.h>

#include "algos/mis.hpp"
#include "congest/simulator.hpp"
#include "derand/bellagio.hpp"
#include "graph/generators.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/problem.hpp"
#include "util/math.hpp"

namespace dasched {
namespace {

struct MisRun {
  std::vector<std::uint8_t> decided;
  std::vector<std::uint8_t> in_mis;
};

MisRun extract(const std::vector<std::vector<std::uint64_t>>& outputs) {
  MisRun run;
  run.decided.reserve(outputs.size());
  run.in_mis.reserve(outputs.size());
  for (const auto& out : outputs) {
    run.decided.push_back(static_cast<std::uint8_t>(out[LubyMisAlgorithm::kOutDecided]));
    run.in_mis.push_back(static_cast<std::uint8_t>(out[LubyMisAlgorithm::kOutInMis]));
  }
  return run;
}

TEST(LubyMis, ComputesAValidMisWithPrivateRandomness) {
  Rng rng(2);
  const Graph graphs[] = {make_gnp_connected(80, 0.08, rng), make_grid(8, 8),
                          make_complete(15), make_cycle(31)};
  for (const auto& g : graphs) {
    const auto phases = 2u * static_cast<std::uint32_t>(ceil_log2(g.num_nodes())) + 4;
    LubyMisAlgorithm algo(phases, {}, 7);
    Simulator sim(g);
    const auto result = sim.run(algo);
    const auto run = extract(result.outputs);
    // All nodes decided (Theta(log n) phases suffice at these sizes).
    for (NodeId v = 0; v < g.num_nodes(); ++v) ASSERT_EQ(run.decided[v], 1u);
    const auto [indep, maximal] = check_mis(g, run.decided, run.in_mis);
    EXPECT_EQ(indep, 0u);
    EXPECT_EQ(maximal, 0u);
  }
}

TEST(LubyMis, SharedSeedIsDeterministicDifferentSeedsDiffer) {
  Rng rng(3);
  const auto g = make_gnp_connected(60, 0.1, rng);
  const std::vector<std::vector<std::uint64_t>> seed_a(g.num_nodes(), {11});
  const std::vector<std::vector<std::uint64_t>> seed_b(g.num_nodes(), {12});
  Simulator sim(g);
  LubyMisAlgorithm a1(16, seed_a, 1);
  LubyMisAlgorithm a2(16, seed_a, 2);  // different base seed, same shared seed
  LubyMisAlgorithm b(16, seed_b, 1);
  const auto ra1 = sim.run(a1);
  const auto ra2 = sim.run(a2);
  const auto rb = sim.run(b);
  EXPECT_EQ(ra1.outputs, ra2.outputs);  // seeded variant ignores private rng
  EXPECT_NE(ra1.outputs, rb.outputs);   // different MIS per seed (not Bellagio!)
}

TEST(LubyMis, SchedulesFaithfully) {
  Rng rng(4);
  const auto g = make_gnp_connected(60, 0.08, rng);
  ScheduleProblem problem(g);
  for (std::uint64_t i = 0; i < 6; ++i) {
    problem.add(std::make_unique<LubyMisAlgorithm>(14, std::vector<std::vector<std::uint64_t>>{}, 40 + i));
  }
  const auto out = SharedRandomnessScheduler{}.run(problem);
  EXPECT_TRUE(problem.verify(out.exec).ok());
}

TEST(LubyMis, BellagioWrapperProducesConflicts) {
  // The Appendix A caveat, measured: wrap seeded Luby with per-cluster seeds.
  // Each layer's execution is a valid MIS *of its own seed*, but nodes adopt
  // outputs from different layers, so stitched outputs violate independence
  // or maximality somewhere (with enough boundary structure). Contrast: a
  // globally-seeded run stitches perfectly.
  // High diameter + small radius so each layer has many clusters and hence
  // many boundaries where adjacent nodes adopt different layers' seeds.
  const auto g = make_cycle(400);
  const std::uint32_t phases = 4;

  BellagioConfig cfg;
  cfg.seed = 5;
  cfg.num_layers = 8;
  cfg.radius_factor = 1.0;
  const auto wrapped = run_bellagio(
      g, 2 * phases,
      [&](const std::vector<std::vector<std::uint64_t>>& node_seeds) {
        return std::make_unique<LubyMisAlgorithm>(phases, node_seeds, 9);
      },
      cfg);

  std::uint64_t conflicts = 0;
  bool any_valid = false;
  std::vector<std::uint8_t> decided(g.num_nodes(), 0);
  std::vector<std::uint8_t> in_mis(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!wrapped.valid[v]) continue;
    any_valid = true;
    decided[v] = static_cast<std::uint8_t>(wrapped.outputs[v][LubyMisAlgorithm::kOutDecided]);
    in_mis[v] = static_cast<std::uint8_t>(wrapped.outputs[v][LubyMisAlgorithm::kOutInMis]);
  }
  ASSERT_TRUE(any_valid);
  const auto [indep, maximal] = check_mis(g, decided, in_mis);
  conflicts = indep + maximal;
  // MIS is not Bellagio: stitching per-cluster executions breaks somewhere.
  EXPECT_GT(conflicts, 0u)
      << "unexpectedly consistent -- did MIS become pseudo-deterministic?";

  // Control: identical global seeds stitch to a valid MIS.
  // (4 phases leave some cycle nodes undecided; check_mis only judges the
  // decided ones, which is exactly the stitching property at issue.)
  const std::vector<std::vector<std::uint64_t>> global(g.num_nodes(), {77});
  LubyMisAlgorithm algo(phases, global, 9);
  Simulator sim(g);
  const auto solo = sim.run(algo);
  const auto run = extract(solo.outputs);
  const auto [gi, gm] = check_mis(g, run.decided, run.in_mis);
  EXPECT_EQ(gi, 0u);
  EXPECT_EQ(gm, 0u);
}

}  // namespace
}  // namespace dasched
