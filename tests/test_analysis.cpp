// Static pattern analysis (src/analysis): exact certificates must match
// solo-executed patterns cell-for-cell (and output-for-output) for every
// deterministic algorithm family across the graph suite, and envelope /
// fallback certificates must soundly dominate every randomized or opaque
// run. The cross-check itself (verify/certificate_check.hpp) is both the
// assertion vehicle and a test subject: corrupted certificates must fire the
// certificate.* findings.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/aggregate.hpp"
#include "algos/bfs.hpp"
#include "algos/broadcast.hpp"
#include "algos/distinct_elements.hpp"
#include "algos/gossip.hpp"
#include "algos/mis.hpp"
#include "algos/mst.hpp"
#include "algos/path_routing.hpp"
#include "analysis/analyzer.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "sched/problem.hpp"
#include "sched/workloads.hpp"
#include "util/rng.hpp"
#include "verify/certificate_check.hpp"

namespace dasched {
namespace {

std::vector<std::pair<std::string, Graph>> graph_suite() {
  Rng rng(7);
  std::vector<std::pair<std::string, Graph>> suite;
  suite.emplace_back("single-edge", make_path(2));
  suite.emplace_back("path", make_path(9));
  suite.emplace_back("cycle", make_cycle(8));
  suite.emplace_back("star", make_star(7));
  suite.emplace_back("grid", make_grid(4, 5));
  suite.emplace_back("tree", make_binary_tree(15));
  suite.emplace_back("gnp", make_gnp_connected(40, 0.15, rng));
  suite.emplace_back("lollipop", make_lollipop(14, 6));
  return suite;
}

/// Certificates either exactly match or soundly bound the solo run; the
/// cross-check must come back clean either way.
void expect_certified(const Graph& g, const DistributedAlgorithm& alg,
                      analysis::CertificateKind expected_kind) {
  const auto cert = analysis::analyze(g, alg);
  EXPECT_EQ(cert.kind, expected_kind) << alg.name();
  EXPECT_EQ(cert.dilation, alg.rounds());

  const auto solo = Simulator(g).run(alg);
  const auto report = verify::check_certificate(cert, solo);
  EXPECT_TRUE(report.ok()) << alg.name() << ": " << report.errors() << " errors, first code "
                           << (report.error_codes().empty() ? std::string("none")
                                                            : report.error_codes().front());
  EXPECT_TRUE(report.has(verify::kCodeCertificateSummary));

  if (expected_kind == analysis::CertificateKind::kExact) {
    // Belt and braces beyond the cross-check: headline scalars are exact.
    EXPECT_EQ(cert.total_messages, solo.total_messages);
    EXPECT_EQ(cert.last_message_round, solo.last_message_round);
    EXPECT_EQ(cert.congestion, solo.pattern.max_edge_load());
    ASSERT_TRUE(cert.has_outputs);
    EXPECT_EQ(cert.outputs, solo.outputs);
  } else {
    EXPECT_GE(cert.congestion, solo.pattern.max_edge_load());
    EXPECT_GE(cert.total_messages, solo.total_messages);
    EXPECT_FALSE(cert.has_outputs);
  }
}

TEST(Analysis, BroadcastExactAcrossSuite) {
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    for (const std::uint32_t hops : {1u, 2u, 5u}) {
      expect_certified(g, BroadcastAlgorithm(0, hops, 0xabcd, 11),
                       analysis::CertificateKind::kExact);
    }
    expect_certified(g, BroadcastAlgorithm(g.num_nodes() - 1, 3, 1, 5),
                     analysis::CertificateKind::kExact);
  }
}

TEST(Analysis, BfsExactAcrossSuite) {
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    for (const std::uint32_t hops : {1u, 3u, 7u}) {
      expect_certified(g, BfsAlgorithm(g.num_nodes() / 2, hops, 3),
                       analysis::CertificateKind::kExact);
    }
  }
}

TEST(Analysis, AggregateExactAcrossSuite) {
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    for (const std::uint32_t radius : {1u, 2u, 4u}) {
      expect_certified(g, AggregateAlgorithm(0, radius, 77),
                       analysis::CertificateKind::kExact);
      expect_certified(g, AggregateAlgorithm(g.num_nodes() - 1, radius, 1234),
                       analysis::CertificateKind::kExact);
    }
  }
}

TEST(Analysis, GossipExactAcrossSuite) {
  // Randomized pattern, but the coins are fixed at start from (seed, node):
  // the central replay must reproduce the executed pushes exactly.
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    for (const std::uint64_t seed : {1ull, 42ull, 999ull}) {
      expect_certified(g, GossipAlgorithm(0, 6, 0xfeed, seed),
                       analysis::CertificateKind::kExact);
    }
  }
}

TEST(Analysis, PathRoutingExactAcrossSuite) {
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    Rng rng(13);
    for (auto& alg : make_random_routing_instance(g, 4, rng, 99)) {
      expect_certified(g, *alg, analysis::CertificateKind::kExact);
    }
  }
}

TEST(Analysis, MisEnvelopeIsSoundAcrossSuite) {
  for (const auto& [name, g] : graph_suite()) {
    SCOPED_TRACE(name);
    for (const std::uint32_t phases : {1u, 3u, 5u}) {
      expect_certified(g, LubyMisAlgorithm(phases, {}, 17 + phases),
                       analysis::CertificateKind::kUpperBound);
    }
  }
}

TEST(Analysis, OpaqueFallbackIsSound) {
  const auto g = make_grid(4, 4);
  const auto weights = make_mst_weights(g, 5);
  expect_certified(g, PipelineMstAlgorithm(g, weights, 2, 21),
                   analysis::CertificateKind::kFallback);

  DistinctElementsParams params;
  params.radius = 2;
  params.iterations = 8;
  std::vector<std::uint64_t> values(g.num_nodes());
  std::vector<std::vector<std::uint64_t>> seeds(g.num_nodes(), {9ull});
  for (NodeId v = 0; v < g.num_nodes(); ++v) values[v] = splitmix64(v);
  expect_certified(g, DistinctElementsAlgorithm(g, params, values, seeds, 9),
                   analysis::CertificateKind::kFallback);
}

TEST(Analysis, ToSoloRoundTripsAsAdoptedProfile) {
  const auto g = make_grid(3, 4);
  const BroadcastAlgorithm alg(2, 4, 5, 31);
  const auto cert = analysis::analyze(g, alg);
  const SoloRunResult synth = cert.to_solo();
  const SoloRunResult executed = Simulator(g).run(alg);
  EXPECT_EQ(synth.outputs, executed.outputs);
  EXPECT_EQ(synth.total_messages, executed.total_messages);
  EXPECT_EQ(synth.last_message_round, executed.last_message_round);
  for (std::uint32_t d = 0; d < g.num_directed_edges(); ++d) {
    EXPECT_EQ(synth.pattern.edge_load(d), executed.pattern.edge_load(d));
  }
}

TEST(Analysis, CertifiedCongestionBoundDominatesExact) {
  const auto g = make_grid(4, 4);
  const auto problem = make_mixed_workload(g, 6, 3, 41);
  const std::uint32_t certified = problem->certified_congestion_bound();
  problem->run_solo();
  EXPECT_GE(certified, problem->congestion());
  // The mixed workload is all-exact (broadcast/bfs/aggregate): bound is tight.
  EXPECT_EQ(certified, problem->congestion());
  EXPECT_EQ(problem->analyze_static().size(), problem->size());
}

TEST(Analysis, CorruptedExactCertificateFiresCellAndOutputFindings) {
  const auto g = make_cycle(6);
  const BfsAlgorithm alg(0, 3, 7);
  auto cert = analysis::analyze(g, alg);
  const auto solo = Simulator(g).run(alg);

  // Shift one cell: drop nothing, add a phantom message in a quiet round.
  cert.pattern.record(cert.rounds, 0);
  cert.outputs[1][0] ^= 1;
  const auto report = verify::check_certificate(cert, solo);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(verify::kCodeCertificateCellMismatch));
  EXPECT_TRUE(report.has(verify::kCodeCertificateOutputMismatch));
}

TEST(Analysis, ViolatedEnvelopeFiresBoundFindings) {
  const auto g = make_star(5);
  const LubyMisAlgorithm alg(3, {}, 23);
  auto cert = analysis::analyze(g, alg);
  const auto solo = Simulator(g).run(alg);
  // Shrink the envelope below reality: the run must now violate it.
  cert.per_edge_bound = 0;
  cert.per_cell_bound = 0;
  cert.total_messages = 0;
  const auto report = verify::check_certificate(cert, solo);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(verify::kCodeCertificateBoundViolation));
}

TEST(Analysis, DimensionMismatchIsTerminal) {
  const auto g = make_path(4);
  const auto other = make_path(6);
  const BroadcastAlgorithm alg(0, 2, 1, 3);
  const auto cert = analysis::analyze(g, alg);
  const auto solo = Simulator(other).run(BroadcastAlgorithm(0, 2, 1, 3));
  const auto report = verify::check_certificate(cert, solo);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(verify::kCodeCertificateDims));
  EXPECT_FALSE(report.has(verify::kCodeCertificateSummary));
}

TEST(Analysis, DisconnectedAndUnreachedNodesMatchExecution) {
  // A 1-hop broadcast on a long path: most nodes are unreached; the derived
  // outputs must match the executed "not received" outputs exactly.
  const auto g = make_path(12);
  expect_certified(g, BroadcastAlgorithm(0, 1, 9, 2), analysis::CertificateKind::kExact);
  expect_certified(g, BfsAlgorithm(11, 1, 2), analysis::CertificateKind::kExact);
  expect_certified(g, AggregateAlgorithm(5, 1, 8), analysis::CertificateKind::kExact);
}

}  // namespace
}  // namespace dasched
