// Communication-pattern tests (Section 2): time-expanded footprint recording,
// congestion combination, and the simulation-mapping validator.
#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/broadcast.hpp"
#include "congest/pattern.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

TEST(Pattern, RecordAndQuery) {
  CommunicationPattern p(6);
  p.record(1, 0);
  p.record(1, 2);
  p.record(3, 0);
  EXPECT_EQ(p.last_message_round(), 3u);
  EXPECT_EQ(p.total_messages(), 3u);
  EXPECT_EQ(p.edge_load(0), 2u);
  EXPECT_EQ(p.edge_load(2), 1u);
  EXPECT_EQ(p.edge_load(5), 0u);
  EXPECT_EQ(p.max_edge_load(), 2u);
  ASSERT_EQ(p.edges_in_round(1).size(), 2u);
  EXPECT_TRUE(p.edges_in_round(2).empty());
  EXPECT_TRUE(p.edges_in_round(9).empty());
}

TEST(Pattern, CombinedCongestionSumsPerEdge) {
  CommunicationPattern a(4);
  CommunicationPattern b(4);
  a.record(1, 1);
  a.record(2, 1);
  b.record(5, 1);
  b.record(1, 3);
  const CommunicationPattern patterns[] = {a, b};
  EXPECT_EQ(combined_congestion(patterns), 3u);
  const auto loads = combined_edge_load(patterns);
  EXPECT_EQ(loads[1], 3u);
  EXPECT_EQ(loads[3], 1u);
  EXPECT_EQ(loads[0], 0u);
}

TEST(Pattern, EmptyPatternHasZeroEverything) {
  // A node program that never sends (or a zero-round algorithm) still has a
  // well-formed footprint: all queries return the additive identities.
  const CommunicationPattern p(5);
  EXPECT_EQ(p.last_message_round(), 0u);
  EXPECT_EQ(p.total_messages(), 0u);
  EXPECT_EQ(p.max_edge_load(), 0u);
  for (std::uint32_t d = 0; d < 5; ++d) EXPECT_EQ(p.edge_load(d), 0u);
  EXPECT_TRUE(p.edges_in_round(1).empty());
  EXPECT_TRUE(p.edges_in_round(100).empty());
}

TEST(Pattern, QueriesPastTheLastMessageRoundAreEmptyNotFatal) {
  CommunicationPattern p(3);
  p.record(2, 1);
  EXPECT_EQ(p.last_message_round(), 2u);
  // Certificate cross-checks iterate the union of both sides' rounds, so
  // reads far past last_message_round must be cheap no-ops.
  EXPECT_TRUE(p.edges_in_round(3).empty());
  EXPECT_TRUE(p.edges_in_round(1u << 20).empty());
  EXPECT_EQ(p.total_messages(), 1u);
}

TEST(Pattern, SingleEdgeGraphFootprint) {
  // The smallest nontrivial topology: one undirected edge, two directed ids.
  const Graph g = make_path(2);
  ASSERT_EQ(g.num_directed_edges(), 2u);
  CommunicationPattern p(g.num_directed_edges());
  p.record(1, 0);
  p.record(1, 1);
  p.record(2, 0);
  EXPECT_EQ(p.max_edge_load(), 2u);
  EXPECT_EQ(p.total_messages(), 3u);
  ASSERT_EQ(p.edges_in_round(1).size(), 2u);
  const CommunicationPattern patterns[] = {p};
  EXPECT_EQ(combined_congestion(patterns), 2u);
}

TEST(Pattern, CombinedCongestionOfNothingIsZero) {
  EXPECT_EQ(combined_congestion({}), 0u);
  EXPECT_TRUE(combined_edge_load({}).empty());
}

TEST(Pattern, BfsPatternIsUnknowableButRecordable) {
  // The paper's Section 2 point: BFS's pattern depends on distances -- we can
  // only know it after running. Verify the recorded footprint matches the
  // BFS structure: node at distance q sends in round q+1.
  const auto g = make_path(6);
  Simulator sim(g);
  BfsAlgorithm algo(0, 5, 1);
  const auto result = sim.run(algo);
  for (std::uint32_t r = 1; r <= 5; ++r) {
    // In round r, node r-1 floods both directions (except ends).
    for (const auto d : result.pattern.edges_in_round(r)) {
      const EdgeId e = d / 2;
      const auto [lo, hi] = g.endpoints(e);
      const NodeId sender = (d % 2 == 0) ? lo : hi;
      EXPECT_EQ(sender, r - 1);
    }
  }
}

TEST(SimulationValidator, LockstepAndShiftedAreSimulations) {
  const auto g = make_grid(4, 4);
  Simulator sim(g);
  BroadcastAlgorithm algo(0, 4, 9, 2);
  const auto solo = sim.run(algo);

  EXPECT_EQ(simulation_violations(g, solo.pattern,
                                  [](NodeId, std::uint32_t r) { return r - 1; }),
            0u);
  EXPECT_EQ(simulation_violations(g, solo.pattern,
                                  [](NodeId, std::uint32_t r) { return 10 + 3 * r; }),
            0u);
}

TEST(SimulationValidator, FlagsSkewAndMissingSenders) {
  const auto g = make_path(5);
  Simulator sim(g);
  BroadcastAlgorithm algo(0, 4, 9, 2);
  const auto solo = sim.run(algo);

  // Receiver runs before sender: violations.
  EXPECT_GT(simulation_violations(g, solo.pattern,
                                  [](NodeId v, std::uint32_t r) {
                                    return (v == 0 ? 50u : 0u) + r;
                                  }),
            0u);
  // Sender truncated but receiver still consumes: violation.
  EXPECT_GT(simulation_violations(g, solo.pattern,
                                  [](NodeId v, std::uint32_t r) {
                                    if (v == 0) return kNeverScheduled;
                                    return r - 1;
                                  }),
            0u);
  // Both truncated consistently: no constraint.
  EXPECT_EQ(simulation_violations(g, solo.pattern,
                                  [](NodeId, std::uint32_t r) {
                                    if (r >= 2) return kNeverScheduled;
                                    return r - 1;
                                  }),
            0u);
}

TEST(SimulationValidator, PrivateSchedulerScheduleIsASimulation) {
  // Cross-check: the Theorem 4.1 exec times, reconstructed per algorithm,
  // pass the static Section-2 validator on the solo patterns.
  Rng rng(9);
  const auto g = make_gnp_connected(50, 0.1, rng);
  auto problem = make_broadcast_workload(g, 5, 3, 3);
  problem->run_solo();

  PrivateSchedulerConfig cfg;
  cfg.seed = 4;
  cfg.clustering.num_layers = 12;
  cfg.central_clustering = true;
  cfg.central_sharing = true;
  const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
  ASSERT_EQ(out.exec.causality_violations, 0u);

  // Rebuild the same schedule times from the clustering + delays.
  ClusteringConfig ccfg = cfg.clustering;
  ccfg.seed = cfg.seed;
  ccfg.dilation = problem->dilation();
  const auto clustering = ClusteringBuilder(ccfg).build_central(g);
  const auto seeds = RandomnessSharing({.seed = cfg.seed}).run_central(g, clustering);
  std::uint32_t support = 0;
  const auto delay =
      PrivateRandomnessScheduler(cfg).compute_delays(*problem, clustering, seeds, &support);

  for (std::size_t a = 0; a < problem->size(); ++a) {
    const auto time = [&](NodeId v, std::uint32_t r) -> std::uint32_t {
      if (r > problem->algorithm(a).rounds() + 1) return kNeverScheduled;
      std::uint32_t best = kNeverScheduled;
      for (std::size_t l = 0; l < clustering.num_layers(); ++l) {
        if (clustering.layers[l].h_prime[v] + 1 >= r) {
          best = std::min(best, delay[l][v][a] + (r - 1));
        }
      }
      return best;
    };
    EXPECT_EQ(simulation_violations(g, problem->solo()[a].pattern, time), 0u)
        << "algorithm " << a;
  }
}

}  // namespace
}  // namespace dasched
