// Gossip tests: the key property is that a *randomized* black-box algorithm
// is scheduled faithfully -- per-node randomness is derived deterministically
// (the paper: sampled at start, fixed, part of the input), so solo and
// scheduled executions flip identical coins.
#include <gtest/gtest.h>

#include "algos/gossip.hpp"
#include "congest/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/problem.hpp"
#include "sched/shared_scheduler.hpp"

namespace dasched {
namespace {

TEST(Gossip, SpreadsPlausiblyAndDeterministically) {
  Rng rng(3);
  const auto g = make_gnp_connected(60, 0.1, rng);
  GossipAlgorithm algo(0, 30, 77, 5);
  Simulator sim(g);
  const auto a = sim.run(algo);
  const auto b = sim.run(algo);
  // Determinism: same seed, same execution.
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(a.outputs[v], b.outputs[v]);
  // Plausibility: push gossip informs most of a 60-node expander in 30 rounds.
  std::uint32_t informed = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (a.outputs[v][GossipAlgorithm::kOutInformed] == 1) {
      ++informed;
      EXPECT_EQ(a.outputs[v][GossipAlgorithm::kOutRumor], 77u);
    }
  }
  EXPECT_GT(informed, g.num_nodes() / 2);
}

TEST(Gossip, DifferentSeedsSpreadDifferently) {
  Rng rng(4);
  const auto g = make_gnp_connected(60, 0.1, rng);
  Simulator sim(g);
  GossipAlgorithm a(0, 10, 1, 100);
  GossipAlgorithm b(0, 10, 1, 101);
  const auto ra = sim.run(a);
  const auto rb = sim.run(b);
  bool differs = false;
  for (NodeId v = 0; v < g.num_nodes() && !differs; ++v) {
    differs = ra.outputs[v] != rb.outputs[v];
  }
  EXPECT_TRUE(differs);
}

TEST(Gossip, RandomizedPatternsScheduleFaithfully) {
  // 10 gossip instances with private coins under both schedulers: outputs
  // must match solo runs bit-for-bit (the randomness-as-input model).
  Rng rng(5);
  const auto g = make_gnp_connected(70, 0.08, rng);
  auto fresh = [&] {
    auto problem = std::make_unique<ScheduleProblem>(g);
    for (std::uint64_t i = 0; i < 10; ++i) {
      problem->add(std::make_unique<GossipAlgorithm>(
          static_cast<NodeId>((7 * i) % g.num_nodes()), 20, 1000 + i, 300 + i));
    }
    return problem;
  };
  {
    auto p = fresh();
    const auto out = SharedRandomnessScheduler{}.run(*p);
    EXPECT_TRUE(p->verify(out.exec).ok());
  }
  {
    auto p = fresh();
    PrivateSchedulerConfig cfg;
    cfg.seed = 9;
    cfg.clustering.num_layers = 14;
    cfg.central_clustering = true;
    cfg.central_sharing = true;
    const auto out = PrivateRandomnessScheduler(cfg).run(*p);
    EXPECT_EQ(out.uncovered_nodes, 0u);
    EXPECT_TRUE(p->verify(out.exec).ok());
  }
}

TEST(Gossip, CongestionIsLow) {
  // One message per informed node per round, random targets: per-edge loads
  // stay far below the flood workloads' -- the "low congestion, high
  // dilation" corner of the design space discussed in Section 5.
  Rng rng(6);
  const auto g = make_gnp_connected(80, 0.08, rng);
  ScheduleProblem problem(g);
  problem.add(std::make_unique<GossipAlgorithm>(0, 40, 1, 7));
  problem.run_solo();
  // A low-degree node's single edge can be pushed to repeatedly, but the
  // per-edge load still sits well below the round count.
  EXPECT_LT(problem.congestion(), 30u);
  EXPECT_EQ(problem.dilation(), 40u);
  // The typical edge is far lighter than the max: total messages over edges.
  EXPECT_LT(problem.total_messages() / g.num_directed_edges(), 8u);
}

}  // namespace
}  // namespace dasched
