#include <gtest/gtest.h>

#include "algos/broadcast.hpp"
#include "algos/path_routing.hpp"
#include "congest/executor.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"

namespace dasched {
namespace {

// A tiny ping-pong algorithm for exercising executor semantics directly:
// node 0 sends a counter to node 1 in odd rounds, node 1 replies incremented
// in even rounds. Outputs the final counter at both nodes.
class PingPong final : public DistributedAlgorithm {
 public:
  PingPong(std::uint32_t rounds, std::uint64_t seed)
      : DistributedAlgorithm(seed), rounds_(rounds) {}
  std::string name() const override { return "ping-pong"; }
  std::uint32_t rounds() const override { return rounds_; }
  std::unique_ptr<NodeProgram> make_program(NodeId node) const override;

 private:
  std::uint32_t rounds_;
};

class PingPongProgram final : public NodeProgram {
 public:
  explicit PingPongProgram(NodeId self) : self_(self) {}

  void on_round(VirtualContext& ctx) override {
    for (const auto& m : ctx.inbox()) counter_ = m.payload.at(0);
    if (self_ == 0 && ctx.vround() % 2 == 1) {
      ctx.send(1, {counter_ + 1});
    } else if (self_ == 1 && ctx.vround() % 2 == 0) {
      ctx.send(0, {counter_ + 1});
    }
  }

  void on_finish(VirtualContext& ctx) override {
    for (const auto& m : ctx.inbox()) counter_ = m.payload.at(0);
  }

  std::vector<std::uint64_t> output() const override { return {counter_}; }

 private:
  NodeId self_;
  std::uint64_t counter_ = 0;
};

std::unique_ptr<NodeProgram> PingPong::make_program(NodeId node) const {
  return std::make_unique<PingPongProgram>(node);
}

TEST(Simulator, PingPongCountsRounds) {
  const auto g = make_path(2);
  Simulator sim(g);
  PingPong algo(6, 1);
  const auto result = sim.run(algo);
  // Rounds 1..6 alternate sends; each send increments the counter once.
  EXPECT_EQ(result.outputs[0].at(0), 6u);  // node 0 absorbed node 1's round-6 reply? see below
  EXPECT_EQ(result.outputs[1].at(0), 5u);
  EXPECT_EQ(result.total_messages, 6u);
  EXPECT_EQ(result.pattern.last_message_round(), 6u);
  EXPECT_EQ(result.pattern.max_edge_load(), 3u);  // 3 messages each direction
}

TEST(Simulator, BroadcastPatternOnPath) {
  const auto g = make_path(5);
  Simulator sim(g);
  BroadcastAlgorithm algo(0, 4, 99, 7);
  const auto result = sim.run(algo);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutReceived], 1u);
    EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutValue], 99u);
    EXPECT_EQ(result.outputs[v][BroadcastAlgorithm::kOutDistance], v);
  }
  // On a path: node v forwards once in round v+1 over its incident edges.
  EXPECT_EQ(result.pattern.last_message_round(), 4u);
}

TEST(Executor, DelayedScheduleProducesSameOutputs) {
  const auto g = make_path(5);
  BroadcastAlgorithm algo(0, 4, 55, 3);

  Simulator sim(g);
  const auto solo = sim.run(algo);

  // Same algorithm, but every virtual round r runs at big-round 10 + 3r.
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  const auto exec = executor.run(
      algos, [](std::size_t, NodeId, std::uint32_t r) { return 10 + 3 * r; });

  EXPECT_EQ(exec.causality_violations, 0u);
  EXPECT_TRUE(exec.all_completed());
  EXPECT_EQ(exec.outputs[0], solo.outputs);
}

TEST(Executor, PerNodeSkewedScheduleStillCausal) {
  // Path routing is unidirectional, so skewing each node later than its
  // upstream neighbor respects causality exactly.
  const auto g = make_path(6);
  PathRoutingAlgorithm algo({0, 1, 2, 3, 4, 5}, 321, 4);
  Simulator sim(g);
  const auto solo = sim.run(algo);

  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  const auto exec = executor.run(
      algos, [](std::size_t, NodeId v, std::uint32_t r) { return r + v; });
  EXPECT_EQ(exec.causality_violations, 0u);
  EXPECT_EQ(exec.outputs[0], solo.outputs);
  EXPECT_EQ(exec.outputs[0][5].at(PathRoutingAlgorithm::kOutDelivered), 1u);
}

TEST(Executor, FloodUnderSkewIsFlaggedUnfaithful) {
  // Flooding uses edges in both directions; any per-node forward skew makes
  // some backward message late. The engine must notice even though the
  // receiver's *output* happens to be unaffected (it already held the token).
  const auto g = make_path(6);
  BroadcastAlgorithm algo(0, 5, 1, 4);
  Simulator sim(g);
  const auto solo = sim.run(algo);

  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  const auto exec = executor.run(
      algos, [](std::size_t, NodeId v, std::uint32_t r) { return r + v; });
  EXPECT_GT(exec.causality_violations, 0u);
  // For broadcast specifically the late messages are redundant, so outputs
  // still match solo -- which is exactly why the engine tracks violations
  // instead of relying on output comparison alone.
  EXPECT_EQ(exec.outputs[0], solo.outputs);
}

TEST(Executor, DetectsCausalityViolation) {
  const auto g = make_path(3);
  BroadcastAlgorithm algo(0, 2, 1, 5);
  // Node 1 executes its rounds *before* node 0 transmits: node 1 misses the
  // token. The engine must flag the late delivery, and node 1's output must
  // differ from solo.
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  const auto exec = executor.run(algos, [](std::size_t, NodeId v, std::uint32_t r) {
    if (v == 0) return 10 + r;  // source runs late
    return r;                   // others run early
  });
  EXPECT_GT(exec.causality_violations, 0u);
  EXPECT_EQ(exec.outputs[0][1][BroadcastAlgorithm::kOutReceived], 0u);
}

TEST(Executor, NeverScheduledTruncatesExecution) {
  const auto g = make_path(4);
  BroadcastAlgorithm algo(0, 3, 8, 6);
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  // Node 3 never executes anything; others run lockstep.
  const auto exec = executor.run(algos, [](std::size_t, NodeId v, std::uint32_t r) {
    if (v == 3) return kNeverScheduled;
    return r - 1;
  });
  EXPECT_FALSE(exec.all_completed());
  EXPECT_TRUE(exec.completed[0][0]);
  EXPECT_FALSE(exec.completed[0][3]);
  // Completed nodes are unaffected (node 3 is downstream of everyone).
  EXPECT_EQ(exec.outputs[0][2][BroadcastAlgorithm::kOutReceived], 1u);
  EXPECT_EQ(exec.causality_violations, 0u);
}

TEST(Executor, TwoAlgorithmsInterleavedKeepSoloOutputs) {
  const auto g = make_cycle(8);
  BroadcastAlgorithm a(0, 4, 11, 21);
  BroadcastAlgorithm b(4, 4, 22, 22);
  Simulator sim(g);
  const auto solo_a = sim.run(a);
  const auto solo_b = sim.run(b);

  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&a, &b};
  // Algorithm 0 at even big-rounds, algorithm 1 at odd ones.
  const auto exec = executor.run(algos, [](std::size_t alg, NodeId, std::uint32_t r) {
    return 2 * (r - 1) + static_cast<std::uint32_t>(alg);
  });
  EXPECT_EQ(exec.causality_violations, 0u);
  EXPECT_EQ(exec.outputs[0], solo_a.outputs);
  EXPECT_EQ(exec.outputs[1], solo_b.outputs);
  // Interleaving means no big-round carries both algorithms' messages on one
  // edge: max load per big-round is 1 here (each algorithm's flood is 1 per
  // direction per round).
  EXPECT_LE(exec.max_edge_load, 1u);
}

TEST(Executor, LoadAccountingMatchesHandCount) {
  const auto g = make_path(2);
  PingPong algo(4, 2);
  Executor executor(g, {});
  const DistributedAlgorithm* algos[] = {&algo};
  // All four rounds at the same... not allowed (strictly increasing). Use
  // consecutive big-rounds; each big-round carries exactly one message.
  const auto exec = executor.run(
      algos, [](std::size_t, NodeId, std::uint32_t r) { return r - 1; });
  EXPECT_EQ(exec.num_big_rounds, 4u);
  ASSERT_EQ(exec.max_load_per_big_round.size(), 4u);
  for (const auto load : exec.max_load_per_big_round) EXPECT_EQ(load, 1u);
  EXPECT_EQ(exec.adaptive_physical_rounds(), 4u);
  const auto fixed = exec.fixed_phase(2);
  EXPECT_EQ(fixed.physical_rounds, 8u);
  EXPECT_EQ(fixed.overflowing_phases, 0u);
}

TEST(Executor, RecordsPatternsIdenticalToSimulator) {
  const auto g = make_grid(3, 3);
  BroadcastAlgorithm algo(4, 4, 5, 9);
  Simulator sim(g);
  const auto solo = sim.run(algo);

  ExecConfig cfg;
  cfg.record_patterns = true;
  Executor executor(g, cfg);
  const DistributedAlgorithm* algos[] = {&algo};
  const auto exec = executor.run(
      algos, [](std::size_t, NodeId, std::uint32_t r) { return 5 * r; });

  ASSERT_EQ(exec.patterns.size(), 1u);
  EXPECT_EQ(exec.patterns[0].total_messages(), solo.pattern.total_messages());
  EXPECT_EQ(exec.patterns[0].max_edge_load(), solo.pattern.max_edge_load());
  for (std::uint32_t d = 0; d < g.num_directed_edges(); ++d) {
    EXPECT_EQ(exec.patterns[0].edge_load(d), solo.pattern.edge_load(d));
  }
}

}  // namespace
}  // namespace dasched
