// Medium-scale end-to-end stress tests: guard against scalability and
// integration regressions. Sizes chosen to keep the suite a few seconds.
#include <gtest/gtest.h>


#include <cmath>
#include "graph/generators.hpp"
#include "sched/baseline.hpp"
#include "sched/private_scheduler.hpp"
#include "sched/shared_scheduler.hpp"
#include "sched/workloads.hpp"

namespace dasched {
namespace {

TEST(Stress, SharedSchedulerLargeInstance) {
  Rng rng(1);
  const auto g = make_gnp_connected(1500, 4.0 / 1500, rng);
  auto problem = make_mixed_workload(g, 48, 4, 7);
  const auto out = SharedRandomnessScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
  const double log_n = std::log2(g.num_nodes());
  EXPECT_LE(out.schedule_rounds,
            8.0 * (problem->congestion() + problem->dilation() * log_n));
}

TEST(Stress, PrivateSchedulerFullyDistributedMediumInstance) {
  Rng rng(2);
  const auto g = make_gnp_connected(500, 5.0 / 500, rng);
  auto problem = make_mixed_workload(g, 16, 3, 8);
  PrivateSchedulerConfig cfg;
  cfg.seed = 3;
  const auto out = PrivateRandomnessScheduler(cfg).run(*problem);
  EXPECT_EQ(out.uncovered_nodes, 0u);
  EXPECT_EQ(out.incomplete_seed_nodes, 0u);
  EXPECT_EQ(out.exec.causality_violations, 0u);
  EXPECT_TRUE(problem->verify(out.exec).ok());
}

TEST(Stress, GreedyManyAlgorithms) {
  const auto g = make_grid(20, 20);
  auto problem = make_broadcast_workload(g, 96, 5, 9);
  const auto out = GreedyScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
  EXPECT_GE(out.schedule_rounds, problem->trivial_lower_bound());
}

TEST(Stress, HighDegreeStarWorkload) {
  // Star graphs concentrate all congestion on the hub: the scheduler must
  // serialize hub edges correctly.
  const auto g = make_star(300);
  auto problem = make_broadcast_workload(g, 40, 2, 10);
  problem->run_solo();
  EXPECT_GE(problem->congestion(), 30u);  // hub edges carry almost everything
  const auto out = SharedRandomnessScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
}

TEST(Stress, DeepPathWorkload) {
  // Extreme diameter: dilation-dominated regime.
  const auto g = make_path(800);
  auto problem = make_bfs_workload(g, 6, 60, 11);
  const auto out = SharedRandomnessScheduler{}.run(*problem);
  EXPECT_TRUE(problem->verify(out.exec).ok());
}

}  // namespace
}  // namespace dasched
